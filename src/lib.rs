//! # corescope
//!
//! Characterization of scientific workloads on simulated multi-core NUMA
//! systems — a full reproduction of *"Characterization of Scientific
//! Workloads on Systems with Multi-Core Processors"* (Alam, Barrett,
//! Kuehn, Roth, Vetter; IISWC 2006) as a Rust library.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`machine`] — the NUMA machine simulator (sockets, cores, caches,
//!   HyperTransport ladder topologies, coherence probes, max-min-fair
//!   bandwidth sharing, fluid-flow discrete-event engine);
//! * [`affinity`] — `numactl`-style page placement and the six Table 5
//!   task/memory schemes;
//! * [`smpi`] — the simulated MPI runtime (MPICH2/LAM/OpenMPI profiles,
//!   SysV vs spin-lock sub-layers, real collective algorithms, IMB
//!   benchmarks);
//! * [`kernels`] — STREAM, BLAS 1/3, HPCC (HPL, FFT, RandomAccess,
//!   PTRANS), NAS CG/FT — each as real numerics plus a simulator model;
//! * [`apps`] — molecular dynamics (AMBER PME/GB, LAMMPS LJ/chain/EAM)
//!   and a POP-like ocean model;
//! * [`harness`] — one entry point per paper table/figure.
//!
//! ## Quickstart
//!
//! ```
//! use corescope::machine::{systems, Machine};
//! use corescope::affinity::Scheme;
//! use corescope::smpi::{CommWorld, LockLayer, MpiImpl};
//! use corescope::kernels::stream::{append_star, StreamParams};
//!
//! # fn main() -> Result<(), corescope::machine::Error> {
//! // Build the 8-socket Iwill H8501 ("Longs") and run STREAM triad on
//! // all 16 cores under the localalloc placement.
//! let machine = Machine::new(systems::longs());
//! let placements = Scheme::TwoMpiLocalAlloc.resolve(&machine, 16)?;
//! let mut world = CommWorld::new(&machine, placements, MpiImpl::Lam.profile(), LockLayer::USysV);
//! let params = StreamParams::default();
//! append_star(&mut world, &params);
//! let report = world.run()?;
//! let bandwidth = 16.0 * params.bytes_per_rank() / report.makespan;
//! // The ladder's coherence probes cap machine-wide streaming well below
//! // the 8 x 4.2 GB/s the controllers could nominally deliver.
//! assert!(bandwidth < 8.0 * 4.2e9);
//! # Ok(())
//! # }
//! ```
//!
//! To regenerate any of the paper's tables or figures:
//!
//! ```
//! use corescope::harness::{Artifact, Fidelity};
//!
//! # fn main() -> Result<(), corescope::machine::Error> {
//! let tables = Artifact::T5.run(Fidelity::Quick)?;
//! println!("{}", tables[0]);
//! # Ok(())
//! # }
//! ```

pub use corescope_affinity as affinity;
pub use corescope_apps as apps;
pub use corescope_harness as harness;
pub use corescope_kernels as kernels;
pub use corescope_machine as machine;
pub use corescope_smpi as smpi;
