//! Cross-crate resilience tests: broken communication schedules and
//! mid-run faults must produce typed errors or bounded slowdowns — never
//! hangs.

use corescope::affinity::Scheme;
use corescope::machine::{systems, Error, FaultPlan, LinkId, Machine, RankId};
use corescope::smpi::{CommWorld, LockLayer, MpiImpl};

fn world(machine: &Machine, n: usize) -> CommWorld<'_> {
    let placements = Scheme::TwoMpiLocalAlloc.resolve(machine, n).unwrap();
    CommWorld::new(machine, placements, MpiImpl::OpenMpi.profile(), LockLayer::USysV)
}

#[test]
fn unmatched_recv_in_a_collective_schedule_reports_the_blocked_rank() {
    let m = Machine::new(systems::dmz());
    let mut w = world(&m, 4);
    w.allreduce(1024.0);
    // Rank 2 then waits for a message rank 3 never sends.
    let tag = w.fresh_tag();
    w.recv(2, 3, tag);
    match w.run().unwrap_err() {
        Error::Deadlock { blocked, .. } => assert_eq!(blocked, vec![RankId::new(2)]),
        other => panic!("expected Deadlock naming rank 2, got {other}"),
    }
}

#[test]
fn unmatched_recv_before_a_barrier_blocks_every_rank() {
    let m = Machine::new(systems::dmz());
    let mut w = world(&m, 4);
    w.allreduce(1024.0);
    let tag = w.fresh_tag();
    w.recv(1, 0, tag);
    // The barrier drags everyone else into the deadlock.
    w.barrier();
    match w.run().unwrap_err() {
        Error::Deadlock { blocked, .. } => {
            assert_eq!(blocked.len(), 4, "all ranks should be blocked: {blocked:?}");
        }
        other => panic!("expected Deadlock over all 4 ranks, got {other}"),
    }
}

#[test]
fn link_brownout_and_restore_bounds_a_collective_workload() {
    let m = Machine::new(systems::dmz());
    let mut w = world(&m, 4);
    // Cross-socket traffic: ranks 0/1 sit on socket 0, ranks 2/3 on
    // socket 1 under the packed placement.
    for _ in 0..50 {
        w.sendrecv(0, 2, 1e6);
    }
    let healthy = w.run().unwrap().makespan;

    let degrade_all = |plan: FaultPlan, at: f64, factor: f64| {
        plan.link_degrade(at, LinkId::new(0), factor).link_degrade(at, LinkId::new(1), factor)
    };
    let restore_all = |plan: FaultPlan, at: f64| {
        plan.link_restore(at, LinkId::new(0)).link_restore(at, LinkId::new(1))
    };

    // Quarter-bandwidth links during the middle of the healthy run.
    let transient_plan =
        restore_all(degrade_all(FaultPlan::new(), healthy * 0.25, 0.25), healthy * 0.5);
    let transient = w.run_with_faults(&transient_plan).unwrap();
    // Quarter-bandwidth links for the whole run.
    let permanent_plan = degrade_all(FaultPlan::new(), 0.0, 0.25);
    let permanent = w.run_with_faults(&permanent_plan).unwrap();

    assert!(
        healthy < transient.makespan && transient.makespan < permanent.makespan,
        "expected healthy {healthy:.5} < transient {:.5} < permanent {:.5}",
        transient.makespan,
        permanent.makespan
    );
    assert!(transient.metrics.faults_applied > 0);
}

#[test]
fn rank_stalled_during_a_collective_is_a_typed_error() {
    let m = Machine::new(systems::dmz());
    let mut w = world(&m, 4);
    w.allreduce(1024.0);
    // Rank 3 never starts; the collective can never complete.
    let plan = FaultPlan::new().rank_stall(0.0, RankId::new(3));
    match w.run_with_faults(&plan).unwrap_err() {
        Error::RankStalled { rank, .. } => assert_eq!(rank, RankId::new(3)),
        other => panic!("expected RankStalled for rank 3, got {other}"),
    }
}
