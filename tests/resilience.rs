//! Cross-crate resilience tests: broken communication schedules and
//! mid-run faults must produce typed errors or bounded slowdowns — never
//! hangs.

use corescope::affinity::Scheme;
use corescope::machine::{
    systems, CheckpointPolicy, Error, FaultPlan, LinkId, Machine, RankId, RetryPolicy, TraceConfig,
};
use corescope::smpi::{CommWorld, FtOutcome, LockLayer, MpiImpl};

fn world(machine: &Machine, n: usize) -> CommWorld<'_> {
    let placements = Scheme::TwoMpiLocalAlloc.resolve(machine, n).unwrap();
    CommWorld::new(machine, placements, MpiImpl::OpenMpi.profile(), LockLayer::USysV)
}

/// A four-rank workload that keeps every rank busy: repeated reductions
/// with cross-socket traffic under the packed placement.
fn busy_world(machine: &Machine) -> CommWorld<'_> {
    let mut w = world(machine, 4);
    for _ in 0..40 {
        w.sendrecv(0, 2, 1e5);
        w.allreduce(1e5);
    }
    w
}

#[test]
fn unmatched_recv_in_a_collective_schedule_reports_the_blocked_rank() {
    let m = Machine::new(systems::dmz());
    let mut w = world(&m, 4);
    w.allreduce(1024.0);
    // Rank 2 then waits for a message rank 3 never sends.
    let tag = w.fresh_tag();
    w.recv(2, 3, tag);
    match w.run().unwrap_err() {
        Error::Deadlock { blocked, .. } => assert_eq!(blocked, vec![RankId::new(2)]),
        other => panic!("expected Deadlock naming rank 2, got {other}"),
    }
}

#[test]
fn unmatched_recv_before_a_barrier_blocks_every_rank() {
    let m = Machine::new(systems::dmz());
    let mut w = world(&m, 4);
    w.allreduce(1024.0);
    let tag = w.fresh_tag();
    w.recv(1, 0, tag);
    // The barrier drags everyone else into the deadlock.
    w.barrier();
    match w.run().unwrap_err() {
        Error::Deadlock { blocked, .. } => {
            assert_eq!(blocked.len(), 4, "all ranks should be blocked: {blocked:?}");
        }
        other => panic!("expected Deadlock over all 4 ranks, got {other}"),
    }
}

#[test]
fn link_brownout_and_restore_bounds_a_collective_workload() {
    let m = Machine::new(systems::dmz());
    let mut w = world(&m, 4);
    // Cross-socket traffic: ranks 0/1 sit on socket 0, ranks 2/3 on
    // socket 1 under the packed placement.
    for _ in 0..50 {
        w.sendrecv(0, 2, 1e6);
    }
    let healthy = w.run().unwrap().makespan;

    let degrade_all = |plan: FaultPlan, at: f64, factor: f64| {
        plan.link_degrade(at, LinkId::new(0), factor).link_degrade(at, LinkId::new(1), factor)
    };
    let restore_all = |plan: FaultPlan, at: f64| {
        plan.link_restore(at, LinkId::new(0)).link_restore(at, LinkId::new(1))
    };

    // Quarter-bandwidth links during the middle of the healthy run.
    let transient_plan =
        restore_all(degrade_all(FaultPlan::new(), healthy * 0.25, 0.25), healthy * 0.5);
    let transient = w.run_with_faults(&transient_plan).unwrap();
    // Quarter-bandwidth links for the whole run.
    let permanent_plan = degrade_all(FaultPlan::new(), 0.0, 0.25);
    let permanent = w.run_with_faults(&permanent_plan).unwrap();

    assert!(
        healthy < transient.makespan && transient.makespan < permanent.makespan,
        "expected healthy {healthy:.5} < transient {:.5} < permanent {:.5}",
        transient.makespan,
        permanent.makespan
    );
    assert!(transient.metrics.faults_applied > 0);
}

#[test]
fn rank_kill_is_fatal_without_checkpoints_and_survivable_with_them() {
    let m = Machine::new(systems::dmz());
    let healthy = busy_world(&m).run().unwrap().makespan;
    let plan = FaultPlan::new().rank_kill(healthy * 0.5, RankId::new(2));

    // No checkpoint policy: the kill is a typed failure, not a hang.
    match busy_world(&m).run_with_faults(&plan).unwrap_err() {
        Error::RankKilled { rank, at_time } => {
            assert_eq!(rank, RankId::new(2));
            assert!((at_time - healthy * 0.5).abs() < healthy * 0.1);
        }
        other => panic!("expected RankKilled for rank 2, got {other}"),
    }

    // Armed with checkpoints, the same plan completes; the rollback is
    // stamped into the trace with a consistent timeline.
    let w = busy_world(&m).with_recovery(
        CheckpointPolicy::new(healthy / 5.0, 1e7).with_restart_delay(healthy / 20.0),
    );
    let observed = w.observe(&plan, TraceConfig::on());
    let report = observed.result.unwrap();
    assert_eq!(report.metrics.recoveries, 1);
    assert!(report.metrics.checkpoints_taken >= 1);
    assert!(report.makespan > healthy, "rollback and downtime must cost time");
    let trace = observed.trace.unwrap();
    assert_eq!(trace.recoveries.len(), 1);
    let stamp = &trace.recoveries[0];
    assert_eq!(stamp.rank, RankId::new(2));
    assert!(stamp.restored_to <= stamp.killed_at && stamp.killed_at < stamp.resumed_at);
    assert!(stamp.resumed_at <= trace.end_time);
}

#[test]
fn ulfm_notification_and_shrink_resume_on_survivors() {
    let m = Machine::new(systems::dmz());
    let mut w = world(&m, 4);
    for _ in 0..20 {
        w.allreduce(1e5);
    }
    let healthy = w.run().unwrap().makespan;
    let plan = FaultPlan::new().rank_kill(healthy * 0.5, RankId::new(1));
    match w.run_fault_tolerant(&plan, healthy * 0.01).unwrap() {
        FtOutcome::RankFailed(failure) => {
            assert_eq!(failure.rank, RankId::new(1));
            assert!(failure.detected_at > failure.failed_at);
            // Shrink to the survivors and re-plan the collectives over
            // the three remaining ranks.
            let mut survivors = w.shrink(&[failure.rank]).unwrap();
            assert_eq!(survivors.size(), 3);
            for _ in 0..20 {
                survivors.allreduce(1e5);
            }
            assert!(survivors.run().unwrap().makespan > 0.0);
        }
        FtOutcome::Completed(_) => panic!("a mid-run kill must interrupt the run"),
    }
}

#[test]
fn transfer_retry_rides_out_a_link_failure() {
    let m = Machine::new(systems::dmz());
    let xfers = |w: &mut CommWorld<'_>| {
        for _ in 0..10 {
            w.sendrecv(0, 2, 1e6);
        }
    };
    let mut baseline = world(&m, 4);
    xfers(&mut baseline);
    let healthy = baseline.run().unwrap().makespan;

    // One direction of the socket0<->socket1 pair is severed mid-run and
    // restored later; with a retry policy the transfers retransmit with
    // backoff instead of starving into RankStalled.
    let plan = FaultPlan::new()
        .link_fail(healthy * 0.3, LinkId::new(0))
        .link_restore(healthy * 0.6, LinkId::new(0));
    let mut retried = world(&m, 4).with_retry(RetryPolicy::new(healthy * 0.02));
    xfers(&mut retried);
    let report = retried.run_with_faults(&plan).unwrap();
    assert!(report.metrics.retries >= 1, "severed transfers must retransmit");
    assert!(report.makespan > healthy, "the outage must cost time");
}

#[test]
fn rank_stalled_during_a_collective_is_a_typed_error() {
    let m = Machine::new(systems::dmz());
    let mut w = world(&m, 4);
    w.allreduce(1024.0);
    // Rank 3 never starts; the collective can never complete.
    let plan = FaultPlan::new().rank_stall(0.0, RankId::new(3));
    match w.run_with_faults(&plan).unwrap_err() {
        Error::RankStalled { rank, .. } => assert_eq!(rank, RankId::new(3)),
        other => panic!("expected RankStalled for rank 3, got {other}"),
    }
}
