//! Cross-crate integration: compositions and failure injection that no
//! single crate's unit tests cover.

use corescope::affinity::Scheme;
use corescope::apps::md::LammpsBenchmark;
use corescope::kernels::cg::{CgClass, NasCg};
use corescope::machine::engine::RankPlacement;
use corescope::machine::{
    systems, CoreId, Engine, Error, LinkId, Machine, MemoryLayout, NumaNodeId,
};
use corescope::smpi::{CommWorld, LockLayer, MpiImpl};

fn longs() -> Machine {
    Machine::new(systems::longs())
}

#[test]
fn degraded_rung_link_slows_cross_ladder_workloads() {
    let machine = longs();
    let placements = Scheme::OneMpiLocalAlloc.resolve(&machine, 8).unwrap();
    let build = |w: &mut CommWorld<'_>| {
        for _ in 0..20 {
            w.alltoall(256.0 * 1024.0);
        }
    };

    let healthy = {
        let mut w =
            CommWorld::new(&machine, placements.clone(), MpiImpl::Lam.profile(), LockLayer::USysV);
        build(&mut w);
        w.run().unwrap().makespan
    };

    // Degrade every directed link to a tenth of its bandwidth.
    let mut engine = Engine::new(&machine);
    for l in 0..machine.topology().num_links() {
        engine.set_link_capacity(LinkId::new(l), 0.2e9);
    }
    let degraded = {
        let mut w = CommWorld::new(&machine, placements, MpiImpl::Lam.profile(), LockLayer::USysV);
        build(&mut w);
        w.run_on(&engine).unwrap().makespan
    };
    assert!(degraded > 2.0 * healthy, "degraded links must hurt: {degraded:.4} vs {healthy:.4}");
}

#[test]
fn dead_controller_is_a_typed_error_not_a_hang() {
    let machine = longs();
    let mut engine = Engine::new(&machine);
    engine.set_controller_capacity(corescope::machine::SocketId::new(3), 0.0);
    let placement = RankPlacement::new(
        CoreId::new(6), // socket 3
        MemoryLayout::single(NumaNodeId::new(3)),
    );
    let mut program = corescope::machine::Program::new();
    program.compute(corescope::machine::ComputePhase::new(
        "touch",
        0.0,
        corescope::machine::TrafficProfile::stream(1e6),
    ));
    let err = engine.run(&[placement], &[program]).unwrap_err();
    assert!(matches!(err, Error::ZeroCapacityRoute { .. }), "{err}");
}

#[test]
fn scheme_resolution_feeds_engine_placements_consistently() {
    let machine = longs();
    for scheme in Scheme::all() {
        for n in [1usize, 2, 4, 8, 16] {
            let Ok(placements) = scheme.resolve(&machine, n) else {
                assert!(
                    scheme.is_one_per_socket() && n > machine.num_sockets(),
                    "{scheme} unexpectedly failed for {n} ranks"
                );
                continue;
            };
            // Engine accepts every placement the affinity layer produces.
            let programs = vec![corescope::machine::Program::new(); n];
            Engine::new(&machine).run(&placements, &programs).unwrap();
        }
    }
}

#[test]
fn deterministic_simulations_are_bit_reproducible() {
    let machine = longs();
    let run = || {
        let placements = Scheme::Default.resolve(&machine, 8).unwrap();
        let mut w =
            CommWorld::new(&machine, placements, MpiImpl::Mpich2.profile(), LockLayer::USysV);
        NasCg { class: CgClass::A }.append_run(&mut w);
        w.run().unwrap().makespan
    };
    let a = run();
    let b = run();
    assert_eq!(a.to_bits(), b.to_bits(), "engine must be deterministic");
}

#[test]
fn workloads_report_consistent_metrics() {
    let machine = longs();
    let placements = Scheme::TwoMpiLocalAlloc.resolve(&machine, 4).unwrap();
    let mut w = CommWorld::new(&machine, placements, MpiImpl::OpenMpi.profile(), LockLayer::USysV);
    LammpsBenchmark::Lj.append_run(&mut w);
    let report = w.run().unwrap();
    // Per-rank finish times never exceed the makespan.
    for (i, &t) in report.rank_finish.iter().enumerate() {
        assert!(t <= report.makespan + 1e-12, "rank {i} finishes after makespan");
    }
    // Message accounting is symmetric per step structure: halo_1d sends
    // 2 messages per interior pair per step.
    assert!(report.metrics.total_messages() > 0);
    assert!(report.metrics.total_dram_bytes() > 0.0);
    assert!(report.metrics.events > 0);
}

#[test]
fn mpi_profiles_preserve_orderings_through_full_workloads() {
    // LAM beats MPICH2 for a latency-bound workload; MPICH2 wins a
    // bandwidth-bound one — the figure 14 crossover surviving end-to-end.
    let machine = Machine::new(systems::dmz());
    let placements = Scheme::OneMpiLocalAlloc.resolve(&machine, 2).unwrap();
    let run = |imp: MpiImpl, bytes: f64, count: usize| {
        let mut w = CommWorld::new(&machine, placements.clone(), imp.profile(), LockLayer::USysV);
        for _ in 0..count {
            w.sendrecv(0, 1, bytes);
        }
        w.run().unwrap().makespan
    };
    let small_lam = run(MpiImpl::Lam, 64.0, 200);
    let small_mpich = run(MpiImpl::Mpich2, 64.0, 200);
    assert!(small_lam < small_mpich);
    let big_lam = run(MpiImpl::Lam, 4e6, 5);
    let big_mpich = run(MpiImpl::Mpich2, 4e6, 5);
    assert!(big_mpich < big_lam);
}
