//! Workspace-level property-based tests (proptest) on the core data
//! structures and invariants.

use corescope::kernels::cg::{cg_solve, CsrMatrix};
use corescope::kernels::fft::{dft_naive, fft_inplace, ifft_normalized, Complex};
use corescope::kernels::randomaccess::{run_updates, RaStream};
use corescope::machine::flow::{solve_maxmin, FlowSpec, ResourceTable};
use corescope::machine::{systems, Machine, MemoryLayout, NumaNodeId, SocketId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Max-min fairness never oversubscribes a resource and never exceeds
    /// a flow's own cap.
    #[test]
    fn maxmin_is_feasible(
        caps in proptest::collection::vec(1.0f64..1e3, 1..6),
        flows in proptest::collection::vec(
            (proptest::collection::vec(0usize..6, 0..4), 0.1f64..1e3),
            1..10,
        ),
    ) {
        let mut table = ResourceTable::new();
        for (i, &c) in caps.iter().enumerate() {
            table.add(format!("r{i}"), c);
        }
        let specs: Vec<FlowSpec> = flows
            .iter()
            .map(|(route, cap)| {
                let route: Vec<usize> =
                    route.iter().map(|&r| r % caps.len()).collect();
                FlowSpec::new(route, *cap)
            })
            .collect();
        let rates = solve_maxmin(&table, &specs).unwrap();
        let mut used = vec![0.0; caps.len()];
        for (spec, &rate) in specs.iter().zip(&rates) {
            prop_assert!(rate >= 0.0);
            prop_assert!(rate <= spec.cap * (1.0 + 1e-9));
            for &r in &spec.route {
                used[r] += rate;
            }
        }
        for (r, &u) in used.iter().enumerate() {
            prop_assert!(u <= caps[r] * (1.0 + 1e-6), "resource {r}: {u} > {}", caps[r]);
        }
    }

    /// Max-min rates are Pareto-efficient for flows with non-empty
    /// routes: every such flow is limited by its cap or by a saturated
    /// resource.
    #[test]
    fn maxmin_is_pareto(
        caps in proptest::collection::vec(1.0f64..1e3, 1..5),
        flows in proptest::collection::vec(
            (proptest::collection::vec(0usize..5, 1..4), 0.1f64..1e3),
            1..8,
        ),
    ) {
        let mut table = ResourceTable::new();
        for (i, &c) in caps.iter().enumerate() {
            table.add(format!("r{i}"), c);
        }
        let specs: Vec<FlowSpec> = flows
            .iter()
            .map(|(route, cap)| {
                FlowSpec::new(route.iter().map(|&r| r % caps.len()).collect(), *cap)
            })
            .collect();
        let rates = solve_maxmin(&table, &specs).unwrap();
        let mut used = vec![0.0; caps.len()];
        for (spec, &rate) in specs.iter().zip(&rates) {
            for &r in &spec.route {
                used[r] += rate;
            }
        }
        let tol = 1e-6;
        for (spec, &rate) in specs.iter().zip(&rates) {
            let at_cap = rate >= spec.cap * (1.0 - tol);
            let blocked = spec
                .route
                .iter()
                .any(|&r| used[r] >= caps[r] * (1.0 - tol));
            prop_assert!(
                at_cap || blocked,
                "flow at rate {rate} could still grow (cap {})",
                spec.cap
            );
        }
    }

    /// FFT of random data matches the O(n^2) DFT and round-trips.
    #[test]
    fn fft_matches_dft_and_roundtrips(
        values in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..5),
        log_n in 1u32..7,
    ) {
        let n = 1usize << log_n;
        let input: Vec<Complex> = (0..n)
            .map(|i| {
                let (re, im) = values[i % values.len()];
                Complex::new(re + i as f64 * 0.01, im)
            })
            .collect();
        let mut data = input.clone();
        fft_inplace(&mut data, false);
        let reference = dft_naive(&input);
        for (a, b) in data.iter().zip(&reference) {
            prop_assert!((a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6);
        }
        ifft_normalized(&mut data);
        for (a, b) in data.iter().zip(&input) {
            prop_assert!((a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8);
        }
    }

    /// CG solves random SPD systems to the requested tolerance.
    #[test]
    fn cg_solves_random_spd(seed in 0u64..1000, n in 10usize..80) {
        let a = CsrMatrix::random_spd(n, 4, seed);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 19) as f64 - 9.0).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let sol = cg_solve(&a, &b, 1e-9, 20 * n);
        prop_assert!(sol.residual < 1e-8, "residual {}", sol.residual);
    }

    /// GUPS updates are an involution for any power-of-two table.
    #[test]
    fn gups_updates_are_involutive(log_size in 3u32..10, updates in 1usize..2000) {
        let n = 1usize << log_size;
        let mut table: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e37)).collect();
        let original = table.clone();
        run_updates(&mut table, updates, RaStream::new());
        run_updates(&mut table, updates, RaStream::new());
        prop_assert_eq!(table, original);
    }

    /// Memory layouts always normalize to unit total weight.
    #[test]
    fn layouts_normalize(
        weights in proptest::collection::vec((0usize..8, 0.01f64..100.0), 1..12),
    ) {
        let layout = MemoryLayout::new(
            weights.iter().map(|&(n, w)| (NumaNodeId::new(n), w)).collect(),
        ).unwrap();
        let total: f64 = layout.shares().map(|(_, f)| f).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Routing is symmetric in length and stays within the diameter on
    /// the ladder.
    #[test]
    fn ladder_routes_are_sane(a in 0usize..8, b in 0usize..8) {
        let machine = Machine::new(systems::longs());
        let topo = machine.topology();
        let (sa, sb) = (SocketId::new(a), SocketId::new(b));
        prop_assert_eq!(topo.hops(sa, sb), topo.hops(sb, sa));
        prop_assert!(topo.hops(sa, sb) <= topo.diameter());
        prop_assert_eq!(topo.route(sa, sb).expect("connected ladder").len(), topo.hops(sa, sb));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Engine liveness: any well-formed program mix (matched p2p,
    /// symmetric exchanges, collectives, compute) completes without
    /// deadlock, with monotone non-negative finish times.
    #[test]
    fn random_wellformed_programs_complete(
        ops in proptest::collection::vec((0usize..4, 0usize..8, 0usize..8, 1.0f64..1e6), 1..40),
        nranks in 2usize..9,
    ) {
        use corescope::affinity::Scheme;
        use corescope::smpi::{CommWorld, LockLayer, MpiImpl};
        use corescope::machine::{ComputePhase, TrafficProfile};

        let machine = Machine::new(systems::longs());
        let placements = Scheme::TwoMpiLocalAlloc.resolve(&machine, nranks).unwrap();
        let mut world = CommWorld::new(
            &machine,
            placements,
            MpiImpl::OpenMpi.profile(),
            LockLayer::USysV,
        );
        for (kind, a, b, bytes) in ops {
            let (a, b) = (a % nranks, b % nranks);
            match kind {
                0 if a != b => { world.p2p(a, b, bytes); }
                1 if a != b => { world.sendrecv(a, b, bytes); }
                2 => { world.allreduce(bytes); }
                _ => {
                    let phase = ComputePhase::new(
                        "work",
                        bytes * 10.0,
                        TrafficProfile::stream(bytes),
                    );
                    world.compute(a, phase);
                }
            }
        }
        let report = world.run().unwrap();
        prop_assert!(report.makespan.is_finite() && report.makespan >= 0.0);
        for &t in &report.rank_finish {
            prop_assert!(t <= report.makespan + 1e-12);
        }
    }
}

/// Builds the lockstep four-rank workload the fault proptests run: each
/// step is cross-socket traffic plus a reduction, so every rank re-syncs
/// and a fault anywhere shows up in the makespan.
fn lockstep_world(machine: &Machine) -> corescope::smpi::CommWorld<'_> {
    use corescope::affinity::Scheme;
    use corescope::smpi::{CommWorld, LockLayer, MpiImpl};
    let placements = Scheme::TwoMpiLocalAlloc.resolve(machine, 4).unwrap();
    let mut w = CommWorld::new(machine, placements, MpiImpl::OpenMpi.profile(), LockLayer::USysV);
    for _ in 0..8 {
        w.sendrecv(0, 2, 1e5);
        w.allreduce(1e4);
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid transient fault plan — brownouts with restores, at most
    /// one per resource, plus an optional stall/resume pair — completes
    /// without panicking and never makes the run *faster* than
    /// fault-free.
    #[test]
    fn transient_fault_plans_never_speed_up_or_panic(
        ctrl0 in proptest::option::of((0.05f64..0.7, 0.05f64..0.25, 0.05f64..0.95)),
        ctrl1 in proptest::option::of((0.05f64..0.7, 0.05f64..0.25, 0.05f64..0.95)),
        link0 in proptest::option::of((0.05f64..0.7, 0.05f64..0.25, 0.05f64..0.95)),
        link1 in proptest::option::of((0.05f64..0.7, 0.05f64..0.25, 0.05f64..0.95)),
        probe in proptest::option::of((0.05f64..0.7, 0.05f64..0.25, 0.05f64..0.95)),
        stall in proptest::option::of((0.05f64..0.6, 0.05f64..0.25, 0usize..4)),
    ) {
        use corescope::machine::{FaultPlan, LinkId, RankId};

        let machine = Machine::new(systems::dmz());
        let healthy = lockstep_world(&machine).run().unwrap().makespan;

        let mut plan = FaultPlan::new();
        if let Some((t, d, f)) = ctrl0 {
            plan = plan
                .controller_throttle(t * healthy, SocketId::new(0), f)
                .controller_restore((t + d) * healthy, SocketId::new(0));
        }
        if let Some((t, d, f)) = ctrl1 {
            plan = plan
                .controller_throttle(t * healthy, SocketId::new(1), f)
                .controller_restore((t + d) * healthy, SocketId::new(1));
        }
        if let Some((t, d, f)) = link0 {
            plan = plan
                .link_degrade(t * healthy, LinkId::new(0), f)
                .link_restore((t + d) * healthy, LinkId::new(0));
        }
        if let Some((t, d, f)) = link1 {
            plan = plan
                .link_degrade(t * healthy, LinkId::new(1), f)
                .link_restore((t + d) * healthy, LinkId::new(1));
        }
        if let Some((t, d, f)) = probe {
            plan = plan
                .probe_brownout(t * healthy, f)
                .probe_restore((t + d) * healthy);
        }
        if let Some((t, d, r)) = stall {
            plan = plan
                .rank_stall(t * healthy, RankId::new(r))
                .rank_resume((t + d) * healthy, RankId::new(r));
        }

        let report = lockstep_world(&machine).run_with_faults(&plan).unwrap();
        prop_assert!(
            report.makespan >= healthy * (1.0 - 1e-9),
            "faults must not speed the run up: {} < {}",
            report.makespan,
            healthy
        );
    }

    /// A rank kill under an armed checkpoint policy always completes by
    /// rollback-and-replay, and the recovered run never beats fault-free.
    #[test]
    fn kill_with_checkpoints_completes_and_never_speeds_up(
        kill_frac in 0.05f64..0.95,
        interval_frac in 0.05f64..0.6,
        restart_frac in 0.0f64..0.1,
        rank in 0usize..4,
    ) {
        use corescope::machine::{CheckpointPolicy, FaultPlan, RankId};

        let machine = Machine::new(systems::dmz());
        let healthy = lockstep_world(&machine).run().unwrap().makespan;
        let policy = CheckpointPolicy::new(interval_frac * healthy, 1e6)
            .with_restart_delay(restart_frac * healthy);
        let plan = FaultPlan::new().rank_kill(kill_frac * healthy, RankId::new(rank));
        let report = lockstep_world(&machine)
            .with_recovery(policy)
            .run_with_faults(&plan)
            .unwrap();
        prop_assert!(
            report.makespan >= healthy * (1.0 - 1e-9),
            "recovery must not beat fault-free: {} < {}",
            report.makespan,
            healthy
        );
    }
}
