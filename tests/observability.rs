//! Cross-crate observability tests: engine tracing must not perturb
//! results, trace exports must be well-formed, and the time-resolved
//! bottleneck attribution must reproduce the paper's narrative end to
//! end through the public facade.

use corescope::harness::{
    chrome_trace_json, representative_trace, utilization_csv, Artifact, Cell, Fidelity,
};
use corescope::kernels::stream::{append_star, StreamParams};
use corescope::machine::{systems, FaultPlan, Machine, TraceConfig};
use corescope::smpi::{CommWorld, LockLayer, MpiImpl};
use corescope_bench::validate_chrome_trace;

fn stream_world(machine: &Machine, n: usize) -> CommWorld<'_> {
    let placements = corescope::affinity::Scheme::TwoMpiLocalAlloc.resolve(machine, n).unwrap();
    let mut world = CommWorld::new(machine, placements, MpiImpl::Lam.profile(), LockLayer::USysV);
    append_star(&mut world, &StreamParams { sweeps: 3, ..StreamParams::default() });
    world
}

#[test]
fn tracing_is_invisible_to_the_physics() {
    let m = Machine::new(systems::longs());
    let w = stream_world(&m, 16);
    let plain = w.run().unwrap();
    let traced = w.observe(&FaultPlan::new(), TraceConfig::on());
    let report = traced.result.unwrap();
    assert_eq!(plain, report, "tracing must not change rates, makespan, or metrics");
    let trace = traced.trace.expect("tracing was on");
    assert!(!trace.intervals.is_empty());
    assert!((trace.end_time - report.makespan).abs() <= report.makespan * 1e-12);
}

#[test]
fn longs_stream_trace_blames_the_probe_fabric() {
    let m = Machine::new(systems::longs());
    let observed = stream_world(&m, 16).observe(&FaultPlan::new(), TraceConfig::on());
    observed.result.unwrap();
    let ranking = observed.trace.unwrap().bottleneck_ranking();
    assert_eq!(
        ranking[0].label, "coherence-probe",
        "all-core STREAM on Longs is probe-limited (paper Sec. 3.1): {ranking:?}"
    );
}

#[test]
fn representative_traces_export_valid_chrome_json_and_csv() {
    for artifact in [Artifact::F2, Artifact::F14, Artifact::T2] {
        let bundle = representative_trace(artifact, Fidelity::Quick)
            .unwrap()
            .unwrap_or_else(|| panic!("{} should have a traced representative", artifact.id()));
        let json = chrome_trace_json(&bundle.label, &bundle.trace);
        validate_chrome_trace(&json)
            .unwrap_or_else(|e| panic!("{} trace invalid: {e}", artifact.id()));
        let csv = utilization_csv(&bundle.trace);
        let mut lines = csv.lines();
        let header_cols = lines.next().unwrap().split(',').count();
        assert!(header_cols >= 3, "t0,t1 plus at least one resource");
        for line in lines {
            assert_eq!(line.split(',').count(), header_cols, "ragged CSV for {}", artifact.id());
        }
    }
}

#[test]
fn x4_names_the_papers_bottlenecks() {
    let tables = Artifact::X4.run(Fidelity::Quick).unwrap();
    let top = |row: &str| match tables[0]
        .rows()
        .find(|(label, _)| *label == row)
        .map(|(_, cells)| cells[0].clone())
    {
        Some(Cell::Text(s)) => s,
        other => panic!("row '{row}': {other:?}"),
    };
    assert_eq!(top("STREAM triad x8, Longs"), "coherence-probe");
    assert!(top("STREAM triad x4, DMZ").starts_with("mc:"));
    assert_eq!(top("PingPong 8 B, Longs"), "mpi-overhead");
}
