//! End-to-end checks of the paper's headline claims, each exercised
//! through the full stack (harness -> apps/kernels -> smpi -> affinity ->
//! machine engine).

use corescope::harness::{Artifact, Fidelity};

/// Abstract: "an appropriate selection of MPI task and memory placement
/// schemes can result in over 25% performance improvement for key
/// scientific calculations."
#[test]
fn placement_is_worth_over_25_percent_on_key_kernels() {
    let tables = Artifact::T2.run(Fidelity::Quick).expect("table 2 runs");
    let t = &tables[0];
    for row in ["8 CG", "8 FT"] {
        let best = ["Default", "One MPI + Local Alloc", "Two MPI + Local Alloc"]
            .iter()
            .filter_map(|c| t.value(row, c))
            .fold(f64::INFINITY, f64::min);
        let worst = ["One MPI + Membind", "Two MPI + Membind", "Interleave"]
            .iter()
            .filter_map(|c| t.value(row, c))
            .fold(0.0_f64, f64::max);
        assert!(
            worst > 1.25 * best,
            "{row}: worst placement {worst:.2}s should exceed best {best:.2}s by >25%"
        );
    }
}

/// Section 1: "the memory and task placement configurations that result
/// in an optimal performance for scientific kernels provide 10-20%
/// performance improvement for full application runs."
#[test]
fn applications_see_double_digit_placement_effects() {
    let tables = Artifact::T13.run(Fidelity::Quick).expect("table 13 runs");
    let longs = &tables[0];
    let best = longs.value("8 baroclinic", "One MPI + Local Alloc").expect("localalloc cell");
    let worst = longs.value("8 baroclinic", "One MPI + Membind").expect("membind cell");
    assert!(worst > 1.10 * best, "POP baroclinic: membind {worst:.1} vs localalloc {best:.1}");
}

/// Summary: "dual core processors are generally worth the investment in
/// 1, 2, and 4 socket configurations" — compute-heavy workloads keep
/// scaling on DMZ.
#[test]
fn dual_cores_pay_off_on_small_nodes() {
    let tables = Artifact::T8.run(Fidelity::Quick).expect("table 8 runs");
    let t = &tables[0];
    for bench in ["dhfr", "gb_mb", "JAC"] {
        let s4 = t.value("4 DMZ", bench).expect("4-core cell");
        assert!(s4 > 3.0, "{bench} 4-core DMZ speedup {s4:.2} (paper: 3.35-3.94)");
    }
}

/// Summary: "current 8 socket configurations should be reserved to those
/// application classes which exhibit extremely high cache locality as
/// exemplified by DGEMM."
#[test]
fn eight_socket_node_rewards_cache_locality() {
    let tables = Artifact::F9.run(Fidelity::Quick).expect("figure 9 runs");
    let t = &tables[0];
    // DGEMM: star == single (second core doubles per-socket throughput).
    let dgemm_ratio =
        t.value("usysv", "Single DGEMM").unwrap() / t.value("usysv", "Star DGEMM").unwrap();
    assert!(dgemm_ratio < 1.1, "DGEMM single:star {dgemm_ratio:.2} should be ~1 (cache friendly)");
    // STREAM: single:star per-core ratio is > 2 (figure 10).
    let stream = &Artifact::F10.run(Fidelity::Quick).expect("figure 10 runs")[0];
    let stream_ratio = stream.value("default", "Single:Star").unwrap();
    assert!(
        stream_ratio > 2.0,
        "STREAM single:star {stream_ratio:.2} should exceed 2 on the ladder"
    );
}

/// Section 3.4: three classes of communication channel, with a 10-13%
/// bandwidth benefit inside a multi-core processor.
#[test]
fn intra_socket_communication_is_fastest() {
    let tables = Artifact::F16.run(Fidelity::Quick).expect("figure 16 runs");
    let t = &tables[0];
    let bound = t.value("1048576", "2 procs, bound 0").unwrap();
    let unbound = t.value("1048576", "2 procs, unbound").unwrap();
    let gain = bound / unbound;
    assert!(gain > 1.05 && gain < 1.20, "intra-socket gain {gain:.3}");
}

/// Figure 13: SysV semaphore latency dominates every other communication
/// effect for small messages.
#[test]
fn sysv_semaphores_dominate_small_message_latency() {
    let tables = Artifact::F13.run(Fidelity::Quick).expect("figure 13 runs");
    let t = &tables[0];
    let sysv = t.value("sysv", "PingPong").unwrap();
    let usysv = t.value("usysv", "PingPong").unwrap();
    assert!(sysv > 2.0 * usysv, "sysv {sysv:.2}us vs usysv {usysv:.2}us");
}

/// Every artifact regenerates without error at reduced fidelity (the full
/// sweep is exercised by the repro binary / EXPERIMENTS.md).
#[test]
fn all_artifacts_regenerate() {
    for artifact in Artifact::all() {
        let tables = artifact
            .run(Fidelity::Quick)
            .unwrap_or_else(|e| panic!("{} failed: {e}", artifact.id()));
        assert!(!tables.is_empty(), "{} produced no tables", artifact.id());
        for table in &tables {
            assert!(table.num_rows() > 0, "{} has an empty table", artifact.id());
        }
    }
}
