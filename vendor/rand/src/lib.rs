//! In-tree stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the *tiny* slice of the rand 0.8 API that corescope
//! actually uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over half-open integer/float ranges. The generator
//! is xoshiro256++ seeded via splitmix64 — the same construction the real
//! `SmallRng` uses on 64-bit platforms — so sequences are deterministic,
//! fast, and of more than adequate quality for simulation workloads.
//!
//! Not implemented: distributions, `thread_rng`, `from_entropy`, weighted
//! sampling. Adding a call site that needs those should extend this crate
//! rather than reintroduce the registry dependency.

use std::ops::{Range, RangeInclusive};

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching the real crate.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<T: RngCore> Rng for T {}

/// Core randomness source (subset of `rand::RngCore`).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the span sizes simulations use.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample_from(rng)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + (self.end as f64 - self.start as f64) * unit;
                // Guard against rounding up to the excluded endpoint.
                v.min(self.end as f64 - (self.end as f64 - self.start as f64) * 1e-17) as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the real `SmallRng`'s 64-bit backend.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds_and_spread() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut lo_half = 0usize;
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&v));
            if v < 0.0 {
                lo_half += 1;
            }
        }
        // Crude uniformity check: both halves are hit frequently.
        assert!(lo_half > 4000 && lo_half < 6000, "lo_half = {lo_half}");
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn inclusive_range_reaches_endpoint() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut saw_end = false;
        for _ in 0..1000 {
            if rng.gen_range(0u32..=3) == 3 {
                saw_end = true;
            }
        }
        assert!(saw_end);
    }
}
