//! In-tree stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Offline builds cannot fetch the real crate, so this implements the
//! small surface the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark runs `sample_size` timed iterations after a
//! short warm-up and prints min/mean/max wall times — no statistics,
//! plots, or baselines.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 20 }
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::with_capacity(self.sample_size) };
        // One untimed warm-up pass populates caches and lazy statics.
        f(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let times = &bencher.samples;
        if times.is_empty() {
            println!("{}/{id}: no samples recorded", self.name);
            return self;
        }
        let min = times.iter().min().copied().unwrap_or_default();
        let max = times.iter().max().copied().unwrap_or_default();
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!("{}/{id}: mean {mean:?} (min {min:?}, max {max:?}, n={})", self.name, times.len());
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure to time the hot section.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one call of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        drop(std_black_box(out));
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_counts_samples() {
        benches();
    }
}
