//! In-tree stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the proptest 1.x API the workspace's property tests use:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`], range and
//! tuple strategies, and [`collection::vec`].
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   printed; minimisation is manual.
//! * **Deterministic seeding.** Each test function derives its RNG stream
//!   from its own name, so runs are reproducible and order-independent.
//!   Set `PROPTEST_SEED=<u64>` to perturb every stream at once.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod strategy {
    //! The [`Strategy`] trait and primitive strategy implementations.

    use super::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Value`.
    ///
    /// Unlike the real crate this is sampling-only: strategies draw from a
    /// [`TestRng`] and carry no shrinking machinery.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A number-of-elements specification (`usize` or `lo..hi`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi_exclusive: r.end }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! Strategies for `Option<T>`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding `None` a quarter of the time and `Some(inner)`
    /// otherwise.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps `inner` in an [`OptionStrategy`].
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.rng.gen_range(0u8..4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod test_runner {
    //! Configuration, RNG, and error plumbing used by [`crate::proptest!`].

    use std::fmt;

    /// Per-test configuration (`cases` is the only knob implemented).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic per-test random stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        pub(crate) rng: rand::rngs::SmallRng,
    }

    impl TestRng {
        /// Derives a stream from a test name (FNV-1a) plus the optional
        /// `PROPTEST_SEED` environment perturbation.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            if let Some(seed) =
                std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse::<u64>().ok())
            {
                h ^= seed.rotate_left(17);
            }
            super::new_rng(h)
        }
    }

    /// A failed or rejected test case.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// `prop_assert!` failure.
        Fail(String),
        /// `prop_assume!` rejection (the case is skipped, not failed).
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// An assumption rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }
}

fn new_rng(seed: u64) -> test_runner::TestRng {
    test_runner::TestRng { rng: SmallRng::seed_from_u64(seed) }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property-test functions.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     // In real tests, add #[test] here so the harness picks it up.
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # fn main() { addition_commutes(); }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        );
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($parm:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    // Keep a printable copy so failures show their inputs
                    // (no shrinking in this stand-in).
                    let inputs = ($($crate::strategy::Strategy::sample(&($strat), &mut rng),)+);
                    let ($($parm,)+) = inputs.clone();
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                            "proptest {} failed at case {}/{}: {}\ninputs: {:?}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            msg,
                            inputs,
                        ),
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)+);
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: `{:?}` == `{:?}`", lhs, rhs);
    }};
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_vectors_sample_in_bounds(
            x in 1usize..10,
            v in crate::collection::vec((0.0f64..1.0, 0u32..4), 1..5),
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 5);
            for (f, u) in v {
                prop_assert!((0.0..1.0).contains(&f));
                prop_assert!(u < 4);
            }
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn macro_declared_tests_run() {
        ranges_and_vectors_sample_in_bounds();
        assume_skips_cases();
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
