//! Quickstart: build the three paper systems, run STREAM triad on each,
//! and show the multi-core memory-bandwidth story in one screen.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use corescope::affinity::Scheme;
use corescope::kernels::stream::{append_star, StreamParams};
use corescope::machine::{systems, Machine};
use corescope::smpi::{CommWorld, LockLayer, MpiImpl};

fn triad_bandwidth(
    machine: &Machine,
    scheme: Scheme,
    nranks: usize,
) -> Result<f64, corescope::machine::Error> {
    let placements = scheme.resolve(machine, nranks)?;
    let mut world = CommWorld::new(machine, placements, MpiImpl::Lam.profile(), LockLayer::USysV);
    let params = StreamParams { sweeps: 3, ..StreamParams::default() };
    append_star(&mut world, &params);
    let report = world.run()?;
    Ok(nranks as f64 * params.bytes_per_rank() / report.makespan)
}

fn main() -> Result<(), corescope::machine::Error> {
    println!("corescope quickstart: STREAM triad across the paper's systems\n");
    for spec in systems::all() {
        let machine = Machine::new(spec);
        println!("{machine}");
        let one = triad_bandwidth(&machine, Scheme::OneMpiLocalAlloc, 1)?;
        println!("  1 core                : {:6.2} GB/s", one / 1e9);
        let sockets = machine.num_sockets();
        let spread = triad_bandwidth(&machine, Scheme::OneMpiLocalAlloc, sockets)?;
        println!(
            "  {sockets:2} cores (1/socket)   : {:6.2} GB/s  ({:.2}x)",
            spread / 1e9,
            spread / one
        );
        let all = machine.num_cores();
        if all > sockets {
            let packed = triad_bandwidth(&machine, Scheme::TwoMpiLocalAlloc, all)?;
            println!(
                "  {all:2} cores (2/socket)   : {:6.2} GB/s  ({:.2}x)",
                packed / 1e9,
                packed / one
            );
        }
        println!();
    }
    println!(
        "The shape to notice (paper Figs 2/3): bandwidth scales with sockets,\n\
         second cores per socket add little — and on the 8-socket ladder the\n\
         coherence fabric caps what sixteen streaming cores can pull."
    );
    Ok(())
}
