//! MPI tuning study: what the lock sub-layer and process binding are
//! worth inside one multi-core node (the paper's Sections 3.3-3.4).
//!
//! ```text
//! cargo run --release --example mpi_tuning
//! ```

use corescope::affinity::Scheme;
use corescope::machine::{systems, Machine};
use corescope::smpi::imb::{pingpong_bandwidth, pingpong_time};
use corescope::smpi::{LockLayer, MpiImpl};

fn main() -> Result<(), corescope::machine::Error> {
    let dmz = Machine::new(systems::dmz());

    println!("1) Implementation shoot-out (IMB PingPong, DMZ, unbound):\n");
    let placements = Scheme::Default.resolve(&dmz, 2)?;
    println!("   {:>10}  {:>9}  {:>9}  {:>9}", "bytes", "MPICH2", "LAM", "OpenMPI");
    for bytes in [8.0, 1024.0, 16.0 * 1024.0, 1024.0 * 1024.0] {
        let mut row = format!("   {bytes:>10.0}");
        for imp in MpiImpl::all() {
            let profile = imp.profile();
            let bw = pingpong_bandwidth(&dmz, &placements, &profile, LockLayer::USysV, bytes, 20)?;
            row.push_str(&format!("  {:>7.1} MB/s", bw / 1e6).replace(" MB/s", ""));
        }
        println!("{row}   (MB/s)");
    }

    println!("\n2) Lock sub-layer (LAM, 8-byte latency, Longs 16 ranks):\n");
    let longs = Machine::new(systems::longs());
    let p16 = Scheme::TwoMpiLocalAlloc.resolve(&longs, 16)?;
    let profile = MpiImpl::Lam.profile();
    for lock in [LockLayer::SysV, LockLayer::USysV] {
        let t = pingpong_time(&longs, &p16, &profile, lock, 8.0, 50)?;
        println!("   {lock:<6} {:6.2} us", t * 1e6);
    }

    println!("\n3) Binding: keep chatty ranks inside one socket (OpenMPI, 1 MB):\n");
    let profile = MpiImpl::OpenMpi.profile();
    let near = Scheme::TwoMpiLocalAlloc.resolve(&dmz, 2)?; // same socket
    let far = Scheme::OneMpiLocalAlloc.resolve(&dmz, 2)?; // across sockets
    let bw_near = pingpong_bandwidth(&dmz, &near, &profile, LockLayer::USysV, 1e6, 10)?;
    let bw_far = pingpong_bandwidth(&dmz, &far, &profile, LockLayer::USysV, 1e6, 10)?;
    println!("   same socket   : {:6.1} MB/s", bw_near / 1e6);
    println!("   across sockets: {:6.1} MB/s", bw_far / 1e6);
    println!(
        "   -> {:.0}% benefit from confining communication within a\n\
         multi-core processor (paper: 'approximately 10 to 13%').",
        (bw_near / bw_far - 1.0) * 100.0
    );
    Ok(())
}
