//! Ocean-model scaling study: POP's two phases across core counts and
//! systems (the paper's Table 12), plus a demonstration of the *real*
//! barotropic solver substrate on a small grid.
//!
//! ```text
//! cargo run --release --example ocean_scaling
//! ```

use corescope::affinity::Scheme;
use corescope::apps::ocean::{grid, PopModel};
use corescope::machine::{systems, Machine};
use corescope::smpi::{CommWorld, LockLayer, MpiImpl};

fn main() -> Result<(), corescope::machine::Error> {
    // First, the real numerics: solve a barotropic elliptic system on a
    // 32x24 patch and report convergence — the same CG solver family the
    // workload model's phase structure mirrors.
    let (nx, ny) = (32, 24);
    let b: Vec<f64> = (0..nx * ny).map(|k| ((k % 7) as f64 - 3.0) * 0.1).collect();
    let sol = grid::barotropic_solve(nx, ny, &b, 1e-10);
    println!(
        "real barotropic CG: {}x{} grid solved in {} iterations (residual {:.2e})\n",
        nx, ny, sol.iterations, sol.residual
    );

    // Then the paper-scale simulation: POP x1 (320x384x40, 50 steps).
    let mut pop = PopModel::x1();
    pop.steps = 10; // scaling ratios are step-count independent
    for spec in systems::all() {
        let machine = Machine::new(spec);
        println!("{machine}");
        let mut t1 = (0.0, 0.0);
        for nranks in [1usize, 2, 4, 8, 16] {
            if nranks > machine.num_cores() {
                continue;
            }
            let run_phase = |barotropic: bool| -> Result<f64, corescope::machine::Error> {
                let placements = Scheme::Default.resolve(&machine, nranks)?;
                let mut world = CommWorld::new(
                    &machine,
                    placements,
                    MpiImpl::Mpich2.profile(),
                    LockLayer::USysV,
                );
                if barotropic {
                    pop.append_barotropic(&mut world, pop.steps);
                } else {
                    pop.append_baroclinic(&mut world, pop.steps);
                }
                Ok(world.run()?.makespan)
            };
            let clinic = run_phase(false)?;
            let tropic = run_phase(true)?;
            if nranks == 1 {
                t1 = (clinic, tropic);
                println!(
                    "  {nranks:2} cores: baroclinic {clinic:7.1} s, barotropic {tropic:6.2} s"
                );
            } else {
                println!(
                    "  {nranks:2} cores: baroclinic {clinic:7.1} s ({:4.1}x), barotropic {tropic:6.2} s ({:4.1}x)",
                    t1.0 / clinic,
                    t1.1 / tropic
                );
            }
        }
        println!();
    }
    println!("Both phases scale nearly linearly on these nodes (paper Table 12).");
    Ok(())
}
