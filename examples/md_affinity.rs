//! Molecular-dynamics affinity study: the paper's Section 4.1 experiment
//! in miniature. Runs the AMBER JAC benchmark (23 558 atoms, PME) on the
//! 8-socket Longs system under all six `numactl` placement schemes and
//! reports which one a production run should use.
//!
//! ```text
//! cargo run --release --example md_affinity
//! ```

use corescope::affinity::Scheme;
use corescope::apps::md::AmberBenchmark;
use corescope::machine::{systems, Machine};
use corescope::smpi::{CommWorld, LockLayer, MpiImpl};

fn main() -> Result<(), corescope::machine::Error> {
    let machine = Machine::new(systems::longs());
    let mut jac = AmberBenchmark::jac();
    jac.steps = 20; // a short trajectory is enough to rank the schemes

    println!("AMBER JAC ({} atoms, PME) on {machine}\n", jac.atoms);
    for nranks in [2usize, 8, 16] {
        println!("{nranks} MPI tasks:");
        let mut results: Vec<(&str, f64)> = Vec::new();
        for scheme in Scheme::all() {
            let Ok(placements) = scheme.resolve(&machine, nranks) else {
                println!("  {:<24} —", scheme.name());
                continue;
            };
            let mut world =
                CommWorld::new(&machine, placements, MpiImpl::Mpich2.profile(), LockLayer::USysV);
            jac.append_run(&mut world);
            let t = world.run()?.makespan;
            println!("  {:<24} {t:7.2} s", scheme.name());
            results.push((scheme.name(), t));
        }
        if let Some((best, t_best)) = results.iter().min_by(|a, b| a.1.total_cmp(&b.1)) {
            let (worst, t_worst) =
                results.iter().max_by(|a, b| a.1.total_cmp(&b.1)).expect("results nonempty");
            println!(
                "  -> best: {best} ({t_best:.2} s); worst: {worst} is {:.0}% slower\n",
                (t_worst / t_best - 1.0) * 100.0
            );
        }
    }
    println!(
        "Paper finding reproduced: task and memory placement is worth\n\
         double-digit percentages on the 8-socket system, localalloc with\n\
         explicit binding wins, and membind/interleave are the traps."
    );
    Ok(())
}
