//! # corescope-apps
//!
//! The full applications of the paper's Section 4:
//!
//! * [`md`] — molecular dynamics: a real particle engine (Lennard-Jones
//!   with cell lists, harmonic chains, a simplified EAM metal potential,
//!   Ewald electrostatics, Generalized Born solvation) plus workload
//!   models for the five AMBER benchmarks of Table 6 and the three
//!   LAMMPS benchmarks (LJ / chain / EAM).
//! * [`ocean`] — a POP-like ocean code: a real 2-D elliptic-solver
//!   substrate (9-point stencils, conjugate-gradient barotropic solver on
//!   a 5-point Laplacian) plus the x1-configuration workload model with
//!   its baroclinic and barotropic phases.
//! * [`xs`] — an XSBench-style cross-section lookup proxy: the
//!   irregular-memory workload family. The kernel crate provides the
//!   real unionized-grid lookup; this module decides where the
//!   replicated table's pages land (first-touch with nearest-node
//!   spill, interleave, membind) and exposes the modeled lookup latency
//!   whose NUMA crossover the x10 artifact certifies.
//!
//! As in [`corescope_kernels`], every application couples real numerics
//! (unit- and property-tested) with a simulator model whose
//! flop/byte/message counts follow the real code's complexity.

// Fixed-size 3-vector math reads most clearly with `for a in 0..3`
// component loops; the iterator forms clippy suggests obscure the physics.
#![allow(clippy::needless_range_loop)]

pub mod md;
pub mod ocean;
pub mod xs;
