//! Generalized Born implicit solvation (the "GB" method of the AMBER
//! gb_cox2 / gb_mb benchmarks): the Still et al. pairwise energy with
//! fixed effective Born radii.

use crate::md::system::Vec3;

/// GB model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbParams {
    /// Solvent dielectric constant (78.5 for water).
    pub epsilon_solvent: f64,
    /// Solute (interior) dielectric constant.
    pub epsilon_solute: f64,
}

impl Default for GbParams {
    fn default() -> Self {
        Self { epsilon_solvent: 78.5, epsilon_solute: 1.0 }
    }
}

/// The Still et al. effective interaction distance
/// `f_GB = sqrt(r² + a_i a_j exp(-r²/(4 a_i a_j)))`.
pub fn f_gb(r2: f64, ai: f64, aj: f64) -> f64 {
    let aa = ai * aj;
    (r2 + aa * (-r2 / (4.0 * aa)).exp()).sqrt()
}

/// GB polarization (solvation) energy for charges with given effective
/// Born radii. O(N²), as in the real method.
///
/// # Panics
///
/// Panics if the input lengths differ.
pub fn gb_energy(
    charges: &[f64],
    born_radii: &[f64],
    positions: &[Vec3],
    params: &GbParams,
) -> f64 {
    assert_eq!(charges.len(), born_radii.len());
    assert_eq!(charges.len(), positions.len());
    let n = charges.len();
    let prefactor = -0.5 * (1.0 / params.epsilon_solute - 1.0 / params.epsilon_solvent);
    let mut energy = 0.0;
    for i in 0..n {
        for j in 0..n {
            let mut r2 = 0.0;
            for a in 0..3 {
                let d = positions[j][a] - positions[i][a];
                r2 += d * d;
            }
            energy += charges[i] * charges[j] / f_gb(r2, born_radii[i], born_radii[j]);
        }
    }
    prefactor * energy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f_gb_limits() {
        // At r = 0, f_GB = sqrt(a_i a_j) (the self/overlap limit).
        assert!((f_gb(0.0, 2.0, 8.0) - 4.0).abs() < 1e-12);
        // At large r, f_GB -> r.
        let r2 = 1e6;
        assert!((f_gb(r2, 2.0, 2.0) - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn single_ion_born_energy() {
        // One charge q with Born radius a: E = -0.5 (1/eps_in - 1/eps_out) q²/a.
        let params = GbParams::default();
        let e = gb_energy(&[1.0], &[2.0], &[[0.0; 3]], &params);
        let expected = -0.5 * (1.0 - 1.0 / 78.5) / 2.0;
        assert!((e - expected).abs() < 1e-12, "{e} vs {expected}");
    }

    #[test]
    fn solvation_stabilizes_charges() {
        // Polarization energy of any charged system is negative.
        let params = GbParams::default();
        let e = gb_energy(
            &[1.0, -1.0, 0.5],
            &[1.5, 2.0, 1.8],
            &[[0.0; 3], [3.0, 0.0, 0.0], [0.0, 4.0, 0.0]],
            &params,
        );
        assert!(e < 0.0, "E = {e}");
    }

    #[test]
    fn energy_scales_with_dielectric_contrast() {
        let weak = GbParams { epsilon_solvent: 2.0, epsilon_solute: 1.0 };
        let strong = GbParams::default();
        let args: (&[f64], &[f64], &[Vec3]) =
            (&[1.0, -1.0], &[2.0, 2.0], &[[0.0; 3], [3.0, 0.0, 0.0]]);
        let e_weak = gb_energy(args.0, args.1, args.2, &weak);
        let e_strong = gb_energy(args.0, args.1, args.2, &strong);
        assert!(e_strong < e_weak, "stronger solvent stabilizes more");
    }
}
