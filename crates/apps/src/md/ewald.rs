//! Ewald summation for periodic electrostatics — the physics behind
//! AMBER's Particle Mesh Ewald (PME) method. The real implementation is
//! the classical (non-mesh) Ewald sum, exact for small systems; the PME
//! *workload model* in [`crate::md::amber`] carries the mesh/FFT phase
//! structure at benchmark scale.

use crate::md::system::Vec3;
use std::f64::consts::PI;

/// Complementary error function (Abramowitz & Stegun 7.1.26, |err| <
/// 1.5e-7 — ample for validation tolerances here).
pub fn erfc(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x_abs);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x_abs * x_abs).exp();
    if sign > 0.0 {
        1.0 - erf
    } else {
        1.0 + erf
    }
}

/// Ewald parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EwaldParams {
    /// Gaussian splitting parameter.
    pub alpha: f64,
    /// Real-space cutoff.
    pub r_cut: f64,
    /// Reciprocal-space cutoff (max |k-index| per dimension).
    pub k_max: i32,
}

impl Default for EwaldParams {
    fn default() -> Self {
        Self { alpha: 0.35, r_cut: 9.0, k_max: 8 }
    }
}

/// Total Coulomb energy of point charges in a cubic periodic box of edge
/// `box_len`, in Gaussian units (`q_i q_j / r`).
///
/// # Panics
///
/// Panics if `charges` and `positions` lengths differ.
pub fn ewald_energy(
    charges: &[f64],
    positions: &[Vec3],
    box_len: f64,
    params: &EwaldParams,
) -> f64 {
    assert_eq!(charges.len(), positions.len());
    let n = charges.len();
    let alpha = params.alpha;

    // Real-space sum over minimum images.
    let mut e_real = 0.0;
    for i in 0..n {
        for j in i + 1..n {
            let mut r2 = 0.0;
            for a in 0..3 {
                let mut d = positions[j][a] - positions[i][a];
                d -= box_len * (d / box_len).round();
                r2 += d * d;
            }
            let r = r2.sqrt();
            if r < params.r_cut && r > 1e-12 {
                e_real += charges[i] * charges[j] * erfc(alpha * r) / r;
            }
        }
    }

    // Reciprocal-space sum.
    let volume = box_len.powi(3);
    let mut e_recip = 0.0;
    let km = params.k_max;
    for kx in -km..=km {
        for ky in -km..=km {
            for kz in -km..=km {
                if kx == 0 && ky == 0 && kz == 0 {
                    continue;
                }
                let k = [
                    2.0 * PI * kx as f64 / box_len,
                    2.0 * PI * ky as f64 / box_len,
                    2.0 * PI * kz as f64 / box_len,
                ];
                let k2 = k[0] * k[0] + k[1] * k[1] + k[2] * k[2];
                let (mut s_re, mut s_im) = (0.0, 0.0);
                for i in 0..n {
                    let phase =
                        k[0] * positions[i][0] + k[1] * positions[i][1] + k[2] * positions[i][2];
                    s_re += charges[i] * phase.cos();
                    s_im += charges[i] * phase.sin();
                }
                let structure2 = s_re * s_re + s_im * s_im;
                e_recip += (-k2 / (4.0 * alpha * alpha)).exp() / k2 * structure2;
            }
        }
    }
    e_recip *= 2.0 * PI / volume;

    // Self-interaction correction.
    let e_self: f64 = -alpha / PI.sqrt() * charges.iter().map(|q| q * q).sum::<f64>();

    e_real + e_recip + e_self
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!(erfc(5.0) < 2e-11);
    }

    #[test]
    fn isolated_dipole_energy_approaches_coulomb() {
        // Two opposite charges 1 apart in a huge box: E -> -1/r = -1.
        let box_len = 40.0;
        let charges = [1.0, -1.0];
        let positions = [[20.0, 20.0, 20.0], [21.0, 20.0, 20.0]];
        let params = EwaldParams { alpha: 0.35, r_cut: 15.0, k_max: 10 };
        let e = ewald_energy(&charges, &positions, box_len, &params);
        assert!((e + 1.0).abs() < 5e-3, "E = {e}, expected ~-1");
    }

    #[test]
    fn energy_is_independent_of_alpha() {
        // The splitting parameter must not change the physics.
        let box_len = 12.0;
        let charges = [1.0, -1.0, 1.0, -1.0];
        let positions = [[1.0, 1.0, 1.0], [4.0, 2.0, 1.5], [7.0, 8.0, 3.0], [2.0, 9.0, 10.0]];
        let e1 = ewald_energy(
            &charges,
            &positions,
            box_len,
            &EwaldParams { alpha: 0.4, r_cut: 6.0, k_max: 12 },
        );
        let e2 = ewald_energy(
            &charges,
            &positions,
            box_len,
            &EwaldParams { alpha: 0.55, r_cut: 6.0, k_max: 14 },
        );
        assert!((e1 - e2).abs() < 2e-3, "{e1} vs {e2}");
    }

    #[test]
    fn like_charges_repel_energy_positive() {
        let box_len = 30.0;
        let charges = [1.0, 1.0];
        let positions = [[15.0, 15.0, 15.0], [16.0, 15.0, 15.0]];
        // Note: a non-neutral cell is unphysical in strict Ewald, but the
        // pair term still dominates at this box size.
        let params = EwaldParams { alpha: 0.35, r_cut: 12.0, k_max: 8 };
        let e = ewald_energy(&charges, &positions, box_len, &params);
        assert!(e > 0.5, "E = {e}");
    }
}
