//! A simplified embedded-atom-method (EAM) metal potential (the LAMMPS
//! "EAM" benchmark's physics): pair repulsion plus a density-dependent
//! embedding term `F(rho) = -sqrt(rho)`.

use crate::md::system::ParticleSystem;

/// Simplified EAM parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EamParams {
    /// Pair repulsion strength.
    pub a: f64,
    /// Electron-density prefactor.
    pub b: f64,
    /// Interaction cutoff.
    pub cutoff: f64,
}

impl Default for EamParams {
    fn default() -> Self {
        Self { a: 1.0, b: 1.0, cutoff: 2.0 }
    }
}

fn density_contrib(params: &EamParams, r: f64) -> f64 {
    let x = 1.0 - r / params.cutoff;
    params.b * x * x
}

fn density_contrib_deriv(params: &EamParams, r: f64) -> f64 {
    let x = 1.0 - r / params.cutoff;
    -2.0 * params.b * x / params.cutoff
}

fn pair_energy(params: &EamParams, r: f64) -> f64 {
    let x = 1.0 - r / params.cutoff;
    params.a * x * x * x
}

fn pair_energy_deriv(params: &EamParams, r: f64) -> f64 {
    let x = 1.0 - r / params.cutoff;
    -3.0 * params.a * x * x / params.cutoff
}

/// Computes EAM energies and forces with the standard two-pass scheme
/// (densities first, then embedding + pair forces). Returns total
/// potential energy. O(N²) — the real benchmark scale lives in the
/// simulator model, this validates the physics.
pub fn compute_forces(system: &mut ParticleSystem, params: &EamParams) -> f64 {
    let n = system.len();
    let cutoff2 = params.cutoff * params.cutoff;

    // Pass 1: densities.
    let mut rho = vec![0.0; n];
    for i in 0..n {
        for j in i + 1..n {
            let r2 = system.distance2(i, j);
            if r2 < cutoff2 && r2 > 1e-12 {
                let r = r2.sqrt();
                let d = density_contrib(params, r);
                rho[i] += d;
                rho[j] += d;
            }
        }
    }

    // Embedding energy F(rho) = -sqrt(rho) and its derivative.
    let mut energy: f64 = rho.iter().map(|&r| -(r.max(0.0)).sqrt()).sum();
    let dfdrho: Vec<f64> =
        rho.iter().map(|&r| if r > 1e-12 { -0.5 / r.sqrt() } else { 0.0 }).collect();

    // Pass 2: pair term + embedding forces.
    for i in 0..n {
        for j in i + 1..n {
            let r2 = system.distance2(i, j);
            if r2 < cutoff2 && r2 > 1e-12 {
                let r = r2.sqrt();
                energy += pair_energy(params, r);
                let dpair = pair_energy_deriv(params, r);
                let drho = density_contrib_deriv(params, r);
                let de_dr = dpair + (dfdrho[i] + dfdrho[j]) * drho;
                let d = system.displacement(i, j);
                for a in 0..3 {
                    // dE/dr along the bond; displacement points i -> j.
                    system.forces[i][a] += de_dr * d[a] / r;
                    system.forces[j][a] -= de_dr * d[a] / r;
                }
            }
        }
    }
    energy
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair_system(separation: f64) -> ParticleSystem {
        let mut s = ParticleSystem::lattice(2, 1e-3, 1);
        s.positions[0] = [2.0, 2.0, 2.0];
        s.positions[1] = [2.0 + separation, 2.0, 2.0];
        s.clear_forces();
        s
    }

    #[test]
    fn energy_is_zero_beyond_cutoff() {
        let params = EamParams::default();
        let mut s = pair_system(2.5);
        let e = compute_forces(&mut s, &params);
        assert_eq!(e, 0.0);
        assert_eq!(s.forces[0], [0.0; 3]);
    }

    #[test]
    fn force_matches_numerical_gradient() {
        let params = EamParams::default();
        let h = 1e-6;
        let sep = 1.3;
        let energy_at = |r: f64| {
            let mut t = pair_system(r);
            compute_forces(&mut t, &params)
        };
        let mut s = pair_system(sep);
        compute_forces(&mut s, &params);
        // Force on particle 1 along +x should be -dE/dsep.
        let numeric = -(energy_at(sep + h) - energy_at(sep - h)) / (2.0 * h);
        let analytic = s.forces[1][0];
        assert!(
            (analytic - numeric).abs() < 1e-5 * numeric.abs().max(1.0),
            "{analytic} vs {numeric}"
        );
    }

    #[test]
    fn forces_sum_to_zero_in_bulk() {
        let params = EamParams::default();
        let mut s = ParticleSystem::lattice(64, 0.9, 4);
        s.clear_forces();
        let e = compute_forces(&mut s, &params);
        assert!(e.is_finite());
        for a in 0..3 {
            let total: f64 = s.forces.iter().map(|f| f[a]).sum();
            assert!(total.abs() < 1e-9, "net force {total}");
        }
    }

    #[test]
    fn embedding_makes_clusters_cohesive() {
        // Two atoms at moderate distance should have negative energy
        // (binding) thanks to the embedding term.
        let params = EamParams::default();
        let mut s = pair_system(1.6);
        let e = compute_forces(&mut s, &params);
        assert!(e < 0.0, "expected cohesion, got {e}");
    }
}
