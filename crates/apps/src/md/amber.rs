//! AMBER `sander` workload models: the five benchmarks of Table 6, with
//! the PME and GB phase structures behind Tables 7–9.
//!
//! The PME step structure follows sander 8's slab-decomposed PME: a
//! direct-space pair sweep, B-spline charge spreading, a grid reduction,
//! forward 3-D FFT (local passes + transpose all-to-all), reciprocal
//! multiply, inverse FFT, force interpolation, a halo exchange and the
//! global force/energy reductions that dominated sander's scaling on
//! 2006 hardware.

use corescope_kernels::fft::fft_pass_phase;
use corescope_kernels::{C64, F64};
use corescope_machine::{ComputePhase, TrafficProfile};
use corescope_smpi::CommWorld;

/// Electrostatics method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmberMethod {
    /// Particle Mesh Ewald (explicit solvent).
    Pme,
    /// Generalized Born (implicit solvent).
    Gb,
}

/// One AMBER benchmark system (Table 6).
#[derive(Debug, Clone, PartialEq)]
pub struct AmberBenchmark {
    /// Benchmark name as the paper spells it.
    pub name: &'static str,
    /// Atom count.
    pub atoms: usize,
    /// MD technique.
    pub method: AmberMethod,
    /// PME charge grid points (unused for GB).
    pub grid_points: f64,
    /// MD steps per run.
    pub steps: usize,
}

impl AmberBenchmark {
    /// `dhfr`: 22 930 atoms, PME.
    pub fn dhfr() -> Self {
        Self {
            name: "dhfr",
            atoms: 22_930,
            method: AmberMethod::Pme,
            grid_points: 64.0 * 64.0 * 64.0,
            steps: 100,
        }
    }

    /// `factor_ix`: 90 906 atoms, PME.
    pub fn factor_ix() -> Self {
        Self {
            name: "factor_ix",
            atoms: 90_906,
            method: AmberMethod::Pme,
            grid_points: 128.0 * 128.0 * 96.0,
            steps: 100,
        }
    }

    /// `gb_cox2`: 18 056 atoms, GB.
    pub fn gb_cox2() -> Self {
        Self {
            name: "gb_cox2",
            atoms: 18_056,
            method: AmberMethod::Gb,
            grid_points: 0.0,
            steps: 20,
        }
    }

    /// `gb_mb`: 2 492 atoms, GB.
    pub fn gb_mb() -> Self {
        Self { name: "gb_mb", atoms: 2_492, method: AmberMethod::Gb, grid_points: 0.0, steps: 1000 }
    }

    /// `JAC`: 23 558 atoms, PME (the joint AMBER-CHARMM benchmark).
    pub fn jac() -> Self {
        Self {
            name: "JAC",
            atoms: 23_558,
            method: AmberMethod::Pme,
            grid_points: 64.0 * 64.0 * 64.0,
            steps: 100,
        }
    }

    /// The five Table 6 benchmarks in column order.
    pub fn all() -> Vec<Self> {
        vec![Self::dhfr(), Self::factor_ix(), Self::gb_cox2(), Self::gb_mb(), Self::jac()]
    }

    /// Appends the full run to a world.
    pub fn append_run(&self, world: &mut CommWorld<'_>) {
        for _ in 0..self.steps {
            match self.method {
                AmberMethod::Pme => self.append_pme_step(world),
                AmberMethod::Gb => self.append_gb_step(world),
            }
        }
    }

    /// Appends only the FFT-related part of a PME step (what the paper's
    /// Table 7 times in the JAC benchmark): grid reduction, forward FFT,
    /// reciprocal multiply, inverse FFT.
    pub fn append_pme_fft_part(&self, world: &mut CommWorld<'_>) {
        let p = world.size() as f64;
        let grid_local = self.grid_points / p;
        // Partial grid reduction (slab sums).
        if world.size() > 1 {
            world.allreduce(grid_local * C64);
        }
        // Forward 3-D FFT: local passes + transpose.
        for _ in 0..2 {
            let pass = fft_pass_phase(grid_local, self.grid_points, 0.5);
            world.compute_all(|_| Some(pass.clone()));
            if world.size() > 1 {
                world.alltoall(grid_local * C64 / p);
            }
        }
        // Reciprocal-space multiply.
        let recip = ComputePhase::new(
            "pme-recip",
            6.0 * grid_local,
            TrafficProfile::stream(2.0 * grid_local * C64),
        )
        .with_efficiency(0.4);
        world.compute_all(|_| Some(recip.clone()));
        // Inverse FFT.
        for _ in 0..2 {
            let pass = fft_pass_phase(grid_local, self.grid_points, 0.5);
            world.compute_all(|_| Some(pass.clone()));
            if world.size() > 1 {
                world.alltoall(grid_local * C64 / p);
            }
        }
    }

    fn append_pme_step(&self, world: &mut CommWorld<'_>) {
        let p = world.size() as f64;
        let atoms_local = self.atoms as f64 / p;

        // Direct-space sweep: ~300 neighbour pairs per atom, ~40 flops
        // per pair (erfc interpolation + LJ); each pair re-reads its
        // neighbour's coordinates, so the loop touches ~16 B per pair.
        let direct = ComputePhase::new(
            "pme-direct",
            atoms_local * 300.0 * 40.0,
            TrafficProfile::stream_over(atoms_local * 300.0 * 16.0, atoms_local * 450.0),
        )
        .with_efficiency(0.28);
        world.compute_all(|_| Some(direct.clone()));

        // B-spline charge spreading: 4x4x4 grid points per atom, strided
        // writes into a full per-rank grid copy (sander 8 kept one per
        // rank — hence the grid reduction below).
        let spread = ComputePhase::new(
            "pme-spread",
            atoms_local * 64.0 * 8.0,
            TrafficProfile::strided(atoms_local * 64.0 * F64 * 2.0, self.grid_points * C64),
        )
        .with_efficiency(0.3);
        world.compute_all(|_| Some(spread.clone()));

        self.append_pme_fft_part(world);

        // Force interpolation back from the grid.
        let interp = spread.clone();
        world.compute_all(|_| Some(interp.clone()));

        if world.size() > 1 {
            // Coordinate halo with spatial neighbours.
            world.halo_1d(24.0 * atoms_local * 0.3);
            // sander's global force reduction — its notorious scaling
            // limiter.
            world.allreduce(3.0 * F64 * self.atoms as f64);
            // Energy/virial scalars.
            world.allreduce(8.0 * F64);
        }
    }

    fn append_gb_step(&self, world: &mut CommWorld<'_>) {
        let p = world.size() as f64;
        let n = self.atoms as f64;
        let pair_share = n * n / p;

        // Effective Born radii: an O(N^2) pass, cache-resident working
        // set (coordinates + radii only).
        let radii = ComputePhase::new(
            "gb-radii",
            pair_share * 12.0,
            TrafficProfile::blocked(pair_share * 8.0, n * 60.0, 64.0),
        )
        .with_efficiency(0.45);
        world.compute_all(|_| Some(radii.clone()));

        // GB energy/force pass: another O(N^2) sweep with exp/sqrt-heavy
        // inner loops.
        let force = ComputePhase::new(
            "gb-force",
            pair_share * 28.0,
            TrafficProfile::blocked(pair_share * 8.0, n * 60.0, 64.0),
        )
        .with_efficiency(0.45);
        world.compute_all(|_| Some(force.clone()));

        if world.size() > 1 {
            // Everyone needs all coordinates: ring allgather.
            world.allgather(24.0 * n / p);
            world.allreduce(8.0 * F64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corescope_affinity::Scheme;
    use corescope_machine::{systems, Machine};
    use corescope_smpi::{LockLayer, MpiImpl};

    fn run(bench: &AmberBenchmark, machine: &Machine, n: usize, scheme: Scheme) -> f64 {
        let placements = scheme.resolve(machine, n).unwrap();
        let mut w =
            CommWorld::new(machine, placements, MpiImpl::Mpich2.profile(), LockLayer::USysV);
        bench.append_run(&mut w);
        w.run().unwrap().makespan
    }

    #[test]
    fn table6_inventory() {
        let all = AmberBenchmark::all();
        assert_eq!(all.len(), 5);
        let atoms: Vec<usize> = all.iter().map(|b| b.atoms).collect();
        assert_eq!(atoms, vec![22_930, 90_906, 18_056, 2_492, 23_558]);
        assert_eq!(all[2].method, AmberMethod::Gb);
        assert_eq!(all[4].name, "JAC");
    }

    #[test]
    fn jac_overall_time_is_in_paper_ballpark() {
        // Table 9: JAC, 2 tasks, Longs default = 38.08 s.
        let m = Machine::new(systems::longs());
        let t = run(&AmberBenchmark::jac(), &m, 2, Scheme::Default);
        assert!(t > 19.0 && t < 76.0, "JAC 2 tasks = {t:.1} s (paper 38.08)");
    }

    #[test]
    fn jac_fft_part_is_a_small_fraction() {
        // Table 7 vs Table 9: the FFT part is ~3.1 s of 38.1 s at 2 tasks.
        let m = Machine::new(systems::longs());
        let placements = Scheme::Default.resolve(&m, 2).unwrap();
        let mut w = CommWorld::new(&m, placements, MpiImpl::Mpich2.profile(), LockLayer::USysV);
        let jac = AmberBenchmark::jac();
        for _ in 0..jac.steps {
            jac.append_pme_fft_part(&mut w);
        }
        let fft_t = w.run().unwrap().makespan;
        let total = run(&jac, &m, 2, Scheme::Default);
        let share = fft_t / total;
        assert!(share > 0.03 && share < 0.25, "FFT share {share:.2} (paper: 3.13/38.08 = 0.082)");
    }

    #[test]
    fn gb_scales_nearly_linearly() {
        // Table 8: gb_mb reaches 14.93x on 16 cores.
        let m = Machine::new(systems::longs());
        let mut bench = AmberBenchmark::gb_mb();
        bench.steps = 20;
        let t2 = run(&bench, &m, 2, Scheme::TwoMpiLocalAlloc);
        let t16 = run(&bench, &m, 16, Scheme::TwoMpiLocalAlloc);
        let gain = t2 / t16;
        assert!(gain > 5.5, "GB 2->16 gain {gain:.1} should be near the 8x ideal");
    }

    #[test]
    fn pme_scales_worse_than_gb() {
        // Table 8: at 16 cores PME reaches ~7-8x vs GB's ~14-15x.
        let m = Machine::new(systems::longs());
        let mut jac = AmberBenchmark::jac();
        jac.steps = 10;
        let mut gb = AmberBenchmark::gb_mb();
        gb.steps = 20;
        let pme_gain = run(&jac, &m, 2, Scheme::TwoMpiLocalAlloc)
            / run(&jac, &m, 16, Scheme::TwoMpiLocalAlloc);
        let gb_gain =
            run(&gb, &m, 2, Scheme::TwoMpiLocalAlloc) / run(&gb, &m, 16, Scheme::TwoMpiLocalAlloc);
        assert!(pme_gain < gb_gain, "PME gain {pme_gain:.1} must trail GB gain {gb_gain:.1}");
    }

    #[test]
    fn jac_interleave_hurts_at_16_ranks() {
        // Table 9: 16 tasks, Interleave = 14.99 s vs Two MPI + Local
        // Alloc = 8.95 s.
        let m = Machine::new(systems::longs());
        let mut jac = AmberBenchmark::jac();
        jac.steps = 10;
        // The paper measures a 1.67x penalty; the model reproduces the
        // direction with a smaller magnitude because JAC's dominant
        // direct-space phase stays cpu-bound (EXPERIMENTS.md notes the
        // deviation).
        let good = run(&jac, &m, 16, Scheme::TwoMpiLocalAlloc);
        let bad = run(&jac, &m, 16, Scheme::Interleave);
        assert!(bad > 1.04 * good, "interleave {bad:.2} vs localalloc {good:.2}");
    }
}
