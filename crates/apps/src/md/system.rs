//! Particle system state shared by all MD potentials.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A 3-vector.
pub type Vec3 = [f64; 3];

/// Particle positions/velocities/forces in a cubic periodic box.
#[derive(Debug, Clone, PartialEq)]
pub struct ParticleSystem {
    /// Positions, wrapped into `[0, box_len)`.
    pub positions: Vec<Vec3>,
    /// Velocities.
    pub velocities: Vec<Vec3>,
    /// Forces accumulated by the potentials.
    pub forces: Vec<Vec3>,
    /// Per-particle mass.
    pub masses: Vec<f64>,
    /// Cubic box edge length.
    pub box_len: f64,
}

impl ParticleSystem {
    /// A lattice-initialized system of `n` unit-mass particles at the
    /// given number density, with small random velocities.
    pub fn lattice(n: usize, density: f64, seed: u64) -> Self {
        let box_len = (n as f64 / density).cbrt();
        let per_side = (n as f64).cbrt().ceil() as usize;
        let spacing = box_len / per_side as f64;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut positions = Vec::with_capacity(n);
        'fill: for i in 0..per_side {
            for j in 0..per_side {
                for k in 0..per_side {
                    if positions.len() == n {
                        break 'fill;
                    }
                    positions.push([
                        (i as f64 + 0.5) * spacing,
                        (j as f64 + 0.5) * spacing,
                        (k as f64 + 0.5) * spacing,
                    ]);
                }
            }
        }
        let velocities = (0..n)
            .map(|_| [rng.gen_range(-0.1..0.1), rng.gen_range(-0.1..0.1), rng.gen_range(-0.1..0.1)])
            .collect();
        Self { positions, velocities, forces: vec![[0.0; 3]; n], masses: vec![1.0; n], box_len }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Minimum-image displacement from particle `i` to particle `j`.
    pub fn displacement(&self, i: usize, j: usize) -> Vec3 {
        let mut d = [0.0; 3];
        for a in 0..3 {
            let mut x = self.positions[j][a] - self.positions[i][a];
            x -= self.box_len * (x / self.box_len).round();
            d[a] = x;
        }
        d
    }

    /// Squared minimum-image distance.
    pub fn distance2(&self, i: usize, j: usize) -> f64 {
        let d = self.displacement(i, j);
        d[0] * d[0] + d[1] * d[1] + d[2] * d[2]
    }

    /// Zeroes the force accumulators.
    pub fn clear_forces(&mut self) {
        for f in &mut self.forces {
            *f = [0.0; 3];
        }
    }

    /// Velocity-Verlet half-kick + drift (call potentials, then
    /// [`Self::finish_step`] with the same `dt`).
    pub fn begin_step(&mut self, dt: f64) {
        for i in 0..self.len() {
            for a in 0..3 {
                self.velocities[i][a] += 0.5 * dt * self.forces[i][a] / self.masses[i];
                self.positions[i][a] += dt * self.velocities[i][a];
                self.positions[i][a] = self.positions[i][a].rem_euclid(self.box_len);
            }
        }
    }

    /// Velocity-Verlet closing half-kick.
    pub fn finish_step(&mut self, dt: f64) {
        for i in 0..self.len() {
            for a in 0..3 {
                self.velocities[i][a] += 0.5 * dt * self.forces[i][a] / self.masses[i];
            }
        }
    }

    /// Total kinetic energy.
    pub fn kinetic_energy(&self) -> f64 {
        self.velocities
            .iter()
            .zip(&self.masses)
            .map(|(v, m)| 0.5 * m * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_fills_requested_count() {
        let s = ParticleSystem::lattice(100, 0.8, 1);
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
        for p in &s.positions {
            for a in 0..3 {
                assert!(p[a] >= 0.0 && p[a] < s.box_len);
            }
        }
    }

    #[test]
    fn minimum_image_is_symmetric_and_bounded() {
        let s = ParticleSystem::lattice(64, 0.5, 2);
        for (i, j) in [(0, 5), (3, 60), (10, 11)] {
            let dij = s.displacement(i, j);
            let dji = s.displacement(j, i);
            for a in 0..3 {
                assert!((dij[a] + dji[a]).abs() < 1e-12);
                assert!(dij[a].abs() <= s.box_len / 2.0 + 1e-12);
            }
        }
    }

    #[test]
    fn kinetic_energy_is_nonnegative_and_scales() {
        let mut s = ParticleSystem::lattice(32, 0.5, 3);
        let e = s.kinetic_energy();
        assert!(e > 0.0);
        for v in &mut s.velocities {
            for a in 0..3 {
                v[a] *= 2.0;
            }
        }
        assert!((s.kinetic_energy() - 4.0 * e).abs() < 1e-9 * e);
    }
}
