//! Molecular dynamics: engine, potentials, and the AMBER/LAMMPS workload
//! models of Section 4.1.

pub mod amber;
pub mod bonded;
pub mod eam;
pub mod ewald;
pub mod gb;
pub mod lammps;
pub mod lj;
pub mod system;

pub use amber::{AmberBenchmark, AmberMethod};
pub use lammps::LammpsBenchmark;
pub use system::ParticleSystem;
