//! Harmonic bonded interactions (the LAMMPS "chain" polymer benchmark's
//! bonded term).

use crate::md::system::ParticleSystem;

/// A harmonic bond `0.5 k (r - r0)²` between two particles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bond {
    /// First particle.
    pub i: usize,
    /// Second particle.
    pub j: usize,
    /// Spring constant.
    pub k: f64,
    /// Equilibrium length.
    pub r0: f64,
}

/// Builds a linear chain of bonds over consecutive particles.
pub fn chain_bonds(n: usize, k: f64, r0: f64) -> Vec<Bond> {
    (0..n.saturating_sub(1)).map(|i| Bond { i, j: i + 1, k, r0 }).collect()
}

/// Accumulates bond forces; returns potential energy.
///
/// # Panics
///
/// Panics if a bond references a particle outside the system.
pub fn compute_forces(system: &mut ParticleSystem, bonds: &[Bond]) -> f64 {
    let mut energy = 0.0;
    for b in bonds {
        assert!(b.i < system.len() && b.j < system.len());
        let d = system.displacement(b.i, b.j);
        let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        if r < 1e-12 {
            continue;
        }
        let stretch = r - b.r0;
        energy += 0.5 * b.k * stretch * stretch;
        let f_over_r = b.k * stretch / r;
        for a in 0..3 {
            system.forces[b.i][a] += f_over_r * d[a];
            system.forces[b.j][a] -= f_over_r * d[a];
        }
    }
    energy
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_particle_system(separation: f64) -> ParticleSystem {
        let mut s = ParticleSystem::lattice(2, 0.001, 1);
        s.positions[0] = [1.0, 1.0, 1.0];
        s.positions[1] = [1.0 + separation, 1.0, 1.0];
        s.clear_forces();
        s
    }

    #[test]
    fn equilibrium_bond_has_no_force() {
        let mut s = two_particle_system(1.5);
        let e = compute_forces(&mut s, &[Bond { i: 0, j: 1, k: 10.0, r0: 1.5 }]);
        assert!(e.abs() < 1e-12);
        assert!(s.forces[0][0].abs() < 1e-12);
    }

    #[test]
    fn stretched_bond_pulls_particles_together() {
        let mut s = two_particle_system(2.0);
        let e = compute_forces(&mut s, &[Bond { i: 0, j: 1, k: 10.0, r0: 1.5 }]);
        assert!((e - 0.5 * 10.0 * 0.25).abs() < 1e-12);
        // Particle 0 is pulled toward +x (particle 1), particle 1 toward -x.
        assert!(s.forces[0][0] > 0.0);
        assert!(s.forces[1][0] < 0.0);
        assert!((s.forces[0][0] + s.forces[1][0]).abs() < 1e-12);
    }

    #[test]
    fn force_matches_numerical_gradient() {
        let bond = Bond { i: 0, j: 1, k: 7.0, r0: 1.2 };
        let h = 1e-6;
        let mut s = two_particle_system(1.8);
        compute_forces(&mut s, &[bond]);
        let analytic = s.forces[1][0];
        let energy_at = |sep: f64| {
            let mut t = two_particle_system(sep);
            compute_forces(&mut t, &[bond])
        };
        let numeric = -(energy_at(1.8 + h) - energy_at(1.8 - h)) / (2.0 * h);
        assert!((analytic - numeric).abs() < 1e-5, "{analytic} vs {numeric}");
    }

    #[test]
    fn chain_builder_links_consecutive_particles() {
        let bonds = chain_bonds(5, 1.0, 1.0);
        assert_eq!(bonds.len(), 4);
        assert_eq!((bonds[2].i, bonds[2].j), (2, 3));
        assert!(chain_bonds(0, 1.0, 1.0).is_empty());
    }
}
