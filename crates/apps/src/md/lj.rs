//! Lennard-Jones potential with cell lists (the LAMMPS "LJ" benchmark's
//! physics), plus a velocity-Verlet driver.

use crate::md::system::ParticleSystem;

/// Lennard-Jones parameters (reduced units: epsilon = sigma = 1 by
/// default).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LjParams {
    /// Well depth.
    pub epsilon: f64,
    /// Zero-crossing distance.
    pub sigma: f64,
    /// Interaction cutoff.
    pub cutoff: f64,
}

impl Default for LjParams {
    fn default() -> Self {
        Self { epsilon: 1.0, sigma: 1.0, cutoff: 2.5 }
    }
}

fn lj_pair(params: &LjParams, r2: f64) -> (f64, f64) {
    // Returns (energy, force/r) for squared distance r2.
    let sr2 = params.sigma * params.sigma / r2;
    let sr6 = sr2 * sr2 * sr2;
    let sr12 = sr6 * sr6;
    let energy = 4.0 * params.epsilon * (sr12 - sr6);
    let f_over_r = 24.0 * params.epsilon * (2.0 * sr12 - sr6) / r2;
    (energy, f_over_r)
}

/// Accumulates LJ forces with an O(N²) reference loop; returns potential
/// energy. Used to validate the cell-list path.
pub fn compute_forces_naive(system: &mut ParticleSystem, params: &LjParams) -> f64 {
    let n = system.len();
    let cutoff2 = params.cutoff * params.cutoff;
    let mut energy = 0.0;
    for i in 0..n {
        for j in i + 1..n {
            let r2 = system.distance2(i, j);
            if r2 < cutoff2 && r2 > 1e-12 {
                let (e, f_over_r) = lj_pair(params, r2);
                energy += e;
                let d = system.displacement(i, j);
                for a in 0..3 {
                    system.forces[i][a] -= f_over_r * d[a];
                    system.forces[j][a] += f_over_r * d[a];
                }
            }
        }
    }
    energy
}

/// Accumulates LJ forces using a cell list (O(N) for homogeneous
/// systems); returns potential energy. Matches [`compute_forces_naive`].
pub fn compute_forces(system: &mut ParticleSystem, params: &LjParams) -> f64 {
    let n = system.len();
    let cutoff2 = params.cutoff * params.cutoff;
    let cells_per_side = ((system.box_len / params.cutoff).floor() as usize).max(1);
    if cells_per_side < 3 {
        // Box too small for a meaningful cell decomposition.
        return compute_forces_naive(system, params);
    }
    let cell_len = system.box_len / cells_per_side as f64;
    let cell_of = |p: &[f64; 3]| -> (usize, usize, usize) {
        let f = |x: f64| ((x / cell_len) as usize).min(cells_per_side - 1);
        (f(p[0]), f(p[1]), f(p[2]))
    };
    let mut cells = vec![Vec::new(); cells_per_side * cells_per_side * cells_per_side];
    let idx = |c: (usize, usize, usize)| (c.0 * cells_per_side + c.1) * cells_per_side + c.2;
    for i in 0..n {
        cells[idx(cell_of(&system.positions[i]))].push(i);
    }

    let mut energy = 0.0;
    let cps = cells_per_side as isize;
    for cx in 0..cells_per_side {
        for cy in 0..cells_per_side {
            for cz in 0..cells_per_side {
                let home = &cells[idx((cx, cy, cz))];
                for dx in -1..=1isize {
                    for dy in -1..=1isize {
                        for dz in -1..=1isize {
                            let nx = (cx as isize + dx).rem_euclid(cps) as usize;
                            let ny = (cy as isize + dy).rem_euclid(cps) as usize;
                            let nz = (cz as isize + dz).rem_euclid(cps) as usize;
                            let neigh = &cells[idx((nx, ny, nz))];
                            for &i in home {
                                for &j in neigh {
                                    if j <= i {
                                        continue;
                                    }
                                    let r2 = system.distance2(i, j);
                                    if r2 < cutoff2 && r2 > 1e-12 {
                                        let (e, f_over_r) = lj_pair(params, r2);
                                        energy += e;
                                        let d = system.displacement(i, j);
                                        for a in 0..3 {
                                            system.forces[i][a] -= f_over_r * d[a];
                                            system.forces[j][a] += f_over_r * d[a];
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    energy
}

/// Runs `steps` velocity-Verlet steps; returns `(potential, kinetic)` at
/// the end.
pub fn run_nve(
    system: &mut ParticleSystem,
    params: &LjParams,
    dt: f64,
    steps: usize,
) -> (f64, f64) {
    system.clear_forces();
    let mut pot = compute_forces(system, params);
    for _ in 0..steps {
        system.begin_step(dt);
        system.clear_forces();
        pot = compute_forces(system, params);
        system.finish_step(dt);
    }
    (pot, system.kinetic_energy())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_minimum_at_two_pow_sixth_sigma() {
        let p = LjParams::default();
        let r_min2 = 2f64.powf(1.0 / 3.0); // (2^(1/6))^2
        let (_, f) = lj_pair(&p, r_min2);
        assert!(f.abs() < 1e-10, "force at the LJ minimum must vanish, got {f}");
        let (e, _) = lj_pair(&p, r_min2);
        assert!((e + 1.0).abs() < 1e-10, "well depth is -epsilon");
    }

    #[test]
    fn cell_list_matches_naive() {
        let params = LjParams::default();
        let mut a = ParticleSystem::lattice(216, 0.6, 11);
        let mut b = a.clone();
        a.clear_forces();
        b.clear_forces();
        let ea = compute_forces(&mut a, &params);
        let eb = compute_forces_naive(&mut b, &params);
        assert!((ea - eb).abs() < 1e-9 * eb.abs().max(1.0), "{ea} vs {eb}");
        for (fa, fb) in a.forces.iter().zip(&b.forces) {
            for k in 0..3 {
                assert!((fa[k] - fb[k]).abs() < 1e-9, "{fa:?} vs {fb:?}");
            }
        }
    }

    #[test]
    fn forces_sum_to_zero() {
        let params = LjParams::default();
        let mut s = ParticleSystem::lattice(125, 0.7, 5);
        s.clear_forces();
        compute_forces(&mut s, &params);
        for a in 0..3 {
            let total: f64 = s.forces.iter().map(|f| f[a]).sum();
            assert!(total.abs() < 1e-9, "net force component {a} = {total}");
        }
    }

    #[test]
    fn nve_energy_is_approximately_conserved() {
        let params = LjParams::default();
        let mut s = ParticleSystem::lattice(125, 0.5, 9);
        let (p0, k0) = run_nve(&mut s, &params, 0.002, 1);
        let e0 = p0 + k0;
        let (p1, k1) = run_nve(&mut s, &params, 0.002, 200);
        let e1 = p1 + k1;
        let drift = (e1 - e0).abs() / e0.abs().max(1.0);
        assert!(drift < 0.02, "energy drift {drift:.4} over 200 steps");
    }
}
