//! LAMMPS workload models: the LJ / chain (polymer) / EAM (metal)
//! benchmarks of Tables 10 and 11 — 32 000 atoms, 100 time steps.

use corescope_kernels::F64;
use corescope_machine::{ComputePhase, TrafficProfile};
use corescope_smpi::CommWorld;

/// One LAMMPS benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LammpsBenchmark {
    /// Lennard-Jones liquid (non-bonded, ~70 neighbours/atom).
    Lj,
    /// Polymer chain (bonded + short-range pairs, small working set —
    /// the benchmark that scales *super*-linearly in Table 10).
    Chain,
    /// EAM metal (two force passes + spline tables).
    Eam,
}

impl LammpsBenchmark {
    /// All three benchmarks in the paper's column order.
    pub fn all() -> [LammpsBenchmark; 3] {
        [LammpsBenchmark::Lj, LammpsBenchmark::Chain, LammpsBenchmark::Eam]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LammpsBenchmark::Lj => "LJ",
            LammpsBenchmark::Chain => "Chain",
            LammpsBenchmark::Eam => "EAM",
        }
    }

    /// Atom count (all three use 32 000 atoms).
    pub fn atoms(self) -> usize {
        32_000
    }

    /// Simulation steps (the paper runs 100).
    pub fn steps(self) -> usize {
        100
    }

    /// Flops per atom per step: neighbours x per-pair cost (+ bond and
    /// embedding terms).
    fn flops_per_atom(self) -> f64 {
        match self {
            LammpsBenchmark::Lj => 70.0 * 30.0,
            LammpsBenchmark::Chain => 25.0 * 30.0 + 2.0 * 60.0,
            LammpsBenchmark::Eam => 2.0 * 70.0 * 30.0 + 70.0 * 12.0,
        }
    }

    /// Bytes of per-atom *state* (positions, velocities, forces,
    /// neighbour lists, tables) — the working set. The chain benchmark's
    /// small footprint is what lets it turn cache-resident at high rank
    /// counts and scale super-linearly (Table 10's 19.95x at 16 cores).
    fn state_bytes_per_atom(self) -> f64 {
        match self {
            LammpsBenchmark::Lj => 420.0,
            LammpsBenchmark::Chain => 160.0,
            LammpsBenchmark::Eam => 560.0,
        }
    }

    /// Bytes the force loop *touches* per atom per step (each neighbour's
    /// coordinates are re-read per pair).
    fn touched_bytes_per_atom(self) -> f64 {
        match self {
            LammpsBenchmark::Lj => 2_100.0,
            LammpsBenchmark::Chain => 700.0,
            LammpsBenchmark::Eam => 3_900.0,
        }
    }

    /// How the force loop walks memory: LAMMPS spatially sorts LJ/EAM
    /// atoms so neighbour access streams well; the polymer chain hops
    /// along bond topology.
    fn force_traffic(self, atoms_local: f64) -> TrafficProfile {
        let touched = atoms_local * self.touched_bytes_per_atom();
        let state = atoms_local * self.state_bytes_per_atom();
        match self {
            LammpsBenchmark::Lj | LammpsBenchmark::Eam => {
                TrafficProfile::stream_over(touched, state)
            }
            LammpsBenchmark::Chain => TrafficProfile::strided(touched, state),
        }
    }

    /// Bytes of live simulation state one rank must write to checkpoint
    /// its local domain: the per-atom working set (positions, velocities,
    /// forces, neighbour lists, tables) over the local atom share. Sizes
    /// `CheckpointPolicy::bytes_per_rank` in recovery experiments.
    pub fn state_bytes_per_rank(self, nranks: usize) -> f64 {
        self.atoms() as f64 / nranks as f64 * self.state_bytes_per_atom()
    }

    /// Appends the full benchmark run.
    pub fn append_run(&self, world: &mut CommWorld<'_>) {
        let p = world.size() as f64;
        let atoms_local = self.atoms() as f64 / p;
        let working_set = atoms_local * self.state_bytes_per_atom();
        let halo_bytes = 24.0 * (atoms_local.powf(2.0 / 3.0) * 6.0).min(atoms_local);

        for step in 0..self.steps() {
            // Force computation.
            let force = ComputePhase::new(
                "lammps-force",
                atoms_local * self.flops_per_atom(),
                self.force_traffic(atoms_local),
            )
            .with_efficiency(0.3);
            world.compute_all(|_| Some(force.clone()));

            // Integration: a light streaming pass.
            let integrate = ComputePhase::new(
                "lammps-integrate",
                atoms_local * 20.0,
                TrafficProfile::stream_over(atoms_local * 72.0, atoms_local * 72.0),
            );
            world.compute_all(|_| Some(integrate.clone()));

            if world.size() > 1 {
                // Ghost-atom halo exchange with spatial neighbours.
                world.halo_1d(halo_bytes);
            }

            // Neighbour-list rebuild every 10 steps.
            if step % 10 == 0 {
                let rebuild = ComputePhase::new(
                    "lammps-neigh",
                    atoms_local * 200.0,
                    TrafficProfile::stream_over(working_set, working_set),
                )
                .with_efficiency(0.25);
                world.compute_all(|_| Some(rebuild.clone()));
            }

            if world.size() > 1 {
                // Thermo energy reduction.
                world.allreduce(F64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corescope_affinity::Scheme;
    use corescope_machine::{systems, Machine};
    use corescope_smpi::{LockLayer, MpiImpl};

    fn run(bench: LammpsBenchmark, machine: &Machine, n: usize, scheme: Scheme) -> f64 {
        let placements = scheme.resolve(machine, n).unwrap();
        let mut w =
            CommWorld::new(machine, placements, MpiImpl::Mpich2.profile(), LockLayer::USysV);
        bench.append_run(&mut w);
        w.run().unwrap().makespan
    }

    #[test]
    fn lj_two_task_longs_time_matches_table11_scale() {
        // Table 11: LJ, 2 tasks, Longs default = 3.82 s.
        let m = Machine::new(systems::longs());
        let t = run(LammpsBenchmark::Lj, &m, 2, Scheme::Default);
        assert!(t > 1.9 && t < 7.6, "LJ 2 tasks = {t:.2} s (paper 3.82)");
    }

    #[test]
    fn chain_scales_superlinearly() {
        // Table 10: chain reaches 19.95x on 16 cores — better than
        // linear, because the per-rank working set drops into cache.
        let m = Machine::new(systems::longs());
        let t2 = run(LammpsBenchmark::Chain, &m, 2, Scheme::TwoMpiLocalAlloc);
        let t16 = run(LammpsBenchmark::Chain, &m, 16, Scheme::TwoMpiLocalAlloc);
        let gain = t2 / t16;
        assert!(gain > 8.0, "chain 2->16 gain {gain:.2} should exceed the core ratio");
    }

    #[test]
    fn lj_scales_well_but_sublinearly() {
        // Table 10: LJ reaches 10.65x at 16 cores (per-core 0.67).
        let m = Machine::new(systems::longs());
        let t2 = run(LammpsBenchmark::Lj, &m, 2, Scheme::TwoMpiLocalAlloc);
        let t16 = run(LammpsBenchmark::Lj, &m, 16, Scheme::TwoMpiLocalAlloc);
        let gain = t2 / t16;
        assert!(gain > 3.0 && gain < 9.0, "LJ 2->16 gain {gain:.2}");
    }

    #[test]
    fn all_benchmarks_complete_on_all_systems() {
        for spec in systems::all() {
            let m = Machine::new(spec);
            for bench in LammpsBenchmark::all() {
                let t = run(bench, &m, 2, Scheme::Default);
                assert!(t > 0.0, "{} on {}", bench.name(), m.spec().name);
            }
        }
    }

    #[test]
    fn checkpoint_state_scales_down_with_ranks() {
        let b = LammpsBenchmark::Eam;
        assert_eq!(b.state_bytes_per_rank(1), 32_000.0 * 560.0);
        assert!(b.state_bytes_per_rank(2) > b.state_bytes_per_rank(16));
    }

    #[test]
    fn a_killed_rank_recovers_from_checkpoints() {
        use corescope_machine::{CheckpointPolicy, FaultPlan, RankId};
        let m = Machine::new(systems::dmz());
        let bench = LammpsBenchmark::Lj;
        let placements = Scheme::TwoMpiLocalAlloc.resolve(&m, 2).unwrap();
        let mut w = CommWorld::new(&m, placements, MpiImpl::Mpich2.profile(), LockLayer::USysV)
            .with_recovery(CheckpointPolicy::new(0.5, bench.state_bytes_per_rank(2)));
        bench.append_run(&mut w);
        let fault_free = w.run().unwrap().makespan;
        let plan = FaultPlan::new().rank_kill(fault_free * 0.4, RankId::new(1));
        let report = w.run_with_faults(&plan).unwrap();
        assert_eq!(report.metrics.recoveries, 1);
        assert!(report.metrics.checkpoints_taken >= 1);
        assert!(report.makespan > fault_free, "rollback must cost time");
    }

    #[test]
    fn names_match_paper_columns() {
        let names: Vec<_> = LammpsBenchmark::all().iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["LJ", "Chain", "EAM"]);
    }
}
