//! XSBench-style cross-section lookup proxy application.
//!
//! The kernel crate models one rank's lookup stream
//! ([`corescope_kernels::xslookup`]); this module adds the part that
//! makes the workload interesting on a NUMA machine: **where the
//! unionized table's pages land**. Each rank replicates the table, and
//! the table is large — often larger than one node's usable DIMM share —
//! so the page-placement policy decides whether lookups are local,
//! remote, or spread:
//!
//! * **first-touch** (`localalloc` / the OS default): each rank touches
//!   its own copy, so pages fill the local node first and spill to the
//!   nearest nodes once it is full ([`first_touch_spill`]). Early ranks
//!   stay local; late ranks land remote.
//! * **interleave**: pages round-robin over every node. Every lookup
//!   pays the machine-average latency — worse than first-touch while
//!   tables fit, better than first-touch's worst rank once they spill.
//! * **membind**: pages forced onto the listed nodes in order,
//!   regardless of rank locality ([`membind_spill`]).
//!
//! The crossover between first-touch and interleave is the x10
//! artifact's headline result: first-touch wins while per-rank tables
//! fit one node's usable share, and loses once its slowest rank goes
//! mostly remote.

use corescope_affinity::policy::TABLE_USABLE_FRACTION;
use corescope_affinity::{
    central_socket_order, first_touch_spill, interleave_all, membind_spill, Scheme,
};
use corescope_kernels::xslookup::XsParams;
use corescope_machine::{CoreId, Machine, MemoryLayout, NumaNodeId, Result};
use corescope_smpi::CommWorld;

/// Where the replicated cross-section table's pages land, independent of
/// where the rank's *other* memory (stack, buffers) lives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TablePlacement {
    /// First-touch: local node first, nearest-node spill when full. A
    /// `misplacement` fraction of pages is spread machine-wide (the
    /// unbound-run imperfection; bound schemes use `0.0`).
    FirstTouch {
        /// Fraction of table pages spread uniformly over the machine.
        misplacement: f64,
    },
    /// `--interleave=all`: pages round-robin over every node.
    Interleave,
    /// `--membind`: pages fill the listed (centrality-ordered) nodes
    /// first-come-first-served, ignoring rank locality.
    Membind,
}

impl TablePlacement {
    /// The table placement a Table-5 scheme implies: membind schemes
    /// force the table onto the listed nodes, interleave spreads it, and
    /// everything else first-touches it (with `misplacement` only for
    /// the unbound `Default` scheme).
    pub fn from_scheme(scheme: Scheme, misplacement: f64) -> Self {
        match scheme {
            Scheme::Default => TablePlacement::FirstTouch { misplacement },
            Scheme::OneMpiLocalAlloc | Scheme::TwoMpiLocalAlloc => {
                TablePlacement::FirstTouch { misplacement: 0.0 }
            }
            Scheme::Interleave => TablePlacement::Interleave,
            Scheme::OneMpiMembind | Scheme::TwoMpiMembind => TablePlacement::Membind,
        }
    }

    /// Short identifier for CSV columns.
    pub fn key(self) -> &'static str {
        match self {
            TablePlacement::FirstTouch { .. } => "first_touch",
            TablePlacement::Interleave => "interleave",
            TablePlacement::Membind => "membind",
        }
    }
}

/// Per-rank page layouts for one `bytes`-byte table copy per rank, under
/// `placement`, for ranks running on `cores` (allocation happens in rank
/// order).
///
/// # Errors
///
/// Mirrors the affinity policies; never fails for a valid machine and a
/// non-empty core list.
pub fn table_layouts(
    machine: &Machine,
    cores: &[CoreId],
    placement: TablePlacement,
    bytes: f64,
) -> Result<Vec<MemoryLayout>> {
    match placement {
        TablePlacement::FirstTouch { misplacement } => {
            let layouts = first_touch_spill(machine, cores, bytes, TABLE_USABLE_FRACTION)?;
            if machine.num_sockets() <= 1 || misplacement <= 0.0 {
                return Ok(layouts);
            }
            let spread = interleave_all(machine)?;
            Ok(layouts.into_iter().map(|l| l.mix(&spread, misplacement)).collect())
        }
        TablePlacement::Interleave => {
            let layout = interleave_all(machine)?;
            Ok(vec![layout; cores.len()])
        }
        TablePlacement::Membind => {
            let order: Vec<NumaNodeId> = central_socket_order(machine)
                .into_iter()
                .map(|s| machine.node_of_socket(s))
                .collect();
            membind_spill(machine, &order, cores.len(), bytes, TABLE_USABLE_FRACTION)
        }
    }
}

/// Appends a star-mode run: every rank streams lookups through its own
/// table copy, placed per `placement` (overriding the rank's base memory
/// layout for the lookup phase only).
///
/// # Errors
///
/// Mirrors [`table_layouts`].
pub fn append_star(
    world: &mut CommWorld<'_>,
    params: &XsParams,
    placement: TablePlacement,
) -> Result<()> {
    let cores: Vec<CoreId> = world.placements().iter().map(|p| p.core).collect();
    let layouts = table_layouts(world.machine(), &cores, placement, params.table_bytes())?;
    let phase = params.phase();
    for (rank, layout) in layouts.into_iter().enumerate() {
        world.compute(rank, phase.clone().with_layout(layout));
    }
    Ok(())
}

/// Appends a single-rank run: rank 0 streams lookups, the rest idle.
///
/// # Errors
///
/// Mirrors [`table_layouts`].
pub fn append_single(
    world: &mut CommWorld<'_>,
    params: &XsParams,
    placement: TablePlacement,
) -> Result<()> {
    let core = world.placements()[0].core;
    let layouts = table_layouts(world.machine(), &[core], placement, params.table_bytes())?;
    let phase = params.phase();
    world.compute(0, phase.with_layout(layouts.into_iter().next().expect("one rank")));
    Ok(())
}

/// The modeled per-lookup DRAM latency of the slowest rank: its table
/// layout's placement-weighted memory latency plus the machine's
/// row-buffer-miss/TLB surcharge for dependent lookups. This is the
/// closed-form quantity the crossover tests reason about — the engine's
/// lookup phases are latency-bound, so makespan ordering follows it.
///
/// # Errors
///
/// Mirrors [`table_layouts`].
pub fn modeled_lookup_latency(
    machine: &Machine,
    cores: &[CoreId],
    placement: TablePlacement,
    bytes: f64,
) -> Result<f64> {
    let layouts = table_layouts(machine, cores, placement, bytes)?;
    let mut worst: f64 = 0.0;
    for (&core, layout) in cores.iter().zip(&layouts) {
        let mut latency = 0.0;
        for (node, frac) in layout.shares() {
            latency += frac * machine.memory_latency(core, node);
        }
        worst = worst.max(latency);
    }
    Ok(worst + machine.spec().memory.lookup_latency)
}

/// The per-rank table size at which first-touch starts spilling on the
/// fullest node: the smallest `capacity × usable / ranks-on-node` over
/// the nodes that host ranks. Below ~half this size first-touch is fully
/// local and beats interleaving; a few times above it the slowest rank
/// is mostly remote and interleaving wins.
pub fn first_touch_crossover_bytes(machine: &Machine, cores: &[CoreId]) -> f64 {
    let mut counts = vec![0usize; machine.num_sockets()];
    for &core in cores {
        counts[machine.socket_of(core).index()] += 1;
    }
    machine
        .spec()
        .sockets
        .iter()
        .zip(&counts)
        .filter(|&(_, &ranks)| ranks > 0)
        .map(|(&cap, &ranks)| cap * TABLE_USABLE_FRACTION / ranks as f64)
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corescope_machine::systems;
    use corescope_smpi::{LockLayer, MpiImpl};
    use proptest::prelude::*;

    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    fn dmz() -> Machine {
        Machine::new(systems::dmz())
    }

    /// All four DMZ cores, packed two per socket.
    fn dmz_cores() -> Vec<CoreId> {
        (0..4).map(CoreId::new).collect()
    }

    /// XsParams whose replicated table is close to `bytes` (within one
    /// grid point's footprint).
    fn params_for_bytes(bytes: f64) -> XsParams {
        let nuclides = 64u64;
        let per_point = 8.0 * (1.0 + 5.0 * nuclides as f64);
        XsParams {
            grid_points: (bytes / per_point).round() as u64,
            nuclides,
            lookups_per_rank: 1 << 18,
        }
    }

    #[test]
    fn from_scheme_maps_table5_columns() {
        assert_eq!(
            TablePlacement::from_scheme(Scheme::Default, 0.1),
            TablePlacement::FirstTouch { misplacement: 0.1 }
        );
        assert_eq!(
            TablePlacement::from_scheme(Scheme::TwoMpiLocalAlloc, 0.1),
            TablePlacement::FirstTouch { misplacement: 0.0 }
        );
        assert_eq!(
            TablePlacement::from_scheme(Scheme::Interleave, 0.1),
            TablePlacement::Interleave
        );
        assert_eq!(
            TablePlacement::from_scheme(Scheme::OneMpiMembind, 0.1),
            TablePlacement::Membind
        );
    }

    #[test]
    fn crossover_boundary_matches_dmz_capacity() {
        // DMZ: 2 GiB/node × 0.75 usable / 2 ranks per node = 0.75 GiB.
        let m = dmz();
        let boundary = first_touch_crossover_bytes(&m, &dmz_cores());
        assert!((boundary - 0.75 * GIB).abs() < 1.0, "boundary {boundary}");
        // A single rank gets the whole node's usable share.
        let single = first_touch_crossover_bytes(&m, &[CoreId::new(0)]);
        assert!((single - 1.5 * GIB).abs() < 1.0);
    }

    #[test]
    fn first_touch_beats_interleave_below_the_boundary() {
        let m = dmz();
        let cores = dmz_cores();
        let bytes = 0.5 * first_touch_crossover_bytes(&m, &cores);
        let ft = modeled_lookup_latency(
            &m,
            &cores,
            TablePlacement::FirstTouch { misplacement: 0.0 },
            bytes,
        )
        .unwrap();
        let il = modeled_lookup_latency(&m, &cores, TablePlacement::Interleave, bytes).unwrap();
        assert!(ft < il, "small tables: first-touch {ft:.3e} must beat interleave {il:.3e}");
    }

    #[test]
    fn interleave_beats_first_touch_above_the_boundary() {
        let m = dmz();
        let cores = dmz_cores();
        let bytes = 2.0 * first_touch_crossover_bytes(&m, &cores);
        let ft = modeled_lookup_latency(
            &m,
            &cores,
            TablePlacement::FirstTouch { misplacement: 0.0 },
            bytes,
        )
        .unwrap();
        let il = modeled_lookup_latency(&m, &cores, TablePlacement::Interleave, bytes).unwrap();
        assert!(il < ft, "spilled tables: interleave {il:.3e} must beat first-touch {ft:.3e}");
    }

    #[test]
    fn engine_makespan_flips_with_the_modeled_latency() {
        // The whole point: the closed-form crossover shows up in actual
        // simulated runtimes, not just the latency formula.
        let m = dmz();
        let cores = dmz_cores();
        let boundary = first_touch_crossover_bytes(&m, &cores);
        let run = |placement: TablePlacement, bytes: f64| -> f64 {
            let p = Scheme::TwoMpiLocalAlloc.resolve(&m, 4).unwrap();
            let mut w = CommWorld::new(&m, p, MpiImpl::Lam.profile(), LockLayer::USysV);
            append_star(&mut w, &params_for_bytes(bytes), placement).unwrap();
            w.run().unwrap().makespan
        };
        let ft = TablePlacement::FirstTouch { misplacement: 0.0 };
        let small = 0.5 * boundary;
        let large = 2.0 * boundary;
        assert!(
            run(ft, small) < run(TablePlacement::Interleave, small),
            "small tables must favour first-touch"
        );
        assert!(
            run(TablePlacement::Interleave, large) < run(ft, large),
            "spilled tables must favour interleave"
        );
    }

    #[test]
    fn membind_concentrates_then_spills_in_listed_order() {
        let m = dmz();
        let cores = dmz_cores();
        // Small tables: every rank's table on the first central node.
        let layouts = table_layouts(&m, &cores, TablePlacement::Membind, 0.25 * GIB).unwrap();
        let first = central_socket_order(&m)[0];
        let node = m.node_of_socket(first);
        for (rank, l) in layouts.iter().enumerate() {
            assert_eq!(l.fraction(node), 1.0, "rank {rank} must land on the first listed node");
        }
    }

    #[test]
    fn single_rank_append_places_only_rank_zero() {
        let m = dmz();
        let p = Scheme::TwoMpiLocalAlloc.resolve(&m, 2).unwrap();
        let mut w = CommWorld::new(&m, p, MpiImpl::Lam.profile(), LockLayer::USysV);
        append_single(&mut w, &params_for_bytes(0.25 * GIB), TablePlacement::Interleave).unwrap();
        assert_eq!(w.programs()[0].len(), 1);
        assert!(w.programs()[1].is_empty());
    }

    proptest! {
        /// Under membind within machine capacity, growing the table can
        /// only push more pages onto farther zonelist nodes: the modeled
        /// lookup latency never decreases. (Beyond capacity the uniform
        /// OS fallback can *reduce* the worst rank's latency, which is
        /// why the property is stated within the usable capacity.)
        #[test]
        fn membind_latency_is_monotone_in_table_bytes(
            base_gib in 0.05f64..1.4,
            factor in 1.0f64..2.0,
            nranks in 1usize..3,
        ) {
            let m = dmz();
            let cores: Vec<CoreId> = (0..nranks).map(CoreId::new).collect();
            let total_usable = 2.0 * 2.0 * GIB * TABLE_USABLE_FRACTION; // 3 GiB
            let small = base_gib * GIB;
            let large = (small * factor).min(total_usable / nranks as f64);
            let small = small.min(large);
            let lat_small =
                modeled_lookup_latency(&m, &cores, TablePlacement::Membind, small).unwrap();
            let lat_large =
                modeled_lookup_latency(&m, &cores, TablePlacement::Membind, large).unwrap();
            prop_assert!(
                lat_large >= lat_small - 1e-12,
                "membind latency shrank: {lat_small:.4e} -> {lat_large:.4e} \
                 (bytes {small:.3e} -> {large:.3e}, {nranks} ranks)"
            );
        }
    }
}
