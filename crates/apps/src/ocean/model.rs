//! The POP x1 workload model (Tables 12–14).
//!
//! POP 1.4.3 at the x1 resolution: a 320×384 horizontal grid with 40
//! vertical levels, run for 50 time steps (a 2-day simulation). Each
//! step has a **baroclinic** phase (3-D stencil sweeps with limited
//! nearest-neighbour communication, scales well) and a **barotropic**
//! phase (a 2-D implicit solve by conjugate gradients, dominated by
//! latency-bound reductions — "very sensitive to network latency").

use corescope_kernels::F64;
use corescope_machine::{ComputePhase, TrafficProfile};
use corescope_smpi::CommWorld;

/// POP model configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PopModel {
    /// Horizontal grid x-extent (320 in x1).
    pub nx: usize,
    /// Horizontal grid y-extent (384 in x1).
    pub ny: usize,
    /// Vertical levels (40 in x1).
    pub nz: usize,
    /// Time steps (50 = 2 simulated days in the paper's runs).
    pub steps: usize,
    /// CG iterations per barotropic solve.
    pub cg_iterations: usize,
}

impl PopModel {
    /// The x1 benchmark configuration used throughout the paper.
    pub fn x1() -> Self {
        Self { nx: 320, ny: 384, nz: 40, steps: 50, cg_iterations: 40 }
    }

    /// Horizontal points.
    pub fn horizontal_points(&self) -> f64 {
        (self.nx * self.ny) as f64
    }

    /// Total 3-D points.
    pub fn points(&self) -> f64 {
        self.horizontal_points() * self.nz as f64
    }

    /// Bytes of live model state one rank must write to checkpoint its
    /// sub-domain: ~40 prognostic and diagnostic 3-D arrays plus the 2-D
    /// barotropic fields, evenly decomposed over `nranks`. Sizes
    /// `CheckpointPolicy::bytes_per_rank` in recovery experiments.
    pub fn state_bytes_per_rank(&self, nranks: usize) -> f64 {
        (self.points() * 40.0 + self.horizontal_points() * 8.0) * F64 / nranks as f64
    }

    /// Appends only the baroclinic phases (for Table 13's timings).
    pub fn append_baroclinic(&self, world: &mut CommWorld<'_>, steps: usize) {
        let p = world.size() as f64;
        let local3d = self.points() / p;
        // ~450 flops/point across ~40 state arrays, touched several times
        // per step with the short vertical strides that defeat the
        // prefetcher — POP x1 sits right at the latency/compute roofline
        // corner on 2006 Opterons (cpu-bound on the 2.2 GHz DMZ,
        // memory-latency-bound on the probe-laden Longs, which is why
        // Table 13 shows page placement mattering there).
        let sweep = ComputePhase::new(
            "pop-baroclinic",
            local3d * 450.0,
            TrafficProfile::strided(local3d * 1_360.0, local3d * 320.0),
        )
        .with_efficiency(0.043);
        let halo_bytes = (self.nx * self.nz) as f64 * F64 * 4.0;
        for _ in 0..steps {
            world.compute_all(|_| Some(sweep.clone()));
            if world.size() > 1 {
                // Limited nearest-neighbour halo updates.
                world.halo_1d(halo_bytes);
                world.allreduce(F64);
            }
        }
    }

    /// Appends only the barotropic phases (for Table 14's timings).
    pub fn append_barotropic(&self, world: &mut CommWorld<'_>, steps: usize) {
        let p = world.size() as f64;
        let local2d = self.horizontal_points() / p;
        // Per CG iteration: a 5-point SpMV plus vector updates, with the
        // same roofline-corner calibration as the baroclinic sweeps.
        let iter_phase = ComputePhase::new(
            "pop-barotropic",
            local2d * 50.0,
            TrafficProfile::strided(local2d * 136.0, local2d * 64.0),
        )
        .with_efficiency(0.047);
        let halo_bytes = self.nx as f64 * F64 * 2.0;
        for _ in 0..steps {
            for _ in 0..self.cg_iterations {
                world.compute_all(|_| Some(iter_phase.clone()));
                if world.size() > 1 {
                    world.halo_1d(halo_bytes);
                    // Two scalar dot-product reductions per iteration —
                    // the latency sensitivity the paper highlights.
                    world.allreduce(F64);
                    world.allreduce(F64);
                }
            }
        }
    }

    /// Appends the full run: both phases, interleaved per step.
    pub fn append_run(&self, world: &mut CommWorld<'_>) {
        for _ in 0..self.steps {
            self.append_baroclinic(world, 1);
            self.append_barotropic(world, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corescope_affinity::Scheme;
    use corescope_machine::{systems, Machine};
    use corescope_smpi::{LockLayer, MpiImpl};

    fn world<'m>(machine: &'m Machine, n: usize, scheme: Scheme) -> CommWorld<'m> {
        let placements = scheme.resolve(machine, n).unwrap();
        CommWorld::new(machine, placements, MpiImpl::Mpich2.profile(), LockLayer::USysV)
    }

    #[test]
    fn x1_matches_paper_configuration() {
        let m = PopModel::x1();
        assert_eq!((m.nx, m.ny, m.nz), (320, 384, 40));
        assert_eq!(m.steps, 50);
        assert_eq!(m.points(), 320.0 * 384.0 * 40.0);
    }

    #[test]
    fn baroclinic_time_is_in_table13_ballpark() {
        // Table 13: 2 tasks, Longs default = 358.57 s for 50 steps.
        let machine = Machine::new(systems::longs());
        let mut w = world(&machine, 2, Scheme::Default);
        PopModel::x1().append_baroclinic(&mut w, 50);
        let t = w.run().unwrap().makespan;
        assert!(t > 170.0 && t < 720.0, "baroclinic 2 tasks = {t:.0} s (paper 358.57)");
    }

    #[test]
    fn barotropic_time_is_in_table14_ballpark() {
        // Table 14: 2 tasks, Longs default = 36.13 s for 50 steps.
        let machine = Machine::new(systems::longs());
        let mut w = world(&machine, 2, Scheme::Default);
        PopModel::x1().append_barotropic(&mut w, 50);
        let t = w.run().unwrap().makespan;
        assert!(t > 13.0 && t < 80.0, "barotropic 2 tasks = {t:.1} s (paper 36.13)");
    }

    #[test]
    fn both_phases_scale_to_16_cores() {
        // Table 12: POP scales nearly linearly (baroclinic 16.11x at 16
        // cores relative to one, i.e. ~8x from 2 to 16).
        let machine = Machine::new(systems::longs());
        let model = PopModel { steps: 3, ..PopModel::x1() };
        let time = |n: usize| {
            let mut w = world(&machine, n, Scheme::TwoMpiLocalAlloc);
            model.append_run(&mut w);
            w.run().unwrap().makespan
        };
        let t2 = time(2);
        let t16 = time(16);
        let gain = t2 / t16;
        assert!(gain > 5.0 && gain <= 8.5, "POP 2->16 gain {gain:.1}");
    }

    #[test]
    fn checkpoint_state_matches_decomposition() {
        let m = PopModel::x1();
        let total = (m.points() * 40.0 + m.horizontal_points() * 8.0) * F64;
        let per_rank = m.state_bytes_per_rank(4);
        assert!((per_rank * 4.0 - total).abs() < 1e-3, "4 ranks must partition the state");
    }

    #[test]
    fn a_killed_rank_recovers_mid_run() {
        use corescope_machine::{CheckpointPolicy, FaultPlan, RankId};
        let machine = Machine::new(systems::dmz());
        let model = PopModel { steps: 2, ..PopModel::x1() };
        let placements = Scheme::TwoMpiLocalAlloc.resolve(&machine, 2).unwrap();
        let mut w =
            CommWorld::new(&machine, placements, MpiImpl::Mpich2.profile(), LockLayer::USysV)
                .with_recovery(CheckpointPolicy::new(1.0, model.state_bytes_per_rank(2)));
        model.append_run(&mut w);
        let fault_free = w.run().unwrap().makespan;
        let plan = FaultPlan::new().rank_kill(fault_free * 0.5, RankId::new(0));
        let report = w.run_with_faults(&plan).unwrap();
        assert_eq!(report.metrics.recoveries, 1);
        assert!(report.metrics.checkpoints_taken >= 1);
        assert!(report.makespan > fault_free, "rollback must cost time");
    }

    #[test]
    fn barotropic_is_more_latency_sensitive_than_baroclinic() {
        // The SysV lock layer should hurt the reduction-heavy barotropic
        // phase relatively more.
        let machine = Machine::new(systems::longs());
        let model = PopModel { steps: 5, ..PopModel::x1() };
        let phase_ratio = |lock: LockLayer| {
            let placements = Scheme::TwoMpiLocalAlloc.resolve(&machine, 16).unwrap();
            let mut clinic =
                CommWorld::new(&machine, placements.clone(), MpiImpl::Lam.profile(), lock);
            model.append_baroclinic(&mut clinic, model.steps);
            let mut tropic = CommWorld::new(&machine, placements, MpiImpl::Lam.profile(), lock);
            model.append_barotropic(&mut tropic, model.steps);
            (clinic.run().unwrap().makespan, tropic.run().unwrap().makespan)
        };
        let (clinic_u, tropic_u) = phase_ratio(LockLayer::USysV);
        let (clinic_s, tropic_s) = phase_ratio(LockLayer::SysV);
        let clinic_penalty = clinic_s / clinic_u;
        let tropic_penalty = tropic_s / tropic_u;
        assert!(
            tropic_penalty > clinic_penalty,
            "barotropic penalty {tropic_penalty:.2} vs baroclinic {clinic_penalty:.2}"
        );
    }
}
