//! Real 2-D grid numerics: stencils and the barotropic elliptic solve.
//!
//! POP's barotropic phase solves a 2-D implicit system with conjugate
//! gradients; its baroclinic phase is dominated by 9-point horizontal
//! stencil sweeps. Both are implemented here at test scale, reusing the
//! CG solver from `corescope-kernels`.

use corescope_kernels::cg::{cg_solve, CgSolution, CsrMatrix};

/// A row-major 2-D field.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid2d {
    nx: usize,
    ny: usize,
    data: Vec<f64>,
}

impl Grid2d {
    /// A zero-initialized grid.
    pub fn zeros(nx: usize, ny: usize) -> Self {
        Self { nx, ny, data: vec![0.0; nx * ny] }
    }

    /// Builds a grid from a function of the (i, j) index.
    pub fn from_fn(nx: usize, ny: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut g = Self::zeros(nx, ny);
        for i in 0..nx {
            for j in 0..ny {
                g.data[i * ny + j] = f(i, j);
            }
        }
        g
    }

    /// Grid extents `(nx, ny)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Value at `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.ny + j]
    }

    /// Sets the value at `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.ny + j] = v;
    }

    /// The raw data slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Applies one damped-Jacobi 9-point smoothing sweep (the baroclinic
    /// phase's stencil shape); boundary cells are held fixed. Returns the
    /// maximum absolute update.
    pub fn smooth_9point(&mut self, weight: f64) -> f64 {
        let (nx, ny) = (self.nx, self.ny);
        let src = self.data.clone();
        let at = |i: usize, j: usize| src[i * ny + j];
        let mut max_delta = 0.0_f64;
        for i in 1..nx - 1 {
            for j in 1..ny - 1 {
                let neighbours = at(i - 1, j)
                    + at(i + 1, j)
                    + at(i, j - 1)
                    + at(i, j + 1)
                    + 0.5
                        * (at(i - 1, j - 1)
                            + at(i - 1, j + 1)
                            + at(i + 1, j - 1)
                            + at(i + 1, j + 1));
                let avg = neighbours / 6.0;
                let new = (1.0 - weight) * at(i, j) + weight * avg;
                max_delta = max_delta.max((new - at(i, j)).abs());
                self.data[i * ny + j] = new;
            }
        }
        max_delta
    }
}

/// Builds the 5-point Laplacian (with Dirichlet boundaries) for an
/// `nx × ny` interior grid, as POP's barotropic operator reduces to on a
/// uniform patch.
pub fn laplacian_5point(nx: usize, ny: usize) -> CsrMatrix {
    let idx = |i: usize, j: usize| i * ny + j;
    let mut rows = Vec::with_capacity(nx * ny);
    for i in 0..nx {
        for j in 0..ny {
            let mut row = Vec::with_capacity(5);
            if i > 0 {
                row.push((idx(i - 1, j), -1.0));
            }
            if j > 0 {
                row.push((idx(i, j - 1), -1.0));
            }
            row.push((idx(i, j), 4.0));
            if j + 1 < ny {
                row.push((idx(i, j + 1), -1.0));
            }
            if i + 1 < nx {
                row.push((idx(i + 1, j), -1.0));
            }
            rows.push(row);
        }
    }
    CsrMatrix::from_rows(nx * ny, rows)
}

/// Solves the barotropic elliptic system `L x = b` with CG.
pub fn barotropic_solve(nx: usize, ny: usize, b: &[f64], tol: f64) -> CgSolution {
    let l = laplacian_5point(nx, ny);
    cg_solve(&l, b, tol, 10 * nx * ny)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoothing_relaxes_toward_flat_field() {
        let mut g = Grid2d::from_fn(16, 16, |i, j| ((i * 7 + j * 3) % 5) as f64);
        let d0 = g.smooth_9point(0.8);
        let mut last = d0;
        for _ in 0..50 {
            last = g.smooth_9point(0.8);
        }
        assert!(last < d0 * 0.5, "updates must shrink: {d0} -> {last}");
    }

    #[test]
    fn laplacian_rows_are_diagonally_dominant() {
        let l = laplacian_5point(6, 7);
        assert_eq!(l.order(), 42);
        // Dominance implies SPD here; check via a CG solve converging.
        let b = vec![1.0; 42];
        let sol = barotropic_solve(6, 7, &b, 1e-10);
        assert!(sol.residual < 1e-9, "residual {}", sol.residual);
    }

    #[test]
    fn barotropic_solve_matches_manufactured_solution() {
        // Pick x*, form b = L x*, recover x*.
        let (nx, ny) = (12, 10);
        let l = laplacian_5point(nx, ny);
        let x_true: Vec<f64> = (0..nx * ny).map(|k| ((k % 9) as f64 - 4.0) * 0.3).collect();
        let mut b = vec![0.0; nx * ny];
        l.spmv(&x_true, &mut b);
        let sol = barotropic_solve(nx, ny, &b, 1e-11);
        for (xi, ti) in sol.x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-7, "{xi} vs {ti}");
        }
    }

    #[test]
    fn grid_accessors_round_trip() {
        let mut g = Grid2d::zeros(4, 5);
        g.set(2, 3, 7.5);
        assert_eq!(g.get(2, 3), 7.5);
        assert_eq!(g.shape(), (4, 5));
        assert_eq!(g.as_slice().len(), 20);
    }
}
