//! A POP-like ocean model (Section 4.2): real 2-D elliptic solver
//! substrate plus the x1-configuration workload model.

pub mod grid;
pub mod model;

pub use grid::Grid2d;
pub use model::PopModel;
