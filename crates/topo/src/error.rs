//! Typed validation errors for topology graphs.

use std::fmt;

/// Why a [`crate::TopoGraph`] cannot be lowered to a machine spec.
///
/// Every malformed graph maps to one of these — the generator never
/// panics on bad input (property-tested in `graph::tests`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopoError {
    /// The graph has no nodes at all.
    NoNodes,
    /// Two nodes share an id.
    DuplicateNodeId {
        /// The repeated id.
        id: usize,
    },
    /// A node id is outside `0..nodes` (ids must form a permutation).
    NodeIdOutOfRange {
        /// The offending id.
        id: usize,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// Every node is memory-only; nothing can execute.
    NoComputeNodes,
    /// Compute nodes disagree on their core count (the machine model
    /// has one `cores_per_socket`).
    NonUniformCores {
        /// Node with the deviating count.
        id: usize,
        /// Its core count.
        cores: usize,
        /// The count established by the lowest-id compute node.
        expected: usize,
    },
    /// A memory-only node appears before a compute node in id order;
    /// the machine model keeps memory-only nodes trailing.
    MemoryNodeNotTrailing {
        /// The offending memory-only node.
        id: usize,
    },
    /// A node's memory capacity is zero, negative, or non-finite.
    BadCapacity {
        /// The offending node.
        id: usize,
    },
    /// A node's memory spec has a non-positive bandwidth/latency or a
    /// malformed lookup surcharge.
    BadMemory {
        /// The offending node.
        id: usize,
    },
    /// A link with zero, negative, or non-finite bandwidth.
    ZeroBandwidthLink {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// A link whose hop latency is negative or NaN.
    BadLinkLatency {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// A link from a node to itself.
    SelfLoopLink {
        /// The node.
        id: usize,
    },
    /// A link endpoint that is not a node id.
    UnknownEndpoint {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// A memory-only node with no link at all: its capacity would be
    /// unreachable from every core.
    OrphanMemoryNode {
        /// The orphaned node.
        id: usize,
    },
    /// A node unreachable from node 0 over the link graph.
    Disconnected {
        /// The unreachable node.
        id: usize,
    },
    /// The lowered spec failed `MachineSpec::validate` (core, cache, or
    /// coherence parameters out of range).
    Machine(String),
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoNodes => write!(f, "topology has no nodes"),
            Self::DuplicateNodeId { id } => write!(f, "duplicate node id {id}"),
            Self::NodeIdOutOfRange { id, nodes } => {
                write!(f, "node id {id} out of range for {nodes} nodes (ids must be 0..{nodes})")
            }
            Self::NoComputeNodes => write!(f, "topology has no compute nodes"),
            Self::NonUniformCores { id, cores, expected } => {
                write!(f, "node {id} has {cores} cores but the machine model needs a uniform {expected} per compute node")
            }
            Self::MemoryNodeNotTrailing { id } => {
                write!(f, "memory-only node {id} precedes a compute node; memory nodes must trail")
            }
            Self::BadCapacity { id } => write!(f, "node {id} has a non-positive memory capacity"),
            Self::BadMemory { id } => write!(f, "node {id} has an invalid memory spec"),
            Self::ZeroBandwidthLink { a, b } => {
                write!(f, "link {a}-{b} has non-positive bandwidth")
            }
            Self::BadLinkLatency { a, b } => write!(f, "link {a}-{b} has an invalid hop latency"),
            Self::SelfLoopLink { id } => write!(f, "self-loop link on node {id}"),
            Self::UnknownEndpoint { a, b } => {
                write!(f, "link {a}-{b} references a node outside the graph")
            }
            Self::OrphanMemoryNode { id } => {
                write!(f, "memory-only node {id} has no link; its capacity is unreachable")
            }
            Self::Disconnected { id } => write!(f, "node {id} is unreachable from node 0"),
            Self::Machine(msg) => write!(f, "lowered spec rejected: {msg}"),
        }
    }
}

impl std::error::Error for TopoError {}
