//! Machine generations: the 2006 presets re-expressed through the
//! generator, plus the post-2006 chiplet and HBM-tier machines.
//!
//! The 2006 graphs lower to specs **byte-identical** to the
//! hand-rolled `corescope_machine::systems` constructors (asserted in
//! tests below), so every existing artifact reproduces exactly when
//! routed through here. The modern generations consume the four
//! `CalibParams` topo axes (`onpkg_bandwidth`, `onpkg_latency`,
//! `tier_dram_bandwidth`, `tier_hbm_bandwidth`) anchored against
//! Bergstrom (arXiv:1103.3225) and RZBENCH (arXiv:0712.3389) numbers
//! in `corescope-calib`.

use crate::blueprint::{Blueprint, MemoryTier};
use crate::error::TopoError;
use crate::graph::{TopoGraph, TopoLink, TopoNode};
use corescope_machine::systems::calib;
use corescope_machine::{
    CacheSpec, CalibParams, CoherenceSpec, CoreSpec, LinkSpec, Machine, MachineSpec, MemorySpec,
};

/// Fixed (non-axis) constants of the modern generations. The four
/// tunable axes live in `CalibParams`; everything here is datasheet
/// geometry the calibration never moves.
pub mod fixed {
    /// EPYC-like core clock.
    pub const EPYC_FREQUENCY_HZ: f64 = 3.4e9;
    /// HBM-node core clock (wider, slower parts).
    pub const HBM_FREQUENCY_HZ: f64 = 2.4e9;
    /// Double-precision flops/cycle with two 256-bit FMA pipes.
    pub const FLOPS_PER_CYCLE: f64 = 16.0;
    /// L1 data cache: 32 KiB.
    pub const L1_BYTES: f64 = 32.0 * 1024.0;
    /// Per-core share of the chiplet L2/L3: 4 MiB.
    pub const L2_BYTES: f64 = 4.0 * 1024.0 * 1024.0;
    /// Cache line: 64 B.
    pub const LINE_BYTES: f64 = 64.0;
    /// Outstanding line fills under modern prefetchers.
    pub const STREAM_MLP: f64 = 24.0;
    /// Outstanding line fills for dependent random access.
    pub const RANDOM_MLP: f64 = 4.0;
    /// Outstanding line fills for prefetch-defeating strides.
    pub const STRIDED_MLP: f64 = 8.0;
    /// Outstanding dependent table lookups.
    pub const LOOKUP_MLP: f64 = 8.0;
    /// Idle latency of a chiplet's local DRAM: ~90 ns.
    pub const TIER_DRAM_LATENCY: f64 = 90e-9;
    /// Idle latency of the HBM tier: ~110 ns (HBM trades latency for
    /// bandwidth).
    pub const TIER_HBM_LATENCY: f64 = 110e-9;
    /// Row-miss/TLB surcharge per dependent lookup on DDR5-class
    /// controllers.
    pub const LOOKUP_LATENCY: f64 = 40e-9;
    /// Usable cross-package (socket-to-socket) link bandwidth per
    /// direction.
    pub const CROSS_PACKAGE_BANDWIDTH: f64 = 25e9;
    /// Cross-package hop latency.
    pub const CROSS_PACKAGE_LATENCY: f64 = 60e-9;
    /// Directory-filtered probe base cost (no K8-style broadcast).
    pub const PROBE_BASE: f64 = 10e-9;
    /// Directory probe cost per hop of diameter.
    pub const PROBE_PER_HOP: f64 = 5e-9;
    /// Probe fabric capacity: directory coherence does not broadcast,
    /// so the fabric never binds.
    pub const PROBE_CAPACITY: f64 = 1e12;
    /// DRAM capacity per chiplet node on the EPYC-like machine.
    pub const EPYC_NODE_CAPACITY: f64 = 16.0 * super::GIB;
    /// DDR channel pairs feeding the HBM machine's one DRAM node (the
    /// node bandwidth is this many times `tier_dram_bandwidth`).
    pub const HBM_DRAM_CHANNEL_PAIRS: f64 = 4.0;
    /// DRAM capacity of the HBM machine.
    pub const HBM_DRAM_CAPACITY: f64 = 64.0 * super::GIB;
    /// HBM stack capacity.
    pub const HBM_CAPACITY: f64 = 16.0 * super::GIB;
    /// On-package fabric bandwidth between the cores and the HBM
    /// stack.
    pub const HBM_FABRIC_BANDWIDTH: f64 = 400e9;
    /// Fabric hop latency to the HBM stack.
    pub const HBM_FABRIC_LATENCY: f64 = 10e-9;
}

const GIB: f64 = calib::GIB;

/// A machine generation the generator can instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Generation {
    /// 2006: Cray XD1 node, 2 × single-core Opteron 248.
    Tiger,
    /// 2006: DMZ cluster node, 2 × dual-core Opteron 275.
    Dmz,
    /// 2006: Iwill H8501, 8 × dual-core Opteron 865 ladder.
    Longs,
    /// Modern: 2 packages × 4 chiplets × 4 cores, meshed on-package.
    Epyc,
    /// Modern: one 16-core node with DRAM plus an HBM memory-only
    /// node.
    Hbm,
}

impl Generation {
    /// Every generation, oldest first.
    pub fn all() -> [Generation; 5] {
        [Self::Tiger, Self::Dmz, Self::Longs, Self::Epyc, Self::Hbm]
    }

    /// Stable CLI/report key.
    pub fn key(self) -> &'static str {
        match self {
            Self::Tiger => "tiger",
            Self::Dmz => "dmz",
            Self::Longs => "longs",
            Self::Epyc => "epyc",
            Self::Hbm => "hbm",
        }
    }

    /// Parses a key produced by [`Generation::key`].
    pub fn parse(s: &str) -> Option<Self> {
        Self::all().into_iter().find(|g| g.key() == s)
    }

    /// One-line description for catalogues.
    pub fn describe(self) -> &'static str {
        match self {
            Self::Tiger => "2006: 2x1-core Opteron 248, one HT link",
            Self::Dmz => "2006: 2x2-core Opteron 275, one HT link",
            Self::Longs => "2006: 8x2-core Opteron 865 HT ladder",
            Self::Epyc => "now: 2 packages x 4 chiplets x 4 cores, on-package mesh",
            Self::Hbm => "now: 16-core node with DRAM + HBM memory tiers",
        }
    }

    /// The generation's topology graph at a calibration point.
    pub fn graph_with(self, p: &CalibParams) -> TopoGraph {
        match self {
            Self::Tiger => k8_graph("tiger", p, 2.2e9, 1, 4.0 * GIB, 2, p.probe_capacity_small),
            Self::Dmz => k8_graph("dmz", p, 2.2e9, 2, 2.0 * GIB, 2, p.probe_capacity_small),
            Self::Longs => k8_graph("longs", p, 1.8e9, 2, 4.0 * GIB, 8, p.probe_capacity_ladder),
            Self::Epyc => epyc_blueprint(p).expand(),
            Self::Hbm => hbm_blueprint(p).expand(),
        }
    }

    /// Lowered machine spec at a calibration point.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError`] if the generation's graph fails to lower —
    /// impossible for in-bounds calibration points, but a wildly
    /// out-of-box point (zero bandwidth) degrades into a typed error
    /// instead of a panic.
    pub fn try_spec_with(self, p: &CalibParams) -> Result<MachineSpec, TopoError> {
        self.graph_with(p).lower()
    }

    /// Lowered machine spec at a calibration point.
    ///
    /// # Panics
    ///
    /// Panics if the point produces an invalid spec (non-positive
    /// bandwidths); use [`Generation::try_spec_with`] to handle that.
    pub fn spec_with(self, p: &CalibParams) -> MachineSpec {
        self.try_spec_with(p).expect("generation preset lowers")
    }

    /// Lowered machine spec at the shipped calibration.
    pub fn spec(self) -> MachineSpec {
        self.spec_with(&CalibParams::paper_2006())
    }

    /// Routable machine at a calibration point.
    ///
    /// # Panics
    ///
    /// As [`Generation::spec_with`].
    pub fn machine_with(self, p: &CalibParams) -> Machine {
        Machine::new(self.spec_with(p))
    }

    /// Routable machine at the shipped calibration.
    pub fn machine(self) -> Machine {
        Machine::new(self.spec())
    }
}

fn k8_cache(p: &CalibParams) -> CacheSpec {
    CacheSpec {
        l1_bytes: p.l1_bytes,
        l2_bytes: p.l2_bytes,
        line_bytes: p.line_bytes,
        stream_mlp: p.stream_mlp,
        random_mlp: p.random_mlp,
        strided_mlp: p.strided_mlp,
        lookup_mlp: p.lookup_mlp,
    }
}

fn k8_memory(p: &CalibParams) -> MemorySpec {
    MemorySpec {
        controller_bw: p.dram_bandwidth,
        idle_latency: p.dram_latency,
        lookup_latency: p.lookup_latency,
    }
}

/// A 2006 K8 machine as a graph: uniform nodes, the HT link graph of
/// the preset (single edge for two sockets, the 2×4 ladder for eight).
/// Lowers to exactly the `systems::*_with` spec.
fn k8_graph(
    name: &str,
    p: &CalibParams,
    frequency_hz: f64,
    cores: usize,
    capacity: f64,
    sockets: usize,
    probe_capacity: f64,
) -> TopoGraph {
    let ht = LinkSpec { bandwidth: p.ht_bandwidth, hop_latency: p.ht_hop_latency };
    let links = if sockets == 2 {
        vec![TopoLink { a: 0, b: 1, link: ht }]
    } else {
        // The Iwill H8501 ladder, in the preset's edge order: per row a
        // rung, then the two rails down to the next row.
        let mut links = Vec::new();
        for r in 0..sockets / 2 {
            links.push(TopoLink { a: r * 2, b: r * 2 + 1, link: ht.clone() });
            if r + 1 < sockets / 2 {
                links.push(TopoLink { a: r * 2, b: (r + 1) * 2, link: ht.clone() });
                links.push(TopoLink { a: r * 2 + 1, b: (r + 1) * 2 + 1, link: ht.clone() });
            }
        }
        links
    };
    TopoGraph {
        name: name.into(),
        core: CoreSpec { frequency_hz, flops_per_cycle: p.flops_per_cycle },
        cache: k8_cache(p),
        coherence: CoherenceSpec {
            base_probe: p.probe_base,
            per_hop_probe: p.probe_per_hop,
            probe_capacity,
        },
        nodes: (0..sockets)
            .map(|id| TopoNode { id, cores, capacity_bytes: capacity, memory: k8_memory(p) })
            .collect(),
        links,
    }
}

fn modern_cache() -> CacheSpec {
    CacheSpec {
        l1_bytes: fixed::L1_BYTES,
        l2_bytes: fixed::L2_BYTES,
        line_bytes: fixed::LINE_BYTES,
        stream_mlp: fixed::STREAM_MLP,
        random_mlp: fixed::RANDOM_MLP,
        strided_mlp: fixed::STRIDED_MLP,
        lookup_mlp: fixed::LOOKUP_MLP,
    }
}

fn modern_coherence() -> CoherenceSpec {
    CoherenceSpec {
        base_probe: fixed::PROBE_BASE,
        per_hop_probe: fixed::PROBE_PER_HOP,
        probe_capacity: fixed::PROBE_CAPACITY,
    }
}

/// The EPYC-like machine: 2 packages × 4 chiplets × 4 cores. Each
/// chiplet owns a DDR channel pair; chiplets mesh on-package over
/// Infinity-Fabric-class links and chain to the peer package over
/// slower xGMI-class links.
fn epyc_blueprint(p: &CalibParams) -> Blueprint {
    Blueprint {
        name: "epyc".into(),
        packages: 2,
        chiplets_per_package: 4,
        cores_per_chiplet: 4,
        chiplet_capacity_bytes: fixed::EPYC_NODE_CAPACITY,
        chiplet_memory: MemorySpec {
            controller_bw: p.tier_dram_bandwidth,
            idle_latency: fixed::TIER_DRAM_LATENCY,
            lookup_latency: fixed::LOOKUP_LATENCY,
        },
        onpackage_link: LinkSpec { bandwidth: p.onpkg_bandwidth, hop_latency: p.onpkg_latency },
        cross_package_link: LinkSpec {
            bandwidth: fixed::CROSS_PACKAGE_BANDWIDTH,
            hop_latency: fixed::CROSS_PACKAGE_LATENCY,
        },
        memory_tiers: vec![],
        core: CoreSpec {
            frequency_hz: fixed::EPYC_FREQUENCY_HZ,
            flops_per_cycle: fixed::FLOPS_PER_CYCLE,
        },
        cache: modern_cache(),
        coherence: modern_coherence(),
    }
}

/// The HBM-tiered node: 16 cores on one DRAM-backed NUMA node, plus an
/// HBM stack as a second, memory-only NUMA node behind an on-package
/// fabric link — the flat-mode tiered-memory machine.
fn hbm_blueprint(p: &CalibParams) -> Blueprint {
    Blueprint {
        name: "hbm".into(),
        packages: 1,
        chiplets_per_package: 1,
        cores_per_chiplet: 16,
        chiplet_capacity_bytes: fixed::HBM_DRAM_CAPACITY,
        chiplet_memory: MemorySpec {
            controller_bw: fixed::HBM_DRAM_CHANNEL_PAIRS * p.tier_dram_bandwidth,
            idle_latency: fixed::TIER_DRAM_LATENCY,
            lookup_latency: fixed::LOOKUP_LATENCY,
        },
        onpackage_link: LinkSpec { bandwidth: p.onpkg_bandwidth, hop_latency: p.onpkg_latency },
        cross_package_link: LinkSpec {
            bandwidth: fixed::CROSS_PACKAGE_BANDWIDTH,
            hop_latency: fixed::CROSS_PACKAGE_LATENCY,
        },
        memory_tiers: vec![MemoryTier {
            attach: 0,
            capacity_bytes: fixed::HBM_CAPACITY,
            memory: MemorySpec {
                controller_bw: p.tier_hbm_bandwidth,
                idle_latency: fixed::TIER_HBM_LATENCY,
                lookup_latency: fixed::LOOKUP_LATENCY,
            },
            link: LinkSpec {
                bandwidth: fixed::HBM_FABRIC_BANDWIDTH,
                hop_latency: fixed::HBM_FABRIC_LATENCY,
            },
        }],
        core: CoreSpec {
            frequency_hz: fixed::HBM_FREQUENCY_HZ,
            flops_per_cycle: fixed::FLOPS_PER_CYCLE,
        },
        cache: modern_cache(),
        coherence: modern_coherence(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corescope_machine::systems;

    #[test]
    fn seed_generations_lower_byte_identically() {
        // The whole satellite-1 contract: routing the 2006 presets
        // through the generator yields the *same spec, bit for bit* as
        // the hand-rolled constructors — at the shipped point and at
        // any other calibration point.
        let mut perturbed = CalibParams::paper_2006();
        perturbed.dram_latency *= 1.25;
        perturbed.ht_bandwidth *= 0.75;
        for p in [CalibParams::paper_2006(), perturbed] {
            assert_eq!(Generation::Tiger.spec_with(&p), systems::tiger_with(&p));
            assert_eq!(Generation::Dmz.spec_with(&p), systems::dmz_with(&p));
            assert_eq!(Generation::Longs.spec_with(&p), systems::longs_with(&p));
        }
    }

    #[test]
    fn keys_parse_round_trip() {
        for g in Generation::all() {
            assert_eq!(Generation::parse(g.key()), Some(g));
            assert!(!g.describe().is_empty());
            assert!(g.describe().len() < 80, "{}", g.key());
        }
        assert_eq!(Generation::parse("beluga"), None);
    }

    #[test]
    fn epyc_structure() {
        let m = Generation::Epyc.machine();
        assert_eq!(m.num_cores(), 32);
        assert_eq!(m.num_sockets(), 8);
        assert_eq!(m.num_compute_sockets(), 8);
        assert_eq!(m.topology().diameter(), 2);
        let spec = m.spec();
        // The four cross-package links deviate from the on-package
        // default.
        assert_eq!(spec.edge_links.len(), 4);
        assert!(spec.node_memory.is_empty());
        // Chiplet NUMA factor is far milder than the 2006 ladder:
        // remote/local latency under 2x, where Longs is ~2.5x.
        let local = m.memory_latency(
            corescope_machine::CoreId::new(0),
            corescope_machine::NumaNodeId::new(0),
        );
        let far = m.memory_latency(
            corescope_machine::CoreId::new(0),
            corescope_machine::NumaNodeId::new(7),
        );
        assert!(far / local < 2.0, "epyc NUMA factor {:.2}", far / local);
    }

    #[test]
    fn hbm_structure() {
        let m = Generation::Hbm.machine();
        assert_eq!(m.num_cores(), 16);
        assert_eq!(m.num_sockets(), 2);
        assert_eq!(m.num_compute_sockets(), 1);
        let spec = m.spec();
        assert_eq!(spec.memory_only_nodes, 1);
        assert_eq!(spec.node_memory.len(), 1);
        // The HBM tier trades latency for bandwidth.
        assert!(spec.memory_of(1).controller_bw > 4.0 * spec.memory_of(0).controller_bw);
        assert!(spec.memory_of(1).idle_latency > spec.memory_of(0).idle_latency);
        // No coherence probe on a single compute socket.
        let local = m.memory_latency(
            corescope_machine::CoreId::new(0),
            corescope_machine::NumaNodeId::new(0),
        );
        assert_eq!(local, fixed::TIER_DRAM_LATENCY);
    }

    #[test]
    fn modern_axes_move_the_modern_specs() {
        let mut p = CalibParams::paper_2006();
        p.tier_hbm_bandwidth *= 1.5;
        p.onpkg_latency *= 2.0;
        let epyc = Generation::Epyc.spec_with(&p);
        assert_eq!(epyc.link.hop_latency, p.onpkg_latency);
        let hbm = Generation::Hbm.spec_with(&p);
        assert_eq!(hbm.memory_of(1).controller_bw, p.tier_hbm_bandwidth);
        // And the 2006 machines ignore them entirely.
        assert_eq!(Generation::Longs.spec_with(&p), systems::longs());
    }

    #[test]
    fn out_of_box_point_degrades_to_typed_error() {
        let mut p = CalibParams::paper_2006();
        p.tier_dram_bandwidth = 0.0;
        assert!(matches!(Generation::Epyc.try_spec_with(&p), Err(TopoError::BadMemory { .. })));
    }
}
