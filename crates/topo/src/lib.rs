//! # corescope-topo
//!
//! Generative machine-topology subsystem: declarative blueprints of
//! chiplet packages and heterogeneous memory tiers, expanded into
//! explicit topology graphs and lowered to validated
//! [`corescope_machine::MachineSpec`]s.
//!
//! Three layers:
//!
//! * [`Blueprint`] — "2 packages × 4 chiplets × 4 cores, HBM on node
//!   0" datasheet form; [`Blueprint::expand`] unrolls it;
//! * [`TopoGraph`] — explicit nodes (compute or memory-only) and
//!   links; [`TopoGraph::lower`] validates (typed [`TopoError`]s,
//!   never panics) and emits a `MachineSpec` with per-node/per-edge
//!   overrides for anything non-uniform;
//! * [`Generation`] — the instantiated machines: the 2006 presets
//!   re-expressed byte-identically, plus the EPYC-like chiplet machine
//!   and the HBM+DRAM tiered node, all parameterized by
//!   [`corescope_machine::CalibParams`].
//!
//! ```
//! use corescope_topo::Generation;
//!
//! let epyc = Generation::Epyc.machine();
//! assert_eq!(epyc.num_cores(), 32);
//! // Chiplet NUMA: 8 memory nodes, 2 hops corner to corner.
//! assert_eq!(epyc.topology().diameter(), 2);
//!
//! // The 2006 machines come out of the generator bit-identical to
//! // the hand-rolled presets.
//! let longs = Generation::Longs.spec();
//! assert_eq!(longs, corescope_machine::systems::longs());
//! ```

pub mod blueprint;
pub mod error;
pub mod generations;
pub mod graph;

pub use blueprint::{Blueprint, MemoryTier};
pub use error::TopoError;
pub use generations::Generation;
pub use graph::{TopoGraph, TopoLink, TopoNode};
