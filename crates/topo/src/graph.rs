//! Explicit topology graphs and their lowering to `MachineSpec`.
//!
//! A [`TopoGraph`] is the fully-expanded form of a machine: one node
//! per NUMA memory node (compute nodes carry cores, memory-only nodes
//! carry just a tier), one link per point-to-point interconnect, plus
//! the machine-wide core/cache/coherence models. [`TopoGraph::lower`]
//! validates the graph (every malformed shape maps to a typed
//! [`TopoError`], never a panic) and emits a
//! [`corescope_machine::MachineSpec`]: the uniform parts become the
//! spec's shared `memory`/`link`, anything deviating becomes a
//! per-node or per-edge override, and trailing core-less nodes become
//! `memory_only_nodes`.

use crate::error::TopoError;
use corescope_machine::spec::LinkEdge;
use corescope_machine::{
    CacheSpec, CoherenceSpec, CoreSpec, LinkSpec, Machine, MachineSpec, MemorySpec,
};

/// One NUMA node of a topology graph.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoNode {
    /// Node id; ids must form `0..nodes.len()`.
    pub id: usize,
    /// Cores on this node; `0` marks a memory-only node (HBM stack,
    /// CXL expander).
    pub cores: usize,
    /// Memory capacity in bytes.
    pub capacity_bytes: f64,
    /// The node's memory controller/tier parameters.
    pub memory: MemorySpec,
}

/// One bidirectional interconnect link of a topology graph.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoLink {
    /// One endpoint (node id).
    pub a: usize,
    /// The other endpoint (node id).
    pub b: usize,
    /// Bandwidth/latency of the link.
    pub link: LinkSpec,
}

/// A complete machine topology: nodes, links, and the shared models.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoGraph {
    /// Machine name carried into the lowered spec.
    pub name: String,
    /// Per-core compute capability.
    pub core: CoreSpec,
    /// Per-core cache hierarchy.
    pub cache: CacheSpec,
    /// Coherence probe model.
    pub coherence: CoherenceSpec,
    /// NUMA nodes. Compute nodes must precede memory-only nodes in id
    /// order, and all compute nodes must share a core count.
    pub nodes: Vec<TopoNode>,
    /// Point-to-point links. Order is preserved into the spec's edge
    /// list, so it is part of the machine's identity.
    pub links: Vec<TopoLink>,
}

fn positive(x: f64) -> bool {
    x.is_finite() && x > 0.0
}

fn memory_ok(m: &MemorySpec) -> bool {
    positive(m.controller_bw)
        && positive(m.idle_latency)
        && m.lookup_latency.is_finite()
        && m.lookup_latency >= 0.0
}

impl TopoGraph {
    /// Validates graph shape: ids, compute/memory partition, node and
    /// link parameters, and connectivity.
    ///
    /// # Errors
    ///
    /// Returns the first applicable [`TopoError`]; see that enum for
    /// the full catalogue of rejected shapes.
    pub fn validate(&self) -> Result<(), TopoError> {
        let n = self.nodes.len();
        if n == 0 {
            return Err(TopoError::NoNodes);
        }
        let mut seen = vec![false; n];
        for node in &self.nodes {
            if node.id >= n {
                return Err(TopoError::NodeIdOutOfRange { id: node.id, nodes: n });
            }
            if seen[node.id] {
                return Err(TopoError::DuplicateNodeId { id: node.id });
            }
            seen[node.id] = true;
        }
        // Ids are a permutation of 0..n; inspect nodes in id order.
        let mut by_id: Vec<&TopoNode> = self.nodes.iter().collect();
        by_id.sort_by_key(|node| node.id);
        let compute = by_id.iter().take_while(|node| node.cores > 0).count();
        if compute == 0 {
            return Err(TopoError::NoComputeNodes);
        }
        if let Some(node) = by_id[compute..].iter().find(|node| node.cores > 0) {
            // A compute node after the first memory-only node means a
            // memory node sits in the middle of the compute range.
            let gap = by_id[..node.id].iter().find(|m| m.cores == 0).expect("gap exists");
            return Err(TopoError::MemoryNodeNotTrailing { id: gap.id });
        }
        let expected = by_id[0].cores;
        for node in &by_id[..compute] {
            if node.cores != expected {
                return Err(TopoError::NonUniformCores {
                    id: node.id,
                    cores: node.cores,
                    expected,
                });
            }
        }
        for node in &by_id {
            if !positive(node.capacity_bytes) {
                return Err(TopoError::BadCapacity { id: node.id });
            }
            if !memory_ok(&node.memory) {
                return Err(TopoError::BadMemory { id: node.id });
            }
        }
        let mut adj = vec![Vec::new(); n];
        for l in &self.links {
            if l.a >= n || l.b >= n {
                return Err(TopoError::UnknownEndpoint { a: l.a, b: l.b });
            }
            if l.a == l.b {
                return Err(TopoError::SelfLoopLink { id: l.a });
            }
            if !positive(l.link.bandwidth) {
                return Err(TopoError::ZeroBandwidthLink { a: l.a, b: l.b });
            }
            if l.link.hop_latency.is_nan() || l.link.hop_latency < 0.0 {
                return Err(TopoError::BadLinkLatency { a: l.a, b: l.b });
            }
            adj[l.a].push(l.b);
            adj[l.b].push(l.a);
        }
        for node in &by_id[compute..] {
            if adj[node.id].is_empty() {
                return Err(TopoError::OrphanMemoryNode { id: node.id });
            }
        }
        // BFS connectivity over the undirected link graph.
        let mut reached = vec![false; n];
        let mut queue = vec![0usize];
        reached[0] = true;
        while let Some(u) = queue.pop() {
            for &v in &adj[u] {
                if !reached[v] {
                    reached[v] = true;
                    queue.push(v);
                }
            }
        }
        if let Some(id) = reached.iter().position(|r| !r) {
            return Err(TopoError::Disconnected { id });
        }
        Ok(())
    }

    /// Lowers the graph to a validated [`MachineSpec`].
    ///
    /// Node 0's memory spec and the first link's spec become the
    /// machine-wide defaults; deviating nodes/links become overrides.
    /// A graph whose nodes and links are all alike therefore lowers to
    /// a *uniform* spec — this is what keeps the 2006 presets
    /// byte-identical to their hand-rolled constructors.
    ///
    /// # Errors
    ///
    /// Returns a [`TopoError`] for any malformed graph, or
    /// [`TopoError::Machine`] when the lowered spec fails
    /// `MachineSpec::validate`.
    pub fn lower(&self) -> Result<MachineSpec, TopoError> {
        self.validate()?;
        let n = self.nodes.len();
        let mut by_id: Vec<&TopoNode> = self.nodes.iter().collect();
        by_id.sort_by_key(|node| node.id);
        let compute = by_id.iter().take_while(|node| node.cores > 0).count();
        let memory = by_id[0].memory.clone();
        let node_memory: Vec<(usize, MemorySpec)> = by_id
            .iter()
            .filter(|node| node.memory != memory)
            .map(|node| (node.id, node.memory.clone()))
            .collect();
        let link = self
            .links
            .first()
            .map_or(LinkSpec { bandwidth: 0.0, hop_latency: 0.0 }, |l| l.link.clone());
        let edge_links: Vec<(usize, LinkSpec)> = self
            .links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.link != link)
            .map(|(i, l)| (i, l.link.clone()))
            .collect();
        let spec = MachineSpec {
            name: self.name.clone(),
            sockets: by_id.iter().map(|node| node.capacity_bytes).collect(),
            cores_per_socket: by_id[0].cores,
            core: self.core.clone(),
            cache: self.cache.clone(),
            memory,
            link,
            edges: self.links.iter().map(|l| LinkEdge::new(l.a, l.b)).collect(),
            coherence: self.coherence.clone(),
            node_memory,
            edge_links,
            memory_only_nodes: n - compute,
        };
        spec.validate().map_err(|e| TopoError::Machine(e.to_string()))?;
        Ok(spec)
    }

    /// Lowers the graph and resolves it into a routable [`Machine`].
    ///
    /// # Errors
    ///
    /// As [`TopoGraph::lower`]; a disconnected graph is already caught
    /// there, so machine construction failures surface as
    /// [`TopoError::Machine`].
    pub fn machine(&self) -> Result<Machine, TopoError> {
        Machine::try_new(self.lower()?).map_err(|e| TopoError::Machine(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mem(bw: f64) -> MemorySpec {
        MemorySpec { controller_bw: bw, idle_latency: 80e-9, lookup_latency: 40e-9 }
    }

    fn node(id: usize, cores: usize) -> TopoNode {
        TopoNode { id, cores, capacity_bytes: 1e9, memory: mem(30e9) }
    }

    fn link(a: usize, b: usize) -> TopoLink {
        TopoLink { a, b, link: LinkSpec { bandwidth: 40e9, hop_latency: 30e-9 } }
    }

    fn graph(nodes: Vec<TopoNode>, links: Vec<TopoLink>) -> TopoGraph {
        TopoGraph {
            name: "test".into(),
            core: CoreSpec { frequency_hz: 3e9, flops_per_cycle: 16.0 },
            cache: CacheSpec {
                l1_bytes: 32.0 * 1024.0,
                l2_bytes: 4.0 * 1024.0 * 1024.0,
                line_bytes: 64.0,
                stream_mlp: 24.0,
                random_mlp: 4.0,
                strided_mlp: 8.0,
                lookup_mlp: 8.0,
            },
            coherence: CoherenceSpec {
                base_probe: 10e-9,
                per_hop_probe: 5e-9,
                probe_capacity: 1e12,
            },
            nodes,
            links,
        }
    }

    #[test]
    fn two_node_graph_lowers() {
        let g = graph(vec![node(0, 4), node(1, 4)], vec![link(0, 1)]);
        let spec = g.lower().unwrap();
        assert!(spec.is_uniform());
        assert_eq!(spec.sockets.len(), 2);
        assert_eq!(spec.cores_per_socket, 4);
        g.machine().unwrap();
    }

    #[test]
    fn memory_tier_becomes_override_and_trailing_node() {
        let mut hbm = node(1, 0);
        hbm.memory = mem(600e9);
        let g = graph(vec![node(0, 8), hbm], vec![link(0, 1)]);
        let spec = g.lower().unwrap();
        assert_eq!(spec.memory_only_nodes, 1);
        assert_eq!(spec.node_memory.len(), 1);
        assert_eq!(spec.memory_of(1).controller_bw, 600e9);
        assert!(!spec.is_uniform());
        assert_eq!(Machine::new(spec).num_cores(), 8);
    }

    #[test]
    fn deviant_link_becomes_edge_override() {
        let mut slow = link(1, 2);
        slow.link.bandwidth = 10e9;
        let g = graph(vec![node(0, 2), node(1, 2), node(2, 2)], vec![link(0, 1), slow, link(0, 2)]);
        let spec = g.lower().unwrap();
        assert_eq!(spec.edge_links, vec![(1, LinkSpec { bandwidth: 10e9, hop_latency: 30e-9 })]);
    }

    #[test]
    fn typed_errors_for_each_malformation() {
        let cases: Vec<(TopoGraph, TopoError)> = vec![
            (graph(vec![], vec![]), TopoError::NoNodes),
            (
                graph(vec![node(0, 2), node(0, 2)], vec![link(0, 1)]),
                TopoError::DuplicateNodeId { id: 0 },
            ),
            (
                graph(vec![node(0, 2), node(7, 2)], vec![link(0, 1)]),
                TopoError::NodeIdOutOfRange { id: 7, nodes: 2 },
            ),
            (graph(vec![node(0, 0)], vec![]), TopoError::NoComputeNodes),
            (
                graph(vec![node(0, 2), node(1, 4)], vec![link(0, 1)]),
                TopoError::NonUniformCores { id: 1, cores: 4, expected: 2 },
            ),
            (
                graph(vec![node(0, 2), node(1, 0), node(2, 2)], vec![link(0, 1), link(1, 2)]),
                TopoError::MemoryNodeNotTrailing { id: 1 },
            ),
            (
                graph(vec![node(0, 2), node(1, 2), node(2, 2)], vec![link(0, 1)]),
                TopoError::Disconnected { id: 2 },
            ),
            (
                graph(vec![node(0, 2), node(1, 2)], vec![link(0, 5)]),
                TopoError::UnknownEndpoint { a: 0, b: 5 },
            ),
            (
                graph(vec![node(0, 2), node(1, 2)], vec![link(1, 1)]),
                TopoError::SelfLoopLink { id: 1 },
            ),
        ];
        for (g, want) in cases {
            assert_eq!(g.lower().unwrap_err(), want);
        }
        // Orphan memory node: no link touches node 1 at all.
        let g = graph(vec![node(0, 2), node(1, 0)], vec![]);
        assert_eq!(g.lower().unwrap_err(), TopoError::OrphanMemoryNode { id: 1 });
        // Zero-bandwidth link.
        let mut dead = link(0, 1);
        dead.link.bandwidth = 0.0;
        let g = graph(vec![node(0, 2), node(1, 2)], vec![dead]);
        assert_eq!(g.lower().unwrap_err(), TopoError::ZeroBandwidthLink { a: 0, b: 1 });
        // Negative hop latency.
        let mut bad = link(0, 1);
        bad.link.hop_latency = -1.0;
        let g = graph(vec![node(0, 2), node(1, 2)], vec![bad]);
        assert_eq!(g.lower().unwrap_err(), TopoError::BadLinkLatency { a: 0, b: 1 });
        // Zero capacity / zero-bandwidth memory.
        let mut sick = node(1, 2);
        sick.capacity_bytes = 0.0;
        let g = graph(vec![node(0, 2), sick], vec![link(0, 1)]);
        assert_eq!(g.lower().unwrap_err(), TopoError::BadCapacity { id: 1 });
        let mut sick = node(1, 2);
        sick.memory.controller_bw = f64::NAN;
        let g = graph(vec![node(0, 2), sick], vec![link(0, 1)]);
        assert_eq!(g.lower().unwrap_err(), TopoError::BadMemory { id: 1 });
    }

    #[test]
    fn errors_display_distinctly() {
        let errs = [
            TopoError::NoNodes,
            TopoError::DuplicateNodeId { id: 3 },
            TopoError::OrphanMemoryNode { id: 2 },
            TopoError::ZeroBandwidthLink { a: 0, b: 1 },
            TopoError::Machine("x".into()),
        ];
        let mut msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        msgs.sort();
        msgs.dedup();
        assert_eq!(msgs.len(), errs.len());
    }

    // --- Satellite: arbitrary topology specs never panic; invalid
    // graphs come back as typed TopoErrors.

    /// Capacity candidates, including invalid ones.
    const CAPS: [f64; 5] = [0.0, 1e9, -1.0, f64::NAN, 4e9];
    /// Memory-bandwidth candidates, including invalid ones.
    const BWS: [f64; 4] = [0.0, 30e9, 600e9, f64::INFINITY];
    /// Link-bandwidth candidates, including invalid ones.
    const LINK_BWS: [f64; 3] = [0.0, 40e9, -2.0];
    /// Hop-latency candidates, including invalid ones.
    const LATS: [f64; 3] = [30e-9, -1e-9, f64::NAN];

    proptest! {
        #[test]
        fn arbitrary_graphs_never_panic(
            raw_nodes in proptest::collection::vec(
                (0usize..6, 0usize..4, 0usize..CAPS.len(), 0usize..BWS.len()),
                0..6,
            ),
            raw_links in proptest::collection::vec(
                (0usize..6, 0usize..6, 0usize..LINK_BWS.len(), 0usize..LATS.len()),
                0..8,
            ),
        ) {
            let nodes = raw_nodes
                .into_iter()
                .map(|(id, cores, cap, bw)| TopoNode {
                    id,
                    cores,
                    capacity_bytes: CAPS[cap],
                    memory: mem(BWS[bw]),
                })
                .collect();
            let links = raw_links
                .into_iter()
                .map(|(a, b, bw, lat)| TopoLink {
                    a,
                    b,
                    link: LinkSpec { bandwidth: LINK_BWS[bw], hop_latency: LATS[lat] },
                })
                .collect();
            let g = graph(nodes, links);
            match g.lower() {
                Ok(spec) => {
                    // A graph that lowers must resolve into a machine.
                    prop_assert!(Machine::try_new(spec).is_ok());
                }
                Err(e) => {
                    // Typed error, and displaying it never panics.
                    let _ = e.to_string();
                }
            }
        }

        #[test]
        fn duplicate_ids_are_always_typed(
            dup in 0usize..3,
            cores in 1usize..4,
        ) {
            let g = graph(
                vec![node(dup, cores), node(dup, cores), node(1, cores)],
                vec![link(0, 1)],
            );
            prop_assert_eq!(g.lower().unwrap_err(), TopoError::DuplicateNodeId { id: dup });
        }
    }
}
