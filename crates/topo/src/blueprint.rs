//! Declarative machine blueprints: packages × chiplets × memory tiers.
//!
//! A [`Blueprint`] describes a machine the way a datasheet does — "two
//! packages of four chiplets, four cores each, a DRAM pair per
//! chiplet, an HBM stack on package zero" — and [`Blueprint::expand`]
//! unrolls it into the explicit [`TopoGraph`] the lowering pipeline
//! consumes. Chiplets within a package are fully meshed over the
//! on-package interconnect; packages are chained chiplet-to-chiplet
//! over the (slower) cross-package links; memory tiers append as
//! trailing memory-only nodes hanging off a compute node.

use crate::graph::{TopoGraph, TopoLink, TopoNode};
use corescope_machine::{CacheSpec, CoherenceSpec, CoreSpec, LinkSpec, MemorySpec};

/// An extra memory tier (HBM stack, CXL expander) attached to one
/// compute node as its own trailing NUMA node.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryTier {
    /// Compute node (global chiplet index) the tier hangs off.
    pub attach: usize,
    /// Tier capacity in bytes.
    pub capacity_bytes: f64,
    /// Tier bandwidth/latency parameters.
    pub memory: MemorySpec,
    /// The fabric link between the tier and its compute node.
    pub link: LinkSpec,
}

/// Declarative description of a chiplet machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Blueprint {
    /// Machine name carried through to the spec.
    pub name: String,
    /// Number of packages (sockets in the physical sense).
    pub packages: usize,
    /// Chiplets per package; each chiplet is one NUMA node.
    pub chiplets_per_package: usize,
    /// Cores per chiplet.
    pub cores_per_chiplet: usize,
    /// DRAM capacity per chiplet node, bytes.
    pub chiplet_capacity_bytes: f64,
    /// DRAM controller parameters per chiplet node.
    pub chiplet_memory: MemorySpec,
    /// On-package (die-to-die) link parameters; chiplets of a package
    /// are fully meshed with these.
    pub onpackage_link: LinkSpec,
    /// Cross-package link parameters; chiplet `c` of package `k` links
    /// to chiplet `c` of package `k + 1`.
    pub cross_package_link: LinkSpec,
    /// Extra memory tiers appended as trailing memory-only nodes.
    pub memory_tiers: Vec<MemoryTier>,
    /// Per-core compute capability.
    pub core: CoreSpec,
    /// Per-core cache hierarchy.
    pub cache: CacheSpec,
    /// Coherence model (directory-based machines use a small probe
    /// cost and an effectively unlimited probe fabric).
    pub coherence: CoherenceSpec,
}

impl Blueprint {
    /// Unrolls the blueprint into an explicit topology graph.
    ///
    /// Node ids: chiplet `c` of package `k` is node
    /// `k * chiplets_per_package + c`; memory tiers follow in
    /// declaration order. Link order: package meshes in package order
    /// (lexicographic chiplet pairs), then cross-package chains, then
    /// tier links — deterministic, so the expansion is part of the
    /// machine's identity.
    pub fn expand(&self) -> TopoGraph {
        let per = self.chiplets_per_package;
        let compute = self.packages * per;
        let mut nodes: Vec<TopoNode> = (0..compute)
            .map(|id| TopoNode {
                id,
                cores: self.cores_per_chiplet,
                capacity_bytes: self.chiplet_capacity_bytes,
                memory: self.chiplet_memory.clone(),
            })
            .collect();
        let mut links = Vec::new();
        for k in 0..self.packages {
            let base = k * per;
            for c in 0..per {
                for d in c + 1..per {
                    links.push(TopoLink {
                        a: base + c,
                        b: base + d,
                        link: self.onpackage_link.clone(),
                    });
                }
            }
        }
        for k in 0..self.packages.saturating_sub(1) {
            for c in 0..per {
                links.push(TopoLink {
                    a: k * per + c,
                    b: (k + 1) * per + c,
                    link: self.cross_package_link.clone(),
                });
            }
        }
        for (i, tier) in self.memory_tiers.iter().enumerate() {
            let id = compute + i;
            nodes.push(TopoNode {
                id,
                cores: 0,
                capacity_bytes: tier.capacity_bytes,
                memory: tier.memory.clone(),
            });
            links.push(TopoLink { a: tier.attach, b: id, link: tier.link.clone() });
        }
        TopoGraph {
            name: self.name.clone(),
            core: self.core.clone(),
            cache: self.cache.clone(),
            coherence: self.coherence.clone(),
            nodes,
            links,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blueprint(packages: usize, chiplets: usize) -> Blueprint {
        Blueprint {
            name: "bp".into(),
            packages,
            chiplets_per_package: chiplets,
            cores_per_chiplet: 4,
            chiplet_capacity_bytes: 16e9,
            chiplet_memory: MemorySpec {
                controller_bw: 32e9,
                idle_latency: 90e-9,
                lookup_latency: 40e-9,
            },
            onpackage_link: LinkSpec { bandwidth: 45e9, hop_latency: 30e-9 },
            cross_package_link: LinkSpec { bandwidth: 25e9, hop_latency: 60e-9 },
            memory_tiers: vec![],
            core: CoreSpec { frequency_hz: 3.4e9, flops_per_cycle: 16.0 },
            cache: CacheSpec {
                l1_bytes: 32.0 * 1024.0,
                l2_bytes: 4.0 * 1024.0 * 1024.0,
                line_bytes: 64.0,
                stream_mlp: 24.0,
                random_mlp: 4.0,
                strided_mlp: 8.0,
                lookup_mlp: 8.0,
            },
            coherence: CoherenceSpec {
                base_probe: 10e-9,
                per_hop_probe: 5e-9,
                probe_capacity: 1e12,
            },
        }
    }

    #[test]
    fn mesh_and_cross_link_counts() {
        let g = blueprint(2, 4).expand();
        assert_eq!(g.nodes.len(), 8);
        // 2 packages x C(4,2) mesh + 4 cross links.
        assert_eq!(g.links.len(), 2 * 6 + 4);
        let m = g.machine().unwrap();
        assert_eq!(m.num_cores(), 32);
        assert_eq!(m.topology().diameter(), 2);
    }

    #[test]
    fn tiers_become_trailing_memory_nodes() {
        let mut bp = blueprint(1, 1);
        bp.cores_per_chiplet = 16;
        bp.memory_tiers = vec![MemoryTier {
            attach: 0,
            capacity_bytes: 16e9,
            memory: MemorySpec {
                controller_bw: 600e9,
                idle_latency: 110e-9,
                lookup_latency: 40e-9,
            },
            link: LinkSpec { bandwidth: 400e9, hop_latency: 10e-9 },
        }];
        let spec = bp.expand().lower().unwrap();
        assert_eq!(spec.memory_only_nodes, 1);
        assert_eq!(spec.sockets.len(), 2);
        assert_eq!(spec.memory_of(1).controller_bw, 600e9);
        assert_eq!(spec.num_compute_sockets(), 1);
    }

    #[test]
    fn single_package_has_no_cross_links() {
        let g = blueprint(1, 4).expand();
        assert_eq!(g.links.len(), 6);
        assert!(g.lower().unwrap().is_uniform());
    }
}
