//! Chaos rig for the NDJSON service: every injected failure — garbage
//! frames, oversized lines, mid-request disconnects, slow-loris partial
//! lines, deadline storms, admission overload, fault-plan scenarios that
//! kill ranks mid-run — must surface as a typed response or a clean
//! connection close, never a hang. Every test body runs under a watchdog
//! thread; a wedged server fails the test instead of wedging the suite.

use corescope_sched::{Scenario, Scheduler, ServeConfig, Server, System, Workload};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Runs `body` on its own thread and panics if it does not finish within
/// `secs` — the no-hang guarantee, enforced mechanically.
fn watchdog<T: Send + 'static>(secs: u64, body: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(body());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(value) => {
            let _ = worker.join();
            value
        }
        Err(_) => panic!("watchdog: test body still running after {secs}s — service hung"),
    }
}

fn bsp(steps: usize) -> Scenario {
    Scenario::new(
        System::Dmz,
        2,
        Workload::Bsp { steps, flops_per_step: 1e6, bytes_per_step: 1e6, sync_bytes: 8.0 },
    )
}

/// A served TCP fixture: server + listener thread, torn down by
/// requesting shutdown and joining.
struct Rig {
    server: Arc<Server>,
    addr: std::net::SocketAddr,
    listen: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Rig {
    fn start(config: ServeConfig, jobs: usize) -> Rig {
        Rig::start_with_sched(config, Arc::new(Scheduler::new(jobs)))
    }

    fn start_with_sched(config: ServeConfig, sched: Arc<Scheduler>) -> Rig {
        let server = Arc::new(Server::new(sched, config));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let listen = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.listen(listener))
        };
        Rig { server, addr, listen: Some(listen) }
    }

    fn connect(&self) -> TcpStream {
        TcpStream::connect(self.addr).expect("connect to rig")
    }

    /// Sends `input`, half-closes, and returns all response lines.
    fn roundtrip(&self, input: &str) -> Vec<String> {
        let stream = self.connect();
        let mut writer = stream.try_clone().expect("clone stream");
        writer.write_all(input.as_bytes()).expect("write request");
        writer.flush().expect("flush");
        stream.shutdown(Shutdown::Write).expect("half-close");
        BufReader::new(stream).lines().map(|l| l.expect("read response")).collect()
    }

    /// Graceful shutdown; returns once the listener has fully joined.
    fn stop(mut self) {
        self.server.request_shutdown();
        if let Some(listen) = self.listen.take() {
            listen.join().expect("listener thread").expect("listener io");
        }
    }
}

impl Drop for Rig {
    fn drop(&mut self) {
        self.server.request_shutdown();
        if let Some(listen) = self.listen.take() {
            let _ = listen.join();
        }
    }
}

#[test]
fn garbage_frames_get_typed_responses_and_the_connection_survives() {
    watchdog(30, || {
        let rig = Rig::start(ServeConfig::default(), 1);
        let mut input = String::new();
        input.push_str("}{ not json\n");
        input.push_str("[1,2,3\n");
        input.push_str(&format!("{}\n", bsp(2).to_json()));
        let lines = rig.roundtrip(&input);
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines[0].contains("\"kind\":\"bad-request\""), "{}", lines[0]);
        assert!(lines[1].contains("\"kind\":\"bad-request\""), "{}", lines[1]);
        assert!(lines[2].starts_with("{\"ok\":true"), "{}", lines[2]);
        // A healthy cache never trips the degradation warning.
        assert_eq!(rig.server.stats().cache_unwritable, 0);
        assert!(!rig.server.summary().contains("cache unwritable"), "{}", rig.server.summary());
        rig.stop();
    });
}

#[test]
fn unwritable_cache_is_a_counted_warning_not_a_failure() {
    watchdog(30, || {
        // A disk cache whose tag directory is blocked by a plain file:
        // every entry write fails the way a read-only mount would, with
        // no permission-bit games (works as root too).
        let root = std::env::temp_dir()
            .join(format!("corescope-serve-unwritable-{:?}", std::thread::current().id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join(corescope_sched::ENGINE_TAG), b"i am a file").unwrap();
        let sched =
            Arc::new(Scheduler::with_cache(1, corescope_sched::ResultCache::on_disk(&root)));
        let rig = Rig::start_with_sched(ServeConfig::default(), sched);
        // Requests still succeed: the cache is an accelerator, never a
        // correctness dependency.
        let lines = rig.roundtrip(&format!("{}\n{}\n", bsp(2).to_json(), bsp(3).to_json()));
        assert_eq!(lines.len(), 2, "{lines:?}");
        for line in &lines {
            assert!(line.starts_with("{\"ok\":true"), "{line}");
        }
        // …but the failed entry writes are counted and surfaced in the
        // drain summary as a typed, greppable warning.
        let stats = rig.server.stats();
        assert_eq!(stats.cache_unwritable, 2, "one failed write per engine run: {stats:?}");
        let summary = rig.server.summary();
        assert!(summary.contains("cache unwritable 2 (degraded)"), "{summary}");
        rig.stop();
        let _ = std::fs::remove_dir_all(&root);
    });
}

#[test]
fn invalid_utf8_over_tcp_is_survivable() {
    watchdog(30, || {
        let rig = Rig::start(ServeConfig::default(), 1);
        let stream = rig.connect();
        let mut writer = stream.try_clone().unwrap();
        writer.write_all(b"\xff\xfe\x80\x80 binary trash\n").unwrap();
        writer.write_all(bsp(2).to_json().as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let lines: Vec<String> = BufReader::new(stream).lines().map(|l| l.expect("line")).collect();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("\"kind\":\"bad-request\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"ok\":true"), "{}", lines[1]);
        rig.stop();
    });
}

#[test]
fn oversized_line_is_shed_typed_not_buffered() {
    watchdog(30, || {
        let config = ServeConfig { max_line_bytes: 1024, ..ServeConfig::default() };
        let rig = Rig::start(config, 1);
        let flood = "z".repeat(1 << 20); // 1 MiB against a 1 KiB limit
        let lines = rig.roundtrip(&format!("{flood}\n{}\n", bsp(2).to_json()));
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("\"kind\":\"too-large\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"ok\":true"), "{}", lines[1]);
        rig.stop();
    });
}

#[test]
fn mid_request_disconnect_leaves_the_server_serving() {
    watchdog(30, || {
        let rig = Rig::start(ServeConfig::default(), 1);
        {
            // A client that sends half a request and slams the door.
            let mut stream = rig.connect();
            stream.write_all(b"{\"system\":\"dmz\",\"nran").unwrap();
            stream.flush().unwrap();
        } // dropped: full close with data in flight
          // The next client is unaffected.
        let lines = rig.roundtrip(&format!("{}\n", bsp(2).to_json()));
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].starts_with("{\"ok\":true"), "{}", lines[0]);
        rig.stop();
    });
}

#[test]
fn slow_loris_partial_line_cannot_block_drain() {
    watchdog(30, || {
        let rig = Rig::start(ServeConfig::default(), 1);
        // Holds a connection open with an eternally unfinished line.
        let mut loris = rig.connect();
        loris.write_all(b"{\"system\":").unwrap();
        loris.flush().unwrap();
        // A well-behaved client still gets served…
        let lines = rig.roundtrip(&format!("{}\n", bsp(2).to_json()));
        assert!(lines[0].starts_with("{\"ok\":true"));
        // …and shutdown completes despite the loris (watchdog-bounded):
        // its connection closes without a response line.
        rig.stop();
        let mut tail = String::new();
        let n = BufReader::new(&mut loris).read_line(&mut tail).expect("loris close");
        assert_eq!(n, 0, "loris got an unexpected response: {tail:?}");
    });
}

#[test]
fn deadline_storm_sheds_typed_and_in_order() {
    watchdog(60, || {
        // jobs=1 makes dispatch strictly serial: the slow head-of-line
        // scenario runs first, so every 1ms-deadline request behind it
        // has expired by its own dispatch — a deterministic storm.
        let rig = Rig::start(ServeConfig::default(), 1);
        let slow = bsp(20_000).to_json();
        let mut input = format!("{slow}\n");
        let mut storm: Vec<String> = Vec::new();
        for steps in 2..10 {
            let line = bsp(steps).to_json().replacen('{', "{\"deadline_ms\":1,", 1);
            storm.push(line.clone());
            input.push_str(&line);
            input.push('\n');
        }
        let lines = rig.roundtrip(&input);
        assert_eq!(lines.len(), 1 + storm.len(), "{lines:?}");
        assert!(lines[0].starts_with("{\"ok\":true"), "slow head must finish: {}", lines[0]);
        for line in &lines[1..] {
            assert!(line.contains("\"kind\":\"deadline\""), "{line}");
        }
        assert_eq!(rig.server.stats().shed_deadline, storm.len());
        rig.stop();
    });
}

#[test]
fn overload_burst_is_rejected_with_retry_hints() {
    watchdog(60, || {
        let config = ServeConfig { max_inflight: 2, ..ServeConfig::default() };
        let rig = Rig::start(config, 1);
        let mut input = String::new();
        for steps in 1..=6 {
            input.push_str(&bsp(steps).to_json());
            input.push('\n');
        }
        let lines = rig.roundtrip(&input);
        assert_eq!(lines.len(), 6, "{lines:?}");
        let ok = lines.iter().filter(|l| l.starts_with("{\"ok\":true")).count();
        let shed: Vec<_> = lines.iter().filter(|l| l.contains("\"kind\":\"overloaded\"")).collect();
        assert_eq!(ok, 2, "admission cap of 2: {lines:?}");
        assert_eq!(shed.len(), 4, "{lines:?}");
        for line in shed {
            assert!(line.contains("\"retry_after_ms\":"), "{line}");
        }
        // Permits released with the chunk: the service recovers.
        let after = rig.roundtrip(&format!("{}\n", bsp(9).to_json()));
        assert!(after[0].starts_with("{\"ok\":true"), "{after:?}");
        rig.stop();
    });
}

#[test]
fn per_peer_quota_limits_a_greedy_client() {
    watchdog(60, || {
        let config = ServeConfig { quota: 2, ..ServeConfig::default() };
        let rig = Rig::start(config, 1);
        let mut input = String::new();
        for steps in 1..=4 {
            input.push_str(&bsp(steps).to_json());
            input.push('\n');
        }
        let lines = rig.roundtrip(&input);
        assert_eq!(lines.len(), 4, "{lines:?}");
        assert_eq!(lines.iter().filter(|l| l.contains("\"kind\":\"quota\"")).count(), 2);
        assert_eq!(rig.server.stats().shed_quota, 2);
        rig.stop();
    });
}

#[test]
fn fault_plan_scenarios_surface_as_typed_results_or_errors() {
    use corescope_machine::faults::FaultPlan;
    use corescope_machine::ids::RankId;
    use corescope_machine::recovery::CheckpointPolicy;

    watchdog(60, || {
        let rig = Rig::start(ServeConfig::default(), 1);
        // A rank-kill with no recovery policy: the engine reports a
        // failure, which must come back as a typed engine error.
        let doomed = bsp(4).with_faults(FaultPlan::new().rank_kill(0.001, RankId::new(0)));
        // The same fault with checkpointing: survives, recoveries > 0.
        let recovered = doomed.clone().with_recovery(CheckpointPolicy::new(0.01, 1.0e6));
        let input = format!("{}\n{}\n", doomed.to_json(), recovered.to_json());
        let lines = rig.roundtrip(&input);
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].starts_with("{\"ok\":false,\"error\":"), "{}", lines[0]);
        assert!(lines[0].contains("\"kind\":\"engine\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"ok\":true"), "{}", lines[1]);
        assert!(lines[1].contains("\"recoveries\":"), "{}", lines[1]);
        rig.stop();
    });
}

#[test]
fn shutdown_drains_inflight_responses_without_torn_lines() {
    watchdog(60, || {
        let rig = Rig::start(ServeConfig::default(), 1);
        let stream = rig.connect();
        let mut writer = stream.try_clone().unwrap();
        // A chunk that takes real time, so shutdown lands mid-service.
        for steps in [5_000usize, 6_000, 7_000] {
            writeln!(writer, "{}", bsp(steps).to_json()).unwrap();
        }
        writer.flush().unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        std::thread::sleep(Duration::from_millis(120)); // let the chunk be admitted
        rig.server.request_shutdown();
        let lines: Vec<String> =
            BufReader::new(stream).lines().map(|l| l.expect("drained line")).collect();
        assert_eq!(lines.len(), 3, "in-flight chunk must be answered: {lines:?}");
        for line in &lines {
            assert!(line.starts_with("{\"ok\":true"), "{line}");
            corescope_sched::json::parse(line).expect("every drained line is whole JSON");
        }
        rig.stop();
    });
}

#[test]
fn excess_clients_get_one_typed_line_and_a_close() {
    watchdog(60, || {
        let config = ServeConfig { max_clients: 1, ..ServeConfig::default() };
        let rig = Rig::start(config, 1);
        // Occupy the only slot with an idle connection.
        let _holder = rig.connect();
        std::thread::sleep(Duration::from_millis(100)); // let accept() run
        let rejected = rig.connect();
        let mut lines = BufReader::new(rejected).lines();
        let line = lines.next().expect("one rejection line").expect("readable");
        assert!(line.contains("\"kind\":\"overloaded\""), "{line}");
        assert!(lines.next().is_none(), "connection must be closed after the rejection");
        rig.stop();
    });
}
