//! Property tests for the scenario content hash.
//!
//! The result cache is only sound if the digest behaves like a content
//! hash of *everything* that feeds an engine run: stable under
//! re-encoding and JSON round-trips, and different whenever any single
//! scenario field differs. These properties pin both directions down
//! over generated scenarios. (The vendored `proptest` is sampling-only,
//! so scenarios are assembled from generated raw parts, mirroring the
//! solver property tests in `corescope-machine`.)

use corescope_machine::faults::FaultPlan;
use corescope_machine::ids::RankId;
use corescope_machine::recovery::{CheckpointPolicy, RetryPolicy};
use corescope_sched::{
    json, Fidelity, Placement, Scenario, Scheduler, ServeConfig, Server, System, Workload,
};
use corescope_smpi::MpiImpl;
use proptest::prelude::*;
use std::sync::Arc;

/// Raw generated parts for one scenario: discriminants are taken modulo
/// the variant count so every drawn value is valid.
#[allow(clippy::too_many_arguments)]
fn build_scenario(
    sys: usize,
    nranks: usize,
    wl_kind: usize,
    steps: usize,
    a: f64,
    b: f64,
    kill: Option<(f64, usize)>,
    knobs: (usize, usize, Option<f64>, Option<f64>),
) -> Scenario {
    let (fid, mpi, ckpt, retry) = knobs;
    let system = [System::Tiger, System::Dmz, System::Longs][sys % 3];
    let workload = match wl_kind % 4 {
        0 => Workload::Bsp {
            steps,
            flops_per_step: a * 1.0e3,
            bytes_per_step: b * 1.0e3,
            sync_bytes: 8.0,
        },
        1 => Workload::StreamStar {
            kernel: corescope_kernels::stream::StreamKernel::Triad,
            elements_per_rank: steps * 1000 + 1,
            sweeps: 1 + steps % 7,
        },
        2 => Workload::PingPong { bytes: a, reps: 1 + steps % 15 },
        _ => Workload::RandomAccessMpi {
            table_words_per_rank: steps as u64 * 64 + 1,
            updates_per_rank: 1 + (b as u64),
        },
    };
    let mut scenario = Scenario::new(system, nranks, workload)
        .with_fidelity([Fidelity::Full, Fidelity::Quick][fid % 2])
        .with_mpi([MpiImpl::Mpich2, MpiImpl::Lam, MpiImpl::OpenMpi][mpi % 3]);
    if let Some((at, rank)) = kill {
        scenario = scenario.with_faults(FaultPlan::new().rank_kill(at, RankId::new(rank % nranks)));
    }
    if let Some(interval) = ckpt {
        scenario = scenario.with_recovery(CheckpointPolicy::new(interval, 1.0e6));
    }
    if let Some(timeout) = retry {
        scenario = scenario.with_retry(RetryPolicy::new(timeout));
    }
    scenario
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The digest is a pure function of the scenario value: recomputing
    /// it, cloning the scenario, and round-tripping through the JSON
    /// wire format all yield the same 128-bit digest.
    #[test]
    fn digest_survives_reencoding_and_json_roundtrip(
        sys in 0usize..3,
        nranks in 1usize..=16,
        wl_kind in 0usize..4,
        steps in 1usize..64,
        a in 1.0f64..1.0e6,
        b in 1.0f64..1.0e6,
        kill in proptest::option::of((0.0f64..10.0, 0usize..16)),
        knobs in (0usize..2, 0usize..3, proptest::option::of(1.0f64..100.0),
                  proptest::option::of(0.001f64..1.0)),
    ) {
        let scenario = build_scenario(sys, nranks, wl_kind, steps, a, b, kill, knobs);
        let digest = scenario.digest();
        prop_assert_eq!(digest, scenario.digest());
        prop_assert_eq!(digest, scenario.clone().digest());

        let wire = scenario.to_json();
        let parsed = json::parse(&wire).map_err(TestCaseError::fail)?;
        let back = Scenario::from_json(&parsed).map_err(TestCaseError::fail)?;
        prop_assert_eq!(&back, &scenario);
        prop_assert_eq!(back.digest(), digest);
    }

    /// Perturbing any single axis of the scenario moves the digest —
    /// otherwise the cache could serve one configuration's numbers for
    /// another's.
    #[test]
    fn each_axis_separates_the_digest(
        sys in 0usize..3,
        nranks in 1usize..=16,
        wl_kind in 0usize..4,
        steps in 1usize..64,
        a in 1.0f64..1.0e6,
        b in 1.0f64..1.0e6,
        kill in proptest::option::of((0.0f64..10.0, 0usize..16)),
        knobs in (0usize..2, 0usize..3, proptest::option::of(1.0f64..100.0),
                  proptest::option::of(0.001f64..1.0)),
        axis in 0usize..6,
    ) {
        let scenario = build_scenario(sys, nranks, wl_kind, steps, a, b, kill, knobs);
        let digest = scenario.digest();
        let perturbed = match axis {
            0 => {
                let system =
                    if scenario.system == System::Dmz { System::Longs } else { System::Dmz };
                Scenario { system, ..scenario.clone() }
            }
            1 => Scenario { nranks: scenario.nranks + 1, ..scenario.clone() },
            2 => {
                let fidelity = match scenario.fidelity {
                    Fidelity::Full => Fidelity::Quick,
                    Fidelity::Quick => Fidelity::Full,
                };
                scenario.clone().with_fidelity(fidelity)
            }
            3 => {
                let mpi =
                    if scenario.mpi == MpiImpl::Lam { MpiImpl::Mpich2 } else { MpiImpl::Lam };
                scenario.clone().with_mpi(mpi)
            }
            4 => scenario.clone().with_placement(Placement::ScatterLocal),
            _ => Scenario {
                workload: Workload::PingPong { bytes: 1.25e5, reps: 3 },
                ..scenario.clone()
            },
        };
        // A perturbation that lands back on the original value (e.g. a
        // PingPong scenario drawing the same literal) proves nothing —
        // only genuinely different scenarios must separate.
        prop_assume!(perturbed != scenario);
        prop_assert_ne!(perturbed.digest(), digest);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Protocol robustness: a line of arbitrary byte noise followed by a
    /// valid scenario request always produces exactly two response
    /// lines — one typed `ok:false` for the noise, one `ok:true` for the
    /// scenario. The server never panics, never drops a response, and
    /// never lets garbage desynchronise the request/response pairing.
    #[test]
    fn byte_noise_yields_one_typed_error_and_no_desync(
        noise in proptest::collection::vec(0u8..=255, 1..300),
    ) {
        // Newlines would split the noise into several requests, and an
        // all-whitespace line is skipped by design; both change the
        // expected response count without testing anything new.
        let noise: Vec<u8> = noise.into_iter().filter(|&b| b != b'\n').collect();
        prop_assume!(!noise.iter().all(u8::is_ascii_whitespace));
        // Random bytes that happen to spell a valid request would be
        // answered ok:true; exclude the (astronomically unlikely) case
        // explicitly so the property is exact.
        if let Ok(value) = json::parse_bytes(&noise) {
            prop_assume!(Scenario::from_json(&value).is_err());
            prop_assume!(value.get("artifact").is_none());
        }

        let scenario = Scenario::new(
            System::Dmz,
            2,
            Workload::Bsp { steps: 2, flops_per_step: 1.0e6, bytes_per_step: 1.0e4, sync_bytes: 8.0 },
        );
        let mut input = noise.clone();
        input.push(b'\n');
        input.extend_from_slice(scenario.to_json().as_bytes());
        input.push(b'\n');

        let server = Server::new(Arc::new(Scheduler::new(1)), ServeConfig::default());
        let mut out = Vec::new();
        server
            .serve_io(std::io::Cursor::new(input), &mut out, "prop")
            .map_err(|e| TestCaseError::fail(e.to_string()))?;

        let lines: Vec<&[u8]> = out.split(|&b| b == b'\n').filter(|l| !l.is_empty()).collect();
        prop_assert_eq!(lines.len(), 2, "one response line per request");
        let first = json::parse_bytes(lines[0]).map_err(TestCaseError::fail)?;
        prop_assert_eq!(first.get("ok"), Some(&json::Value::Bool(false)));
        prop_assert!(first.get("kind").and_then(json::Value::as_str).is_some());
        let second = json::parse_bytes(lines[1]).map_err(TestCaseError::fail)?;
        prop_assert_eq!(second.get("ok"), Some(&json::Value::Bool(true)));
        let digest = scenario.digest().hex();
        prop_assert_eq!(second.get("digest").and_then(json::Value::as_str), Some(digest.as_str()));
    }
}
