//! Content-addressed result cache: in-memory always, on-disk optionally.
//!
//! Keys are scenario digests (see [`crate::scenario::Scenario::digest`]),
//! which already fold in [`crate::ENGINE_TAG`]; the disk layout repeats
//! the tag as a directory level (`<root>/<tag>/<digest>.json`) so stale
//! engines' entries are orphaned wholesale and a `results/.cache` wipe of
//! one tag cannot touch another's.
//!
//! Failure policy: the cache is an accelerator, never a correctness
//! dependency. Disk errors (unwritable directory, corrupt entry, partial
//! file from a killed process) degrade to a miss; they are counted, not
//! propagated. Writes go through a temp file + rename so readers never
//! observe a half-written entry.

use crate::encode::Digest;
use crate::json;
use crate::scenario::ScenarioResult;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Where a cache lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Not cached: the engine ran.
    Miss,
    /// Served from the in-memory map.
    Memory,
    /// Served from `results/.cache` (and promoted to memory).
    Disk,
    /// Another thread was already running the same scenario; we waited
    /// for its result instead of recomputing.
    InFlight,
}

impl CacheTier {
    /// Stable lowercase key for JSON output and logs.
    pub fn key(self) -> &'static str {
        match self {
            CacheTier::Miss => "miss",
            CacheTier::Memory => "memory",
            CacheTier::Disk => "disk",
            CacheTier::InFlight => "in-flight",
        }
    }
}

/// Monotonic counters for observability; read via [`ResultCache::stats`].
#[derive(Debug, Default)]
struct Counters {
    hits_memory: AtomicUsize,
    hits_disk: AtomicUsize,
    misses: AtomicUsize,
    disk_errors: AtomicUsize,
}

/// A snapshot of cache activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits_memory: usize,
    /// Lookups served from disk.
    pub hits_disk: usize,
    /// Lookups that found nothing.
    pub misses: usize,
    /// Disk reads/writes that failed and were treated as misses.
    pub disk_errors: usize,
}

/// The two-tier result cache. All methods take `&self`; the cache is
/// shared across executor workers by reference.
#[derive(Debug)]
pub struct ResultCache {
    memory: Mutex<HashMap<u128, ScenarioResult>>,
    disk_root: Option<PathBuf>,
    counters: Counters,
}

impl ResultCache {
    /// An in-memory-only cache.
    pub fn in_memory() -> Self {
        Self { memory: Mutex::new(HashMap::new()), disk_root: None, counters: Counters::default() }
    }

    /// A cache backed by `root` (conventionally `results/.cache`).
    /// Entries land under `<root>/<ENGINE_TAG>/`. The directory is
    /// created lazily on first store.
    pub fn on_disk(root: impl Into<PathBuf>) -> Self {
        Self {
            memory: Mutex::new(HashMap::new()),
            disk_root: Some(root.into()),
            counters: Counters::default(),
        }
    }

    /// The directory entries are stored in, if disk-backed.
    pub fn tag_dir(&self) -> Option<PathBuf> {
        self.disk_root.as_ref().map(|root| root.join(crate::ENGINE_TAG))
    }

    fn entry_path(&self, digest: Digest) -> Option<PathBuf> {
        self.tag_dir().map(|dir| dir.join(format!("{}.json", digest.hex())))
    }

    /// Looks a digest up, reporting which tier answered. A disk hit is
    /// promoted into memory.
    pub fn get(&self, digest: Digest) -> Option<(ScenarioResult, CacheTier)> {
        if let Ok(map) = self.memory.lock() {
            if let Some(hit) = map.get(&digest.0) {
                self.counters.hits_memory.fetch_add(1, Ordering::Relaxed);
                return Some((hit.clone(), CacheTier::Memory));
            }
        }
        if let Some(path) = self.entry_path(digest) {
            match read_entry(&path) {
                Ok(Some(result)) => {
                    self.counters.hits_disk.fetch_add(1, Ordering::Relaxed);
                    if let Ok(mut map) = self.memory.lock() {
                        map.insert(digest.0, result.clone());
                    }
                    return Some((result, CacheTier::Disk));
                }
                Ok(None) => {}
                Err(_) => {
                    self.counters.disk_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores a fresh result in memory and (best-effort) on disk.
    pub fn put(&self, digest: Digest, result: &ScenarioResult) {
        if let Ok(mut map) = self.memory.lock() {
            map.insert(digest.0, result.clone());
        }
        if let Some(path) = self.entry_path(digest) {
            if write_entry(&path, result).is_err() {
                self.counters.disk_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits_memory: self.counters.hits_memory.load(Ordering::Relaxed),
            hits_disk: self.counters.hits_disk.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            disk_errors: self.counters.disk_errors.load(Ordering::Relaxed),
        }
    }
}

/// `Ok(None)` means "no entry"; `Err` means "entry exists but is bad" (or
/// IO failed), which the caller counts as a disk error.
fn read_entry(path: &Path) -> Result<Option<ScenarioResult>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.to_string()),
    };
    let value = json::parse(&text)?;
    let tag = value.get("engine").and_then(json::Value::as_str);
    if tag != Some(crate::ENGINE_TAG) {
        // A foreign tag in our own tag directory means someone moved
        // files around; refuse rather than serve numbers from another
        // engine version.
        return Err(format!("engine tag mismatch in {}", path.display()));
    }
    let result = value.get("result").ok_or("cache entry missing \"result\"")?;
    ScenarioResult::from_json(result).map(Some)
}

fn write_entry(path: &Path, result: &ScenarioResult) -> Result<(), String> {
    let dir = path.parent().ok_or("cache entry path has no parent")?;
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let body = format!(
        "{{\"engine\":\"{}\",\"result\":{}}}\n",
        json::escape(crate::ENGINE_TAG),
        result.to_json()
    );
    // Unique temp name per thread so concurrent writers of *different*
    // digests (or even the same one) never clobber each other's partial
    // file; rename is atomic on the same filesystem.
    let tmp = path.with_extension(format!("tmp.{:?}", std::thread::current().id()));
    std::fs::write(&tmp, body).map_err(|e| e.to_string())?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        e.to_string()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(makespan: f64) -> ScenarioResult {
        ScenarioResult {
            makespan,
            events: 42,
            faults_applied: 0,
            checkpoints_taken: 0,
            recoveries: 0,
            retries: 0,
        }
    }

    fn tmpdir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("corescope-cache-test-{label}-{:?}", std::thread::current().id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_tier_round_trips() {
        let cache = ResultCache::in_memory();
        let d = Digest(7);
        assert!(cache.get(d).is_none());
        cache.put(d, &result(1.5));
        let (hit, tier) = cache.get(d).unwrap();
        assert_eq!(hit, result(1.5));
        assert_eq!(tier, CacheTier::Memory);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits_memory), (1, 1));
    }

    #[test]
    fn disk_tier_survives_a_new_cache_and_promotes_to_memory() {
        let root = tmpdir("disk");
        let d = Digest(99);
        {
            let cache = ResultCache::on_disk(&root);
            cache.put(d, &result(1.0 / 3.0));
        }
        let cache = ResultCache::on_disk(&root);
        let (hit, tier) = cache.get(d).unwrap();
        assert_eq!(tier, CacheTier::Disk);
        assert_eq!(hit.makespan.to_bits(), (1.0f64 / 3.0).to_bits(), "disk must be bit-exact");
        // Second read comes from memory.
        assert_eq!(cache.get(d).unwrap().1, CacheTier::Memory);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entries_degrade_to_misses() {
        let root = tmpdir("corrupt");
        let cache = ResultCache::on_disk(&root);
        let d = Digest(5);
        let path = cache.entry_path(d).unwrap();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, "not json at all").unwrap();
        assert!(cache.get(d).is_none());
        assert_eq!(cache.stats().disk_errors, 1);
        // A put repairs the entry.
        cache.put(d, &result(2.0));
        let fresh = ResultCache::on_disk(&root);
        assert_eq!(fresh.get(d).unwrap().0, result(2.0));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn foreign_engine_tags_are_rejected() {
        let root = tmpdir("tag");
        let cache = ResultCache::on_disk(&root);
        let d = Digest(11);
        let path = cache.entry_path(d).unwrap();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(
            &path,
            format!("{{\"engine\":\"other\",\"result\":{}}}", result(9.0).to_json()),
        )
        .unwrap();
        assert!(cache.get(d).is_none());
        assert_eq!(cache.stats().disk_errors, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn entries_live_under_the_engine_tag() {
        let root = tmpdir("layout");
        let cache = ResultCache::on_disk(&root);
        cache.put(Digest(1), &result(1.0));
        let dir = cache.tag_dir().unwrap();
        assert!(dir.ends_with(crate::ENGINE_TAG));
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }
}
