//! Content-addressed result cache: in-memory always, on-disk optionally.
//!
//! Keys are scenario digests (see [`crate::scenario::Scenario::digest`]),
//! which already fold in [`crate::ENGINE_TAG`]; the disk layout repeats
//! the tag as a directory level (`<root>/<tag>/<digest>.json`) so stale
//! engines' entries are orphaned wholesale and a `results/.cache` wipe of
//! one tag cannot touch another's.
//!
//! Failure policy: the cache is an accelerator, never a correctness
//! dependency. Disk errors (unwritable directory, corrupt entry, partial
//! file from a killed process) degrade to a miss; they are counted, not
//! propagated. Writes go through a temp file + rename so readers never
//! observe a half-written entry.

use crate::encode::Digest;
use crate::json;
use crate::scenario::ScenarioResult;
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A typed cache failure, surfaced where degrading to a miss would hide a
/// configuration problem (e.g. `--cache` pointing at a read-only mount).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// The cache directory cannot be created or written.
    Unwritable {
        /// The directory that failed the write probe.
        dir: PathBuf,
        /// The underlying OS error text.
        reason: String,
    },
    /// An entry exists but cannot be decoded.
    Corrupt {
        /// The entry file.
        path: PathBuf,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Unwritable { dir, reason } => {
                write!(f, "cache directory {} is not writable: {reason}", dir.display())
            }
            CacheError::Corrupt { path, reason } => {
                write!(f, "corrupt cache entry {}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for CacheError {}

/// Outcome of [`ResultCache::claim_compute`]: either this caller owns the
/// computation (holding the cross-process lock, if any), or another
/// process published the entry while we waited.
#[derive(Debug)]
pub enum ComputeClaim {
    /// We own the computation. `None` means no disk lock is held (cache
    /// is memory-only, or locking failed and we fall back to computing —
    /// the cache is an accelerator, never a correctness dependency).
    Owner(Option<ComputeLock>),
    /// Another process computed and published the entry while we waited.
    Published(ScenarioResult),
}

/// An owned `.lock` sentinel next to a cache entry. Dropping it releases
/// the lock; crashed owners are handled by stale-lock takeover in
/// [`ResultCache::claim_compute`].
#[derive(Debug)]
pub struct ComputeLock {
    path: PathBuf,
}

impl Drop for ComputeLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// How long a `.lock` may sit unmodified before waiters treat its owner
/// as dead and take over. Engine runs are sub-second; two minutes is far
/// outside any legitimate hold time.
const DEFAULT_LOCK_TIMEOUT: Duration = Duration::from_secs(120);

/// Where a cache lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Not cached: the engine ran.
    Miss,
    /// Served from the in-memory map.
    Memory,
    /// Served from `results/.cache` (and promoted to memory).
    Disk,
    /// Another thread was already running the same scenario; we waited
    /// for its result instead of recomputing.
    InFlight,
}

impl CacheTier {
    /// Stable lowercase key for JSON output and logs.
    pub fn key(self) -> &'static str {
        match self {
            CacheTier::Miss => "miss",
            CacheTier::Memory => "memory",
            CacheTier::Disk => "disk",
            CacheTier::InFlight => "in-flight",
        }
    }
}

/// Monotonic counters for observability; read via [`ResultCache::stats`].
#[derive(Debug, Default)]
struct Counters {
    hits_memory: AtomicUsize,
    hits_disk: AtomicUsize,
    misses: AtomicUsize,
    disk_errors: AtomicUsize,
    corrupt_entries: AtomicUsize,
    unwritable: AtomicUsize,
    lock_takeovers: AtomicUsize,
}

/// A snapshot of cache activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits_memory: usize,
    /// Lookups served from disk.
    pub hits_disk: usize,
    /// Lookups that found nothing.
    pub misses: usize,
    /// Disk reads/writes that failed and were treated as misses.
    pub disk_errors: usize,
    /// Entries that existed but failed validation (CRC mismatch, bad
    /// decode, foreign engine tag) — a subset of `disk_errors`.
    pub corrupt_entries: usize,
    /// Entry writes that failed (typically an unwritable directory) — a
    /// subset of `disk_errors`.
    pub unwritable: usize,
    /// Stale cross-process locks reclaimed from crashed owners.
    pub lock_takeovers: usize,
}

/// The two-tier result cache. All methods take `&self`; the cache is
/// shared across executor workers by reference.
#[derive(Debug)]
pub struct ResultCache {
    memory: Mutex<HashMap<u128, ScenarioResult>>,
    disk_root: Option<PathBuf>,
    lock_timeout: Duration,
    counters: Counters,
}

impl ResultCache {
    /// An in-memory-only cache.
    pub fn in_memory() -> Self {
        Self {
            memory: Mutex::new(HashMap::new()),
            disk_root: None,
            lock_timeout: DEFAULT_LOCK_TIMEOUT,
            counters: Counters::default(),
        }
    }

    /// A cache backed by `root` (conventionally `results/.cache`).
    /// Entries land under `<root>/<ENGINE_TAG>/`. The directory is
    /// created lazily on first store.
    pub fn on_disk(root: impl Into<PathBuf>) -> Self {
        Self {
            memory: Mutex::new(HashMap::new()),
            disk_root: Some(root.into()),
            lock_timeout: DEFAULT_LOCK_TIMEOUT,
            counters: Counters::default(),
        }
    }

    /// Like [`ResultCache::on_disk`], but probes the directory up front:
    /// creates the tag directory and round-trips a probe file, so a bad
    /// `--cache` argument fails at startup with a typed error instead of
    /// degrading every lookup into a counted disk error.
    ///
    /// # Errors
    ///
    /// [`CacheError::Unwritable`] when the directory cannot be created or
    /// written.
    pub fn try_on_disk(root: impl Into<PathBuf>) -> Result<Self, CacheError> {
        let cache = Self::on_disk(root);
        let dir = cache.tag_dir().expect("disk-backed cache always has a tag dir");
        let unwritable = |reason: std::io::Error| CacheError::Unwritable {
            dir: dir.clone(),
            reason: reason.to_string(),
        };
        std::fs::create_dir_all(&dir).map_err(unwritable)?;
        let probe = dir.join(format!(".probe.{}", std::process::id()));
        std::fs::write(&probe, b"probe").map_err(unwritable)?;
        std::fs::remove_file(&probe).map_err(unwritable)?;
        Ok(cache)
    }

    /// Overrides how long a cross-process `.lock` may sit unmodified
    /// before waiters assume its owner died and take it over. Tests use
    /// tiny timeouts; production keeps the generous default.
    pub fn with_lock_timeout(mut self, timeout: Duration) -> Self {
        self.lock_timeout = timeout.max(Duration::from_millis(1));
        self
    }

    /// The directory entries are stored in, if disk-backed.
    pub fn tag_dir(&self) -> Option<PathBuf> {
        self.disk_root.as_ref().map(|root| root.join(crate::ENGINE_TAG))
    }

    fn entry_path(&self, digest: Digest) -> Option<PathBuf> {
        self.tag_dir().map(|dir| dir.join(format!("{}.json", digest.hex())))
    }

    /// Looks a digest up, reporting which tier answered. A disk hit is
    /// promoted into memory.
    pub fn get(&self, digest: Digest) -> Option<(ScenarioResult, CacheTier)> {
        if let Ok(map) = self.memory.lock() {
            if let Some(hit) = map.get(&digest.0) {
                self.counters.hits_memory.fetch_add(1, Ordering::Relaxed);
                return Some((hit.clone(), CacheTier::Memory));
            }
        }
        if let Some(path) = self.entry_path(digest) {
            match read_entry(&path) {
                Ok(Some(result)) => {
                    self.counters.hits_disk.fetch_add(1, Ordering::Relaxed);
                    if let Ok(mut map) = self.memory.lock() {
                        map.insert(digest.0, result.clone());
                    }
                    return Some((result, CacheTier::Disk));
                }
                Ok(None) => {}
                Err(_) => {
                    // Every read_entry failure means bytes were present
                    // but untrustworthy — count the corruption as well
                    // as the degradation to a miss.
                    self.counters.disk_errors.fetch_add(1, Ordering::Relaxed);
                    self.counters.corrupt_entries.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores a fresh result in memory and (best-effort) on disk.
    pub fn put(&self, digest: Digest, result: &ScenarioResult) {
        if let Ok(mut map) = self.memory.lock() {
            map.insert(digest.0, result.clone());
        }
        if let Some(path) = self.entry_path(digest) {
            if write_entry(&path, result).is_err() {
                self.counters.disk_errors.fetch_add(1, Ordering::Relaxed);
                self.counters.unwritable.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Claims the right to compute `digest`, single-flight **across
    /// processes**. The protocol, per entry `<hex>.json`:
    ///
    /// 1. atomically create `<hex>.lock` (`O_CREAT|O_EXCL`); the winner
    ///    re-checks the entry (the previous owner may have published
    ///    between our miss and the lock) and becomes the owner;
    /// 2. losers poll: entry appeared → return it; lock unmodified for
    ///    longer than the lock timeout → the owner is presumed dead, and
    ///    exactly one waiter takes over by *renaming* the stale lock to a
    ///    unique tombstone (rename arbitrates racing waiters), deleting
    ///    it, and retrying step 1.
    ///
    /// Publication itself stays tmp-file + atomic rename, so readers
    /// never observe a torn entry, locked or not. Any locking I/O error
    /// degrades to `Owner(None)` — worst case is a duplicated compute,
    /// never a corrupt entry or a hang.
    pub fn claim_compute(&self, digest: Digest) -> ComputeClaim {
        let Some(path) = self.entry_path(digest) else {
            return ComputeClaim::Owner(None);
        };
        if let Some(dir) = path.parent() {
            if std::fs::create_dir_all(dir).is_err() {
                self.counters.disk_errors.fetch_add(1, Ordering::Relaxed);
                return ComputeClaim::Owner(None);
            }
        }
        let lock_path = path.with_extension("lock");
        let poll =
            (self.lock_timeout / 16).clamp(Duration::from_millis(2), Duration::from_millis(250));
        // Absolute bail-out so a pathological filesystem (lock recreated
        // faster than we can observe staleness) still cannot hang us.
        let bail_out = Instant::now() + self.lock_timeout.saturating_mul(32);
        loop {
            match std::fs::OpenOptions::new().write(true).create_new(true).open(&lock_path) {
                Ok(mut file) => {
                    // Owner identity, for humans inspecting a stuck dir.
                    let _ = writeln!(file, "{} {}", std::process::id(), crate::ENGINE_TAG);
                    if let Ok(Some(result)) = read_entry(&path) {
                        // Published while we raced for the lock.
                        drop(ComputeLock { path: lock_path });
                        if let Ok(mut map) = self.memory.lock() {
                            map.insert(digest.0, result.clone());
                        }
                        self.counters.hits_disk.fetch_add(1, Ordering::Relaxed);
                        return ComputeClaim::Published(result);
                    }
                    return ComputeClaim::Owner(Some(ComputeLock { path: lock_path }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    std::thread::sleep(poll);
                    match read_entry(&path) {
                        Ok(Some(result)) => {
                            if let Ok(mut map) = self.memory.lock() {
                                map.insert(digest.0, result.clone());
                            }
                            self.counters.hits_disk.fetch_add(1, Ordering::Relaxed);
                            return ComputeClaim::Published(result);
                        }
                        Ok(None) => {}
                        Err(_) => {
                            // Torn entry under a live lock: keep waiting
                            // for the owner to republish or die.
                        }
                    }
                    if lock_is_stale(&lock_path, self.lock_timeout)
                        && takeover_stale_lock(&lock_path)
                    {
                        self.counters.lock_takeovers.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if Instant::now() > bail_out {
                        self.counters.disk_errors.fetch_add(1, Ordering::Relaxed);
                        return ComputeClaim::Owner(None);
                    }
                }
                Err(_) => {
                    self.counters.disk_errors.fetch_add(1, Ordering::Relaxed);
                    return ComputeClaim::Owner(None);
                }
            }
        }
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits_memory: self.counters.hits_memory.load(Ordering::Relaxed),
            hits_disk: self.counters.hits_disk.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            disk_errors: self.counters.disk_errors.load(Ordering::Relaxed),
            corrupt_entries: self.counters.corrupt_entries.load(Ordering::Relaxed),
            unwritable: self.counters.unwritable.load(Ordering::Relaxed),
            lock_takeovers: self.counters.lock_takeovers.load(Ordering::Relaxed),
        }
    }
}

/// True when the lock file exists and has not been modified within
/// `timeout`. A vanished lock (owner released it) reports `false`; the
/// caller's next `create_new` attempt will settle it.
fn lock_is_stale(lock_path: &Path, timeout: Duration) -> bool {
    let Ok(meta) = std::fs::metadata(lock_path) else { return false };
    let Ok(modified) = meta.modified() else { return false };
    match modified.elapsed() {
        Ok(age) => age > timeout,
        Err(_) => false, // clock skew: lock is from the future, not stale
    }
}

/// Removes a stale lock such that exactly one of any number of racing
/// waiters wins: rename the lock to a caller-unique tombstone (rename is
/// atomic; a second renamer gets `NotFound`), then delete the tombstone.
fn takeover_stale_lock(lock_path: &Path) -> bool {
    let tomb = lock_path.with_extension(format!(
        "tomb.{}.{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    if std::fs::rename(lock_path, &tomb).is_ok() {
        let _ = std::fs::remove_file(&tomb);
        true
    } else {
        false
    }
}

/// `Ok(None)` means "no entry"; `Err` means "entry exists but is bad" (or
/// IO failed), which [`ResultCache::get`] counts as a disk error and
/// treats as a miss.
fn read_entry(path: &Path) -> Result<Option<ScenarioResult>, CacheError> {
    let corrupt = |reason: String| CacheError::Corrupt { path: path.to_path_buf(), reason };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        // `!exists()` catches ENOTDIR (a file blocking the tag dir) and
        // friends: no entry bytes exist, so it is a miss, not corruption.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound || !path.exists() => return Ok(None),
        Err(e) => return Err(corrupt(e.to_string())),
    };
    let value = json::parse(&text).map_err(corrupt)?;
    let tag = value.get("engine").and_then(json::Value::as_str);
    if tag != Some(crate::ENGINE_TAG) {
        // A foreign tag in our own tag directory means someone moved
        // files around; refuse rather than serve numbers from another
        // engine version.
        return Err(corrupt("engine tag mismatch".to_string()));
    }
    let result = value.get("result").ok_or_else(|| corrupt("missing \"result\"".to_string()))?;
    let decoded = ScenarioResult::from_json(result).map_err(&corrupt)?;
    // CRC frame check: the stored checksum covers the canonical result
    // JSON, so any flipped bit — even one that still parses — surfaces
    // as typed corruption instead of silently wrong numbers. Entries
    // written before the crc field are treated the same way (recomputed
    // and rewritten with a checksum on the next put).
    let crc = value
        .get("crc")
        .and_then(json::Value::as_f64)
        .ok_or_else(|| corrupt("missing \"crc\" frame check".to_string()))?;
    let expected = corescope_store::frame::crc32(decoded.to_json().as_bytes());
    if crc != f64::from(expected) {
        return Err(corrupt(format!(
            "crc mismatch (stored {crc}, computed {expected}): flipped bit or tampered entry"
        )));
    }
    Ok(Some(decoded))
}

fn write_entry(path: &Path, result: &ScenarioResult) -> Result<(), String> {
    let dir = path.parent().ok_or("cache entry path has no parent")?;
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let result_json = result.to_json();
    let body = format!(
        "{{\"engine\":\"{}\",\"crc\":{},\"result\":{result_json}}}\n",
        json::escape(crate::ENGINE_TAG),
        corescope_store::frame::crc32(result_json.as_bytes()),
    );
    // Unique temp name per thread so concurrent writers of *different*
    // digests (or even the same one) never clobber each other's partial
    // file; rename is atomic on the same filesystem.
    let tmp = path.with_extension(format!("tmp.{:?}", std::thread::current().id()));
    std::fs::write(&tmp, body).map_err(|e| e.to_string())?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        e.to_string()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(makespan: f64) -> ScenarioResult {
        ScenarioResult {
            makespan,
            events: 42,
            faults_applied: 0,
            checkpoints_taken: 0,
            recoveries: 0,
            retries: 0,
        }
    }

    fn tmpdir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("corescope-cache-test-{label}-{:?}", std::thread::current().id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_tier_round_trips() {
        let cache = ResultCache::in_memory();
        let d = Digest(7);
        assert!(cache.get(d).is_none());
        cache.put(d, &result(1.5));
        let (hit, tier) = cache.get(d).unwrap();
        assert_eq!(hit, result(1.5));
        assert_eq!(tier, CacheTier::Memory);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits_memory), (1, 1));
    }

    #[test]
    fn disk_tier_survives_a_new_cache_and_promotes_to_memory() {
        let root = tmpdir("disk");
        let d = Digest(99);
        {
            let cache = ResultCache::on_disk(&root);
            cache.put(d, &result(1.0 / 3.0));
        }
        let cache = ResultCache::on_disk(&root);
        let (hit, tier) = cache.get(d).unwrap();
        assert_eq!(tier, CacheTier::Disk);
        assert_eq!(hit.makespan.to_bits(), (1.0f64 / 3.0).to_bits(), "disk must be bit-exact");
        // Second read comes from memory.
        assert_eq!(cache.get(d).unwrap().1, CacheTier::Memory);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entries_degrade_to_misses() {
        let root = tmpdir("corrupt");
        let cache = ResultCache::on_disk(&root);
        let d = Digest(5);
        let path = cache.entry_path(d).unwrap();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, "not json at all").unwrap();
        assert!(cache.get(d).is_none());
        let stats = cache.stats();
        assert_eq!((stats.disk_errors, stats.corrupt_entries), (1, 1));
        // A put repairs the entry.
        cache.put(d, &result(2.0));
        let fresh = ResultCache::on_disk(&root);
        assert_eq!(fresh.get(d).unwrap().0, result(2.0));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn foreign_engine_tags_are_rejected() {
        let root = tmpdir("tag");
        let cache = ResultCache::on_disk(&root);
        let d = Digest(11);
        let path = cache.entry_path(d).unwrap();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(
            &path,
            format!("{{\"engine\":\"other\",\"result\":{}}}", result(9.0).to_json()),
        )
        .unwrap();
        assert!(cache.get(d).is_none());
        assert_eq!(cache.stats().disk_errors, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_entries_degrade_and_recover_on_republish() {
        let root = tmpdir("torn");
        let cache = ResultCache::on_disk(&root);
        let d = Digest(21);
        cache.put(d, &result(4.0));
        let path = cache.entry_path(d).unwrap();
        // Simulate a writer killed mid-write *without* atomic rename: the
        // entry is truncated in the middle of the JSON body.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let fresh = ResultCache::on_disk(&root);
        assert!(fresh.get(d).is_none(), "torn entry must read as a miss");
        assert_eq!(fresh.stats().disk_errors, 1);
        // Republishing repairs it for every later reader.
        fresh.put(d, &result(4.0));
        let reader = ResultCache::on_disk(&root);
        assert_eq!(reader.get(d).unwrap(), (result(4.0), CacheTier::Disk));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn crc_frame_check_catches_in_place_bit_flips() {
        let root = tmpdir("crc");
        let cache = ResultCache::on_disk(&root);
        let d = Digest(77);
        cache.put(d, &result(3.5));
        let path = cache.entry_path(d).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Damage one digit inside the result payload. The JSON still
        // parses and decodes — only the CRC frame check can tell.
        let tampered = text.replace("\"events\":42", "\"events\":43");
        assert_ne!(text, tampered, "test fixture must actually tamper");
        std::fs::write(&path, tampered).unwrap();
        let fresh = ResultCache::on_disk(&root);
        assert!(fresh.get(d).is_none(), "tampered entry must not be served");
        let stats = fresh.stats();
        assert_eq!((stats.corrupt_entries, stats.disk_errors), (1, 1));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn entries_without_a_crc_field_are_corrupt_and_repaired_by_put() {
        let root = tmpdir("nocrc");
        let cache = ResultCache::on_disk(&root);
        let d = Digest(78);
        let path = cache.entry_path(d).unwrap();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        // An entry from before the crc field existed.
        std::fs::write(
            &path,
            format!(
                "{{\"engine\":\"{}\",\"result\":{}}}\n",
                json::escape(crate::ENGINE_TAG),
                result(1.0).to_json()
            ),
        )
        .unwrap();
        assert!(cache.get(d).is_none());
        assert_eq!(cache.stats().corrupt_entries, 1);
        cache.put(d, &result(1.0));
        let fresh = ResultCache::on_disk(&root);
        assert_eq!(fresh.get(d).unwrap().1, CacheTier::Disk);
        assert_eq!(fresh.stats().corrupt_entries, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unwritable_entry_writes_are_counted() {
        let root = tmpdir("unwritable-count");
        std::fs::create_dir_all(&root).unwrap();
        // A file where the tag directory should be blocks every write,
        // no permission bits needed (works as root too).
        std::fs::write(root.join(crate::ENGINE_TAG), b"i am a file").unwrap();
        let cache = ResultCache::on_disk(&root);
        cache.put(Digest(9), &result(1.0));
        let stats = cache.stats();
        assert_eq!((stats.unwritable, stats.disk_errors), (1, 1));
        // The memory tier still serves the result: degraded, not broken.
        assert_eq!(cache.get(Digest(9)).unwrap().1, CacheTier::Memory);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn try_on_disk_reports_unwritable_directories() {
        // A regular file where the directory should be is unwritable on
        // every platform, no permission bits needed.
        let root = tmpdir("unwritable");
        std::fs::create_dir_all(&root).unwrap();
        let blocker = root.join("blocked");
        std::fs::write(&blocker, b"i am a file").unwrap();
        match ResultCache::try_on_disk(&blocker) {
            Err(CacheError::Unwritable { dir, .. }) => {
                assert!(dir.starts_with(&blocker), "{}", dir.display());
            }
            other => panic!("expected Unwritable, got {other:?}"),
        }
        assert!(ResultCache::try_on_disk(&root).is_ok());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn claim_compute_single_flights_across_cache_instances() {
        // Two ResultCache instances over one directory stand in for two
        // processes: only one claims ownership, the waiter gets the
        // published result.
        let root = tmpdir("claim");
        let a = ResultCache::on_disk(&root);
        let b = ResultCache::on_disk(&root).with_lock_timeout(Duration::from_secs(30));
        let d = Digest(33);
        let lock = match a.claim_compute(d) {
            ComputeClaim::Owner(Some(lock)) => lock,
            other => panic!("first claimant must own the compute, got {other:?}"),
        };
        let waiter = std::thread::spawn(move || b.claim_compute(d));
        std::thread::sleep(Duration::from_millis(30));
        a.put(d, &result(7.0));
        drop(lock);
        match waiter.join().unwrap() {
            ComputeClaim::Published(res) => assert_eq!(res, result(7.0)),
            other => panic!("waiter must see the published entry, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn claim_compute_returns_published_when_entry_already_exists() {
        let root = tmpdir("claim-published");
        let cache = ResultCache::on_disk(&root);
        let d = Digest(34);
        cache.put(d, &result(2.5));
        // A second instance (fresh memory) that missed in get() but races
        // the lock must find the published entry, not recompute.
        let other = ResultCache::on_disk(&root);
        match other.claim_compute(d) {
            ComputeClaim::Published(res) => assert_eq!(res, result(2.5)),
            other => panic!("expected Published, got {other:?}"),
        }
        // No lock file left behind.
        let lock = cache.entry_path(d).unwrap().with_extension("lock");
        assert!(!lock.exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn stale_locks_are_taken_over_exactly_once() {
        let root = tmpdir("stale");
        let cache = ResultCache::on_disk(&root).with_lock_timeout(Duration::from_millis(10));
        let d = Digest(55);
        // Fake a crashed owner: a lock file nobody will ever release.
        let lock_path = cache.entry_path(d).unwrap().with_extension("lock");
        std::fs::create_dir_all(lock_path.parent().unwrap()).unwrap();
        std::fs::write(&lock_path, "999999 dead-owner").unwrap();
        std::thread::sleep(Duration::from_millis(25));
        match cache.claim_compute(d) {
            ComputeClaim::Owner(Some(lock)) => drop(lock),
            other => panic!("stale lock must be taken over, got {other:?}"),
        }
        assert_eq!(cache.stats().lock_takeovers, 1);
        assert!(!lock_path.exists(), "released lock must be gone");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn in_memory_caches_always_own_the_compute() {
        let cache = ResultCache::in_memory();
        match cache.claim_compute(Digest(1)) {
            ComputeClaim::Owner(None) => {}
            other => panic!("memory-only cache has no disk lock, got {other:?}"),
        }
    }

    #[test]
    fn entries_live_under_the_engine_tag() {
        let root = tmpdir("layout");
        let cache = ResultCache::on_disk(&root);
        cache.put(Digest(1), &result(1.0));
        let dir = cache.tag_dir().unwrap();
        assert!(dir.ends_with(crate::ENGINE_TAG));
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }
}
