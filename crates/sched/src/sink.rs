//! [`StoreSink`]: the scheduler's bridge to the crash-safe campaign
//! store ([`corescope_store::Store`]).
//!
//! The cache and the store answer different questions. The cache
//! (`results/.cache`) is an *accelerator*: losing it costs recompute
//! time, nothing else, so entries are independent JSON files with no
//! global consistency story. The store is the *campaign record*: it must
//! survive `kill -9` at any byte, resume a half-finished sweep without
//! rerunning committed scenarios, and feed aggregation after the fact.
//! The sink keeps the scheduler's failure policy consistent across both:
//! store append errors are counted and reported, never propagated — a
//! full disk degrades the campaign record, not the sweep.
//!
//! Rows are recorded at exactly one place (the scheduler's engine-run
//! commit point) and deduplicated twice: by the store itself (committed
//! digests survive reopen) and upstream by the scheduler's cache, so a
//! warm rerun appends nothing.

use crate::encode::Digest;
use crate::scenario::{mpi_key, Scenario, ScenarioResult};
use corescope_store::{Options, Row, Store, StoreError};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Converts a finished scenario into the store's columnar row form.
/// The axis strings reuse the scenario's stable lowercase keys — the
/// same identifiers the CSV artifacts print — so aggregation over the
/// store groups exactly like the paper tables do.
pub fn row_of(scenario: &Scenario, digest: Digest, result: &ScenarioResult) -> Row {
    Row {
        digest: digest.0,
        system: scenario.system.key().to_string(),
        fidelity: scenario.fidelity.key().to_string(),
        placement: scenario.placement.key().to_string(),
        mpi: mpi_key(scenario.mpi).to_string(),
        lock: scenario.lock.key().to_string(),
        workload: scenario.workload.kind().to_string(),
        nranks: scenario.nranks as u32,
        makespan: result.makespan,
        events: result.events as u64,
        faults_applied: result.faults_applied as u64,
        checkpoints_taken: result.checkpoints_taken as u64,
        recoveries: result.recoveries as u64,
        retries: result.retries as u64,
    }
}

/// A thread-safe, error-absorbing wrapper around one writable
/// [`Store`]. Shared by reference between scheduler workers.
#[derive(Debug)]
pub struct StoreSink {
    store: Mutex<Store>,
    append_errors: AtomicUsize,
    rows_recorded: AtomicUsize,
    /// Rows already committed when the store was opened — fixed at
    /// open so mid-campaign summaries don't mix it up with counters
    /// that advance at different times (appends vs. flushes).
    resumed_rows: usize,
}

impl StoreSink {
    /// Opens (or creates, or recovers) the store at `dir` for writing,
    /// stamped with [`crate::ENGINE_TAG`]. Recovery findings are in
    /// [`StoreSink::recovery_summary`].
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from [`Store::open`] — an unwritable
    /// directory, a live writer's lock, an engine-tag mismatch, or
    /// unrepairable corruption. Unlike appends, *opening* fails loudly:
    /// a campaign pointed at a bad `--store` should stop before any
    /// engine time is spent.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(dir, Options::default())
    }

    /// [`StoreSink::open`] with explicit store options (tests shrink the
    /// segment roll threshold).
    pub fn open_with(dir: impl AsRef<Path>, options: Options) -> Result<Self, StoreError> {
        let store = Store::open_with(dir.as_ref(), crate::ENGINE_TAG, options)?;
        let resumed_rows = store.recovery().rows;
        Ok(Self {
            store: Mutex::new(store),
            append_errors: AtomicUsize::new(0),
            rows_recorded: AtomicUsize::new(0),
            resumed_rows,
        })
    }

    /// True when `digest` is already committed in the store — the
    /// resume test: a committed scenario need not run again for the
    /// campaign record's sake.
    pub fn contains(&self, digest: Digest) -> bool {
        match self.store.lock() {
            Ok(store) => store.contains(digest.0),
            Err(_) => false,
        }
    }

    /// Records one finished scenario. Append failures (disk full, I/O
    /// error) are counted, not propagated.
    pub fn record(&self, scenario: &Scenario, digest: Digest, result: &ScenarioResult) {
        let row = row_of(scenario, digest, result);
        match self.store.lock() {
            Ok(mut store) => match store.append(row) {
                Ok(true) => {
                    self.rows_recorded.fetch_add(1, Ordering::Relaxed);
                }
                Ok(false) => {} // already committed: resume dedup
                Err(_) => {
                    self.append_errors.fetch_add(1, Ordering::Relaxed);
                }
            },
            Err(_) => {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Flushes buffered rows to a committed frame. Called by the
    /// scheduler at batch boundaries so a crash between batches loses at
    /// most the final partial buffer. Errors are counted, not
    /// propagated.
    pub fn flush(&self) {
        if let Ok(mut store) = self.store.lock() {
            if store.flush().is_err() {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// All committed rows, deduplicated last-wins, in on-disk order.
    ///
    /// # Errors
    ///
    /// Propagates scan-level [`StoreError`] (unreadable segment file).
    pub fn rows(&self) -> Result<Vec<Row>, StoreError> {
        match self.store.lock() {
            Ok(store) => store.rows(),
            Err(poisoned) => poisoned.into_inner().rows(),
        }
    }

    /// Appends that failed and were dropped from the campaign record.
    pub fn append_errors(&self) -> usize {
        self.append_errors.load(Ordering::Relaxed)
    }

    /// Rows accepted (new digests) since this sink opened.
    pub fn rows_recorded(&self) -> usize {
        self.rows_recorded.load(Ordering::Relaxed)
    }

    /// Rows committed before this sink opened — what a resumed
    /// campaign can skip. Fixed at open, so it stays correct while
    /// new appends are still buffered.
    pub fn resumed_rows(&self) -> usize {
        self.resumed_rows
    }

    /// True when opening the store found nothing to recover — no torn
    /// tail, no adopted frames, no corruption, no missing segments.
    pub fn recovery_is_clean(&self) -> bool {
        match self.store.lock() {
            Ok(store) => store.recovery().is_clean(),
            Err(_) => false,
        }
    }

    /// The opening recovery report, one line.
    pub fn recovery_summary(&self) -> String {
        match self.store.lock() {
            Ok(store) => store.recovery().summary(),
            Err(_) => "store: lock poisoned".to_string(),
        }
    }

    /// One-line human summary for campaign drivers.
    pub fn summary(&self) -> String {
        let (committed, segments) = match self.store.lock() {
            Ok(store) => (store.rows_committed(), store.segment_count()),
            Err(_) => (0, 0),
        };
        format!(
            "store: rows committed {committed} (new {}, resumed {}), segments {}, append errors {}",
            self.rows_recorded(),
            self.resumed_rows(),
            segments,
            self.append_errors(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{System, Workload};

    fn bsp(steps: usize) -> Scenario {
        Scenario::new(
            System::Dmz,
            2,
            Workload::Bsp { steps, flops_per_step: 1e6, bytes_per_step: 1e6, sync_bytes: 8.0 },
        )
    }

    fn tmpdir(label: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("corescope-sink-test-{label}-{:?}", std::thread::current().id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn row_of_uses_the_csv_axis_keys() {
        let scenario = bsp(3);
        let result = scenario.run().unwrap();
        let row = row_of(&scenario, scenario.digest(), &result);
        assert_eq!(row.system, "dmz");
        assert_eq!(row.workload, "bsp");
        assert_eq!(row.nranks, 2);
        assert_eq!(row.makespan.to_bits(), result.makespan.to_bits());
        assert_eq!(row.digest, scenario.digest().0);
    }

    #[test]
    fn sink_records_flushes_and_resumes() {
        let dir = tmpdir("resume");
        let scenario = bsp(4);
        let digest = scenario.digest();
        let result = scenario.run().unwrap();
        {
            let sink = StoreSink::open(&dir).unwrap();
            assert!(!sink.contains(digest));
            sink.record(&scenario, digest, &result);
            sink.record(&scenario, digest, &result); // duplicate: dropped
            sink.flush();
            assert_eq!(sink.rows_recorded(), 1);
            assert_eq!(sink.append_errors(), 0);
        }
        let sink = StoreSink::open(&dir).unwrap();
        assert!(sink.contains(digest), "committed digest must survive reopen");
        assert_eq!(sink.resumed_rows(), 1);
        let rows = sink.rows().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].digest, digest.0);
        // Mid-campaign: new appends sitting in the buffer must not
        // erode the resumed count.
        let fresh = bsp(7);
        sink.record(&fresh, fresh.digest(), &fresh.run().unwrap());
        assert_eq!(sink.resumed_rows(), 1);
        assert!(sink.summary().contains("resumed 1"), "{}", sink.summary());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
