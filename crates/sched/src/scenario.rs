//! The Scenario IR: a canonical value that fully determines one engine
//! run, with a stable content digest and a serde-free JSON form.
//!
//! A [`Scenario`] names everything that feeds the simulation — the
//! machine (whose *full spec* is folded into the digest, not just its
//! name), the fidelity, the workload and its resolved parameters, the
//! placement scheme, the MPI implementation and lock layer, the fault
//! plan, and the recovery policies. Because the engine is deterministic
//! (PR 2's bit-identical guarantee), two scenarios with equal digests
//! produce equal [`ScenarioResult`]s, which is what makes the
//! content-addressed cache in [`crate::cache`] sound.

use crate::encode::{Digest, Encoder};
use crate::fidelity::Fidelity;
use crate::json::{self, Value};
use corescope_affinity::{os_scatter, policy, Scheme};
use corescope_apps::xs::{self, TablePlacement};
use corescope_kernels::blas::{
    append_daxpy_single, append_daxpy_star, append_dgemm_single, append_dgemm_star, BlasVariant,
    DaxpyParams, DgemmParams,
};
use corescope_kernels::cg::{CgClass, NasCg as CgKernel};
use corescope_kernels::fft::{append_single as fft_single, append_star as fft_star, FftParams};
use corescope_kernels::hpl::{append_run as hpl_run, HplParams};
use corescope_kernels::nasft::{FtClass, NasFt as FtKernel};
use corescope_kernels::ptrans::{append_run as ptrans_run, PtransParams};
use corescope_kernels::randomaccess::{
    append_mpi as ra_mpi, append_single as ra_single, append_star as ra_star, RaParams,
};
use corescope_kernels::stream::{
    append_single as stream_single, append_star as stream_star, StreamKernel, StreamParams,
};
use corescope_kernels::xslookup::XsParams;
use corescope_machine::engine::RankPlacement;
use corescope_machine::{
    CalibParams, CheckpointPolicy, CheckpointTarget, ComputePhase, Error, FaultEvent, FaultKind,
    FaultPlan, LinkId, Machine, MachineSpec, NumaNodeId, RankId, Result, RetryPolicy, RunReport,
    SocketId, TrafficProfile,
};
use corescope_smpi::{CommWorld, LockLayer, MpiImpl};
use corescope_topo::Generation;

/// The evaluation machines: the paper's Table 1 systems plus the
/// modern `corescope-topo` generations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// Cray XD1 node, 2 × single-core Opteron 248.
    Tiger,
    /// 2 × dual-core Opteron 275.
    Dmz,
    /// Iwill H8501, 8 × dual-core Opteron 865.
    Longs,
    /// Modern: 2 packages × 4 chiplets × 4 cores, on-package mesh.
    Epyc,
    /// Modern: 16-core node with DRAM plus an HBM memory-only node.
    Hbm,
}

/// A request named a machine generation that does not exist. Carries
/// the requested string so `repro --machine` can report it next to the
/// valid generation list instead of guessing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownSystem {
    /// What the request said, verbatim.
    pub requested: String,
}

impl std::fmt::Display for UnknownSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let valid: Vec<&str> = System::all().iter().map(|s| s.key()).collect();
        write!(
            f,
            "unknown machine '{}' (valid generations are {})",
            self.requested,
            valid.join(", ")
        )
    }
}

impl std::error::Error for UnknownSystem {}

impl System {
    /// Every system, oldest generation first.
    pub fn all() -> [System; 5] {
        [System::Tiger, System::Dmz, System::Longs, System::Epyc, System::Hbm]
    }

    /// Stable lowercase key (JSON and encoding).
    pub fn key(self) -> &'static str {
        self.generation().key()
    }

    /// Parses [`System::key`] output.
    pub fn parse(s: &str) -> Option<System> {
        System::all().into_iter().find(|sys| sys.key() == s)
    }

    /// Parses a machine key with a typed error for unknown names —
    /// backs the `repro --machine` axis, so a typo reports the valid
    /// generation list instead of silently running the default sweep.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSystem`] carrying the requested string.
    pub fn from_key(s: &str) -> std::result::Result<System, UnknownSystem> {
        System::parse(&s.to_lowercase()).ok_or_else(|| UnknownSystem { requested: s.to_string() })
    }

    /// The corresponding `corescope-topo` generation: every system is
    /// built through the generator (byte-identical to the historical
    /// `systems::*` constructors for the 2006 machines).
    pub fn generation(self) -> Generation {
        match self {
            System::Tiger => Generation::Tiger,
            System::Dmz => Generation::Dmz,
            System::Longs => Generation::Longs,
            System::Epyc => Generation::Epyc,
            System::Hbm => Generation::Hbm,
        }
    }

    /// The preset machine spec.
    pub fn spec(self) -> MachineSpec {
        self.spec_with(&CalibParams::paper_2006())
    }

    /// The machine spec built from an arbitrary calibration point.
    pub fn spec_with(self, params: &CalibParams) -> MachineSpec {
        self.generation().spec_with(params)
    }

    /// Builds the machine.
    pub fn machine(self) -> Machine {
        Machine::new(self.spec())
    }

    /// Builds the machine from an arbitrary calibration point.
    pub fn machine_with(self, params: &CalibParams) -> Machine {
        Machine::new(self.spec_with(params))
    }
}

/// How ranks are pinned and their memory placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// One of the paper's Table 5 `numactl` schemes.
    Scheme(Scheme),
    /// lmbench-style: spread over sockets first, memory allocated locally
    /// (the STREAM scaling figures' core-activation order).
    ScatterLocal,
}

impl Placement {
    /// Stable lowercase key (JSON and encoding); scheme placements reuse
    /// [`Scheme::key`], the CSV column identifiers.
    pub fn key(self) -> &'static str {
        match self {
            Placement::Scheme(s) => s.key(),
            Placement::ScatterLocal => "scatter-local",
        }
    }

    /// Parses [`Placement::key`] output.
    pub fn parse(s: &str) -> Option<Placement> {
        if s == "scatter-local" {
            return Some(Placement::ScatterLocal);
        }
        Scheme::all().into_iter().find(|sch| sch.key() == s).map(Placement::Scheme)
    }

    /// Resolves the placement on a machine.
    ///
    /// # Errors
    ///
    /// Propagates mapping errors (typically [`Error::InvalidPlacement`]
    /// when the machine cannot host `nranks` under this placement).
    pub fn resolve(self, machine: &Machine, nranks: usize) -> Result<Vec<RankPlacement>> {
        self.resolve_with(machine, nranks, policy::DEFAULT_MISPLACEMENT)
    }

    /// [`Placement::resolve`] with an explicit first-touch misplacement
    /// fraction; only [`Scheme::Default`] placements are sensitive to it.
    ///
    /// # Errors
    ///
    /// Same as [`Placement::resolve`].
    pub fn resolve_with(
        self,
        machine: &Machine,
        nranks: usize,
        misplacement: f64,
    ) -> Result<Vec<RankPlacement>> {
        match self {
            Placement::Scheme(scheme) => scheme.resolve_with(machine, nranks, misplacement),
            Placement::ScatterLocal => Ok(os_scatter(machine, nranks)?
                .into_iter()
                .map(|core| RankPlacement::new(core, policy::local(machine, core)))
                .collect()),
        }
    }

    /// Whether the placement can host `nranks` on `system` (the paper's
    /// "—" cells enumerate the ones that cannot).
    pub fn placeable(self, system: System, nranks: usize) -> bool {
        self.resolve(&system.machine(), nranks).is_ok()
    }
}

/// The table-page placement a scenario placement implies for the
/// xslookup workloads: scheme placements map per Table 5
/// ([`TablePlacement::from_scheme`]); scatter-local pins memory
/// explicitly, so its tables first-touch with no misplacement.
fn table_placement(placement: Placement, misplacement: f64) -> TablePlacement {
    match placement {
        Placement::Scheme(scheme) => TablePlacement::from_scheme(scheme, misplacement),
        Placement::ScatterLocal => TablePlacement::FirstTouch { misplacement: 0.0 },
    }
}

pub(crate) fn mpi_key(mpi: MpiImpl) -> &'static str {
    match mpi {
        MpiImpl::Mpich2 => "mpich2",
        MpiImpl::Lam => "lam",
        MpiImpl::OpenMpi => "openmpi",
    }
}

fn mpi_parse(s: &str) -> Option<MpiImpl> {
    MpiImpl::all().into_iter().find(|&m| mpi_key(m) == s)
}

fn lock_parse(s: &str) -> Option<LockLayer> {
    [LockLayer::SysV, LockLayer::USysV].into_iter().find(|l| l.key() == s)
}

fn stream_kernel_key(kernel: StreamKernel) -> &'static str {
    match kernel {
        StreamKernel::Copy => "copy",
        StreamKernel::Scale => "scale",
        StreamKernel::Add => "add",
        StreamKernel::Triad => "triad",
    }
}

fn stream_kernel_parse(s: &str) -> Option<StreamKernel> {
    [StreamKernel::Copy, StreamKernel::Scale, StreamKernel::Add, StreamKernel::Triad]
        .into_iter()
        .find(|&k| stream_kernel_key(k) == s)
}

fn blas_key(variant: BlasVariant) -> &'static str {
    match variant {
        BlasVariant::Acml => "acml",
        BlasVariant::Vanilla => "vanilla",
    }
}

fn blas_parse(s: &str) -> Option<BlasVariant> {
    [BlasVariant::Acml, BlasVariant::Vanilla].into_iter().find(|&v| blas_key(v) == s)
}

fn cg_class_key(class: CgClass) -> &'static str {
    match class {
        CgClass::S => "s",
        CgClass::A => "a",
        CgClass::B => "b",
        CgClass::C => "c",
    }
}

fn cg_class_parse(s: &str) -> Option<CgClass> {
    [CgClass::S, CgClass::A, CgClass::B, CgClass::C].into_iter().find(|&c| cg_class_key(c) == s)
}

fn ft_class_key(class: FtClass) -> &'static str {
    match class {
        FtClass::S => "s",
        FtClass::A => "a",
        FtClass::B => "b",
        FtClass::C => "c",
    }
}

fn ft_class_parse(s: &str) -> Option<FtClass> {
    [FtClass::S, FtClass::A, FtClass::B, FtClass::C].into_iter().find(|&c| ft_class_key(c) == s)
}

/// The workload appended to the world — every parameter fully resolved
/// (fidelity scaling happens at enumeration time, in the artifact code).
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// Bulk-synchronous: `steps` stream-compute phases, each followed by
    /// an allreduce of `sync_bytes` (the X5 recovery-campaign workload).
    Bsp {
        /// Number of compute+allreduce steps.
        steps: usize,
        /// Flops per step per rank.
        flops_per_step: f64,
        /// DRAM bytes streamed per step per rank.
        bytes_per_step: f64,
        /// Allreduce payload per step.
        sync_bytes: f64,
    },
    /// HPCC "Single" STREAM: rank 0 runs, the rest idle.
    StreamSingle {
        /// STREAM kernel.
        kernel: StreamKernel,
        /// Array length per rank.
        elements_per_rank: usize,
        /// Timed sweeps.
        sweeps: usize,
    },
    /// HPCC "Star" STREAM: every rank runs concurrently.
    StreamStar {
        /// STREAM kernel.
        kernel: StreamKernel,
        /// Array length per rank.
        elements_per_rank: usize,
        /// Timed sweeps.
        sweeps: usize,
    },
    /// HPL (LINPACK).
    Hpl {
        /// Global matrix order.
        n: usize,
        /// Block size.
        nb: usize,
        /// Fraction of peak the DGEMM update sustains.
        dgemm_efficiency: f64,
    },
    /// HPCC "Single" DGEMM.
    DgemmSingle {
        /// Matrix order per rank.
        n: usize,
        /// Repetitions.
        reps: usize,
        /// BLAS implementation.
        variant: BlasVariant,
    },
    /// HPCC "Star" DGEMM.
    DgemmStar {
        /// Matrix order per rank.
        n: usize,
        /// Repetitions.
        reps: usize,
        /// BLAS implementation.
        variant: BlasVariant,
    },
    /// HPCC "Single" FFT.
    FftSingle {
        /// Points per rank.
        points_per_rank: usize,
        /// Repetitions.
        reps: usize,
    },
    /// HPCC "Star" FFT.
    FftStar {
        /// Points per rank.
        points_per_rank: usize,
        /// Repetitions.
        reps: usize,
    },
    /// HPCC "Single" RandomAccess.
    RandomAccessSingle {
        /// Table words per rank.
        table_words_per_rank: u64,
        /// Updates per rank.
        updates_per_rank: u64,
    },
    /// HPCC "Star" RandomAccess.
    RandomAccessStar {
        /// Table words per rank.
        table_words_per_rank: u64,
        /// Updates per rank.
        updates_per_rank: u64,
    },
    /// HPCC MPI RandomAccess (global table, all-to-all updates).
    RandomAccessMpi {
        /// Table words per rank.
        table_words_per_rank: u64,
        /// Updates per rank.
        updates_per_rank: u64,
    },
    /// HPCC PTRANS (block-cyclic transpose).
    Ptrans {
        /// Global matrix order.
        n: usize,
        /// Repetitions.
        reps: usize,
        /// Bytes per tile message.
        block_bytes: f64,
    },
    /// IMB-style PingPong between ranks 0 and 1.
    PingPong {
        /// Payload bytes per direction.
        bytes: f64,
        /// Round trips.
        reps: usize,
    },
    /// NAS CG (conjugate gradient, irregular communication).
    NasCg {
        /// Problem class.
        class: CgClass,
    },
    /// NAS FT (3-D FFT, all-to-all transposes).
    NasFt {
        /// Problem class.
        class: FtClass,
    },
    /// HPCC "Single" DAXPY: rank 0 runs, the rest idle.
    DaxpySingle {
        /// Vector length per rank.
        n: usize,
        /// Repetitions.
        reps: usize,
        /// BLAS implementation.
        variant: BlasVariant,
    },
    /// HPCC "Star" DAXPY: every rank runs concurrently.
    DaxpyStar {
        /// Vector length per rank.
        n: usize,
        /// Repetitions.
        reps: usize,
        /// BLAS implementation.
        variant: BlasVariant,
    },
    /// XSBench-style "Single" cross-section lookup: rank 0 streams
    /// lookups through its replicated unionized table, the rest idle.
    /// The table's pages are placed per the scenario's placement scheme
    /// (first-touch with nearest-node spill, interleave, or membind).
    XsLookupSingle {
        /// Unionized energy grid points.
        grid_points: u64,
        /// Nuclides in the material.
        nuclides: u64,
        /// Lookups the rank performs.
        lookups_per_rank: u64,
    },
    /// XSBench-style "Star" cross-section lookup: every rank streams
    /// lookups through its own replicated table concurrently.
    XsLookupStar {
        /// Unionized energy grid points.
        grid_points: u64,
        /// Nuclides in the material.
        nuclides: u64,
        /// Lookups each rank performs.
        lookups_per_rank: u64,
    },
}

impl Workload {
    /// Stable lowercase kind key (JSON and encoding).
    pub fn kind(&self) -> &'static str {
        match self {
            Workload::Bsp { .. } => "bsp",
            Workload::StreamSingle { .. } => "stream-single",
            Workload::StreamStar { .. } => "stream-star",
            Workload::Hpl { .. } => "hpl",
            Workload::DgemmSingle { .. } => "dgemm-single",
            Workload::DgemmStar { .. } => "dgemm-star",
            Workload::FftSingle { .. } => "fft-single",
            Workload::FftStar { .. } => "fft-star",
            Workload::RandomAccessSingle { .. } => "randomaccess-single",
            Workload::RandomAccessStar { .. } => "randomaccess-star",
            Workload::RandomAccessMpi { .. } => "randomaccess-mpi",
            Workload::Ptrans { .. } => "ptrans",
            Workload::PingPong { .. } => "pingpong",
            Workload::NasCg { .. } => "nas-cg",
            Workload::NasFt { .. } => "nas-ft",
            Workload::DaxpySingle { .. } => "daxpy-single",
            Workload::DaxpyStar { .. } => "daxpy-star",
            Workload::XsLookupSingle { .. } => "xslookup-single",
            Workload::XsLookupStar { .. } => "xslookup-star",
        }
    }

    /// The smallest world this workload makes sense in.
    fn min_ranks(&self) -> usize {
        match self {
            Workload::PingPong { .. } => 2,
            _ => 1,
        }
    }

    /// Appends the workload's operations to a world, mirroring the
    /// artifact code it replaces byte-for-byte. The scenario's placement
    /// (and first-touch misplacement fraction) ride along because the
    /// xslookup workloads place their *table* pages per scheme, on top
    /// of the rank placements the world was built with.
    fn append(
        &self,
        world: &mut CommWorld<'_>,
        placement: Placement,
        misplacement: f64,
    ) -> Result<()> {
        match *self {
            Workload::Bsp { steps, flops_per_step, bytes_per_step, sync_bytes } => {
                let phase = ComputePhase::new(
                    "bsp-step",
                    flops_per_step,
                    TrafficProfile::stream(bytes_per_step),
                );
                for _ in 0..steps {
                    world.compute_all(|_| Some(phase.clone()));
                    world.allreduce(sync_bytes);
                }
            }
            Workload::StreamSingle { kernel, elements_per_rank, sweeps } => {
                stream_single(world, &StreamParams { kernel, elements_per_rank, sweeps });
            }
            Workload::StreamStar { kernel, elements_per_rank, sweeps } => {
                stream_star(world, &StreamParams { kernel, elements_per_rank, sweeps });
            }
            Workload::Hpl { n, nb, dgemm_efficiency } => {
                hpl_run(world, &HplParams { n, nb, dgemm_efficiency });
            }
            Workload::DgemmSingle { n, reps, variant } => {
                append_dgemm_single(world, &DgemmParams { n, reps, variant });
            }
            Workload::DgemmStar { n, reps, variant } => {
                append_dgemm_star(world, &DgemmParams { n, reps, variant });
            }
            Workload::FftSingle { points_per_rank, reps } => {
                fft_single(world, &FftParams { points_per_rank, reps });
            }
            Workload::FftStar { points_per_rank, reps } => {
                fft_star(world, &FftParams { points_per_rank, reps });
            }
            Workload::RandomAccessSingle { table_words_per_rank, updates_per_rank } => {
                ra_single(world, &RaParams { table_words_per_rank, updates_per_rank });
            }
            Workload::RandomAccessStar { table_words_per_rank, updates_per_rank } => {
                ra_star(world, &RaParams { table_words_per_rank, updates_per_rank });
            }
            Workload::RandomAccessMpi { table_words_per_rank, updates_per_rank } => {
                ra_mpi(world, &RaParams { table_words_per_rank, updates_per_rank });
            }
            Workload::Ptrans { n, reps, block_bytes } => {
                ptrans_run(world, &PtransParams { n, reps, block_bytes });
            }
            Workload::PingPong { bytes, reps } => {
                for _ in 0..reps {
                    world.p2p(0, 1, bytes);
                    world.p2p(1, 0, bytes);
                }
            }
            Workload::NasCg { class } => {
                CgKernel { class }.append_run(world);
            }
            Workload::NasFt { class } => {
                FtKernel { class }.append_run(world);
            }
            Workload::DaxpySingle { n, reps, variant } => {
                append_daxpy_single(world, &DaxpyParams { n, reps, variant });
            }
            Workload::DaxpyStar { n, reps, variant } => {
                append_daxpy_star(world, &DaxpyParams { n, reps, variant });
            }
            Workload::XsLookupSingle { grid_points, nuclides, lookups_per_rank } => {
                let params = XsParams { grid_points, nuclides, lookups_per_rank };
                xs::append_single(world, &params, table_placement(placement, misplacement))?;
            }
            Workload::XsLookupStar { grid_points, nuclides, lookups_per_rank } => {
                let params = XsParams { grid_points, nuclides, lookups_per_rank };
                xs::append_star(world, &params, table_placement(placement, misplacement))?;
            }
        }
        Ok(())
    }

    fn encode(&self, enc: &mut Encoder) {
        enc.tag("workload", self.kind());
        match *self {
            Workload::Bsp { steps, flops_per_step, bytes_per_step, sync_bytes } => {
                enc.usize("steps", steps)
                    .f64("flops_per_step", flops_per_step)
                    .f64("bytes_per_step", bytes_per_step)
                    .f64("sync_bytes", sync_bytes);
            }
            Workload::StreamSingle { kernel, elements_per_rank, sweeps }
            | Workload::StreamStar { kernel, elements_per_rank, sweeps } => {
                enc.tag("kernel", stream_kernel_key(kernel))
                    .usize("elements_per_rank", elements_per_rank)
                    .usize("sweeps", sweeps);
            }
            Workload::Hpl { n, nb, dgemm_efficiency } => {
                enc.usize("n", n).usize("nb", nb).f64("dgemm_efficiency", dgemm_efficiency);
            }
            Workload::DgemmSingle { n, reps, variant }
            | Workload::DgemmStar { n, reps, variant } => {
                enc.usize("n", n).usize("reps", reps).tag("variant", blas_key(variant));
            }
            Workload::FftSingle { points_per_rank, reps }
            | Workload::FftStar { points_per_rank, reps } => {
                enc.usize("points_per_rank", points_per_rank).usize("reps", reps);
            }
            Workload::RandomAccessSingle { table_words_per_rank, updates_per_rank }
            | Workload::RandomAccessStar { table_words_per_rank, updates_per_rank }
            | Workload::RandomAccessMpi { table_words_per_rank, updates_per_rank } => {
                enc.u64("table_words_per_rank", table_words_per_rank)
                    .u64("updates_per_rank", updates_per_rank);
            }
            Workload::Ptrans { n, reps, block_bytes } => {
                enc.usize("n", n).usize("reps", reps).f64("block_bytes", block_bytes);
            }
            Workload::PingPong { bytes, reps } => {
                enc.f64("bytes", bytes).usize("reps", reps);
            }
            Workload::NasCg { class } => {
                enc.tag("class", cg_class_key(class));
            }
            Workload::NasFt { class } => {
                enc.tag("class", ft_class_key(class));
            }
            Workload::DaxpySingle { n, reps, variant }
            | Workload::DaxpyStar { n, reps, variant } => {
                enc.usize("n", n).usize("reps", reps).tag("variant", blas_key(variant));
            }
            Workload::XsLookupSingle { grid_points, nuclides, lookups_per_rank }
            | Workload::XsLookupStar { grid_points, nuclides, lookups_per_rank } => {
                enc.u64("grid_points", grid_points)
                    .u64("nuclides", nuclides)
                    .u64("lookups_per_rank", lookups_per_rank);
            }
        }
    }

    fn to_json(&self) -> String {
        let kind = self.kind();
        match *self {
            Workload::Bsp { steps, flops_per_step, bytes_per_step, sync_bytes } => format!(
                "{{\"kind\":\"{kind}\",\"steps\":{steps},\"flops_per_step\":{},\
                 \"bytes_per_step\":{},\"sync_bytes\":{}}}",
                json::num(flops_per_step),
                json::num(bytes_per_step),
                json::num(sync_bytes),
            ),
            Workload::StreamSingle { kernel, elements_per_rank, sweeps }
            | Workload::StreamStar { kernel, elements_per_rank, sweeps } => format!(
                "{{\"kind\":\"{kind}\",\"kernel\":\"{}\",\"elements_per_rank\":{elements_per_rank},\
                 \"sweeps\":{sweeps}}}",
                stream_kernel_key(kernel),
            ),
            Workload::Hpl { n, nb, dgemm_efficiency } => format!(
                "{{\"kind\":\"{kind}\",\"n\":{n},\"nb\":{nb},\"dgemm_efficiency\":{}}}",
                json::num(dgemm_efficiency),
            ),
            Workload::DgemmSingle { n, reps, variant }
            | Workload::DgemmStar { n, reps, variant } => {
                format!(
                    "{{\"kind\":\"{kind}\",\"n\":{n},\"reps\":{reps},\"variant\":\"{}\"}}",
                    blas_key(variant),
                )
            }
            Workload::FftSingle { points_per_rank, reps }
            | Workload::FftStar { points_per_rank, reps } => format!(
                "{{\"kind\":\"{kind}\",\"points_per_rank\":{points_per_rank},\"reps\":{reps}}}"
            ),
            Workload::RandomAccessSingle { table_words_per_rank, updates_per_rank }
            | Workload::RandomAccessStar { table_words_per_rank, updates_per_rank }
            | Workload::RandomAccessMpi { table_words_per_rank, updates_per_rank } => format!(
                "{{\"kind\":\"{kind}\",\"table_words_per_rank\":{table_words_per_rank},\
                 \"updates_per_rank\":{updates_per_rank}}}"
            ),
            Workload::Ptrans { n, reps, block_bytes } => format!(
                "{{\"kind\":\"{kind}\",\"n\":{n},\"reps\":{reps},\"block_bytes\":{}}}",
                json::num(block_bytes),
            ),
            Workload::PingPong { bytes, reps } => {
                format!("{{\"kind\":\"{kind}\",\"bytes\":{},\"reps\":{reps}}}", json::num(bytes))
            }
            Workload::NasCg { class } => {
                format!("{{\"kind\":\"{kind}\",\"class\":\"{}\"}}", cg_class_key(class))
            }
            Workload::NasFt { class } => {
                format!("{{\"kind\":\"{kind}\",\"class\":\"{}\"}}", ft_class_key(class))
            }
            Workload::DaxpySingle { n, reps, variant }
            | Workload::DaxpyStar { n, reps, variant } => {
                format!(
                    "{{\"kind\":\"{kind}\",\"n\":{n},\"reps\":{reps},\"variant\":\"{}\"}}",
                    blas_key(variant),
                )
            }
            Workload::XsLookupSingle { grid_points, nuclides, lookups_per_rank }
            | Workload::XsLookupStar { grid_points, nuclides, lookups_per_rank } => format!(
                "{{\"kind\":\"{kind}\",\"grid_points\":{grid_points},\"nuclides\":{nuclides},\
                 \"lookups_per_rank\":{lookups_per_rank}}}"
            ),
        }
    }

    fn from_json(v: &Value) -> std::result::Result<Workload, String> {
        let kind = v.get("kind").and_then(Value::as_str).ok_or("workload needs a \"kind\"")?;
        let f = |key: &str| {
            v.get(key).and_then(Value::as_f64).ok_or(format!("workload needs number \"{key}\""))
        };
        let u = |key: &str| {
            v.get(key).and_then(Value::as_usize).ok_or(format!("workload needs integer \"{key}\""))
        };
        Ok(match kind {
            "bsp" => Workload::Bsp {
                steps: u("steps")?,
                flops_per_step: f("flops_per_step")?,
                bytes_per_step: f("bytes_per_step")?,
                sync_bytes: f("sync_bytes")?,
            },
            "stream-single" | "stream-star" => {
                let kernel = v
                    .get("kernel")
                    .and_then(Value::as_str)
                    .and_then(stream_kernel_parse)
                    .ok_or("bad stream \"kernel\"")?;
                let elements_per_rank = u("elements_per_rank")?;
                let sweeps = u("sweeps")?;
                if kind == "stream-single" {
                    Workload::StreamSingle { kernel, elements_per_rank, sweeps }
                } else {
                    Workload::StreamStar { kernel, elements_per_rank, sweeps }
                }
            }
            "hpl" => {
                Workload::Hpl { n: u("n")?, nb: u("nb")?, dgemm_efficiency: f("dgemm_efficiency")? }
            }
            "dgemm-single" | "dgemm-star" => {
                let variant = v
                    .get("variant")
                    .and_then(Value::as_str)
                    .and_then(blas_parse)
                    .ok_or("bad dgemm \"variant\"")?;
                let (n, reps) = (u("n")?, u("reps")?);
                if kind == "dgemm-single" {
                    Workload::DgemmSingle { n, reps, variant }
                } else {
                    Workload::DgemmStar { n, reps, variant }
                }
            }
            "fft-single" => {
                Workload::FftSingle { points_per_rank: u("points_per_rank")?, reps: u("reps")? }
            }
            "fft-star" => {
                Workload::FftStar { points_per_rank: u("points_per_rank")?, reps: u("reps")? }
            }
            "randomaccess-single" | "randomaccess-star" | "randomaccess-mpi" => {
                let table_words_per_rank = u("table_words_per_rank")? as u64;
                let updates_per_rank = u("updates_per_rank")? as u64;
                match kind {
                    "randomaccess-single" => {
                        Workload::RandomAccessSingle { table_words_per_rank, updates_per_rank }
                    }
                    "randomaccess-star" => {
                        Workload::RandomAccessStar { table_words_per_rank, updates_per_rank }
                    }
                    _ => Workload::RandomAccessMpi { table_words_per_rank, updates_per_rank },
                }
            }
            "ptrans" => {
                Workload::Ptrans { n: u("n")?, reps: u("reps")?, block_bytes: f("block_bytes")? }
            }
            "pingpong" => Workload::PingPong { bytes: f("bytes")?, reps: u("reps")? },
            "nas-cg" => Workload::NasCg {
                class: v
                    .get("class")
                    .and_then(Value::as_str)
                    .and_then(cg_class_parse)
                    .ok_or("bad nas-cg \"class\" (s|a|b|c)")?,
            },
            "nas-ft" => Workload::NasFt {
                class: v
                    .get("class")
                    .and_then(Value::as_str)
                    .and_then(ft_class_parse)
                    .ok_or("bad nas-ft \"class\" (s|a|b|c)")?,
            },
            "xslookup-single" | "xslookup-star" => {
                let grid_points = u("grid_points")? as u64;
                let nuclides = u("nuclides")? as u64;
                let lookups_per_rank = u("lookups_per_rank")? as u64;
                if kind == "xslookup-single" {
                    Workload::XsLookupSingle { grid_points, nuclides, lookups_per_rank }
                } else {
                    Workload::XsLookupStar { grid_points, nuclides, lookups_per_rank }
                }
            }
            "daxpy-single" | "daxpy-star" => {
                let variant = v
                    .get("variant")
                    .and_then(Value::as_str)
                    .and_then(blas_parse)
                    .ok_or("bad daxpy \"variant\"")?;
                let (n, reps) = (u("n")?, u("reps")?);
                if kind == "daxpy-single" {
                    Workload::DaxpySingle { n, reps, variant }
                } else {
                    Workload::DaxpyStar { n, reps, variant }
                }
            }
            other => return Err(format!("unknown workload kind '{other}'")),
        })
    }
}

fn fault_kind_key(kind: &FaultKind) -> &'static str {
    match kind {
        FaultKind::LinkDegrade { .. } => "link-degrade",
        FaultKind::LinkRestore { .. } => "link-restore",
        FaultKind::ControllerThrottle { .. } => "controller-throttle",
        FaultKind::ControllerRestore { .. } => "controller-restore",
        FaultKind::ProbeBrownout { .. } => "probe-brownout",
        FaultKind::ProbeRestore => "probe-restore",
        FaultKind::RankStall { .. } => "rank-stall",
        FaultKind::RankResume { .. } => "rank-resume",
        FaultKind::RankKill { .. } => "rank-kill",
        FaultKind::LinkFail { .. } => "link-fail",
    }
}

fn encode_fault(enc: &mut Encoder, event: &FaultEvent) {
    enc.f64("at", event.at).tag("kind", fault_kind_key(&event.kind));
    match event.kind {
        FaultKind::LinkDegrade { link, factor } => {
            enc.usize("link", link.index()).f64("factor", factor);
        }
        FaultKind::LinkRestore { link } | FaultKind::LinkFail { link } => {
            enc.usize("link", link.index());
        }
        FaultKind::ControllerThrottle { socket, factor } => {
            enc.usize("socket", socket.index()).f64("factor", factor);
        }
        FaultKind::ControllerRestore { socket } => {
            enc.usize("socket", socket.index());
        }
        FaultKind::ProbeBrownout { factor } => {
            enc.f64("factor", factor);
        }
        FaultKind::ProbeRestore => {}
        FaultKind::RankStall { rank }
        | FaultKind::RankResume { rank }
        | FaultKind::RankKill { rank } => {
            enc.usize("rank", rank.index());
        }
    }
}

fn fault_to_json(event: &FaultEvent) -> String {
    let head =
        format!("{{\"at\":{},\"kind\":\"{}\"", json::num(event.at), fault_kind_key(&event.kind));
    let tail = match event.kind {
        FaultKind::LinkDegrade { link, factor } => {
            format!(",\"link\":{},\"factor\":{}", link.index(), json::num(factor))
        }
        FaultKind::LinkRestore { link } | FaultKind::LinkFail { link } => {
            format!(",\"link\":{}", link.index())
        }
        FaultKind::ControllerThrottle { socket, factor } => {
            format!(",\"socket\":{},\"factor\":{}", socket.index(), json::num(factor))
        }
        FaultKind::ControllerRestore { socket } => format!(",\"socket\":{}", socket.index()),
        FaultKind::ProbeBrownout { factor } => format!(",\"factor\":{}", json::num(factor)),
        FaultKind::ProbeRestore => String::new(),
        FaultKind::RankStall { rank }
        | FaultKind::RankResume { rank }
        | FaultKind::RankKill { rank } => format!(",\"rank\":{}", rank.index()),
    };
    format!("{head}{tail}}}")
}

fn fault_from_json(v: &Value) -> std::result::Result<FaultEvent, String> {
    let at = v.get("at").and_then(Value::as_f64).ok_or("fault needs number \"at\"")?;
    let kind = v.get("kind").and_then(Value::as_str).ok_or("fault needs \"kind\"")?;
    let f = |key: &str| {
        v.get(key).and_then(Value::as_f64).ok_or(format!("fault needs number \"{key}\""))
    };
    let u = |key: &str| {
        v.get(key).and_then(Value::as_usize).ok_or(format!("fault needs integer \"{key}\""))
    };
    let kind = match kind {
        "link-degrade" => {
            FaultKind::LinkDegrade { link: LinkId::new(u("link")?), factor: f("factor")? }
        }
        "link-restore" => FaultKind::LinkRestore { link: LinkId::new(u("link")?) },
        "link-fail" => FaultKind::LinkFail { link: LinkId::new(u("link")?) },
        "controller-throttle" => FaultKind::ControllerThrottle {
            socket: SocketId::new(u("socket")?),
            factor: f("factor")?,
        },
        "controller-restore" => {
            FaultKind::ControllerRestore { socket: SocketId::new(u("socket")?) }
        }
        "probe-brownout" => FaultKind::ProbeBrownout { factor: f("factor")? },
        "probe-restore" => FaultKind::ProbeRestore,
        "rank-stall" => FaultKind::RankStall { rank: RankId::new(u("rank")?) },
        "rank-resume" => FaultKind::RankResume { rank: RankId::new(u("rank")?) },
        "rank-kill" => FaultKind::RankKill { rank: RankId::new(u("rank")?) },
        other => return Err(format!("unknown fault kind '{other}'")),
    };
    Ok(FaultEvent { at, kind })
}

/// One fully-specified engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The machine.
    pub system: System,
    /// Fidelity the parameters were resolved at (part of the identity:
    /// quick and full runs never share a cache entry).
    pub fidelity: Fidelity,
    /// World size.
    pub nranks: usize,
    /// Rank/memory placement.
    pub placement: Placement,
    /// MPI implementation (selects the cost profile).
    pub mpi: MpiImpl,
    /// Lock sub-layer.
    pub lock: LockLayer,
    /// The workload.
    pub workload: Workload,
    /// Scheduled mid-run faults (empty == fault-free).
    pub faults: FaultPlan,
    /// Checkpoint/restart policy, if any.
    pub recovery: Option<CheckpointPolicy>,
    /// Transport retry policy, if any.
    pub retry: Option<RetryPolicy>,
    /// The calibration point the machine and MPI substrate are built
    /// from. Part of the identity: every field is folded into the digest,
    /// so results can never alias across parameter points.
    pub params: CalibParams,
}

impl Scenario {
    /// A scenario with the defaults the application tables use: full
    /// fidelity, two-MPI-per-socket localalloc placement, MPICH2 with
    /// spin locks, no faults, no recovery.
    pub fn new(system: System, nranks: usize, workload: Workload) -> Self {
        Self {
            system,
            fidelity: Fidelity::Full,
            nranks,
            placement: Placement::Scheme(Scheme::TwoMpiLocalAlloc),
            mpi: MpiImpl::Mpich2,
            lock: LockLayer::USysV,
            workload,
            faults: FaultPlan::new(),
            recovery: None,
            retry: None,
            params: CalibParams::paper_2006(),
        }
    }

    /// Sets the calibration point.
    #[must_use]
    pub fn with_params(mut self, params: CalibParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the fidelity tag.
    #[must_use]
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Sets the placement.
    #[must_use]
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the MPI implementation.
    #[must_use]
    pub fn with_mpi(mut self, mpi: MpiImpl) -> Self {
        self.mpi = mpi;
        self
    }

    /// Sets the lock sub-layer.
    #[must_use]
    pub fn with_lock(mut self, lock: LockLayer) -> Self {
        self.lock = lock;
        self
    }

    /// Sets the fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the checkpoint/restart policy.
    #[must_use]
    pub fn with_recovery(mut self, policy: CheckpointPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Sets the transport retry policy.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Cheap structural checks before a run is attempted (the engine
    /// still validates everything it consumes).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] for zero ranks or a workload that
    /// cannot fit the world size.
    pub fn validate(&self) -> Result<()> {
        if self.nranks == 0 {
            return Err(Error::InvalidSpec("scenario needs at least one rank".to_string()));
        }
        let min = self.workload.min_ranks();
        if self.nranks < min {
            return Err(Error::InvalidSpec(format!(
                "workload '{}' needs at least {min} ranks, scenario has {}",
                self.workload.kind(),
                self.nranks
            )));
        }
        if !self.params.in_bounds() {
            return Err(Error::InvalidSpec(
                "scenario calibration point is outside its documented bounds".to_string(),
            ));
        }
        Ok(())
    }

    /// The canonical content digest: [`crate::ENGINE_TAG`] plus every
    /// field, with the machine's *full spec* (not just its name) folded
    /// in so a spec change orphans stale entries.
    pub fn digest(&self) -> Digest {
        let mut enc = Encoder::new();
        enc.str("engine", crate::ENGINE_TAG);
        encode_machine_spec(&mut enc, &self.system.spec_with(&self.params));
        // The spec covers the machine-side parameters; fold every calib
        // field in explicitly as well so the MPI/placement parameters
        // (and any future field the spec does not surface) are
        // guaranteed to separate digests.
        enc.list("calib", CalibParams::FIELDS.len());
        for field in &CalibParams::FIELDS {
            enc.f64(field.name, field.read(&self.params));
        }
        enc.tag("system", self.system.key())
            .tag("fidelity", self.fidelity.key())
            .usize("nranks", self.nranks)
            .tag("placement", self.placement.key())
            .tag("mpi", mpi_key(self.mpi))
            .tag("lock", self.lock.key());
        self.workload.encode(&mut enc);
        enc.list("faults", self.faults.events().len());
        for event in self.faults.events() {
            encode_fault(&mut enc, event);
        }
        match &self.recovery {
            None => {
                enc.tag("recovery", "none");
            }
            Some(p) => {
                enc.tag("recovery", "checkpoint")
                    .f64("interval", p.interval)
                    .f64("bytes_per_rank", p.bytes_per_rank)
                    .f64("restart_delay", p.restart_delay);
                match p.target {
                    CheckpointTarget::OwnLayout => enc.tag("target", "own"),
                    CheckpointTarget::Node(node) => {
                        enc.tag("target", "node").usize("node", node.index())
                    }
                };
            }
        }
        match &self.retry {
            None => {
                enc.tag("retry", "none");
            }
            Some(r) => {
                enc.tag("retry", "some")
                    .f64("detection_timeout", r.detection_timeout)
                    .f64("backoff", r.backoff)
                    .usize("max_retries", r.max_retries);
            }
        }
        enc.digest()
    }

    /// Runs the scenario on a fresh engine.
    ///
    /// # Errors
    ///
    /// Propagates placement and engine errors.
    pub fn run(&self) -> Result<ScenarioResult> {
        self.validate()?;
        let machine = self.system.machine_with(&self.params);
        let placements =
            self.placement.resolve_with(&machine, self.nranks, self.params.misplacement)?;
        let mut world =
            CommWorld::new(&machine, placements, self.mpi.profile_with(&self.params), self.lock);
        self.workload.append(&mut world, self.placement, self.params.misplacement)?;
        if let Some(policy) = &self.recovery {
            world = world.with_recovery(policy.clone());
        }
        if let Some(policy) = &self.retry {
            world = world.with_retry(policy.clone());
        }
        let report = world.run_with_faults(&self.faults)?;
        Ok(ScenarioResult::from_report(&report))
    }

    /// Renders the scenario as a single-line JSON object (the
    /// `corescope-serve` request body).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"system\":\"{}\",\"fidelity\":\"{}\",\"nranks\":{},\"placement\":\"{}\",\
             \"mpi\":\"{}\",\"lock\":\"{}\",\"workload\":{}",
            self.system.key(),
            self.fidelity.key(),
            self.nranks,
            self.placement.key(),
            mpi_key(self.mpi),
            self.lock.key(),
            self.workload.to_json(),
        );
        if !self.faults.events().is_empty() {
            let events: Vec<String> = self.faults.events().iter().map(fault_to_json).collect();
            out.push_str(&format!(",\"faults\":[{}]", events.join(",")));
        }
        if let Some(p) = &self.recovery {
            let target = match p.target {
                CheckpointTarget::OwnLayout => "\"own\"".to_string(),
                CheckpointTarget::Node(node) => format!("{{\"node\":{}}}", node.index()),
            };
            out.push_str(&format!(
                ",\"recovery\":{{\"interval\":{},\"bytes_per_rank\":{},\"target\":{target},\
                 \"restart_delay\":{}}}",
                json::num(p.interval),
                json::num(p.bytes_per_rank),
                json::num(p.restart_delay),
            ));
        }
        if let Some(r) = &self.retry {
            out.push_str(&format!(
                ",\"retry\":{{\"detection_timeout\":{},\"backoff\":{},\"max_retries\":{}}}",
                json::num(r.detection_timeout),
                json::num(r.backoff),
                r.max_retries,
            ));
        }
        if self.params != CalibParams::paper_2006() {
            let fields: Vec<String> = CalibParams::FIELDS
                .iter()
                .map(|f| format!("\"{}\":{}", f.name, json::num(f.read(&self.params))))
                .collect();
            out.push_str(&format!(",\"params\":{{{}}}", fields.join(",")));
        }
        out.push('}');
        out
    }

    /// Parses a scenario from a parsed JSON object.
    ///
    /// # Errors
    ///
    /// Returns a one-line description of the first missing or malformed
    /// field.
    pub fn from_json(v: &Value) -> std::result::Result<Scenario, String> {
        let system = v
            .get("system")
            .and_then(Value::as_str)
            .and_then(System::parse)
            .ok_or("scenario needs \"system\": tiger|dmz|longs|epyc|hbm")?;
        let fidelity = match v.get("fidelity") {
            None => Fidelity::Full,
            Some(f) => {
                f.as_str().and_then(Fidelity::parse).ok_or("bad \"fidelity\" (full|quick)")?
            }
        };
        let nranks =
            v.get("nranks").and_then(Value::as_usize).ok_or("scenario needs integer \"nranks\"")?;
        let placement = match v.get("placement") {
            None => Placement::Scheme(Scheme::TwoMpiLocalAlloc),
            Some(p) => p
                .as_str()
                .and_then(Placement::parse)
                .ok_or("bad \"placement\" (a scheme key or scatter-local)")?,
        };
        let mpi = match v.get("mpi") {
            None => MpiImpl::Mpich2,
            Some(m) => m.as_str().and_then(mpi_parse).ok_or("bad \"mpi\" (mpich2|lam|openmpi)")?,
        };
        let lock = match v.get("lock") {
            None => LockLayer::USysV,
            Some(l) => l.as_str().and_then(lock_parse).ok_or("bad \"lock\" (sysv|usysv)")?,
        };
        let workload =
            Workload::from_json(v.get("workload").ok_or("scenario needs a \"workload\" object")?)?;
        let mut faults = FaultPlan::new();
        if let Some(list) = v.get("faults") {
            for event in list.as_arr().ok_or("\"faults\" must be an array")? {
                faults.push(fault_from_json(event)?);
            }
        }
        let recovery = match v.get("recovery") {
            None | Some(Value::Null) => None,
            Some(r) => {
                let interval = r
                    .get("interval")
                    .and_then(Value::as_f64)
                    .ok_or("recovery needs \"interval\"")?;
                let bytes = r
                    .get("bytes_per_rank")
                    .and_then(Value::as_f64)
                    .ok_or("recovery needs \"bytes_per_rank\"")?;
                let mut policy = CheckpointPolicy::new(interval, bytes);
                match r.get("target") {
                    None => {}
                    Some(Value::Str(s)) if s == "own" => {}
                    Some(t) => {
                        let node = t
                            .get("node")
                            .and_then(Value::as_usize)
                            .ok_or("recovery \"target\" must be \"own\" or {\"node\": i}")?;
                        policy = policy.with_target(CheckpointTarget::Node(NumaNodeId::new(node)));
                    }
                }
                if let Some(d) = r.get("restart_delay") {
                    policy = policy
                        .with_restart_delay(d.as_f64().ok_or("bad recovery \"restart_delay\"")?);
                }
                Some(policy)
            }
        };
        let retry = match v.get("retry") {
            None | Some(Value::Null) => None,
            Some(r) => {
                let timeout = r
                    .get("detection_timeout")
                    .and_then(Value::as_f64)
                    .ok_or("retry needs \"detection_timeout\"")?;
                let mut policy = RetryPolicy::new(timeout);
                if let Some(b) = r.get("backoff") {
                    policy = policy.with_backoff(b.as_f64().ok_or("bad retry \"backoff\"")?);
                }
                if let Some(m) = r.get("max_retries") {
                    policy.max_retries = m.as_usize().ok_or("bad retry \"max_retries\"")?;
                }
                Some(policy)
            }
        };
        let mut params = CalibParams::paper_2006();
        if let Some(obj) = v.get("params") {
            let entries = obj.as_obj().ok_or("\"params\" must be an object")?;
            for (key, value) in entries {
                let field = CalibParams::field(key)
                    .ok_or_else(|| format!("unknown calibration parameter '{key}'"))?;
                let value =
                    value.as_f64().ok_or_else(|| format!("bad calibration value for '{key}'"))?;
                field.write(&mut params, value);
            }
        }
        Ok(Scenario {
            system,
            fidelity,
            nranks,
            placement,
            mpi,
            lock,
            workload,
            faults,
            recovery,
            retry,
            params,
        })
    }
}

fn encode_machine_spec(enc: &mut Encoder, spec: &MachineSpec) {
    enc.str("spec.name", &spec.name);
    enc.list("spec.sockets", spec.sockets.len());
    for &s in &spec.sockets {
        enc.f64("socket", s);
    }
    enc.usize("spec.cores_per_socket", spec.cores_per_socket)
        .f64("core.frequency_hz", spec.core.frequency_hz)
        .f64("core.flops_per_cycle", spec.core.flops_per_cycle)
        .f64("cache.l1_bytes", spec.cache.l1_bytes)
        .f64("cache.l2_bytes", spec.cache.l2_bytes)
        .f64("cache.line_bytes", spec.cache.line_bytes)
        .f64("cache.stream_mlp", spec.cache.stream_mlp)
        .f64("cache.random_mlp", spec.cache.random_mlp)
        .f64("cache.strided_mlp", spec.cache.strided_mlp)
        .f64("cache.lookup_mlp", spec.cache.lookup_mlp)
        .f64("memory.controller_bw", spec.memory.controller_bw)
        .f64("memory.idle_latency", spec.memory.idle_latency)
        .f64("memory.lookup_latency", spec.memory.lookup_latency)
        .f64("link.bandwidth", spec.link.bandwidth)
        .f64("link.hop_latency", spec.link.hop_latency)
        .f64("coherence.base_probe", spec.coherence.base_probe)
        .f64("coherence.per_hop_probe", spec.coherence.per_hop_probe)
        .f64("coherence.probe_capacity", spec.coherence.probe_capacity);
    enc.list("spec.edges", spec.edges.len());
    for edge in &spec.edges {
        enc.usize("a", edge.a).usize("b", edge.b);
    }
    // Heterogeneous extensions are encoded only when present so that every
    // uniform machine keeps its pre-extension digest.
    if !spec.is_uniform() {
        enc.usize("spec.memory_only_nodes", spec.memory_only_nodes);
        enc.list("spec.node_memory", spec.node_memory.len());
        for (node, m) in &spec.node_memory {
            enc.usize("node", *node)
                .f64("memory.controller_bw", m.controller_bw)
                .f64("memory.idle_latency", m.idle_latency)
                .f64("memory.lookup_latency", m.lookup_latency);
        }
        enc.list("spec.edge_links", spec.edge_links.len());
        for (edge, l) in &spec.edge_links {
            enc.usize("edge", *edge)
                .f64("link.bandwidth", l.bandwidth)
                .f64("link.hop_latency", l.hop_latency);
        }
    }
}

/// The cacheable outcome of one scenario run: the makespan plus the
/// scalar metrics the sweeps post-process. Per-rank vectors stay out —
/// artifacts that need them run the engine directly (e.g. traced runs).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Simulated makespan in seconds.
    pub makespan: f64,
    /// Discrete events processed.
    pub events: usize,
    /// Scheduled fault events that fired.
    pub faults_applied: usize,
    /// Coordinated checkpoints completed.
    pub checkpoints_taken: usize,
    /// Rollback-and-replay recoveries performed.
    pub recoveries: usize,
    /// Transfer retransmissions triggered by failed links.
    pub retries: usize,
}

impl ScenarioResult {
    /// Extracts the cacheable scalars from an engine report.
    pub fn from_report(report: &RunReport) -> Self {
        Self {
            makespan: report.makespan,
            events: report.metrics.events,
            faults_applied: report.metrics.faults_applied,
            checkpoints_taken: report.metrics.checkpoints_taken,
            recoveries: report.metrics.recoveries,
            retries: report.metrics.retries,
        }
    }

    /// Single-line JSON form (cache entries and serve responses).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"makespan\":{},\"events\":{},\"faults_applied\":{},\"checkpoints_taken\":{},\
             \"recoveries\":{},\"retries\":{}}}",
            json::num(self.makespan),
            self.events,
            self.faults_applied,
            self.checkpoints_taken,
            self.recoveries,
            self.retries,
        )
    }

    /// Parses [`ScenarioResult::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a one-line description of the first missing field.
    pub fn from_json(v: &Value) -> std::result::Result<ScenarioResult, String> {
        let f = |key: &str| {
            v.get(key).and_then(Value::as_f64).ok_or(format!("result needs number \"{key}\""))
        };
        let u = |key: &str| {
            v.get(key).and_then(Value::as_usize).ok_or(format!("result needs integer \"{key}\""))
        };
        Ok(ScenarioResult {
            makespan: f("makespan")?,
            events: u("events")?,
            faults_applied: u("faults_applied")?,
            checkpoints_taken: u("checkpoints_taken")?,
            recoveries: u("recoveries")?,
            retries: u("retries")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bsp(system: System, nranks: usize) -> Scenario {
        Scenario::new(
            system,
            nranks,
            Workload::Bsp { steps: 3, flops_per_step: 1e6, bytes_per_step: 1e6, sync_bytes: 8.0 },
        )
    }

    #[test]
    fn digest_is_stable_across_clones_and_re_encodings() {
        let s = bsp(System::Dmz, 4);
        assert_eq!(s.digest(), s.digest());
        assert_eq!(s.digest(), s.clone().digest());
    }

    #[test]
    fn digest_separates_every_axis() {
        let base = bsp(System::Dmz, 4);
        let mut others = vec![
            bsp(System::Longs, 4),
            bsp(System::Dmz, 2),
            base.clone().with_fidelity(Fidelity::Quick),
            base.clone().with_placement(Placement::ScatterLocal),
            base.clone().with_mpi(MpiImpl::Lam),
            base.clone().with_lock(LockLayer::SysV),
            base.clone().with_faults(FaultPlan::new().rank_kill(0.5, RankId::new(0))),
            base.clone().with_recovery(CheckpointPolicy::new(0.5, 1e6)),
            base.clone().with_retry(RetryPolicy::new(0.01)),
        ];
        others.push(Scenario {
            workload: Workload::Bsp {
                steps: 4,
                flops_per_step: 1e6,
                bytes_per_step: 1e6,
                sync_bytes: 8.0,
            },
            ..base.clone()
        });
        let d0 = base.digest();
        for other in others {
            assert_ne!(d0, other.digest(), "{other:?} must not collide with base");
        }
    }

    #[test]
    fn run_matches_a_direct_world_build() {
        let s = bsp(System::Dmz, 4);
        let result = s.run().unwrap();

        let machine = System::Dmz.machine();
        let placements = Scheme::TwoMpiLocalAlloc.resolve(&machine, 4).unwrap();
        let mut world =
            CommWorld::new(&machine, placements, MpiImpl::Mpich2.profile(), LockLayer::USysV);
        let phase = ComputePhase::new("bsp-step", 1e6, TrafficProfile::stream(1e6));
        for _ in 0..3 {
            world.compute_all(|_| Some(phase.clone()));
            world.allreduce(8.0);
        }
        let report = world.run().unwrap();
        assert_eq!(result.makespan.to_bits(), report.makespan.to_bits());
        assert_eq!(result.events, report.metrics.events);
    }

    #[test]
    fn unknown_machine_keys_report_the_valid_generations() {
        assert_eq!(System::from_key("EPYC"), Ok(System::Epyc));
        let err = System::from_key("epic").unwrap_err();
        assert_eq!(err.requested, "epic");
        let rendered = err.to_string();
        for key in ["tiger", "dmz", "longs", "epyc", "hbm"] {
            assert!(rendered.contains(key), "{rendered}");
        }
    }

    #[test]
    fn modern_systems_parse_run_and_round_trip() {
        for system in [System::Epyc, System::Hbm] {
            assert_eq!(System::parse(system.key()), Some(system));
            let s = bsp(system, 4);
            let parsed = Scenario::from_json(&json::parse(&s.to_json()).unwrap()).unwrap();
            assert_eq!(parsed, s);
            assert_eq!(parsed.digest(), s.digest());
            let result = s.run().unwrap();
            assert!(result.makespan > 0.0);
        }
        assert_ne!(bsp(System::Epyc, 4).digest(), bsp(System::Hbm, 4).digest());
        assert_ne!(bsp(System::Epyc, 4).digest(), bsp(System::Dmz, 4).digest());
    }

    #[test]
    fn hetero_digest_sections_separate_override_axes() {
        // Two hetero specs that differ only inside the override tables
        // must hash apart (the conditional section is actually encoded).
        let mut a = System::Hbm.spec();
        let mut b = a.clone();
        b.node_memory[0].1.controller_bw *= 2.0;
        a.name = "probe".into();
        b.name = "probe".into();
        let da = {
            let mut enc = Encoder::new();
            encode_machine_spec(&mut enc, &a);
            enc.digest()
        };
        let db = {
            let mut enc = Encoder::new();
            encode_machine_spec(&mut enc, &b);
            enc.digest()
        };
        assert_ne!(da, db);
    }

    #[test]
    fn json_round_trips_and_preserves_the_digest() {
        let plain = bsp(System::Dmz, 4);
        let fancy = bsp(System::Longs, 8)
            .with_fidelity(Fidelity::Quick)
            .with_placement(Placement::Scheme(Scheme::Interleave))
            .with_mpi(MpiImpl::Lam)
            .with_lock(LockLayer::SysV)
            .with_faults(
                FaultPlan::new()
                    .controller_throttle(0.1, SocketId::new(1), 0.5)
                    .controller_restore(0.2, SocketId::new(1))
                    .rank_kill(0.3, RankId::new(2)),
            )
            .with_recovery(
                CheckpointPolicy::new(0.05, 2e6)
                    .with_target(CheckpointTarget::Node(NumaNodeId::new(0)))
                    .with_restart_delay(0.01),
            )
            .with_retry(RetryPolicy::new(0.02));
        for s in [plain, fancy] {
            let parsed = Scenario::from_json(&json::parse(&s.to_json()).unwrap()).unwrap();
            assert_eq!(parsed, s);
            assert_eq!(parsed.digest(), s.digest());
        }
    }

    #[test]
    fn workload_json_round_trips_every_kind() {
        let workloads = vec![
            Workload::Bsp { steps: 2, flops_per_step: 1e6, bytes_per_step: 2e6, sync_bytes: 8.0 },
            Workload::StreamSingle {
                kernel: StreamKernel::Triad,
                elements_per_rank: 1000,
                sweeps: 2,
            },
            Workload::StreamStar { kernel: StreamKernel::Copy, elements_per_rank: 1000, sweeps: 2 },
            Workload::Hpl { n: 256, nb: 32, dgemm_efficiency: 0.85 },
            Workload::DgemmSingle { n: 100, reps: 1, variant: BlasVariant::Acml },
            Workload::DgemmStar { n: 100, reps: 1, variant: BlasVariant::Vanilla },
            Workload::FftSingle { points_per_rank: 1024, reps: 1 },
            Workload::FftStar { points_per_rank: 1024, reps: 1 },
            Workload::RandomAccessSingle { table_words_per_rank: 512, updates_per_rank: 64 },
            Workload::RandomAccessStar { table_words_per_rank: 512, updates_per_rank: 64 },
            Workload::RandomAccessMpi { table_words_per_rank: 512, updates_per_rank: 64 },
            Workload::Ptrans { n: 64, reps: 1, block_bytes: 1e5 },
            Workload::PingPong { bytes: 1024.0, reps: 3 },
            Workload::NasCg { class: CgClass::A },
            Workload::NasFt { class: FtClass::B },
            Workload::DaxpySingle { n: 1000, reps: 2, variant: BlasVariant::Acml },
            Workload::DaxpyStar { n: 1000, reps: 2, variant: BlasVariant::Vanilla },
            Workload::XsLookupSingle { grid_points: 4096, nuclides: 16, lookups_per_rank: 1024 },
            Workload::XsLookupStar { grid_points: 4096, nuclides: 16, lookups_per_rank: 1024 },
        ];
        for w in workloads {
            let parsed = Workload::from_json(&json::parse(&w.to_json()).unwrap()).unwrap();
            assert_eq!(parsed, w, "{}", w.kind());
        }
    }

    #[test]
    fn digest_separates_every_calibration_field() {
        let base = bsp(System::Dmz, 4);
        let d0 = base.digest();
        for (i, field) in CalibParams::FIELDS.iter().enumerate() {
            let mut params = CalibParams::paper_2006();
            // Nudge the field to a distinct in-bounds value.
            let v = params.get(i);
            let nudged =
                if v < field.hi { (v + 0.25 * (field.hi - v)).min(field.hi) } else { field.lo };
            params.set(i, nudged);
            let other = base.clone().with_params(params);
            assert_ne!(d0, other.digest(), "field '{}' must separate digests", field.name);
        }
    }

    #[test]
    fn default_params_leave_digest_and_json_unchanged() {
        let base = bsp(System::Dmz, 4);
        let explicit = base.clone().with_params(CalibParams::paper_2006());
        assert_eq!(base.digest(), explicit.digest());
        // Default-point scenarios keep the pre-params JSON shape.
        assert!(!base.to_json().contains("\"params\""));
    }

    #[test]
    fn params_json_round_trips_and_preserves_the_digest() {
        let mut params = CalibParams::paper_2006();
        params.dram_latency *= 1.25;
        params.ht_bandwidth *= 0.75;
        let s = bsp(System::Longs, 8).with_params(params);
        let text = s.to_json();
        assert!(text.contains("\"params\""), "{text}");
        let parsed = Scenario::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(parsed.digest(), s.digest());
        // Unknown parameter names are rejected, not ignored.
        let bad = json::parse(
            r#"{"system":"dmz","nranks":2,"workload":{"kind":"pingpong","bytes":8,"reps":1},
                "params":{"warp_factor":9}}"#,
        )
        .unwrap();
        let err = Scenario::from_json(&bad).unwrap_err();
        assert!(err.contains("warp_factor"), "{err}");
    }

    #[test]
    fn perturbed_params_change_the_outcome() {
        let base = Scenario::new(
            System::Dmz,
            2,
            Workload::StreamStar {
                kernel: StreamKernel::Triad,
                elements_per_rank: 100_000,
                sweeps: 2,
            },
        );
        let mut slow = CalibParams::paper_2006();
        slow.dram_bandwidth *= 0.5;
        let perturbed = base.clone().with_params(slow);
        let t0 = base.run().unwrap().makespan;
        let t1 = perturbed.run().unwrap().makespan;
        assert!(t1 > 1.2 * t0, "halving DRAM bandwidth must slow STREAM: {t0} -> {t1}");
    }

    #[test]
    fn out_of_bounds_params_fail_validation() {
        let mut params = CalibParams::paper_2006();
        params.dram_latency = 1.0;
        let s = bsp(System::Dmz, 2).with_params(params);
        assert!(s.validate().is_err());
        assert!(s.run().is_err());
    }

    #[test]
    fn nas_and_daxpy_workloads_run() {
        let cg = Scenario::new(System::Dmz, 4, Workload::NasCg { class: CgClass::S });
        let ft = Scenario::new(System::Dmz, 4, Workload::NasFt { class: FtClass::S });
        let daxpy = Scenario::new(
            System::Dmz,
            4,
            Workload::DaxpyStar { n: 10_000, reps: 2, variant: BlasVariant::Vanilla },
        );
        for s in [cg, ft, daxpy] {
            let r = s.run().unwrap();
            assert!(r.makespan > 0.0, "{}", s.workload.kind());
        }
    }

    #[test]
    fn xslookup_placement_decides_the_winner() {
        // The scenario-level view of the x10 crossover: the same star
        // workload flips winners between localalloc and interleave as
        // the table outgrows one DMZ node's usable share.
        let run = |scheme: Scheme, grid_points: u64| {
            let s = Scenario::new(
                System::Dmz,
                4,
                Workload::XsLookupStar { grid_points, nuclides: 64, lookups_per_rank: 1 << 16 },
            )
            .with_placement(Placement::Scheme(scheme));
            s.run().unwrap().makespan
        };
        // ~0.37 GiB/rank vs ~1.5 GiB/rank around the 0.75 GiB boundary.
        let (small, large) = (156_000, 624_000);
        assert!(run(Scheme::TwoMpiLocalAlloc, small) < run(Scheme::Interleave, small));
        assert!(run(Scheme::Interleave, large) < run(Scheme::TwoMpiLocalAlloc, large));
        // Membind packs all four tables onto the central node list and
        // never beats interleave at the large size.
        assert!(run(Scheme::Interleave, large) <= run(Scheme::TwoMpiMembind, large));
    }

    #[test]
    fn result_json_round_trips_exactly() {
        let r = ScenarioResult {
            makespan: 1.0 / 3.0,
            events: 12345,
            faults_applied: 2,
            checkpoints_taken: 7,
            recoveries: 1,
            retries: 0,
        };
        let back = ScenarioResult::from_json(&json::parse(&r.to_json()).unwrap()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.makespan.to_bits(), r.makespan.to_bits());
    }

    #[test]
    fn validate_rejects_impossible_worlds() {
        assert!(bsp(System::Dmz, 0).validate().is_err());
        let pp = Scenario::new(System::Dmz, 1, Workload::PingPong { bytes: 8.0, reps: 1 });
        assert!(pp.validate().is_err());
        assert!(pp.run().is_err());
    }

    #[test]
    fn unplaceable_schemes_are_detected_without_running() {
        // 16 one-per-socket ranks cannot fit on 8-socket longs.
        let p = Placement::Scheme(Scheme::OneMpiLocalAlloc);
        assert!(!p.placeable(System::Longs, 16));
        assert!(p.placeable(System::Longs, 8));
    }

    #[test]
    fn bad_scenario_json_reports_the_field() {
        let missing = json::parse(r#"{"nranks": 2}"#).unwrap();
        let err = Scenario::from_json(&missing).unwrap_err();
        assert!(err.contains("system"), "{err}");
        let bad_workload =
            json::parse(r#"{"system":"dmz","nranks":2,"workload":{"kind":"nope"}}"#).unwrap();
        let err = Scenario::from_json(&bad_workload).unwrap_err();
        assert!(err.contains("nope"), "{err}");
    }
}
