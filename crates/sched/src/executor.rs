//! A work-stealing executor built from std primitives only.
//!
//! Layout: one global injector plus one deque per worker. A worker pops
//! its own deque LIFO (cache-warm), refills from the injector FIFO, and
//! steals the *front* of a sibling's deque when both are dry — the
//! classic injector/deque arrangement, without `unsafe` or vendored
//! lock-free code: simulation jobs run for milliseconds to seconds, so a
//! mutex around each deque is noise.
//!
//! Determinism contract: `run_ordered` returns results in **input
//! order**, whatever interleaving the workers ran. Combined with the
//! engine's own determinism this is what lets `repro --jobs 8` produce
//! byte-identical tables to `--jobs 1`.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f` over `items`, fanning out over `jobs` worker threads, and
/// returns the outputs in input order.
///
/// `jobs == 0` is treated as 1. With one job the items run inline on the
/// caller's thread in order — no thread is spawned, which keeps
/// single-job runs exactly as debuggable as the old serial loops.
///
/// # Panics
///
/// If `f` panics for any item, the first such panic is resumed on the
/// caller's thread after all workers have drained.
pub fn run_ordered<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().map(&f).collect();
    }

    // Work items live in slots so each is taken (and run) exactly once,
    // no matter which deque its index ends up in.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let injector: Mutex<VecDeque<usize>> = Mutex::new((0..slots.len()).collect());
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    let results: Vec<Mutex<Option<R>>> = (0..slots.len()).map(|_| Mutex::new(None)).collect();
    let panic_box: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let in_flight = AtomicUsize::new(slots.len());

    /// How many injector items a worker grabs at once: enough to keep its
    /// own deque busy, few enough that late stealers still find work.
    const REFILL: usize = 4;

    std::thread::scope(|scope| {
        for me in 0..jobs {
            let slots = &slots;
            let injector = &injector;
            let deques = &deques;
            let results = &results;
            let panic_box = &panic_box;
            let in_flight = &in_flight;
            let f = &f;
            scope.spawn(move || {
                let mut dry_scans = 0;
                loop {
                    if in_flight.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    // 1. Own deque, newest first.
                    let mut idx = deques[me].lock().map_or(None, |mut d| d.pop_back());
                    // 2. Refill a batch from the injector.
                    if idx.is_none() {
                        if let Ok(mut inj) = injector.lock() {
                            idx = inj.pop_front();
                            if idx.is_some() {
                                let batch: Vec<usize> =
                                    (1..REFILL).map_while(|_| inj.pop_front()).collect();
                                drop(inj);
                                if let Ok(mut own) = deques[me].lock() {
                                    own.extend(batch);
                                }
                            }
                        }
                    }
                    // 3. Steal the oldest entry from a sibling.
                    if idx.is_none() {
                        for victim in (0..jobs).filter(|&v| v != me) {
                            idx = deques[victim].lock().map_or(None, |mut d| d.pop_front());
                            if idx.is_some() {
                                break;
                            }
                        }
                    }
                    let Some(idx) = idx else {
                        if in_flight.load(Ordering::Acquire) == 0 {
                            return;
                        }
                        // Every queue is dry. Finished items never spawn
                        // new work, so what remains is either executing
                        // on a sibling or mid-refill into a sibling's
                        // deque; rescan a couple of times to catch the
                        // latter, then retire — the batch's owner drains
                        // its own deque, and spinning here would only
                        // steal CPU from the workers still computing.
                        dry_scans += 1;
                        if dry_scans > 2 {
                            return;
                        }
                        std::thread::yield_now();
                        continue;
                    };
                    dry_scans = 0;
                    let item = slots[idx].lock().ok().and_then(|mut s| s.take());
                    if let Some(item) = item {
                        match catch_unwind(AssertUnwindSafe(|| f(&item))) {
                            Ok(r) => {
                                if let Ok(mut slot) = results[idx].lock() {
                                    *slot = Some(r);
                                }
                            }
                            Err(payload) => {
                                if let Ok(mut pb) = panic_box.lock() {
                                    pb.get_or_insert(payload);
                                }
                            }
                        }
                        in_flight.fetch_sub(1, Ordering::Release);
                    }
                }
            });
        }
    });

    if let Some(payload) = panic_box.into_inner().ok().flatten() {
        resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .ok()
                .flatten()
                // Unreachable: in_flight hit zero without a stored panic,
                // so every slot was filled.
                .expect("executor drained with an unfilled result slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order_at_any_parallelism() {
        let items: Vec<usize> = (0..100).collect();
        let serial = run_ordered(1, items.clone(), |&i| i * 3);
        for jobs in [2, 4, 8] {
            assert_eq!(run_ordered(jobs, items.clone(), |&i| i * 3), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = run_ordered(8, (0..250).collect(), |&i: &usize| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), 250);
        assert_eq!(out, (0..250).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        assert_eq!(run_ordered(8, Vec::<usize>::new(), |&i| i), Vec::<usize>::new());
        assert_eq!(run_ordered(8, vec![7], |&i| i + 1), vec![8]);
        assert_eq!(run_ordered(0, vec![1, 2], |&i| i), vec![1, 2]);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        run_ordered(4, (0..64).collect(), |&_i: &usize| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert!(seen.lock().unwrap().len() > 1, "work never left the calling thread");
    }

    #[test]
    fn propagates_the_first_panic() {
        let result = std::panic::catch_unwind(|| {
            run_ordered(4, (0..32).collect(), |&i: &usize| {
                assert!(i != 17, "boom at {i}");
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn uneven_workloads_balance() {
        // One huge item up front must not serialise the rest behind it.
        let start = std::time::Instant::now();
        run_ordered(4, (0..16).collect(), |&i: &usize| {
            let ms = if i == 0 { 50 } else { 5 };
            std::thread::sleep(std::time::Duration::from_millis(ms));
        });
        // Serial would be 50 + 15*5 = 125ms; stolen-balanced is ~50-75ms.
        // Generous bound to stay robust on loaded CI machines.
        assert!(start.elapsed() < std::time::Duration::from_millis(120));
    }
}
