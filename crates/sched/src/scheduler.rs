//! The [`Scheduler`]: cache-aware, deduplicating batch execution.
//!
//! One scheduler is shared (by reference) between the `repro` driver, the
//! artifact code and `corescope-serve`. A batch of scenarios goes
//! through three filters before any engine runs:
//!
//! 1. **batch dedup** — identical digests inside one batch collapse to a
//!    single job (sweeps love repeating their baseline point);
//! 2. **cache** — memory, then disk ([`ResultCache`]);
//! 3. **single-flight** — if another thread is *currently* running the
//!    same digest, wait for its result instead of recomputing.
//!
//! What survives fans out over the work-stealing [`crate::executor`],
//! and results return in input order — so any table built from a batch
//! is byte-identical no matter the job count or cache temperature.

use crate::cache::{CacheStats, CacheTier, ComputeClaim, ResultCache};
use crate::encode::Digest;
use crate::executor;
use crate::scenario::{Scenario, ScenarioResult};
use crate::sink::StoreSink;
use corescope_machine::{Error, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A finished scenario: the result plus where it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct Completed {
    /// The (possibly cached) engine result.
    pub result: ScenarioResult,
    /// Which tier satisfied the request.
    pub tier: CacheTier,
}

/// Outcome of one scenario in a shed-aware batch
/// ([`Scheduler::run_batch_where`]).
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOutcome {
    /// The scenario ran, or was served from a cache tier.
    Done(Completed),
    /// The shed predicate fired before the scenario was dispatched; no
    /// engine time was spent on it.
    Shed,
    /// The engine rejected or failed the scenario.
    Failed(Error),
}

/// Counters over a scheduler's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedStats {
    /// Scenarios requested (before any dedup).
    pub scenarios: usize,
    /// Actual engine executions.
    pub engine_runs: usize,
    /// Requests answered from the in-memory cache.
    pub hits_memory: usize,
    /// Requests answered from the on-disk cache.
    pub hits_disk: usize,
    /// Duplicate digests folded inside a single batch.
    pub deduped: usize,
    /// Requests that waited on another thread's identical in-flight run.
    pub in_flight_waits: usize,
    /// Requests that ended in an error.
    pub errors: usize,
    /// Disk-cache operations that failed (degraded to misses).
    pub disk_errors: usize,
    /// Disk-cache entries that failed validation (CRC mismatch, bad
    /// decode) — a subset of `disk_errors`.
    pub corrupt_entries: usize,
    /// Requests shed before dispatch (deadline passed while queued).
    pub shed: usize,
    /// Campaign-store appends that failed and were dropped (counted by
    /// the [`StoreSink`], zero when no store is attached).
    pub store_errors: usize,
}

/// Cross-thread rendezvous for one in-flight digest.
#[derive(Debug, Default)]
struct Flight {
    slot: Mutex<Option<Result<ScenarioResult>>>,
    done: Condvar,
}

impl Flight {
    fn complete(&self, outcome: Result<ScenarioResult>) {
        if let Ok(mut slot) = self.slot.lock() {
            *slot = Some(outcome);
        }
        self.done.notify_all();
    }

    fn wait(&self) -> Result<ScenarioResult> {
        let mut slot = match self.slot.lock() {
            Ok(slot) => slot,
            Err(poisoned) => poisoned.into_inner(),
        };
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            slot = match self.done.wait(slot) {
                Ok(slot) => slot,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

/// Ensures a claimed flight is always completed, even if the scenario
/// run panics — otherwise followers would wait forever.
struct FlightGuard<'a> {
    sched: &'a Scheduler,
    digest: Digest,
    flight: Arc<Flight>,
    completed: bool,
}

impl FlightGuard<'_> {
    fn complete(mut self, outcome: Result<ScenarioResult>) {
        self.completed = true;
        self.finish(outcome);
    }

    fn finish(&self, outcome: Result<ScenarioResult>) {
        if let Ok(mut flights) = self.sched.flights.lock() {
            flights.remove(&self.digest.0);
        }
        self.flight.complete(outcome);
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.finish(Err(Error::InvalidSpec(
                "scenario execution panicked while other requests waited on it".to_string(),
            )));
        }
    }
}

/// The batch scheduler. Cheap to share: all methods take `&self`.
#[derive(Debug)]
pub struct Scheduler {
    jobs: usize,
    cache: ResultCache,
    store: Option<Arc<StoreSink>>,
    flights: Mutex<HashMap<u128, Arc<Flight>>>,
    scenarios: AtomicUsize,
    engine_runs: AtomicUsize,
    hits_memory: AtomicUsize,
    hits_disk: AtomicUsize,
    deduped: AtomicUsize,
    in_flight_waits: AtomicUsize,
    errors: AtomicUsize,
    shed: AtomicUsize,
}

impl Scheduler {
    /// A scheduler with `jobs` workers and an in-memory cache.
    pub fn new(jobs: usize) -> Self {
        Self::with_cache(jobs, ResultCache::in_memory())
    }

    /// A scheduler with `jobs` workers over an explicit cache
    /// (typically [`ResultCache::on_disk`]).
    pub fn with_cache(jobs: usize, cache: ResultCache) -> Self {
        Self {
            jobs: jobs.max(1),
            cache,
            store: None,
            flights: Mutex::new(HashMap::new()),
            scenarios: AtomicUsize::new(0),
            engine_runs: AtomicUsize::new(0),
            hits_memory: AtomicUsize::new(0),
            hits_disk: AtomicUsize::new(0),
            deduped: AtomicUsize::new(0),
            in_flight_waits: AtomicUsize::new(0),
            errors: AtomicUsize::new(0),
            shed: AtomicUsize::new(0),
        }
    }

    /// Attaches a crash-safe campaign store: every *fresh* engine result
    /// (cache hits are already on record from the run that produced
    /// them) is appended as a columnar row, flushed at batch
    /// boundaries. The sink is shared, so a campaign driver can keep a
    /// handle for resume checks and aggregation.
    pub fn with_store(mut self, sink: Arc<StoreSink>) -> Self {
        self.store = Some(sink);
        self
    }

    /// The attached campaign-store sink, if any.
    pub fn store(&self) -> Option<&Arc<StoreSink>> {
        self.store.as_ref()
    }

    /// A snapshot of the underlying result cache's counters (the sched
    /// summary folds in only the headline numbers).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs a batch, returning one outcome per input scenario, in input
    /// order. Identical scenarios (same digest) run once.
    pub fn run_batch(&self, scenarios: &[Scenario]) -> Vec<Result<Completed>> {
        self.run_batch_where(scenarios, |_| false)
            .into_iter()
            .map(|outcome| match outcome {
                BatchOutcome::Done(completed) => Ok(completed),
                BatchOutcome::Failed(e) => Err(e),
                BatchOutcome::Shed => unreachable!("constant-false predicate never sheds"),
            })
            .collect()
    }

    /// Like [`Scheduler::run_batch`], but each scenario's dispatch first
    /// consults `shed(input_index)`: when it returns `true` the scenario
    /// is dropped with [`BatchOutcome::Shed`] instead of running. This is
    /// how `serve` sheds work whose deadline passed while it sat in the
    /// queue — the predicate is evaluated at dispatch time, so a slow
    /// batch ahead of a request converts into a typed shed, not a stall.
    ///
    /// Duplicate digests still collapse to one job; the job runs unless
    /// *every* input folded into it sheds (a computed result is free to
    /// deliver even to inputs whose own deadline has since passed).
    pub fn run_batch_where(
        &self,
        scenarios: &[Scenario],
        shed: impl Fn(usize) -> bool + Sync,
    ) -> Vec<BatchOutcome> {
        self.scenarios.fetch_add(scenarios.len(), Ordering::Relaxed);
        let digests: Vec<Digest> = scenarios.iter().map(Scenario::digest).collect();

        // Collapse duplicate digests: `unique[k]` is the index of the
        // first scenario with that digest; `owner_of[i]` maps every input
        // to its unique job.
        let mut job_of_digest: HashMap<u128, usize> = HashMap::new();
        let mut unique: Vec<usize> = Vec::new();
        let mut owner_of: Vec<usize> = Vec::with_capacity(scenarios.len());
        for digest in &digests {
            let next = unique.len();
            let job = *job_of_digest.entry(digest.0).or_insert(next);
            if job == next {
                unique.push(owner_of.len());
            }
            owner_of.push(job);
        }
        self.deduped.fetch_add(scenarios.len() - unique.len(), Ordering::Relaxed);

        // `None` = shed before dispatch.
        let unique_outcomes: Vec<Option<Result<Completed>>> =
            executor::run_ordered(self.jobs, unique, |&first| {
                let job = owner_of[first];
                let all_shed = (0..scenarios.len()).filter(|&i| owner_of[i] == job).all(&shed);
                if all_shed {
                    None
                } else {
                    Some(self.run_single(&scenarios[first], digests[first]))
                }
            });

        // Batch boundary: commit buffered store rows so a crash between
        // batches loses at most the batch in progress.
        if let Some(sink) = &self.store {
            sink.flush();
        }

        owner_of
            .iter()
            .enumerate()
            .map(|(i, &job)| match &unique_outcomes[job] {
                None => {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    BatchOutcome::Shed
                }
                Some(Ok(completed)) => {
                    let mut completed = completed.clone();
                    // Every input after the first with a given digest was
                    // folded into that first one's run.
                    if is_duplicate(&owner_of, i) {
                        completed.tier = CacheTier::InFlight;
                    }
                    BatchOutcome::Done(completed)
                }
                Some(Err(e)) => {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    BatchOutcome::Failed(e.clone())
                }
            })
            .collect()
    }

    /// Runs one scenario through cache + single-flight.
    pub fn run_one(&self, scenario: &Scenario) -> Result<Completed> {
        self.scenarios.fetch_add(1, Ordering::Relaxed);
        let outcome = self.run_single(scenario, scenario.digest());
        if outcome.is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(sink) = &self.store {
            sink.flush();
        }
        outcome
    }

    /// [`Scheduler::run_single_inner`] plus the campaign-store commit
    /// point: every successful outcome is offered to the sink, which
    /// drops digests already committed — so a cache hit during a
    /// *resumed* campaign still lands the row the killed run never got
    /// to flush, while warm reruns append nothing.
    fn run_single(&self, scenario: &Scenario, digest: Digest) -> Result<Completed> {
        let outcome = self.run_single_inner(scenario, digest);
        if let (Some(sink), Ok(done)) = (&self.store, &outcome) {
            sink.record(scenario, digest, &done.result);
        }
        outcome
    }

    fn run_single_inner(&self, scenario: &Scenario, digest: Digest) -> Result<Completed> {
        if let Some((result, tier)) = self.cache.get(digest) {
            match tier {
                CacheTier::Memory => self.hits_memory.fetch_add(1, Ordering::Relaxed),
                _ => self.hits_disk.fetch_add(1, Ordering::Relaxed),
            };
            return Ok(Completed { result, tier });
        }

        // Claim the flight or join an existing one.
        let claim = {
            let mut flights = match self.flights.lock() {
                Ok(flights) => flights,
                Err(poisoned) => poisoned.into_inner(),
            };
            match flights.get(&digest.0) {
                Some(flight) => Err(Arc::clone(flight)),
                None => {
                    let flight = Arc::new(Flight::default());
                    flights.insert(digest.0, Arc::clone(&flight));
                    Ok(flight)
                }
            }
        };

        match claim {
            Ok(flight) => {
                let guard = FlightGuard { sched: self, digest, flight, completed: false };
                // Single-flight across *processes* too: another scheduler
                // sharing this disk cache may be computing this digest
                // right now — wait for its entry instead of duplicating
                // the run.
                match self.cache.claim_compute(digest) {
                    ComputeClaim::Published(result) => {
                        self.hits_disk.fetch_add(1, Ordering::Relaxed);
                        guard.complete(Ok(result.clone()));
                        Ok(Completed { result, tier: CacheTier::Disk })
                    }
                    ComputeClaim::Owner(lock) => {
                        self.engine_runs.fetch_add(1, Ordering::Relaxed);
                        let outcome = scenario.run();
                        if let Ok(result) = &outcome {
                            self.cache.put(digest, result);
                        }
                        drop(lock); // release only after the entry is published
                        guard.complete(outcome.clone());
                        outcome.map(|result| Completed { result, tier: CacheTier::Miss })
                    }
                }
            }
            Err(flight) => {
                self.in_flight_waits.fetch_add(1, Ordering::Relaxed);
                flight.wait().map(|result| Completed { result, tier: CacheTier::InFlight })
            }
        }
    }

    /// A snapshot of the counters (plus the cache's disk-error and
    /// corruption counts, and the store sink's append errors).
    pub fn stats(&self) -> SchedStats {
        let cache = self.cache.stats();
        SchedStats {
            scenarios: self.scenarios.load(Ordering::Relaxed),
            engine_runs: self.engine_runs.load(Ordering::Relaxed),
            hits_memory: self.hits_memory.load(Ordering::Relaxed),
            hits_disk: self.hits_disk.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
            in_flight_waits: self.in_flight_waits.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            disk_errors: cache.disk_errors,
            corrupt_entries: cache.corrupt_entries,
            shed: self.shed.load(Ordering::Relaxed),
            store_errors: self.store.as_ref().map_or(0, |sink| sink.append_errors()),
        }
    }

    /// One-line human summary, printed by `repro` and asserted on by CI's
    /// warm-cache check.
    pub fn summary(&self) -> String {
        let s = self.stats();
        let mut line = format!(
            "sched: scenarios {}, engine runs {}, cache hits {} (memory {}, disk {}), \
             deduped {}, in-flight waits {}, errors {}, shed {}, disk errors {}, \
             corrupt entries {}",
            s.scenarios,
            s.engine_runs,
            s.hits_memory + s.hits_disk,
            s.hits_memory,
            s.hits_disk,
            s.deduped,
            s.in_flight_waits,
            s.errors,
            s.shed,
            s.disk_errors,
            s.corrupt_entries,
        );
        if self.store.is_some() {
            line.push_str(&format!(", store errors {}", s.store_errors));
        }
        line
    }
}

fn is_duplicate(owner_of: &[usize], i: usize) -> bool {
    owner_of.iter().take(i).any(|&j| j == owner_of[i])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{System, Workload};

    fn bsp(steps: usize) -> Scenario {
        Scenario::new(
            System::Dmz,
            2,
            Workload::Bsp { steps, flops_per_step: 1e6, bytes_per_step: 1e6, sync_bytes: 8.0 },
        )
    }

    #[test]
    fn duplicates_inside_a_batch_run_once() {
        let sched = Scheduler::new(2);
        let batch = vec![bsp(3), bsp(3), bsp(3)];
        let out = sched.run_batch(&batch);
        assert_eq!(out.len(), 3);
        let first = out[0].as_ref().unwrap();
        assert_eq!(first.tier, CacheTier::Miss);
        for dup in &out[1..] {
            let dup = dup.as_ref().unwrap();
            assert_eq!(dup.result, first.result);
            assert_eq!(dup.tier, CacheTier::InFlight);
        }
        let stats = sched.stats();
        assert_eq!(stats.engine_runs, 1);
        assert_eq!(stats.deduped, 2);
    }

    #[test]
    fn warm_batches_come_from_cache_with_identical_results() {
        let sched = Scheduler::new(4);
        let batch = vec![bsp(2), bsp(4), bsp(6)];
        let cold: Vec<_> = sched.run_batch(&batch).into_iter().map(|r| r.unwrap()).collect();
        let warm: Vec<_> = sched.run_batch(&batch).into_iter().map(|r| r.unwrap()).collect();
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.result, w.result);
            assert_eq!(
                c.result.makespan.to_bits(),
                w.result.makespan.to_bits(),
                "cached makespan must be bit-identical"
            );
            assert_eq!(w.tier, CacheTier::Memory);
        }
        assert_eq!(sched.stats().engine_runs, 3);
        assert_eq!(sched.stats().hits_memory, 3);
    }

    #[test]
    fn jobs_do_not_change_results_or_order() {
        let batch: Vec<Scenario> = (1..=12).map(bsp).collect();
        let serial: Vec<_> =
            Scheduler::new(1).run_batch(&batch).into_iter().map(|r| r.unwrap().result).collect();
        let parallel: Vec<_> =
            Scheduler::new(8).run_batch(&batch).into_iter().map(|r| r.unwrap().result).collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn errors_come_back_in_place_without_poisoning_the_batch() {
        let sched = Scheduler::new(2);
        let bad = Scenario::new(System::Dmz, 99, bsp(1).workload); // cannot place 99 ranks
        let batch = vec![bsp(2), bad, bsp(3)];
        let out = sched.run_batch(&batch);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
        assert!(out[2].is_ok());
        assert_eq!(sched.stats().errors, 1);
    }

    #[test]
    fn concurrent_identical_requests_single_flight() {
        let sched = std::sync::Arc::new(Scheduler::new(1));
        let scenario = bsp(5);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let sched = std::sync::Arc::clone(&sched);
                let scenario = scenario.clone();
                scope.spawn(move || sched.run_one(&scenario).unwrap());
            }
        });
        let stats = sched.stats();
        assert_eq!(stats.engine_runs, 1, "{stats:?}");
        assert_eq!(stats.scenarios, 4);
        // The other three were memory hits or in-flight waits.
        assert_eq!(stats.hits_memory + stats.in_flight_waits, 3, "{stats:?}");
    }

    #[test]
    fn run_batch_where_sheds_before_dispatch() {
        let sched = Scheduler::new(1);
        let batch = vec![bsp(2), bsp(4), bsp(6)];
        let out = sched.run_batch_where(&batch, |i| i == 1);
        assert!(matches!(out[0], BatchOutcome::Done(_)));
        assert_eq!(out[1], BatchOutcome::Shed);
        assert!(matches!(out[2], BatchOutcome::Done(_)));
        let stats = sched.stats();
        assert_eq!(stats.engine_runs, 2, "{stats:?}");
        assert_eq!(stats.shed, 1);
        assert!(sched.summary().contains("shed 1"), "{}", sched.summary());
    }

    #[test]
    fn shed_duplicates_still_get_a_result_when_any_twin_runs() {
        let sched = Scheduler::new(1);
        let batch = vec![bsp(3), bsp(3)];
        // Input 0 sheds, but its twin still wants the job: the result is
        // computed once and delivered to both — a finished result costs
        // nothing to hand to an expired request.
        let out = sched.run_batch_where(&batch, |i| i == 0);
        assert!(matches!(out[0], BatchOutcome::Done(_)));
        assert!(matches!(out[1], BatchOutcome::Done(_)));
        assert_eq!(sched.stats().engine_runs, 1);
        assert_eq!(sched.stats().shed, 0);
    }

    #[test]
    fn shedding_every_twin_skips_the_job_entirely() {
        let sched = Scheduler::new(2);
        let batch = vec![bsp(3), bsp(3), bsp(5)];
        let out = sched.run_batch_where(&batch, |i| i <= 1);
        assert_eq!(out[0], BatchOutcome::Shed);
        assert_eq!(out[1], BatchOutcome::Shed);
        assert!(matches!(out[2], BatchOutcome::Done(_)));
        let stats = sched.stats();
        assert_eq!(stats.engine_runs, 1, "{stats:?}");
        assert_eq!(stats.shed, 2);
    }

    #[test]
    fn attached_store_records_unique_rows_and_skips_committed_on_resume() {
        let dir = std::env::temp_dir()
            .join(format!("corescope-sched-store-{:?}", std::thread::current().id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sink = Arc::new(crate::sink::StoreSink::open(&dir).unwrap());
        let sched = Scheduler::new(2).with_store(Arc::clone(&sink));
        sched.run_batch(&[bsp(2), bsp(4), bsp(2)]);
        assert_eq!(sink.rows_recorded(), 2, "one row per unique digest");
        assert_eq!(sink.rows().unwrap().len(), 2);
        assert!(sched.summary().ends_with("store errors 0"), "{}", sched.summary());
        // Warm rerun: cache hits are re-offered but already committed.
        sched.run_batch(&[bsp(2), bsp(4)]);
        assert_eq!(sink.rows_recorded(), 2);
        drop(sched);
        drop(sink);
        // A fresh scheduler over the same store resumes: its cache is
        // cold so the engine reruns, but committed digests append
        // nothing — only the genuinely new scenario lands a row.
        let sink = Arc::new(crate::sink::StoreSink::open(&dir).unwrap());
        let sched = Scheduler::new(1).with_store(Arc::clone(&sink));
        sched.run_batch(&[bsp(2), bsp(6)]);
        assert_eq!(sink.rows_recorded(), 1, "{}", sink.summary());
        assert_eq!(sink.rows().unwrap().len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_mentions_engine_runs() {
        let sched = Scheduler::new(1);
        sched.run_batch(&[bsp(2)]);
        let line = sched.summary();
        assert!(line.contains("engine runs 1"), "{line}");
        assert!(line.starts_with("sched: scenarios 1"), "{line}");
    }
}
