//! Canonical byte encoding and content digests for scenarios.
//!
//! The repo vendors no serde, so the encoding is hand-rolled (like the
//! Chrome-trace JSON in `harness::observe`) and deliberately boring: a
//! flat byte stream of length-prefixed, tagged fields. Two properties
//! matter and are tested:
//!
//! 1. **stability** — encoding is a pure function of the value, so the
//!    same scenario always produces the same bytes (and digest), across
//!    processes and re-encodings;
//! 2. **injectivity in practice** — every field is written as
//!    `name-length ‖ name ‖ payload` with fixed-width scalar payloads and
//!    length-prefixed variable ones, so two different field sequences
//!    cannot concatenate to the same byte stream (no ambiguity at field
//!    boundaries), and any single-field perturbation changes the stream.
//!
//! The digest is 128-bit FNV-1a over the canonical bytes. FNV is not
//! cryptographic, but cache keys here defend against *accidental*
//! collision, not an adversary; 128 bits over kilobyte-scale inputs makes
//! accidental collision astronomically unlikely.

use std::fmt;

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A 128-bit content digest, printed as 32 hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub u128);

impl Digest {
    /// The digest as a lowercase hex string (32 chars), usable as a file
    /// name.
    pub fn hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the output of [`Digest::hex`].
    pub fn parse(s: &str) -> Option<Digest> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Digest)
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Canonical byte encoder: append-only, field-tagged, length-prefixed.
#[derive(Debug, Default)]
pub struct Encoder {
    bytes: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    fn raw_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_be_bytes());
    }

    fn name(&mut self, name: &str) {
        self.raw_u64(name.len() as u64);
        self.bytes.extend_from_slice(name.as_bytes());
    }

    /// A named unsigned integer field.
    pub fn u64(&mut self, name: &str, v: u64) -> &mut Self {
        self.name(name);
        self.bytes.push(b'u');
        self.raw_u64(v);
        self
    }

    /// A named `usize` field (encoded as u64).
    pub fn usize(&mut self, name: &str, v: usize) -> &mut Self {
        self.u64(name, v as u64)
    }

    /// A named float field, encoded by bit pattern so `-0.0` and `0.0`
    /// (and every NaN payload) stay distinguishable and the encoding is
    /// exact.
    pub fn f64(&mut self, name: &str, v: f64) -> &mut Self {
        self.name(name);
        self.bytes.push(b'f');
        self.bytes.extend_from_slice(&v.to_bits().to_be_bytes());
        self
    }

    /// A named string field.
    pub fn str(&mut self, name: &str, v: &str) -> &mut Self {
        self.name(name);
        self.bytes.push(b's');
        self.raw_u64(v.len() as u64);
        self.bytes.extend_from_slice(v.as_bytes());
        self
    }

    /// A named enum-discriminant field: the variant's stable key string.
    pub fn tag(&mut self, name: &str, variant: &str) -> &mut Self {
        self.name(name);
        self.bytes.push(b't');
        self.raw_u64(variant.len() as u64);
        self.bytes.extend_from_slice(variant.as_bytes());
        self
    }

    /// Opens a named list of `len` elements; callers then encode each
    /// element's fields. The length prefix keeps adjacent lists from
    /// bleeding into one another.
    pub fn list(&mut self, name: &str, len: usize) -> &mut Self {
        self.name(name);
        self.bytes.push(b'l');
        self.raw_u64(len as u64);
        self
    }

    /// The canonical bytes accumulated so far.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// 128-bit FNV-1a over the canonical bytes.
    pub fn digest(&self) -> Digest {
        let mut h = FNV_OFFSET;
        for &b in &self.bytes {
            h ^= b as u128;
            h = h.wrapping_mul(FNV_PRIME);
        }
        Digest(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest_of(f: impl FnOnce(&mut Encoder)) -> Digest {
        let mut e = Encoder::new();
        f(&mut e);
        e.digest()
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = digest_of(|e| {
            e.str("name", "dmz").usize("ranks", 4).f64("bytes", 1.5e9);
        });
        let b = digest_of(|e| {
            e.str("name", "dmz").usize("ranks", 4).f64("bytes", 1.5e9);
        });
        assert_eq!(a, b);
    }

    #[test]
    fn any_field_change_changes_the_digest() {
        let base = digest_of(|e| {
            e.str("name", "dmz").usize("ranks", 4).f64("bytes", 1.5e9);
        });
        let name = digest_of(|e| {
            e.str("name", "dmx").usize("ranks", 4).f64("bytes", 1.5e9);
        });
        let ranks = digest_of(|e| {
            e.str("name", "dmz").usize("ranks", 5).f64("bytes", 1.5e9);
        });
        let bytes = digest_of(|e| {
            e.str("name", "dmz").usize("ranks", 4).f64("bytes", 1.5e9 + 1.0);
        });
        assert_ne!(base, name);
        assert_ne!(base, ranks);
        assert_ne!(base, bytes);
    }

    #[test]
    fn field_boundaries_are_unambiguous() {
        // "ab" + "c" must not collide with "a" + "bc": the length
        // prefixes land in different places.
        let a = digest_of(|e| {
            e.str("x", "ab").str("y", "c");
        });
        let b = digest_of(|e| {
            e.str("x", "a").str("y", "bc");
        });
        assert_ne!(a, b);
    }

    #[test]
    fn float_bit_patterns_are_exact() {
        let pos = digest_of(|e| {
            e.f64("v", 0.0);
        });
        let neg = digest_of(|e| {
            e.f64("v", -0.0);
        });
        assert_ne!(pos, neg);
    }

    #[test]
    fn digest_hex_round_trips() {
        let d = digest_of(|e| {
            e.str("k", "v");
        });
        assert_eq!(Digest::parse(&d.hex()), Some(d));
        assert_eq!(d.hex().len(), 32);
        assert_eq!(Digest::parse("xyz"), None);
    }
}
