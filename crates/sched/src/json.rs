//! A minimal JSON reader/writer — the repo vendors no serde.
//!
//! Covers exactly what the scheduler needs: parsing newline-delimited
//! scenario requests in `corescope-serve` and reading on-disk cache
//! entries back. Numbers are `f64` (like JavaScript); objects preserve
//! insertion order; duplicate keys keep the last value.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (`None` elsewhere, last duplicate wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=(u64::MAX as f64)).contains(&n) {
            Some(n as usize)
        } else {
            None
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members in document order, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number. Rust's shortest-round-trip `{}`
/// float formatting guarantees `parse` recovers the exact bits, which is
/// what keeps cached results bit-identical to cold runs. JSON has no
/// NaN/inf; those become `null`-adjacent `0` by policy (scenarios reject
/// non-finite inputs before they get here).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Parses one JSON document from raw bytes.
///
/// The service reads request lines as bytes (a TCP peer can send
/// anything); this is the funnel that turns arbitrary byte noise into a
/// typed one-line error instead of an `InvalidData` I/O error killing the
/// connection loop.
///
/// # Errors
///
/// Returns a one-line description for invalid UTF-8 (with the offset of
/// the first bad byte) or malformed JSON.
pub fn parse_bytes(bytes: &[u8]) -> Result<Value, String> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| format!("invalid UTF-8 at byte {}", e.valid_up_to()))?;
    parse(text)
}

/// Parses one JSON document, requiring nothing but whitespace after it.
///
/// # Errors
///
/// Returns a one-line description with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// Nesting depth guard: scenario documents are shallow; anything deeper
/// is hostile or broken input, not a real request.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", self.pos));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest escape-free, ASCII-or-UTF-8 run at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates are not paired up; scenario
                            // documents never need astral characters.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                Some(_) => return Err(format!("control character in string at byte {}", self.pos)),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 number".to_string())?;
        text.parse::<f64>().map(Value::Num).map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null"), Ok(Value::Null));
        assert_eq!(parse(" true "), Ok(Value::Bool(true)));
        assert_eq!(parse("-1.5e3"), Ok(Value::Num(-1500.0)));
        assert_eq!(parse(r#""a\nb""#), Ok(Value::Str("a\nb".to_string())));
        assert_eq!(
            parse(r#"[1, "two", []]"#),
            Ok(Value::Arr(vec![
                Value::Num(1.0),
                Value::Str("two".to_string()),
                Value::Arr(vec![])
            ]))
        );
        let obj = parse(r#"{"a": 1, "b": {"c": null}}"#).unwrap();
        assert_eq!(obj.get("a").and_then(Value::as_f64), Some(1.0));
        assert_eq!(obj.get("b").and_then(|b| b.get("c")), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("1 2").is_err(), "trailing data");
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for v in [0.1, 1.0 / 3.0, 6.02214076e23, -0.0, 123_456_789.123_456_79] {
            let text = num(v);
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via {text}");
        }
        assert_eq!(num(f64::NAN), "0");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\n\u{1}"), "a\\\"b\\\\c\\n\\u0001");
        let round = parse(&format!("\"{}\"", escape("a\"b\\c\n\u{1}"))).unwrap();
        assert_eq!(round, Value::Str("a\"b\\c\n\u{1}".to_string()));
    }

    #[test]
    fn as_usize_requires_exact_integers() {
        assert_eq!(Value::Num(4.0).as_usize(), Some(4));
        assert_eq!(Value::Num(4.5).as_usize(), None);
        assert_eq!(Value::Num(-1.0).as_usize(), None);
        assert_eq!(Value::Str("4".into()).as_usize(), None);
    }
}
