//! # corescope-sched
//!
//! The batch-execution layer on top of the deterministic engine: a
//! canonical, content-hashable [`Scenario`] IR that fully determines one
//! engine run, a work-stealing [`executor`] that fans out over individual
//! scenarios while preserving input-order results, a content-addressed
//! [`ResultCache`] (in-memory plus optional on-disk), and the
//! [`Scheduler`] facade that the harness artifacts and the
//! `corescope-serve` batch service drive.
//!
//! The cache is sound because the engine is deterministic: a scenario's
//! canonical byte encoding (see [`encode`]) covers *everything* that
//! feeds the run — the full machine spec, the workload parameters, the
//! placement scheme, the MPI profile and lock layer, the fault plan and
//! the recovery policies — and the digest is additionally salted with
//! [`ENGINE_TAG`], which must be bumped whenever engine behaviour
//! changes.
//!
//! ```
//! use corescope_sched::{Fidelity, Scenario, Scheduler, System, Workload};
//!
//! let scenario = Scenario::new(
//!     System::Dmz,
//!     2,
//!     Workload::Bsp { steps: 4, flops_per_step: 1e6, bytes_per_step: 1e6, sync_bytes: 8.0 },
//! );
//! let sched = Scheduler::new(2);
//! let results = sched.run_batch(&[scenario.clone(), scenario]);
//! assert_eq!(results.len(), 2);
//! // The second entry was deduplicated in-flight: one engine run total.
//! assert_eq!(sched.stats().engine_runs, 1);
//! ```

pub mod cache;
pub mod encode;
pub mod executor;
pub mod fidelity;
pub mod json;
pub mod scenario;
pub mod scheduler;
pub mod serve;
pub mod sink;

pub use cache::{CacheError, CacheStats, CacheTier, ComputeClaim, ComputeLock, ResultCache};
pub use encode::{Digest, Encoder};
pub use fidelity::Fidelity;
pub use scenario::{Placement, Scenario, ScenarioResult, System, UnknownSystem, Workload};
pub use scheduler::{BatchOutcome, Completed, SchedStats, Scheduler};
pub use serve::{ArtifactRunner, ServeConfig, ServeStats, Server};
pub use sink::StoreSink;

/// Version tag mixed into every scenario digest and stamped on every
/// on-disk cache entry.
///
/// Cached results are only sound while the engine maps a scenario to the
/// same numbers, so this tag MUST be bumped (the `+sched` suffix) on any
/// change to the simulation semantics of `corescope-machine`,
/// `corescope-smpi`, `corescope-affinity` or `corescope-kernels` — a bump
/// orphans every existing cache entry rather than serving stale numbers.
pub const ENGINE_TAG: &str = "corescope-engine-0.1.0+sched1";
