//! Fidelity levels: full paper-scale runs vs. reduced sweeps for quick
//! checks and Criterion benches.
//!
//! Lives in `corescope-sched` (re-exported by `corescope-harness`)
//! because fidelity is part of a [`crate::Scenario`]'s identity: a quick
//! and a full run of "the same" experiment must never share a cache
//! entry.

/// How much work an artifact run performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fidelity {
    /// Paper-scale problem sizes and step counts.
    #[default]
    Full,
    /// Reduced step/repetition counts (same problem shapes); ratios and
    /// orderings are preserved, absolute times are smaller.
    Quick,
}

impl Fidelity {
    /// Scales a step/repetition count: `Quick` divides by 10 (minimum 1).
    pub fn steps(self, full: usize) -> usize {
        match self {
            Fidelity::Full => full,
            Fidelity::Quick => (full / 10).max(1),
        }
    }

    /// Scales a sweep list: `Quick` keeps every other point.
    pub fn thin<T: Clone>(self, points: &[T]) -> Vec<T> {
        match self {
            Fidelity::Full => points.to_vec(),
            Fidelity::Quick => points.iter().step_by(2).cloned().collect(),
        }
    }

    /// Stable lowercase key used in scenario JSON and cache paths.
    pub fn key(self) -> &'static str {
        match self {
            Fidelity::Full => "full",
            Fidelity::Quick => "quick",
        }
    }

    /// Parses [`Fidelity::key`] output.
    pub fn parse(s: &str) -> Option<Fidelity> {
        match s {
            "full" => Some(Fidelity::Full),
            "quick" => Some(Fidelity::Quick),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_reduces_steps_but_never_to_zero() {
        assert_eq!(Fidelity::Full.steps(100), 100);
        assert_eq!(Fidelity::Quick.steps(100), 10);
        assert_eq!(Fidelity::Quick.steps(5), 1);
    }

    #[test]
    fn thin_halves_sweeps() {
        let pts = [1, 2, 3, 4, 5];
        assert_eq!(Fidelity::Quick.thin(&pts), vec![1, 3, 5]);
        assert_eq!(Fidelity::Full.thin(&pts), pts.to_vec());
    }

    #[test]
    fn keys_round_trip() {
        for f in [Fidelity::Full, Fidelity::Quick] {
            assert_eq!(Fidelity::parse(f.key()), Some(f));
        }
        assert_eq!(Fidelity::parse("medium"), None);
    }
}
