//! Overload-safe concurrent NDJSON service over the [`Scheduler`].
//!
//! The `corescope-serve` binary is a thin CLI over [`Server`]; everything
//! behavioural lives here so it can be exercised in-process by tests and
//! the `serve_bench` load generator. The service applies the engine's
//! robustness philosophy — *shed, don't hang; typed errors instead of
//! watchdog timeouts* — to the serving layer itself. A request passes
//! four gates, in order:
//!
//! 1. **parse** — byte noise, invalid UTF-8 and oversized lines get a
//!    typed `"kind":"bad-request"` / `"kind":"too-large"` response; the
//!    connection survives;
//! 2. **admission** — a global bounded in-flight budget
//!    ([`ServeConfig::max_inflight`]); over budget means an immediate
//!    `{"ok":false,"kind":"overloaded","retry_after_ms":…}` instead of
//!    unbounded queueing;
//! 3. **quota** — a per-peer in-flight cap ([`ServeConfig::quota`]) so
//!    one greedy client cannot starve the rest (`"kind":"quota"`);
//! 4. **deadline** — a per-request `"deadline_ms"` (or
//!    [`ServeConfig::default_deadline_ms`]) sheds work whose deadline
//!    passed while it sat behind a slow batch (`"kind":"deadline"`),
//!    via [`Scheduler::run_batch_where`].
//!
//! Every admitted request produces exactly one response line, in input
//! order per connection — sheds included — so clients never desync.
//! Shutdown ([`Server::request_shutdown`], wired to SIGTERM/SIGINT by
//! the binary) stops the accept loop, lets every connection finish or
//! deadline-out its in-flight chunk, flushes, and joins: no torn lines.

use crate::json::{self, Value};
use crate::scenario::Scenario;
use crate::scheduler::{BatchOutcome, Scheduler};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Handles one parsed artifact request (`{"artifact":"t2",…}`), returning
/// the complete response line. Injected by the harness layer — this crate
/// sits below the artifact catalogue and cannot run them itself.
pub type ArtifactRunner = Box<dyn Fn(&Value) -> String + Send + Sync>;

/// Service limits and defaults. All are per-[`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Max requests gathered into one scheduler batch per connection.
    pub batch: usize,
    /// Global bound on admitted, not-yet-answered requests.
    pub max_inflight: usize,
    /// Max concurrent TCP connections; excess clients get one
    /// `overloaded` line and a close.
    pub max_clients: usize,
    /// Per-peer bound on admitted, not-yet-answered requests.
    pub quota: usize,
    /// Deadline applied to requests that carry no `"deadline_ms"`.
    pub default_deadline_ms: Option<f64>,
    /// Longest accepted request line; longer lines are discarded and
    /// answered with `"kind":"too-large"`.
    pub max_line_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            batch: 32,
            max_inflight: 1024,
            max_clients: 64,
            quota: 256,
            default_deadline_ms: None,
            max_line_bytes: 1 << 20,
        }
    }
}

/// Monotonic service counters; snapshot via [`Server::stats`].
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicUsize,
    rejected_clients: AtomicUsize,
    requests: AtomicUsize,
    responses: AtomicUsize,
    shed_overloaded: AtomicUsize,
    shed_quota: AtomicUsize,
    shed_deadline: AtomicUsize,
    too_large: AtomicUsize,
    bad_requests: AtomicUsize,
    engine_errors: AtomicUsize,
}

/// A snapshot of service activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// TCP connections accepted (stdin mode counts as none).
    pub connections: usize,
    /// Connections turned away at the `max_clients` gate.
    pub rejected_clients: usize,
    /// Request lines received (including unparseable ones).
    pub requests: usize,
    /// Response lines written.
    pub responses: usize,
    /// Requests rejected at the global admission gate.
    pub shed_overloaded: usize,
    /// Requests rejected at the per-peer quota gate.
    pub shed_quota: usize,
    /// Requests shed because their deadline passed before dispatch.
    pub shed_deadline: usize,
    /// Lines longer than `max_line_bytes`.
    pub too_large: usize,
    /// Lines that failed to parse as a request.
    pub bad_requests: usize,
    /// Requests the engine rejected (invalid scenario, failed run).
    pub engine_errors: usize,
    /// Cache entry writes that failed ([`crate::CacheError::Unwritable`]
    /// territory: read-only mount, disk full). The service keeps
    /// answering from memory and recompute; the counter surfaces the
    /// degradation in the drain summary instead of burying it.
    pub cache_unwritable: usize,
}

/// Why admission refused a request.
enum Rejection {
    Overloaded,
    Quota,
}

/// One gathered input line, before parsing.
enum Item {
    Line(Vec<u8>),
    TooLarge,
}

/// What [`read_bounded_line`] saw.
enum ReadLine {
    /// A complete line (newline stripped; possibly the unterminated tail
    /// before EOF).
    Line(Vec<u8>),
    /// The line exceeded `max` bytes; the excess was discarded up to the
    /// next newline.
    TooLarge,
    /// End of input.
    Eof,
    /// The reader timed out with no pending data (TCP read timeout).
    Idle,
    /// Shutdown was requested while waiting for data.
    Shutdown,
}

/// One request's fate after the admission gates, pre-dispatch.
enum Slot {
    /// Response already determined (parse error, admission shed, …).
    Ready(String),
    /// An admitted scenario: an index into the chunk's batch (deadlines
    /// live in the parallel `deadlines` vector).
    Scenario { index: usize },
    /// An admitted artifact request, run inline at emission time.
    Artifact { value: Value, deadline: Option<Instant> },
}

/// The concurrent NDJSON service. Share by reference; every method takes
/// `&self`.
pub struct Server {
    sched: Arc<Scheduler>,
    config: ServeConfig,
    runner: Option<ArtifactRunner>,
    shutdown: Arc<AtomicBool>,
    inflight: AtomicUsize,
    clients: AtomicUsize,
    peers: Mutex<HashMap<String, usize>>,
    /// Exponential moving average of per-request service time, µs; feeds
    /// the `retry_after_ms` hint on overload responses.
    service_ema_us: AtomicU64,
    counters: Counters,
}

impl Server {
    /// A server over `sched` with the given limits.
    pub fn new(sched: Arc<Scheduler>, config: ServeConfig) -> Self {
        Self {
            sched,
            config,
            runner: None,
            shutdown: Arc::new(AtomicBool::new(false)),
            inflight: AtomicUsize::new(0),
            clients: AtomicUsize::new(0),
            peers: Mutex::new(HashMap::new()),
            service_ema_us: AtomicU64::new(0),
            counters: Counters::default(),
        }
    }

    /// Installs the artifact handler (see [`ArtifactRunner`]). Without
    /// one, artifact requests get a typed `bad-request` response.
    pub fn with_artifact_runner(mut self, runner: ArtifactRunner) -> Self {
        self.runner = Some(runner);
        self
    }

    /// The scheduler this server dispatches into.
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// The shutdown flag, for wiring to signal handlers.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Begins a graceful drain: stop accepting, finish in-flight work,
    /// flush, return.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Serves one NDJSON stream (stdin mode, or one TCP connection).
    /// `peer` keys the per-peer quota.
    ///
    /// # Errors
    ///
    /// Only unrecoverable I/O errors on `input`/`out` propagate; protocol
    /// problems become typed response lines.
    pub fn serve_io(
        &self,
        mut input: impl BufRead,
        out: &mut impl Write,
        peer: &str,
    ) -> std::io::Result<()> {
        loop {
            let mut chunk: Vec<(Item, Instant)> = Vec::new();
            let mut done = false;
            while chunk.len() < self.config.batch {
                if self.shutdown.load(Ordering::Relaxed) {
                    done = true;
                    break;
                }
                match read_bounded_line(&mut input, self.config.max_line_bytes, &self.shutdown)? {
                    ReadLine::Eof | ReadLine::Shutdown => {
                        done = true;
                        break;
                    }
                    ReadLine::Idle => {
                        // No new data within the read timeout: answer what
                        // we have instead of batching a stalled client.
                        if chunk.is_empty() {
                            continue;
                        }
                        break;
                    }
                    ReadLine::TooLarge => chunk.push((Item::TooLarge, Instant::now())),
                    ReadLine::Line(bytes) => {
                        if bytes.iter().all(u8::is_ascii_whitespace) {
                            continue;
                        }
                        chunk.push((Item::Line(bytes), Instant::now()));
                    }
                }
            }
            if !chunk.is_empty() {
                self.process_chunk(&chunk, out, peer)?;
            }
            if done {
                return Ok(());
            }
        }
    }

    /// Runs one gathered chunk through parse → admission → quota →
    /// deadline → dispatch and writes one response line per item, in
    /// input order.
    fn process_chunk(
        &self,
        chunk: &[(Item, Instant)],
        out: &mut impl Write,
        peer: &str,
    ) -> std::io::Result<()> {
        self.counters.requests.fetch_add(chunk.len(), Ordering::Relaxed);
        let mut slots: Vec<Slot> = Vec::with_capacity(chunk.len());
        let mut scenarios: Vec<Scenario> = Vec::new();
        let mut deadlines: Vec<Option<Instant>> = Vec::new();
        let mut admitted = 0usize;

        for (item, received) in chunk {
            let bytes = match item {
                Item::TooLarge => {
                    self.counters.too_large.fetch_add(1, Ordering::Relaxed);
                    slots.push(Slot::Ready(error_line(
                        "too-large",
                        &format!("request line exceeds {} bytes", self.config.max_line_bytes),
                    )));
                    continue;
                }
                Item::Line(bytes) => bytes,
            };
            let value = match json::parse_bytes(bytes) {
                Ok(value) => value,
                Err(e) => {
                    self.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                    slots.push(Slot::Ready(error_line("bad-request", &e)));
                    continue;
                }
            };
            let deadline = match self.deadline_of(&value, *received) {
                Ok(deadline) => deadline,
                Err(e) => {
                    self.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                    slots.push(Slot::Ready(error_line("bad-request", &e)));
                    continue;
                }
            };
            match self.try_admit(peer) {
                Err(Rejection::Overloaded) => {
                    self.counters.shed_overloaded.fetch_add(1, Ordering::Relaxed);
                    slots.push(Slot::Ready(overload_line("overloaded", self.retry_after_ms())));
                    continue;
                }
                Err(Rejection::Quota) => {
                    self.counters.shed_quota.fetch_add(1, Ordering::Relaxed);
                    slots.push(Slot::Ready(overload_line("quota", self.retry_after_ms())));
                    continue;
                }
                Ok(()) => admitted += 1,
            }
            if value.get("artifact").is_some() {
                slots.push(Slot::Artifact { value, deadline });
            } else {
                match Scenario::from_json(&value) {
                    Ok(scenario) => {
                        slots.push(Slot::Scenario { index: scenarios.len() });
                        scenarios.push(scenario);
                        deadlines.push(deadline);
                    }
                    Err(e) => {
                        // Admitted, then failed scenario decode: release
                        // the permit again and answer with the parse
                        // error.
                        self.release(peer, 1);
                        admitted -= 1;
                        self.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                        slots.push(Slot::Ready(error_line("bad-request", &e)));
                    }
                }
            }
        }

        let started = Instant::now();
        let outcomes = self.sched.run_batch_where(&scenarios, |i| {
            deadlines[i].is_some_and(|deadline| Instant::now() > deadline)
        });
        let batch_ms = started.elapsed().as_secs_f64() * 1e3;

        for slot in slots {
            let line = match slot {
                Slot::Ready(line) => line,
                Slot::Scenario { index } => match &outcomes[index] {
                    BatchOutcome::Done(completed) => format!(
                        "{{\"ok\":true,\"digest\":\"{}\",\"cache\":\"{}\",\
                         \"batch_ms\":{},\"result\":{}}}",
                        scenarios[index].digest(),
                        completed.tier.key(),
                        json::num(batch_ms),
                        completed.result.to_json()
                    ),
                    BatchOutcome::Shed => {
                        self.counters.shed_deadline.fetch_add(1, Ordering::Relaxed);
                        error_line("deadline", "deadline expired before dispatch")
                    }
                    BatchOutcome::Failed(e) => {
                        self.counters.engine_errors.fetch_add(1, Ordering::Relaxed);
                        error_line_compat(&e.to_string())
                    }
                },
                Slot::Artifact { value, deadline } => {
                    if deadline.is_some_and(|deadline| Instant::now() > deadline) {
                        self.counters.shed_deadline.fetch_add(1, Ordering::Relaxed);
                        error_line("deadline", "deadline expired before dispatch")
                    } else {
                        match &self.runner {
                            Some(runner) => runner(&value),
                            None => error_line(
                                "bad-request",
                                "artifact requests are not supported by this server",
                            ),
                        }
                    }
                }
            };
            writeln!(out, "{line}")?;
            self.counters.responses.fetch_add(1, Ordering::Relaxed);
        }
        out.flush()?;
        self.release(peer, admitted);
        if admitted > 0 {
            self.note_service_time(started.elapsed(), admitted);
        }
        Ok(())
    }

    /// Accepts TCP clients until shutdown, one thread per connection, and
    /// drains them all before returning. Accept-time errors on a single
    /// client (failed `peer_addr`, `try_clone`) are logged and skipped —
    /// they never kill the listener.
    ///
    /// # Errors
    ///
    /// Only listener-level failures (e.g. `set_nonblocking`) propagate.
    pub fn listen(&self, listener: TcpListener) -> std::io::Result<()> {
        // Nonblocking accept + poll so shutdown is observed promptly.
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            while !self.shutdown.load(Ordering::Relaxed) {
                let (stream, peer) = match listener.accept() {
                    Ok(accepted) => accepted,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(25));
                        continue;
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => {
                        eprintln!("corescope-serve: accept failed: {e}");
                        std::thread::sleep(Duration::from_millis(25));
                        continue;
                    }
                };
                self.counters.connections.fetch_add(1, Ordering::Relaxed);
                if self.clients.fetch_add(1, Ordering::Relaxed) >= self.config.max_clients {
                    self.clients.fetch_sub(1, Ordering::Relaxed);
                    self.counters.rejected_clients.fetch_add(1, Ordering::Relaxed);
                    let mut stream = stream;
                    let _ =
                        writeln!(stream, "{}", overload_line("overloaded", self.retry_after_ms()));
                    continue; // dropping the stream closes it
                }
                scope.spawn(move || {
                    if let Err(e) = self.handle_client(stream, &peer.ip().to_string()) {
                        eprintln!("corescope-serve: client {peer}: {e}");
                    }
                    self.clients.fetch_sub(1, Ordering::Relaxed);
                });
            }
            // Scope exit joins every connection thread: each observes the
            // shutdown flag within its read timeout, answers its gathered
            // chunk and flushes — the drain guarantee.
        });
        Ok(())
    }

    fn handle_client(&self, stream: std::net::TcpStream, peer: &str) -> std::io::Result<()> {
        // The read timeout is the drain latency bound: a idle or
        // slow-loris connection notices shutdown within ~100ms.
        stream.set_read_timeout(Some(Duration::from_millis(100)))?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        self.serve_io(reader, &mut writer, peer)
    }

    /// Global admission then per-peer quota; both are released in
    /// [`Server::release`].
    fn try_admit(&self, peer: &str) -> Result<(), Rejection> {
        if self.inflight.fetch_add(1, Ordering::Relaxed) >= self.config.max_inflight {
            self.inflight.fetch_sub(1, Ordering::Relaxed);
            return Err(Rejection::Overloaded);
        }
        let mut peers = match self.peers.lock() {
            Ok(peers) => peers,
            Err(poisoned) => poisoned.into_inner(),
        };
        let count = peers.entry(peer.to_string()).or_insert(0);
        if *count >= self.config.quota {
            self.inflight.fetch_sub(1, Ordering::Relaxed);
            return Err(Rejection::Quota);
        }
        *count += 1;
        Ok(())
    }

    fn release(&self, peer: &str, n: usize) {
        if n == 0 {
            return;
        }
        self.inflight.fetch_sub(n, Ordering::Relaxed);
        let mut peers = match self.peers.lock() {
            Ok(peers) => peers,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(count) = peers.get_mut(peer) {
            *count = count.saturating_sub(n);
            if *count == 0 {
                peers.remove(peer);
            }
        }
    }

    /// Extracts the request deadline: explicit `"deadline_ms"` beats the
    /// configured default; both are relative to when the line arrived.
    fn deadline_of(&self, value: &Value, received: Instant) -> Result<Option<Instant>, String> {
        let ms = match value.get("deadline_ms") {
            None => self.config.default_deadline_ms,
            Some(v) => Some(
                v.as_f64()
                    .filter(|ms| ms.is_finite() && *ms >= 0.0)
                    .ok_or("\"deadline_ms\" must be a non-negative number")?,
            ),
        };
        Ok(ms.map(|ms| received + Duration::from_secs_f64(ms / 1e3)))
    }

    /// How long an overloaded client should back off: the smoothed
    /// per-request service time scaled by the current queue pressure.
    fn retry_after_ms(&self) -> u64 {
        let ema_us = self.service_ema_us.load(Ordering::Relaxed);
        let per_request_ms = if ema_us == 0 { 50 } else { (ema_us / 1000).max(1) };
        let depth = self.inflight.load(Ordering::Relaxed) / self.sched.jobs().max(1) + 1;
        (per_request_ms * depth as u64).clamp(10, 30_000)
    }

    fn note_service_time(&self, elapsed: Duration, admitted: usize) {
        let sample_us = (elapsed.as_micros() / admitted.max(1) as u128) as u64;
        let prev = self.service_ema_us.load(Ordering::Relaxed);
        let next = if prev == 0 { sample_us } else { prev - prev / 8 + sample_us / 8 };
        self.service_ema_us.store(next, Ordering::Relaxed);
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            rejected_clients: self.counters.rejected_clients.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            responses: self.counters.responses.load(Ordering::Relaxed),
            shed_overloaded: self.counters.shed_overloaded.load(Ordering::Relaxed),
            shed_quota: self.counters.shed_quota.load(Ordering::Relaxed),
            shed_deadline: self.counters.shed_deadline.load(Ordering::Relaxed),
            too_large: self.counters.too_large.load(Ordering::Relaxed),
            bad_requests: self.counters.bad_requests.load(Ordering::Relaxed),
            engine_errors: self.counters.engine_errors.load(Ordering::Relaxed),
            cache_unwritable: self.sched.cache_stats().unwritable,
        }
    }

    /// One-line human summary, printed next to the scheduler's at
    /// shutdown.
    pub fn summary(&self) -> String {
        let s = self.stats();
        let mut line = format!(
            "serve: connections {}, requests {}, responses {}, shed {} (overloaded {}, \
             quota {}, deadline {}), too-large {}, bad requests {}, engine errors {}",
            s.connections,
            s.requests,
            s.responses,
            s.shed_overloaded + s.shed_quota + s.shed_deadline,
            s.shed_overloaded,
            s.shed_quota,
            s.shed_deadline,
            s.too_large,
            s.bad_requests,
            s.engine_errors,
        );
        if s.cache_unwritable > 0 {
            // A counted warning, not a failure: the service stays up on
            // an unwritable cache, but the operator should know every
            // engine run is being recomputed instead of persisted.
            line.push_str(&format!(", cache unwritable {} (degraded)", s.cache_unwritable));
        }
        line
    }
}

/// A typed error response. The `error` field leads (wire compatibility
/// with pre-typed clients); `kind` is the machine-readable class.
pub fn error_line(kind: &str, message: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\",\"kind\":\"{kind}\"}}", json::escape(message))
}

/// Engine errors keep the exact pre-typed shape plus a `kind`, so
/// existing consumers matching on the `error`-first prefix keep working.
fn error_line_compat(message: &str) -> String {
    error_line("engine", message)
}

/// A shed response carrying the back-off hint.
fn overload_line(kind: &str, retry_after_ms: u64) -> String {
    format!("{{\"ok\":false,\"kind\":\"{kind}\",\"retry_after_ms\":{retry_after_ms}}}")
}

/// Reads one `\n`-terminated line of at most `max` bytes. Longer lines
/// are consumed (discarded) to the next newline and reported as
/// [`ReadLine::TooLarge`] — bounded memory, connection intact. Uses
/// `fill_buf`/`consume` directly: `read_until` would buffer the whole
/// oversized line before we could measure it.
fn read_bounded_line(
    input: &mut impl BufRead,
    max: usize,
    shutdown: &AtomicBool,
) -> std::io::Result<ReadLine> {
    let mut acc: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let buf = match input.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shutdown.load(Ordering::Relaxed) {
                    return Ok(ReadLine::Shutdown);
                }
                if acc.is_empty() && !overflow {
                    return Ok(ReadLine::Idle);
                }
                continue; // mid-line: keep waiting for the rest
            }
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            if overflow {
                return Ok(ReadLine::TooLarge);
            }
            if acc.is_empty() {
                return Ok(ReadLine::Eof);
            }
            return Ok(ReadLine::Line(acc)); // unterminated final line
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !overflow {
                    acc.extend_from_slice(&buf[..pos]);
                }
                input.consume(pos + 1);
                if overflow || acc.len() > max {
                    return Ok(ReadLine::TooLarge);
                }
                return Ok(ReadLine::Line(acc));
            }
            None => {
                let len = buf.len();
                if !overflow {
                    acc.extend_from_slice(buf);
                    if acc.len() > max {
                        overflow = true;
                        acc = Vec::new(); // stop buffering the flood
                    }
                }
                input.consume(len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn server(config: ServeConfig) -> Server {
        Server::new(Arc::new(Scheduler::new(1)), config)
    }

    fn run(server: &Server, input: &str) -> Vec<String> {
        let mut out = Vec::new();
        server.serve_io(Cursor::new(input.as_bytes().to_vec()), &mut out, "test").unwrap();
        String::from_utf8(out).unwrap().lines().map(str::to_string).collect()
    }

    const BSP: &str = r#"{"system":"dmz","nranks":2,"workload":{"kind":"bsp","steps":2,"flops_per_step":1e6,"bytes_per_step":1e6,"sync_bytes":8}}"#;

    #[test]
    fn one_response_per_request_in_order() {
        let server = server(ServeConfig::default());
        let lines = run(&server, &format!("{BSP}\nnot json\n{BSP}\n"));
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"ok\":true,\"digest\":"));
        assert!(lines[1].starts_with("{\"ok\":false,\"error\":"), "{}", lines[1]);
        assert!(lines[1].contains("\"kind\":\"bad-request\""));
        assert!(lines[2].starts_with("{\"ok\":true,\"digest\":"));
        assert_eq!(server.stats().responses, 3);
    }

    #[test]
    fn invalid_utf8_is_a_typed_bad_request_not_an_io_error() {
        let server = server(ServeConfig::default());
        let mut input = Vec::from(&b"\xff\xfe\x80 garbage"[..]);
        input.push(b'\n');
        input.extend_from_slice(BSP.as_bytes());
        input.push(b'\n');
        let mut out = Vec::new();
        server.serve_io(Cursor::new(input), &mut out, "test").unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"bad-request\""));
        assert!(lines[0].contains("invalid UTF-8"));
        assert!(lines[1].starts_with("{\"ok\":true"));
    }

    #[test]
    fn oversized_lines_get_a_typed_response_and_bounded_memory() {
        // BSP fits in 256 bytes; the flood does not.
        let server = server(ServeConfig { max_line_bytes: 256, ..ServeConfig::default() });
        let flood = "x".repeat(100_000);
        let lines = run(&server, &format!("{flood}\n{BSP}\n"));
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"too-large\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"ok\":true"), "next request still served");
        assert_eq!(server.stats().too_large, 1);
    }

    #[test]
    fn quota_rejections_are_immediate_and_recover() {
        let server = server(ServeConfig { quota: 2, ..ServeConfig::default() });
        let lines = run(&server, &format!("{BSP}\n{BSP}\n{BSP}\n{BSP}\n"));
        assert_eq!(lines.len(), 4);
        // Two admitted, two rejected at the quota gate.
        let quota: Vec<_> = lines.iter().filter(|l| l.contains("\"kind\":\"quota\"")).collect();
        assert_eq!(quota.len(), 2, "{lines:?}");
        assert!(quota[0].contains("\"retry_after_ms\":"));
        assert_eq!(server.stats().shed_quota, 2);
        // Permits were released with the chunk: a later chunk admits again.
        let later = run(&server, &format!("{BSP}\n"));
        assert!(later[0].starts_with("{\"ok\":true"), "{later:?}");
    }

    #[test]
    fn admission_gate_sheds_with_retry_hint() {
        let server = server(ServeConfig { max_inflight: 1, ..ServeConfig::default() });
        let lines = run(&server, &format!("{BSP}\n{BSP}\n"));
        assert!(lines[0].starts_with("{\"ok\":true"));
        assert!(lines[1].contains("\"kind\":\"overloaded\""), "{}", lines[1]);
        assert!(lines[1].contains("\"retry_after_ms\":"));
        assert_eq!(server.stats().shed_overloaded, 1);
    }

    #[test]
    fn expired_deadlines_shed_with_a_typed_response() {
        let server = server(ServeConfig::default());
        // deadline_ms: 0 expires before dispatch with certainty. The
        // second request is a *different* scenario: a digest twin would
        // (correctly) ride along on the computed result instead.
        let request = BSP.replacen('{', "{\"deadline_ms\":0,", 1);
        let other = BSP.replace("\"steps\":2", "\"steps\":3");
        let lines = run(&server, &format!("{request}\n{other}\n"));
        assert!(lines[0].contains("\"kind\":\"deadline\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"ok\":true"), "undeadlined twin unaffected");
        assert_eq!(server.stats().shed_deadline, 1);
        assert_eq!(server.scheduler().stats().shed, 1);
    }

    #[test]
    fn bad_deadline_is_a_bad_request() {
        let server = server(ServeConfig::default());
        let request = BSP.replacen('{', "{\"deadline_ms\":\"soon\",", 1);
        let lines = run(&server, &format!("{request}\n"));
        assert!(lines[0].contains("\"kind\":\"bad-request\""), "{}", lines[0]);
        assert!(lines[0].contains("deadline_ms"));
    }

    #[test]
    fn artifact_requests_without_a_runner_are_typed_errors() {
        let server = server(ServeConfig::default());
        let lines = run(&server, "{\"artifact\":\"t1\"}\n");
        assert!(lines[0].contains("\"kind\":\"bad-request\""), "{}", lines[0]);
    }

    #[test]
    fn artifact_runner_is_consulted() {
        let server = server(ServeConfig::default()).with_artifact_runner(Box::new(|v| {
            format!(
                "{{\"ok\":true,\"echo\":\"{}\"}}",
                v.get("artifact").and_then(Value::as_str).unwrap_or("?")
            )
        }));
        let lines = run(&server, "{\"artifact\":\"t9\"}\n");
        assert_eq!(lines[0], "{\"ok\":true,\"echo\":\"t9\"}");
    }

    #[test]
    fn unterminated_final_line_is_still_served() {
        let server = server(ServeConfig::default());
        let lines = run(&server, BSP); // no trailing newline
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("{\"ok\":true"));
    }

    #[test]
    fn summary_mentions_sheds() {
        let server = server(ServeConfig { max_inflight: 1, ..ServeConfig::default() });
        run(&server, &format!("{BSP}\n{BSP}\n"));
        let line = server.summary();
        assert!(line.starts_with("serve: connections 0, requests 2, responses 2"), "{line}");
        assert!(line.contains("overloaded 1"), "{line}");
    }
}
