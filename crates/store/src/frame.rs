//! CRC-framed columnar block codec — the unit of durability.
//!
//! A segment file is a fixed header followed by a sequence of frames.
//! Each frame carries one *block*: a batch of rows encoded column-major
//! (all digests contiguous, then all makespans, …) with a per-block
//! string dictionary for the six scenario axes. The frame header carries
//! the payload length and a CRC-32 of the payload, so a reader can tell
//! a torn tail (frame runs past end of file) from a flipped bit (CRC
//! mismatch) from foreign bytes (bad magic) — three different recovery
//! actions.
//!
//! All integers are little-endian. Layout:
//!
//! ```text
//! segment  := SEGMENT_MAGIC  version:u16  tag_len:u16  tag  frame*
//! frame    := FRAME_MAGIC  payload_len:u32  crc32(payload):u32  payload
//! payload  := nrows:u32  dict_len:u16  (entry_len:u16 entry)*  columns
//! columns  := digest[nrows]:u128  nranks[nrows]:u32  makespan[nrows]:f64
//!             events[nrows]:u64  faults[nrows]:u64  checkpoints[nrows]:u64
//!             recoveries[nrows]:u64  retries[nrows]:u64
//!             (system fidelity placement mpi lock workload)[nrows]:u16
//! ```

use crate::Row;

/// Magic prefix of every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"CSSG";
/// Magic prefix of every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"CSB1";
/// Segment format version written by this crate.
pub const SEGMENT_VERSION: u16 = 1;
/// Frame header size: magic + payload length + CRC.
pub const FRAME_HEADER: usize = 12;
/// Upper bound on a frame payload; a length field above this is treated
/// as corruption rather than an instruction to allocate gigabytes.
pub const MAX_PAYLOAD: usize = 1 << 26;

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG one), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { 0xEDB8_8320 ^ (crc >> 1) } else { crc >> 1 };
            }
            *slot = crc;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian cursor over a block payload.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.at.checked_add(n).ok_or("length overflow")?;
        if end > self.buf.len() {
            return Err(format!("payload truncated at byte {} (wanted {n} more)", self.at));
        }
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u128(&mut self) -> Result<u128, String> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
}

/// The segment file header for `tag`.
pub fn segment_header(tag: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + tag.len());
    out.extend_from_slice(&SEGMENT_MAGIC);
    put_u16(&mut out, SEGMENT_VERSION);
    put_u16(&mut out, tag.len() as u16);
    out.extend_from_slice(tag.as_bytes());
    out
}

/// Parses a segment header, returning `(engine_tag, data_start)`.
///
/// # Errors
///
/// A one-line reason when the magic, version or tag bytes are damaged.
pub fn parse_segment_header(buf: &[u8]) -> Result<(String, usize), String> {
    let mut c = Cursor { buf, at: 0 };
    let magic = c.take(4)?;
    if magic != SEGMENT_MAGIC {
        return Err(format!("bad segment magic {magic:02x?}"));
    }
    let version = c.u16()?;
    if version != SEGMENT_VERSION {
        return Err(format!("unsupported segment version {version}"));
    }
    let tag_len = c.u16()? as usize;
    let tag =
        std::str::from_utf8(c.take(tag_len)?).map_err(|_| "engine tag is not UTF-8".to_string())?;
    Ok((tag.to_string(), c.at))
}

/// One step of a frame walk at byte `at` of a segment buffer.
#[derive(Debug)]
pub enum Parsed {
    /// A CRC-valid frame; `payload` is its block bytes, `end` the offset
    /// just past it.
    Frame { payload: Vec<u8>, end: usize },
    /// The buffer ends mid-frame: at the file tail this is a torn append.
    Truncated,
    /// A complete frame whose CRC does not match — a flipped bit.
    /// `end` is the offset just past it, usable for resync.
    BadCrc { end: usize },
    /// The bytes at `at` are not a frame at all.
    BadMagic,
}

/// Classifies the bytes at `at` without panicking on any input.
pub fn parse_frame(buf: &[u8], at: usize) -> Parsed {
    if at >= buf.len() {
        return Parsed::Truncated;
    }
    let rest = &buf[at..];
    if rest.len() < 4 {
        return if FRAME_MAGIC.starts_with(rest) { Parsed::Truncated } else { Parsed::BadMagic };
    }
    if rest[..4] != FRAME_MAGIC {
        return Parsed::BadMagic;
    }
    if rest.len() < FRAME_HEADER {
        return Parsed::Truncated;
    }
    let len = u32::from_le_bytes(rest[4..8].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD {
        // A plausible header with an absurd length is corruption, not a
        // torn tail: resync past the magic rather than truncating here.
        return Parsed::BadCrc { end: at + FRAME_HEADER };
    }
    let crc = u32::from_le_bytes(rest[8..12].try_into().unwrap());
    if rest.len() < FRAME_HEADER + len {
        return Parsed::Truncated;
    }
    let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
    if crc32(payload) != crc {
        return Parsed::BadCrc { end: at + FRAME_HEADER + len };
    }
    Parsed::Frame { payload: payload.to_vec(), end: at + FRAME_HEADER + len }
}

/// Finds the next possible frame start strictly after `from`.
pub fn resync(buf: &[u8], from: usize) -> Option<usize> {
    let start = from.checked_add(1)?;
    if start >= buf.len() {
        return None;
    }
    buf[start..].windows(4).position(|w| w == FRAME_MAGIC).map(|i| start + i)
}

/// Wraps a block payload in a CRC frame.
///
/// # Panics
///
/// When `payload` exceeds [`MAX_PAYLOAD`]: every reader classifies such
/// a frame as corruption, so writing one is a bug at the call site
/// ([`encode_block`] / [`encode_blocks`] never produce one).
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_PAYLOAD,
        "frame payload of {} bytes exceeds MAX_PAYLOAD ({MAX_PAYLOAD})",
        payload.len()
    );
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// Most dictionary entries one block may hold: the count is stored as a
/// u16 and every index must fit a u16.
pub const MAX_DICT: usize = u16::MAX as usize;
/// Longest dictionary entry: the length prefix is a u16.
pub const MAX_DICT_ENTRY: usize = u16::MAX as usize;
/// Encoded payload bytes one row contributes beyond its dictionary
/// entries: digest + nranks + makespan + five u64 counters + six u16
/// axis indices.
const ROW_FIXED_BYTES: usize = 16 + 4 + 8 + 5 * 8 + 6 * 2;
/// Payload bytes before any row: the nrows and dict_len fields.
const BLOCK_HEADER_BYTES: usize = 4 + 2;

fn dict_index(
    dict: &mut Vec<String>,
    map: &mut std::collections::HashMap<String, u16>,
    value: &str,
) -> Result<u16, String> {
    if let Some(&i) = map.get(value) {
        return Ok(i);
    }
    if value.len() > MAX_DICT_ENTRY {
        return Err(format!(
            "axis string of {} bytes exceeds the {MAX_DICT_ENTRY}-byte dictionary entry limit",
            value.len()
        ));
    }
    if dict.len() >= MAX_DICT {
        return Err(format!("more than {MAX_DICT} distinct axis strings in one block"));
    }
    let i = dict.len() as u16;
    dict.push(value.to_string());
    map.insert(value.to_string(), i);
    Ok(i)
}

fn axis_values(row: &Row) -> [&str; 6] {
    [&row.system, &row.fidelity, &row.placement, &row.mpi, &row.lock, &row.workload]
}

/// Encodes `rows` as one columnar block payload.
///
/// Deterministic: the dictionary is built in first-occurrence order over
/// the fixed axis sequence, so identical rows always produce identical
/// bytes (the property the resume byte-diff and the cache both lean on).
///
/// # Errors
///
/// A one-line reason when the rows exceed what one block can hold —
/// more than [`MAX_DICT`] distinct axis strings, an axis string longer
/// than [`MAX_DICT_ENTRY`] bytes, or a payload past [`MAX_PAYLOAD`].
/// Writers that buffer arbitrary batches should use [`encode_blocks`],
/// which splits instead of failing.
pub fn encode_block(rows: &[Row]) -> Result<Vec<u8>, String> {
    let mut dict: Vec<String> = Vec::new();
    let mut map = std::collections::HashMap::new();
    let mut axes = vec![[0u16; 6]; rows.len()];
    for (i, row) in rows.iter().enumerate() {
        for (slot, value) in axes[i].iter_mut().zip(axis_values(row)) {
            *slot = dict_index(&mut dict, &mut map, value)?;
        }
    }
    let mut out = Vec::new();
    put_u32(&mut out, rows.len() as u32);
    put_u16(&mut out, dict.len() as u16);
    for entry in &dict {
        put_u16(&mut out, entry.len() as u16);
        out.extend_from_slice(entry.as_bytes());
    }
    for row in rows {
        out.extend_from_slice(&row.digest.to_le_bytes());
    }
    for row in rows {
        put_u32(&mut out, row.nranks);
    }
    for row in rows {
        put_u64(&mut out, row.makespan.to_bits());
    }
    for pick in [
        |r: &Row| r.events,
        |r: &Row| r.faults_applied,
        |r: &Row| r.checkpoints_taken,
        |r: &Row| r.recoveries,
        |r: &Row| r.retries,
    ] {
        for row in rows {
            put_u64(&mut out, pick(row));
        }
    }
    for col in 0..6 {
        for idx in &axes {
            put_u16(&mut out, idx[col]);
        }
    }
    if out.len() > MAX_PAYLOAD {
        return Err(format!(
            "block payload of {} bytes exceeds the {MAX_PAYLOAD}-byte frame limit",
            out.len()
        ));
    }
    Ok(out)
}

/// Encodes `rows` as one or more block payloads, splitting wherever a
/// single block would overflow an encoder limit ([`MAX_DICT`] distinct
/// strings or [`MAX_PAYLOAD`] bytes). The split points depend only on
/// the rows, so the output stays deterministic.
///
/// # Errors
///
/// Only when a single row cannot be encoded at all: an axis string
/// longer than [`MAX_DICT_ENTRY`] bytes.
pub fn encode_blocks(rows: &[Row]) -> Result<Vec<Vec<u8>>, String> {
    let mut blocks = Vec::new();
    let mut start = 0;
    while start < rows.len() {
        let mut dict: std::collections::HashSet<&str> = std::collections::HashSet::new();
        let mut payload = BLOCK_HEADER_BYTES;
        let mut end = start;
        while end < rows.len() {
            let mut new_bytes = 0usize;
            for value in axis_values(&rows[end]) {
                if value.len() > MAX_DICT_ENTRY {
                    return Err(format!(
                        "axis string of {} bytes exceeds the {MAX_DICT_ENTRY}-byte \
                         dictionary entry limit",
                        value.len()
                    ));
                }
                // Insert as we project so a value repeated within this
                // row's own six axes is only counted once.
                if dict.insert(value) {
                    new_bytes += 2 + value.len();
                }
            }
            let fits =
                dict.len() <= MAX_DICT && payload + new_bytes + ROW_FIXED_BYTES <= MAX_PAYLOAD;
            if !fits && end > start {
                break;
            }
            // A lone row always fits: at most 6 entries of <= 65535
            // bytes each plus the fixed columns is far under MAX_PAYLOAD.
            payload += new_bytes + ROW_FIXED_BYTES;
            end += 1;
        }
        blocks.push(encode_block(&rows[start..end])?);
        start = end;
    }
    Ok(blocks)
}

/// Decodes a block payload back into rows.
///
/// # Errors
///
/// A one-line reason on any structural damage; never panics, whatever
/// the bytes (the CRC already passed, so this only fires on encoder
/// bugs or hash collisions — but recovery treats it as corruption).
pub fn decode_block(payload: &[u8]) -> Result<Vec<Row>, String> {
    let mut c = Cursor { buf: payload, at: 0 };
    let nrows = c.u32()? as usize;
    if nrows > MAX_PAYLOAD / 16 {
        return Err(format!("implausible row count {nrows}"));
    }
    let dict_len = c.u16()? as usize;
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let len = c.u16()? as usize;
        let entry = std::str::from_utf8(c.take(len)?)
            .map_err(|_| "dictionary entry is not UTF-8".to_string())?;
        dict.push(entry.to_string());
    }
    let mut rows: Vec<Row> = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        rows.push(Row { digest: c.u128()?, ..Row::default() });
    }
    for row in &mut rows {
        row.nranks = c.u32()?;
    }
    for row in &mut rows {
        row.makespan = f64::from_bits(c.u64()?);
    }
    for pick in [
        (|r: &mut Row| &mut r.events) as fn(&mut Row) -> &mut u64,
        |r| &mut r.faults_applied,
        |r| &mut r.checkpoints_taken,
        |r| &mut r.recoveries,
        |r| &mut r.retries,
    ] {
        for row in rows.iter_mut() {
            *pick(row) = c.u64()?;
        }
    }
    for col in 0..6usize {
        for row in rows.iter_mut() {
            let idx = c.u16()? as usize;
            let value = dict
                .get(idx)
                .ok_or_else(|| format!("dictionary index {idx} out of range"))?
                .clone();
            match col {
                0 => row.system = value,
                1 => row.fidelity = value,
                2 => row.placement = value,
                3 => row.mpi = value,
                4 => row.lock = value,
                _ => row.workload = value,
            }
        }
    }
    if c.at != payload.len() {
        return Err(format!("{} trailing bytes after columns", payload.len() - c.at));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: u64) -> Row {
        Row {
            digest: u128::from(i) << 64 | 0xDEAD,
            system: if i.is_multiple_of(2) { "dmz" } else { "longs" }.to_string(),
            fidelity: "quick".to_string(),
            placement: "scheme-a".to_string(),
            mpi: "mpich2".to_string(),
            lock: "sysv".to_string(),
            workload: "bsp".to_string(),
            nranks: 2 + i as u32,
            makespan: 1.5 * i as f64,
            events: 10 * i,
            faults_applied: i % 3,
            checkpoints_taken: i % 5,
            recoveries: i % 2,
            retries: i % 7,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn block_round_trips() {
        let rows: Vec<Row> = (0..17).map(row).collect();
        let payload = encode_block(&rows).unwrap();
        assert_eq!(decode_block(&payload).unwrap(), rows);
    }

    #[test]
    fn encoding_is_deterministic() {
        let rows: Vec<Row> = (0..9).map(row).collect();
        assert_eq!(encode_block(&rows).unwrap(), encode_block(&rows).unwrap());
    }

    #[test]
    fn frame_round_trips_and_catches_flips() {
        let payload = encode_block(&[row(1), row(2)]).unwrap();
        let framed = frame_bytes(&payload);
        match parse_frame(&framed, 0) {
            Parsed::Frame { payload: p, end } => {
                assert_eq!(p, payload);
                assert_eq!(end, framed.len());
            }
            other => panic!("expected frame, got {other:?}"),
        }
        for at in 0..framed.len() {
            let mut bad = framed.clone();
            bad[at] ^= 0x40;
            match parse_frame(&bad, 0) {
                Parsed::Frame { .. } => panic!("flipped bit at {at} went undetected"),
                Parsed::Truncated | Parsed::BadCrc { .. } | Parsed::BadMagic => {}
            }
        }
    }

    #[test]
    fn truncation_is_distinguished_from_corruption() {
        let framed = frame_bytes(&encode_block(&[row(3)]).unwrap());
        for cut in 0..framed.len() {
            match parse_frame(&framed[..cut], 0) {
                Parsed::Truncated => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn resync_finds_the_next_frame_after_garbage() {
        let mut buf = b"garbage bytes here".to_vec();
        let framed = frame_bytes(&encode_block(&[row(4)]).unwrap());
        let at = buf.len();
        buf.extend_from_slice(&framed);
        assert_eq!(resync(&buf, 0), Some(at));
    }

    #[test]
    fn segment_header_round_trips() {
        let header = segment_header("corescope-engine-test");
        let (tag, start) = parse_segment_header(&header).unwrap();
        assert_eq!(tag, "corescope-engine-test");
        assert_eq!(start, header.len());
        assert!(parse_segment_header(b"NOPE").is_err());
    }

    #[test]
    fn empty_block_round_trips() {
        let payload = encode_block(&[]).unwrap();
        assert_eq!(decode_block(&payload).unwrap(), Vec::<Row>::new());
    }

    #[test]
    fn oversized_axis_string_is_an_encode_error() {
        let mut bad = row(1);
        bad.system = "x".repeat(MAX_DICT_ENTRY + 1);
        assert!(encode_block(std::slice::from_ref(&bad)).is_err());
        assert!(encode_blocks(&[bad]).is_err());
    }

    #[test]
    fn encode_blocks_splits_at_the_dictionary_limit() {
        // All-distinct axis strings overflow the u16 dictionary after
        // 65535 entries; the packer must split, never wrap indices.
        let rows: Vec<Row> = (0..11_000u64)
            .map(|i| {
                let mut r = row(i);
                r.system = format!("sys-{i}");
                r.fidelity = format!("fid-{i}");
                r.placement = format!("pl-{i}");
                r.mpi = format!("mpi-{i}");
                r.lock = format!("lk-{i}");
                r.workload = format!("wl-{i}");
                r
            })
            .collect();
        assert!(encode_block(&rows).is_err(), "66000 dict entries must not fit one block");
        let blocks = encode_blocks(&rows).unwrap();
        assert!(blocks.len() >= 2, "expected a split, got {} block(s)", blocks.len());
        let decoded: Vec<Row> = blocks.iter().flat_map(|b| decode_block(b).unwrap()).collect();
        assert_eq!(decoded, rows);
    }
}
