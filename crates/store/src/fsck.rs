//! Offline integrity tooling: `verify`, `repair`, `compact`.
//!
//! `verify` is read-only and classifies every byte of the store into a
//! typed [`FsckReport`]; `repair` takes the writer lock and makes the
//! store clean again — truncating torn tails, rewriting segments around
//! corrupt frames (the damaged bytes move to `quarantine/`), adopting
//! unreferenced segments, dropping missing ones, and rebuilding the
//! manifest from segment headers when the manifest itself is gone.
//! `compact` rewrites the store with duplicate digests folded away
//! (last occurrence wins) and small segments merged.
//!
//! Every rewrite follows the store's journal protocol: new bytes are
//! written and fsynced first, the manifest rename is the commit, and
//! only then are superseded files removed — so a crash mid-repair or
//! mid-compact leaves a store that verify/repair can classify again.

use crate::frame;
use crate::store::{
    atomic_write, io_err, list_segment_files, scan_segment, segment_id, segment_name, Manifest,
    SegmentMeta, WriterLock, MANIFEST, QUARANTINE,
};
use crate::{Corruption, Row, StoreError, Torn};
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::Path;
use std::time::Duration;

/// Everything `verify` found, plus (after `repair`) the actions taken.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Segments examined (referenced or not).
    pub segments: usize,
    /// CRC-valid frames.
    pub frames: usize,
    /// Decoded rows (pre-dedup).
    pub rows: usize,
    /// Distinct scenario digests.
    pub distinct: usize,
    /// Torn appends past a committed length.
    pub torn: Vec<Torn>,
    /// CRC-invalid or undecodable frames.
    pub corrupt: Vec<Corruption>,
    /// Manifest segments with no file on disk.
    pub missing: Vec<String>,
    /// Segment files on disk the manifest does not reference.
    pub unreferenced: Vec<String>,
    /// Problems with the manifest itself.
    pub manifest_issues: Vec<String>,
    /// Repair actions taken (empty after a plain `verify`).
    pub actions: Vec<String>,
}

impl FsckReport {
    /// True when nothing needs repair.
    pub fn is_clean(&self) -> bool {
        self.torn.is_empty()
            && self.corrupt.is_empty()
            && self.missing.is_empty()
            && self.unreferenced.is_empty()
            && self.manifest_issues.is_empty()
    }

    /// The typed report: one `kind key=value…` line per finding, the
    /// format the `store_fsck` binary prints and CI greps.
    pub fn lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        for issue in &self.manifest_issues {
            out.push(format!("manifest-issue reason={issue:?}"));
        }
        for t in &self.torn {
            out.push(format!(
                "torn-tail segment={} offset={} dropped={}",
                t.segment, t.offset, t.dropped
            ));
        }
        for c in &self.corrupt {
            out.push(format!(
                "corrupt-frame segment={} offset={} reason={:?}",
                c.segment, c.offset, c.reason
            ));
        }
        for name in &self.missing {
            out.push(format!("missing-segment segment={name}"));
        }
        for name in &self.unreferenced {
            out.push(format!("unreferenced-segment segment={name}"));
        }
        for action in &self.actions {
            out.push(format!("repaired {action}"));
        }
        out.push(format!(
            "summary segments={} frames={} rows={} distinct={} clean={}",
            self.segments,
            self.frames,
            self.rows,
            self.distinct,
            self.is_clean()
        ));
        out
    }
}

/// What `compact` did.
#[derive(Debug)]
pub struct CompactReport {
    pub segments_before: usize,
    pub segments_after: usize,
    pub rows_before: usize,
    pub rows_after: usize,
    pub bytes_before: u64,
    pub bytes_after: u64,
}

fn read_manifest(dir: &Path) -> Result<Option<Manifest>, String> {
    let path = dir.join(MANIFEST);
    if !path.exists() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("unreadable: {e}"))?;
    Manifest::parse(&text, &path).map(Some).map_err(|e| format!("unparseable: {e}"))
}

/// Read-only integrity check of the store at `dir`.
///
/// # Errors
///
/// [`StoreError::Manifest`] when `dir` holds no store at all (no
/// manifest and no segments); [`StoreError::Io`] when the directory
/// itself cannot be read. Damage inside the store is *not* an error —
/// it lands in the report.
pub fn verify(dir: &Path) -> Result<FsckReport, StoreError> {
    let mut report = FsckReport::default();
    let manifest = match read_manifest(dir) {
        Ok(m) => m,
        Err(issue) => {
            report.manifest_issues.push(issue);
            None
        }
    };
    let on_disk = list_segment_files(dir)?;
    if manifest.is_none() {
        if on_disk.is_empty() && report.manifest_issues.is_empty() {
            return Err(StoreError::Manifest {
                path: dir.join(MANIFEST),
                reason: "no store at this path".to_string(),
            });
        }
        if report.manifest_issues.is_empty() {
            report
                .manifest_issues
                .push(format!("manifest missing but {} segments present", on_disk.len()));
        }
    }

    let referenced: Vec<SegmentMeta> = manifest.map(|m| m.segments).unwrap_or_default();
    let referenced_names: HashSet<&str> = referenced.iter().map(|s| s.name.as_str()).collect();
    let mut digests = HashSet::new();

    for seg in &referenced {
        let path = dir.join(&seg.name);
        let buf = match std::fs::read(&path) {
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                report.missing.push(seg.name.clone());
                continue;
            }
            Err(e) => return Err(io_err(&path, e)),
        };
        report.segments += 1;
        let scan = scan_segment(&buf, &seg.name, seg.committed_len);
        report.frames += scan.frames;
        report.rows += scan.rows.len();
        for row in &scan.rows {
            digests.insert(row.digest);
        }
        report.corrupt.extend(scan.corrupt);
        // Adopted-but-uncommitted frames are healthy data, but the lag
        // means the last writer did not shut down cleanly; surface the
        // tear (if any), not the adoption.
        if let Some(at) = scan.torn_at {
            report.torn.push(Torn {
                segment: seg.name.clone(),
                offset: at,
                dropped: buf.len() as u64 - at,
            });
        }
    }
    for name in &on_disk {
        if !referenced_names.contains(name.as_str()) {
            report.segments += 1;
            report.unreferenced.push(name.clone());
        }
    }
    report.distinct = digests.len();
    Ok(report)
}

/// One salvage pass over raw segment bytes: every CRC-valid, decodable
/// frame anywhere in the file is kept; everything else is a bad byte
/// range destined for quarantine.
struct Salvage {
    /// (start, end) byte ranges of good frames, in order.
    keep: Vec<(usize, usize)>,
    /// (start, end) byte ranges of damaged bytes, in order.
    bad: Vec<(usize, usize)>,
    rows: usize,
}

fn salvage(buf: &[u8], data_start: usize) -> Salvage {
    let mut out = Salvage { keep: Vec::new(), bad: Vec::new(), rows: 0 };
    let mut at = data_start;
    let mut bad_from: Option<usize> = None;
    let close_bad = |bad_from: &mut Option<usize>, upto: usize, out: &mut Salvage| {
        if let Some(from) = bad_from.take() {
            if upto > from {
                out.bad.push((from, upto));
            }
        }
    };
    while at < buf.len() {
        match frame::parse_frame(buf, at) {
            frame::Parsed::Frame { payload, end } => match frame::decode_block(&payload) {
                Ok(rows) => {
                    close_bad(&mut bad_from, at, &mut out);
                    out.keep.push((at, end));
                    out.rows += rows.len();
                    at = end;
                }
                Err(_) => {
                    if bad_from.is_none() {
                        bad_from = Some(at);
                    }
                    at = end;
                }
            },
            frame::Parsed::BadCrc { .. } | frame::Parsed::BadMagic | frame::Parsed::Truncated => {
                if bad_from.is_none() {
                    bad_from = Some(at);
                }
                match frame::resync(buf, at) {
                    Some(next) => at = next,
                    None => {
                        at = buf.len();
                        break;
                    }
                }
            }
        }
    }
    close_bad(&mut bad_from, at.max(buf.len()), &mut out);
    out
}

fn quarantine_bytes(dir: &Path, name: &str, offset: usize, bytes: &[u8]) -> Result<(), StoreError> {
    let qdir = dir.join(QUARANTINE);
    std::fs::create_dir_all(&qdir).map_err(|e| io_err(&qdir, e))?;
    let path = qdir.join(format!("{name}.at{offset}.bin"));
    std::fs::write(&path, bytes).map_err(|e| io_err(&path, e))
}

/// Repairs the store at `dir` in place and returns the final report
/// (its `actions` list what changed; it is clean on success).
///
/// # Errors
///
/// [`StoreError::Locked`] while a live writer holds the store;
/// [`StoreError::Manifest`] when the store is unrepairable (no
/// manifest *and* no segment with a readable engine tag);
/// [`StoreError::Io`] / [`StoreError::Unwritable`] when the repair
/// itself cannot write (e.g. a read-only directory).
pub fn repair(dir: &Path) -> Result<FsckReport, StoreError> {
    let _lock = WriterLock::acquire(dir, Duration::from_secs(300))?;
    let mut actions: Vec<String> = Vec::new();

    // Recover the engine tag: manifest first, segment headers second.
    let manifest = read_manifest(dir).unwrap_or(None);
    let on_disk = list_segment_files(dir)?;
    let mut tag = manifest.as_ref().map(|m| m.tag.clone());
    if tag.is_none() {
        for name in &on_disk {
            if let Ok(buf) = std::fs::read(dir.join(name)) {
                if let Ok((t, _)) = frame::parse_segment_header(&buf) {
                    tag = Some(t);
                    break;
                }
            }
        }
    }
    let Some(tag) = tag else {
        return Err(StoreError::Manifest {
            path: dir.join(MANIFEST),
            reason: "unrepairable: no manifest and no segment with a readable engine tag"
                .to_string(),
        });
    };

    // Union of referenced and on-disk segments, in stable name order.
    let mut names: Vec<String> = on_disk.clone();
    for seg in manifest.iter().flat_map(|m| &m.segments) {
        if !names.contains(&seg.name) {
            names.push(seg.name.clone());
        }
    }
    names.sort();
    let referenced: HashSet<String> =
        manifest.iter().flat_map(|m| &m.segments).map(|s| s.name.clone()).collect();

    let mut segments: Vec<SegmentMeta> = Vec::new();
    for name in &names {
        let path = dir.join(name);
        let buf = match std::fs::read(&path) {
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                actions.push(format!("dropped missing segment {name} from manifest"));
                continue;
            }
            Err(e) => return Err(io_err(&path, e)),
        };
        let header_ok = frame::parse_segment_header(&buf).is_ok();
        let data_start = frame::parse_segment_header(&buf).map(|(_, s)| s).unwrap_or(0);
        let s = salvage(&buf, data_start);
        if !header_ok && s.keep.is_empty() {
            quarantine_bytes(dir, name, 0, &buf)?;
            std::fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
            actions.push(format!("quarantined unreadable segment {name}"));
            continue;
        }
        if s.bad.is_empty() && header_ok && buf.len() == s.keep.last().map_or(data_start, |k| k.1) {
            // Fully healthy; keep as-is (possibly adopting it).
            if !referenced.contains(name) {
                actions.push(format!("adopted unreferenced segment {name}"));
            }
            segments.push(SegmentMeta {
                name: name.clone(),
                committed_len: buf.len() as u64,
                rows: s.rows as u64,
            });
            continue;
        }
        // Rewrite the segment as header + good frames; quarantine the
        // damaged ranges (a torn tail is just the final bad range).
        // Tmp-then-rename keeps the swap atomic.
        for &(from, to) in &s.bad {
            quarantine_bytes(dir, name, from, &buf[from..to])?;
            actions.push(format!("quarantined {} bytes of {name} at offset {from}", to - from));
        }
        let mut rebuilt = frame::segment_header(&tag);
        for &(from, to) in &s.keep {
            rebuilt.extend_from_slice(&buf[from..to]);
        }
        atomic_write(&path, &rebuilt)?;
        if !header_ok {
            actions.push(format!("rebuilt damaged header of {name}"));
        }
        if !referenced.contains(name) {
            actions.push(format!("adopted unreferenced segment {name}"));
        }
        segments.push(SegmentMeta {
            name: name.clone(),
            committed_len: rebuilt.len() as u64,
            rows: s.rows as u64,
        });
    }

    if manifest.is_none() {
        actions.push("rebuilt manifest from segment headers".to_string());
    }
    atomic_write(&dir.join(MANIFEST), Manifest { tag, segments }.render().as_bytes())?;

    // The returned report describes the *post-repair* state (clean on
    // success) with the actions that got it there.
    let mut report = verify(dir)?;
    report.actions = actions;
    Ok(report)
}

/// Rewrites the store with duplicate digests dropped (last wins) and
/// frames repacked into fresh segments.
///
/// # Errors
///
/// [`StoreError::Locked`] while a writer holds the store; damage that
/// `verify` would report must be repaired first and yields
/// [`StoreError::Corrupt`] (first instance) here.
pub fn compact(dir: &Path) -> Result<CompactReport, StoreError> {
    let _lock = WriterLock::acquire(dir, Duration::from_secs(300))?;
    let manifest = match read_manifest(dir) {
        Ok(Some(m)) => m,
        Ok(None) | Err(_) => {
            return Err(StoreError::Manifest {
                path: dir.join(MANIFEST),
                reason: "compact needs a readable manifest (run store_fsck --repair first)"
                    .to_string(),
            })
        }
    };
    let check = verify(dir)?;
    if let Some(c) = check.corrupt.first() {
        return Err(StoreError::Corrupt {
            segment: c.segment.clone(),
            offset: c.offset,
            reason: format!("{} (run store_fsck --repair before compacting)", c.reason),
        });
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut index: HashMap<u128, usize> = HashMap::new();
    let mut bytes_before = 0u64;
    for seg in &manifest.segments {
        let path = dir.join(&seg.name);
        let buf = match std::fs::read(&path) {
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(io_err(&path, e)),
        };
        bytes_before += buf.len() as u64;
        for row in scan_segment(&buf, &seg.name, seg.committed_len).rows {
            match index.get(&row.digest) {
                Some(&i) => rows[i] = row,
                None => {
                    index.insert(row.digest, rows.len());
                    rows.push(row);
                }
            }
        }
    }
    let rows_before = check.rows;

    // Write the replacement segments under fresh ids, then commit the
    // swap with one manifest rename, then drop the old files.
    let next_id = list_segment_files(dir)?
        .iter()
        .map(String::as_str)
        .filter_map(segment_id)
        .max()
        .unwrap_or(0)
        + 1;
    let name = segment_name(next_id);
    let path = dir.join(&name);
    let mut out = frame::segment_header(&manifest.tag);
    for chunk in rows.chunks(512) {
        // Decoded rows always satisfy the encoder limits, but a chunk
        // could in principle overflow a block; split rather than fail.
        let blocks = frame::encode_blocks(chunk)
            .map_err(|reason| io_err(&path, std::io::Error::other(format!("encode: {reason}"))))?;
        for block in &blocks {
            out.extend_from_slice(&frame::frame_bytes(block));
        }
    }
    let mut file = std::fs::File::create(&path).map_err(|e| io_err(&path, e))?;
    file.write_all(&out).map_err(|e| io_err(&path, e))?;
    file.sync_all().map_err(|e| io_err(&path, e))?;
    drop(file);
    let new_segments = vec![SegmentMeta {
        name: name.clone(),
        committed_len: out.len() as u64,
        rows: rows.len() as u64,
    }];
    atomic_write(
        &dir.join(MANIFEST),
        Manifest { tag: manifest.tag.clone(), segments: new_segments }.render().as_bytes(),
    )?;
    for seg in &manifest.segments {
        if seg.name != name {
            let _ = std::fs::remove_file(dir.join(&seg.name));
        }
    }
    Ok(CompactReport {
        segments_before: manifest.segments.len(),
        segments_after: 1,
        rows_before,
        rows_after: rows.len(),
        bytes_before,
        bytes_after: out.len() as u64,
    })
}
