//! The store proper: directory layout, manifest journal, recovery.
//!
//! ## Directory layout
//!
//! ```text
//! <dir>/MANIFEST            committed state, replaced by atomic rename
//! <dir>/seg-00000001.css    append-only CRC-framed segments
//! <dir>/writer.lock         single-writer arbitration (pid inside)
//! <dir>/quarantine/         bytes fsck --repair pulled out of segments
//! ```
//!
//! ## Journal protocol
//!
//! The `MANIFEST` is the journal: a tiny text file listing the engine
//! tag and, per segment, the committed byte length and row count. Every
//! mutation follows write-ahead discipline relative to the files it
//! describes — new bytes are written and fsynced *first*, then the
//! manifest is rewritten to a temp file, fsynced, and renamed over the
//! old one. The rename is the single atomic commit point; a crash on
//! either side leaves a state recovery can classify.
//!
//! ## Recovery invariants
//!
//! - A frame within a segment's committed length is durable; a CRC
//!   mismatch there is real corruption — reported with its offset,
//!   skipped (recovery resyncs on the frame magic), and left for
//!   `fsck --repair` to quarantine.
//! - Valid frames *past* the committed length are adopted: the data
//!   write succeeded but the crash beat the manifest rename.
//! - The first invalid byte past the committed length is a torn append;
//!   the writer truncates it away on open. Nothing after a torn append
//!   survives.
//! - Reopening never loses a committed row, and a resumed campaign
//!   skips every committed digest — so resume is just rerun.

use crate::frame;
use crate::{Corruption, Row, StoreError, Torn};
use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{ErrorKind, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The manifest file name.
pub const MANIFEST: &str = "MANIFEST";
/// The writer lock file name (PR-6 `.lock` arbitration, one per store).
pub const WRITER_LOCK: &str = "writer.lock";
/// Directory quarantined bytes are moved into by `fsck --repair`.
pub const QUARANTINE: &str = "quarantine";
const MANIFEST_HEADER: &str = "corescope-store v1";

/// Writer tuning knobs; the defaults suit campaign-scale appends.
#[derive(Debug, Clone)]
pub struct Options {
    /// Roll to a fresh segment once the active one exceeds this.
    pub roll_bytes: u64,
    /// Auto-flush the row buffer at this size (a flush is one frame,
    /// one fsync and one manifest commit — the durability quantum).
    pub flush_rows: usize,
    /// Age after which a writer lock whose owner's liveness cannot be
    /// checked may be taken over. On Linux the lock file's pid is
    /// checked against `/proc` instead: a dead owner is taken over
    /// immediately and a live owner is never timed out. The writer
    /// refreshes the lock mtime on every flush, so this fallback only
    /// fires on owners that stopped making progress.
    pub lock_timeout: Duration,
}

impl Default for Options {
    fn default() -> Self {
        Options { roll_bytes: 1 << 20, flush_rows: 128, lock_timeout: Duration::from_secs(300) }
    }
}

/// What `Store::open` found and did. All fields are observable so the
/// x9 artifact and the chaos suite can assert on recovery behaviour.
#[derive(Debug, Default, Clone)]
pub struct RecoveryReport {
    /// Segments listed in the manifest and present on disk.
    pub segments: usize,
    /// Committed rows visible after recovery (before digest dedup).
    pub rows: usize,
    /// Distinct scenario digests among those rows.
    pub distinct: usize,
    /// Valid frames found past a committed length and adopted.
    pub adopted_frames: usize,
    /// Torn appends truncated (writer) or ignored (reader).
    pub torn: Vec<Torn>,
    /// CRC-invalid or undecodable frames inside committed regions.
    pub corrupt: Vec<Corruption>,
    /// Manifest segments missing on disk (reader mode only; the writer
    /// refuses to open over a missing segment).
    pub missing: Vec<String>,
}

impl RecoveryReport {
    /// True when recovery found nothing to repair or adopt.
    pub fn is_clean(&self) -> bool {
        self.adopted_frames == 0
            && self.torn.is_empty()
            && self.corrupt.is_empty()
            && self.missing.is_empty()
    }

    /// One-line human summary, mirroring the sched/serve summary style.
    pub fn summary(&self) -> String {
        format!(
            "store recovery: segments {}, rows {} (distinct {}), adopted {}, torn {}, corrupt {}, missing {}",
            self.segments,
            self.rows,
            self.distinct,
            self.adopted_frames,
            self.torn.len(),
            self.corrupt.len(),
            self.missing.len()
        )
    }
}

#[derive(Debug, Clone)]
pub(crate) struct SegmentMeta {
    pub name: String,
    pub committed_len: u64,
    pub rows: u64,
}

pub(crate) struct Manifest {
    pub tag: String,
    pub segments: Vec<SegmentMeta>,
}

impl Manifest {
    pub fn render(&self) -> String {
        let mut out = format!("{MANIFEST_HEADER}\ntag {}\n", self.tag);
        for seg in &self.segments {
            out.push_str(&format!("segment {} {} {}\n", seg.name, seg.committed_len, seg.rows));
        }
        out
    }

    pub fn parse(text: &str, path: &Path) -> Result<Manifest, StoreError> {
        let bad = |reason: String| StoreError::Manifest { path: path.to_path_buf(), reason };
        let mut lines = text.lines();
        match lines.next() {
            Some(MANIFEST_HEADER) => {}
            other => return Err(bad(format!("bad header line {other:?}"))),
        }
        let tag = match lines.next().map(|l| l.split_once(' ')) {
            Some(Some(("tag", tag))) if !tag.is_empty() => tag.to_string(),
            other => return Err(bad(format!("bad tag line {other:?}"))),
        };
        let mut segments = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split(' ');
            match (parts.next(), parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some("segment"), Some(name), Some(len), Some(rows), None) => {
                    let committed_len =
                        len.parse().map_err(|_| bad(format!("bad length in {line:?}")))?;
                    let rows =
                        rows.parse().map_err(|_| bad(format!("bad row count in {line:?}")))?;
                    if !valid_segment_name(name) {
                        return Err(bad(format!("bad segment name in {line:?}")));
                    }
                    segments.push(SegmentMeta { name: name.to_string(), committed_len, rows });
                }
                _ => return Err(bad(format!("unrecognised line {line:?}"))),
            }
        }
        Ok(Manifest { tag, segments })
    }
}

pub(crate) fn valid_segment_name(name: &str) -> bool {
    name.len() == "seg-00000000.css".len()
        && name.starts_with("seg-")
        && name.ends_with(".css")
        && name[4..12].bytes().all(|b| b.is_ascii_digit())
}

pub(crate) fn segment_name(id: u64) -> String {
    format!("seg-{id:08}.css")
}

pub(crate) fn segment_id(name: &str) -> Option<u64> {
    if !valid_segment_name(name) {
        return None;
    }
    name[4..12].parse().ok()
}

pub(crate) fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io { path: path.to_path_buf(), source }
}

/// Writes `bytes` to `path` durably: temp file, fsync, atomic rename.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    let mut file = File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    file.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
    file.sync_all().map_err(|e| io_err(&tmp, e))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}

/// The single-writer lock: `writer.lock` created with `create_new`,
/// holding the owner's pid. Stale locks (owner provably dead via
/// `/proc`, or — where no liveness oracle exists — unrefreshed for
/// longer than the configured timeout) are taken over by renaming them
/// to a tombstone first, so two contenders cannot both "win" by
/// deleting the same file — the same arbitration the result cache's
/// `.lock` protocol uses. A provably live owner is never stolen from.
#[derive(Debug)]
pub(crate) struct WriterLock {
    path: PathBuf,
    held: bool,
}

impl WriterLock {
    pub(crate) fn acquire(dir: &Path, timeout: Duration) -> Result<WriterLock, StoreError> {
        let path = dir.join(WRITER_LOCK);
        for attempt in 0..2 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    let _ = writeln!(file, "{}", std::process::id());
                    let _ = file.sync_all();
                    return Ok(WriterLock { path, held: true });
                }
                Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                    let owner = std::fs::read_to_string(&path)
                        .map(|s| s.trim().to_string())
                        .unwrap_or_else(|_| "unknown".to_string());
                    if attempt == 0 && Self::is_stale(&path, &owner, timeout) {
                        // Tombstone-then-delete: the rename is the
                        // exclusive step, so a racing contender either
                        // sees the lock gone or loses the rename.
                        let tomb =
                            path.with_extension(format!("lock.stale.{}", std::process::id()));
                        if std::fs::rename(&path, &tomb).is_ok() {
                            let _ = std::fs::remove_file(&tomb);
                        }
                        continue;
                    }
                    return Err(StoreError::Locked { dir: dir.to_path_buf(), owner });
                }
                Err(e) => return Err(io_err(&path, e)),
            }
        }
        let owner = std::fs::read_to_string(&path)
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|_| "unknown".to_string());
        Err(StoreError::Locked { dir: dir.to_path_buf(), owner })
    }

    fn is_stale(path: &Path, owner: &str, timeout: Duration) -> bool {
        // A SIGKILLed campaign leaves its lock behind; resume must not
        // wait out the timeout for an owner that is provably gone. The
        // converse matters even more: an owner that is provably ALIVE
        // is never stale, however old its lock — stealing a live
        // writer's lock yields two writers, the one corruption this
        // lock exists to prevent.
        #[cfg(target_os = "linux")]
        if let Ok(pid) = owner.parse::<u32>() {
            return !Path::new(&format!("/proc/{pid}")).exists();
        }
        let _ = owner;
        // No liveness oracle (non-Linux, or an unparseable owner):
        // fall back to the heartbeat age. Live writers refresh the
        // lock mtime on every flush, so a lock older than the timeout
        // belongs to a dead or wedged owner.
        match std::fs::metadata(path).and_then(|m| m.modified()) {
            Ok(modified) => modified.elapsed().map(|age| age > timeout).unwrap_or(false),
            Err(_) => false,
        }
    }

    /// Refreshes the lock file mtime. Called on every flush so the
    /// age-based takeover fallback in [`WriterLock::is_stale`] (used
    /// where no pid liveness oracle exists) never fires against a
    /// writer that is still making progress.
    fn heartbeat(&self) {
        if !self.held {
            return;
        }
        if let Ok(file) = OpenOptions::new().write(true).open(&self.path) {
            let _ = file.set_modified(std::time::SystemTime::now());
        }
    }
}

impl Drop for WriterLock {
    fn drop(&mut self) {
        if self.held {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// A crash-safe columnar result store rooted at one directory.
///
/// Open it in writer mode to append campaign rows (single writer,
/// enforced by [`WRITER_LOCK`]) or in reader mode to scan and verify.
/// See the module docs for the journal protocol and recovery
/// invariants.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    tag: String,
    writable: bool,
    options: Options,
    segments: Vec<SegmentMeta>,
    committed: HashSet<u128>,
    buffered: Vec<Row>,
    buffered_digests: HashSet<u128>,
    recovery: RecoveryReport,
    rows_committed: u64,
    appended: u64,
    lock: Option<WriterLock>,
    /// Fault injection for the chaos suite: remaining bytes the store
    /// may write before every write fails ENOSPC-style, tearing the
    /// frame mid-append exactly like a full disk would.
    write_budget: Option<u64>,
}

impl Store {
    /// Opens (creating if absent) the store at `dir` for writing,
    /// acquiring the writer lock and running crash recovery: torn
    /// tails are truncated, valid-but-uncommitted frames adopted, and
    /// interior corruption recorded in [`Store::recovery`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] while another live writer holds the lock,
    /// [`StoreError::EngineMismatch`] when the store was written under a
    /// different engine tag, [`StoreError::MissingSegment`] /
    /// [`StoreError::Manifest`] for damage that needs `store_fsck
    /// --repair`, and [`StoreError::Unwritable`] / [`StoreError::Io`]
    /// for filesystem failures.
    pub fn open(dir: &Path, tag: &str) -> Result<Store, StoreError> {
        Self::open_with(dir, tag, Options::default())
    }

    /// [`Store::open`] with explicit [`Options`].
    pub fn open_with(dir: &Path, tag: &str, options: Options) -> Result<Store, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::Unwritable {
            dir: dir.to_path_buf(),
            reason: e.to_string(),
        })?;
        let lock = WriterLock::acquire(dir, options.lock_timeout)?;
        let manifest_path = dir.join(MANIFEST);
        let manifest = if manifest_path.exists() {
            let text =
                std::fs::read_to_string(&manifest_path).map_err(|e| io_err(&manifest_path, e))?;
            let manifest = Manifest::parse(&text, &manifest_path)?;
            if manifest.tag != tag {
                return Err(StoreError::EngineMismatch {
                    found: manifest.tag,
                    expected: tag.to_string(),
                });
            }
            manifest
        } else {
            if !list_segment_files(dir)?.is_empty() {
                return Err(StoreError::Manifest {
                    path: manifest_path,
                    reason: "manifest missing but segments present (run store_fsck --repair)"
                        .to_string(),
                });
            }
            let manifest = Manifest { tag: tag.to_string(), segments: Vec::new() };
            atomic_write(&manifest_path, manifest.render().as_bytes())?;
            manifest
        };

        let mut store = Store {
            dir: dir.to_path_buf(),
            tag: tag.to_string(),
            writable: true,
            options,
            segments: manifest.segments,
            committed: HashSet::new(),
            buffered: Vec::new(),
            buffered_digests: HashSet::new(),
            recovery: RecoveryReport::default(),
            rows_committed: 0,
            appended: 0,
            lock: Some(lock),
            write_budget: None,
        };
        store.recover(true)?;
        Ok(store)
    }

    /// Opens the store read-only: no lock, no truncation, no manifest
    /// rewrite. Damage — including missing segments — is recorded in
    /// [`Store::recovery`] instead of repaired, which is what
    /// `store_fsck` wants for its verify pass.
    ///
    /// # Errors
    ///
    /// [`StoreError::Manifest`] when `dir` holds no readable store at
    /// all, [`StoreError::Io`] on filesystem failures.
    pub fn open_reader(dir: &Path) -> Result<Store, StoreError> {
        let manifest_path = dir.join(MANIFEST);
        let manifest = if manifest_path.exists() {
            let text =
                std::fs::read_to_string(&manifest_path).map_err(|e| io_err(&manifest_path, e))?;
            Manifest::parse(&text, &manifest_path)?
        } else {
            return Err(StoreError::Manifest {
                path: manifest_path,
                reason: if list_segment_files(dir).map(|s| s.is_empty()).unwrap_or(true) {
                    "no store at this path".to_string()
                } else {
                    "manifest missing but segments present (run store_fsck --repair)".to_string()
                },
            });
        };
        let mut store = Store {
            dir: dir.to_path_buf(),
            tag: manifest.tag.clone(),
            writable: false,
            options: Options::default(),
            segments: manifest.segments,
            committed: HashSet::new(),
            buffered: Vec::new(),
            buffered_digests: HashSet::new(),
            recovery: RecoveryReport::default(),
            rows_committed: 0,
            appended: 0,
            lock: None,
            write_budget: None,
        };
        store.recover(false)?;
        Ok(store)
    }

    /// Walks every manifest segment, classifying frames and (in writer
    /// mode) truncating torn tails and committing adoptions.
    fn recover(&mut self, writer: bool) -> Result<(), StoreError> {
        let mut manifest_dirty = false;
        let mut segments = std::mem::take(&mut self.segments);
        for seg in &mut segments {
            let path = self.dir.join(&seg.name);
            let buf = match std::fs::read(&path) {
                Ok(buf) => buf,
                Err(e) if e.kind() == ErrorKind::NotFound => {
                    if writer {
                        return Err(StoreError::MissingSegment { segment: seg.name.clone() });
                    }
                    self.recovery.missing.push(seg.name.clone());
                    seg.committed_len = 0;
                    seg.rows = 0;
                    continue;
                }
                Err(e) => return Err(io_err(&path, e)),
            };
            let scan = scan_segment(&buf, &seg.name, seg.committed_len);
            for row in &scan.rows {
                if self.committed.insert(row.digest) {
                    self.recovery.distinct += 1;
                }
            }
            self.recovery.rows += scan.rows.len();
            self.recovery.adopted_frames += scan.adopted_frames;
            self.recovery.corrupt.extend(scan.corrupt);
            if scan.valid_end != seg.committed_len {
                manifest_dirty = true;
            }
            seg.committed_len = scan.valid_end;
            seg.rows = scan.rows.len() as u64;
            if let Some(torn_at) = scan.torn_at {
                let dropped = buf.len() as u64 - torn_at;
                self.recovery.torn.push(Torn {
                    segment: seg.name.clone(),
                    offset: torn_at,
                    dropped,
                });
                if writer {
                    let file =
                        OpenOptions::new().write(true).open(&path).map_err(|e| io_err(&path, e))?;
                    file.set_len(torn_at).map_err(|e| io_err(&path, e))?;
                    file.sync_all().map_err(|e| io_err(&path, e))?;
                }
            }
        }
        self.segments = segments;
        self.recovery.segments = self.segments.len() - self.recovery.missing.len();
        self.rows_committed = self.recovery.rows as u64;
        if writer && manifest_dirty {
            self.commit_manifest()?;
        }
        Ok(())
    }

    fn commit_manifest(&mut self) -> Result<(), StoreError> {
        let manifest = Manifest { tag: self.tag.clone(), segments: self.segments.clone() };
        let bytes = manifest.render().into_bytes();
        self.charge_budget(&self.dir.join(MANIFEST), bytes.len())?;
        atomic_write(&self.dir.join(MANIFEST), &bytes)
    }

    /// Deducts `len` bytes from the injected write budget, failing like
    /// a full disk once it runs out. No-op without fault injection.
    fn charge_budget(&mut self, path: &Path, len: usize) -> Result<(), StoreError> {
        let Some(budget) = self.write_budget.as_mut() else { return Ok(()) };
        if *budget < len as u64 {
            *budget = 0;
            return Err(io_err(
                path,
                std::io::Error::other("injected fault: no space left on device"),
            ));
        }
        *budget -= len as u64;
        Ok(())
    }

    /// Arms (or disarms) the chaos suite's ENOSPC injection: after
    /// `bytes` more written bytes, every write fails and partially
    /// written frames are left torn on disk, as a full disk would.
    pub fn set_write_budget(&mut self, bytes: Option<u64>) {
        self.write_budget = bytes;
    }

    /// The store root.
    pub fn dir(&self) -> &Path {
        self.dir.as_path()
    }

    /// The engine tag this store is bound to.
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// What recovery found when this handle was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Durable rows (pre-dedup) as of the last flush.
    pub fn rows_committed(&self) -> u64 {
        self.rows_committed
    }

    /// Rows appended through this handle (buffered or flushed).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Distinct scenario digests present (committed or buffered).
    pub fn distinct(&self) -> usize {
        self.committed.len() + self.buffered_digests.len()
    }

    /// Segments currently listed in the manifest.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// True when `digest` is already committed or buffered — the resume
    /// test: a campaign skips every scenario for which this holds.
    pub fn contains(&self, digest: u128) -> bool {
        self.committed.contains(&digest) || self.buffered_digests.contains(&digest)
    }

    /// The committed digest set (not including buffered rows).
    pub fn committed_digests(&self) -> &HashSet<u128> {
        &self.committed
    }

    /// One-line status in the house summary style.
    pub fn summary(&self) -> String {
        format!(
            "store: segments {}, rows {} (distinct {}), appended {}, torn {}, corrupt {}",
            self.segment_count(),
            self.rows_committed,
            self.distinct(),
            self.appended,
            self.recovery.torn.len(),
            self.recovery.corrupt.len()
        )
    }

    /// Appends one row, deduplicating by digest. Returns `false` when
    /// the digest was already present (nothing written). Auto-flushes
    /// at [`Options::flush_rows`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Unwritable`] on a read-only handle; flush errors
    /// as for [`Store::flush`].
    pub fn append(&mut self, row: Row) -> Result<bool, StoreError> {
        if !self.writable {
            return Err(StoreError::Unwritable {
                dir: self.dir.clone(),
                reason: "store opened read-only".to_string(),
            });
        }
        if self.contains(row.digest) {
            return Ok(false);
        }
        self.buffered_digests.insert(row.digest);
        self.buffered.push(row);
        self.appended += 1;
        if self.buffered.len() >= self.options.flush_rows {
            self.flush()?;
        }
        Ok(true)
    }

    /// Makes every buffered row durable: one columnar frame appended to
    /// the active segment, fsync, then the manifest rename commit.
    /// Rolls to a fresh segment past [`Options::roll_bytes`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write failure — at any failure point,
    /// including a failed manifest commit after the data write, the
    /// buffered rows are kept and the in-memory committed state is
    /// left exactly as before the call, so a retry re-commits them.
    /// The next flush first truncates any torn bytes back to the
    /// committed length, so an in-process retry cannot corrupt the
    /// segment.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        if self.buffered.is_empty() {
            return Ok(());
        }
        let seg_index = self.active_segment()?;
        let name = self.segments[seg_index].name.clone();
        let committed_len = self.segments[seg_index].committed_len;
        let path = self.dir.join(&name);
        let file = OpenOptions::new().append(true).open(&path).map_err(|e| io_err(&path, e))?;
        // Self-heal a previous failed flush: drop torn bytes past the
        // commit point before appending, or recovery would later have
        // to resync over our own garbage.
        let len = file.metadata().map_err(|e| io_err(&path, e))?.len();
        if len > committed_len {
            file.set_len(committed_len).map_err(|e| io_err(&path, e))?;
        }
        let payloads = frame::encode_blocks(&self.buffered)
            .map_err(|reason| io_err(&path, std::io::Error::other(format!("encode: {reason}"))))?;
        let mut framed = Vec::new();
        for payload in &payloads {
            framed.extend_from_slice(&frame::frame_bytes(payload));
        }
        self.write_all_budgeted(&file, &path, &framed)?;
        file.sync_all().map_err(|e| io_err(&path, e))?;
        drop(file);

        // Stage the commit: bump the manifest image, attempt the rename
        // commit, and only then advance the in-memory row state. On a
        // failed commit the frame bytes stay on disk past the committed
        // length — the retry's self-heal truncates them — and the rows
        // stay buffered so the retry re-commits them.
        let frame_len = framed.len() as u64;
        let frame_rows = self.buffered.len() as u64;
        {
            let seg = &mut self.segments[seg_index];
            seg.committed_len += frame_len;
            seg.rows += frame_rows;
        }
        if let Err(e) = self.commit_manifest() {
            let seg = &mut self.segments[seg_index];
            seg.committed_len -= frame_len;
            seg.rows -= frame_rows;
            return Err(e);
        }
        self.rows_committed += frame_rows;
        for row in self.buffered.drain(..) {
            self.committed.insert(row.digest);
        }
        self.buffered_digests.clear();
        if let Some(lock) = &self.lock {
            lock.heartbeat();
        }
        Ok(())
    }

    /// Budget-aware append that tears the write mid-frame when the
    /// injected budget runs out — leaving exactly the on-disk state a
    /// real ENOSPC leaves.
    fn write_all_budgeted(
        &mut self,
        mut file: &File,
        path: &Path,
        bytes: &[u8],
    ) -> Result<(), StoreError> {
        if let Some(budget) = self.write_budget {
            let allowed = (budget).min(bytes.len() as u64) as usize;
            if allowed < bytes.len() {
                let _ = file.write_all(&bytes[..allowed]);
                let _ = file.sync_all();
                self.write_budget = Some(0);
                return Err(io_err(
                    path,
                    std::io::Error::other("injected fault: no space left on device"),
                ));
            }
            self.write_budget = Some(budget - allowed as u64);
        }
        file.write_all(bytes).map_err(|e| io_err(path, e))
    }

    /// Index of the segment to append to, creating or rolling as
    /// needed.
    fn active_segment(&mut self) -> Result<usize, StoreError> {
        let roll = self.options.roll_bytes;
        if let Some(last) = self.segments.len().checked_sub(1) {
            if self.segments[last].committed_len < roll {
                return Ok(last);
            }
        }
        // Consider files on disk too: a crash between segment creation
        // and its manifest commit leaves an unreferenced seg file whose
        // id must not be reused (create_new would fail forever).
        let on_disk = list_segment_files(&self.dir)?;
        let next_id = self
            .segments
            .iter()
            .map(|s| s.name.as_str())
            .chain(on_disk.iter().map(String::as_str))
            .filter_map(segment_id)
            .max()
            .unwrap_or(0)
            .checked_add(1)
            .expect("segment id overflow");
        let name = segment_name(next_id);
        let path = self.dir.join(&name);
        let header = frame::segment_header(&self.tag);
        self.charge_budget(&path, header.len())?;
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        file.write_all(&header).map_err(|e| io_err(&path, e))?;
        file.sync_all().map_err(|e| io_err(&path, e))?;
        self.segments.push(SegmentMeta { name, committed_len: header.len() as u64, rows: 0 });
        // Journal the new segment before any frame lands in it.
        self.commit_manifest()?;
        Ok(self.segments.len() - 1)
    }

    /// Scans every committed row from disk, deduplicated by digest with
    /// the *last* occurrence winning (a re-run after a quarantined frame
    /// supersedes the damaged copy). Buffered rows are not included —
    /// flush first.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when a listed segment cannot be read in
    /// writer mode (reader mode records it as missing instead).
    pub fn rows(&self) -> Result<Vec<Row>, StoreError> {
        let mut rows: Vec<Row> = Vec::new();
        let mut index: HashMap<u128, usize> = HashMap::new();
        for seg in &self.segments {
            let path = self.dir.join(&seg.name);
            let buf = match std::fs::read(&path) {
                Ok(buf) => buf,
                Err(e) if e.kind() == ErrorKind::NotFound && !self.writable => continue,
                Err(e) => return Err(io_err(&path, e)),
            };
            let scan = scan_segment(&buf, &seg.name, seg.committed_len);
            for row in scan.rows {
                match index.get(&row.digest) {
                    Some(&i) => rows[i] = row,
                    None => {
                        index.insert(row.digest, rows.len());
                        rows.push(row);
                    }
                }
            }
        }
        Ok(rows)
    }

    /// Appends raw bytes to the active segment *without* committing the
    /// manifest — the exact on-disk state a process killed mid-append
    /// leaves behind. Fault-injection hook for the chaos suite and the
    /// x9 crash simulation; recovery must truncate these bytes away.
    ///
    /// # Errors
    ///
    /// As for [`Store::flush`].
    pub fn simulate_torn_append(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        let seg_index = self.active_segment()?;
        let path = self.dir.join(&self.segments[seg_index].name);
        let mut file = OpenOptions::new().append(true).open(&path).map_err(|e| io_err(&path, e))?;
        file.write_all(bytes).map_err(|e| io_err(&path, e))?;
        file.sync_all().map_err(|e| io_err(&path, e))?;
        Ok(())
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        // Best effort: a clean shutdown should not lose buffered rows,
        // but errors here are unreportable (and a simulated crash drops
        // the store with a poisoned budget on purpose).
        if self.writable && !self.buffered.is_empty() {
            let _ = self.flush();
        }
    }
}

/// Everything learned from one pass over one segment's bytes.
pub(crate) struct SegmentScan {
    pub rows: Vec<Row>,
    /// End of the last valid frame (committed or adopted).
    pub valid_end: u64,
    pub adopted_frames: usize,
    pub corrupt: Vec<Corruption>,
    /// Offset of a torn append, if the bytes past `valid_end` are not
    /// empty.
    pub torn_at: Option<u64>,
    pub frames: usize,
}

/// Classifies every byte of a segment. Within `committed_len` damage is
/// corruption (skip + resync); past it, valid frames are adopted and
/// the first invalid byte is a torn append that ends the segment.
pub(crate) fn scan_segment(buf: &[u8], name: &str, committed_len: u64) -> SegmentScan {
    let mut scan = SegmentScan {
        rows: Vec::new(),
        valid_end: 0,
        adopted_frames: 0,
        corrupt: Vec::new(),
        torn_at: None,
        frames: 0,
    };
    let data_start = match frame::parse_segment_header(buf) {
        Ok((_tag, start)) => start,
        Err(reason) => {
            // An unreadable header poisons the whole segment: no frame
            // boundary is trustworthy, so quarantine everything.
            scan.corrupt.push(Corruption {
                segment: name.to_string(),
                offset: 0,
                reason: format!("segment header: {reason}"),
            });
            scan.valid_end = committed_len.min(buf.len() as u64);
            if (buf.len() as u64) > committed_len {
                scan.torn_at = Some(committed_len);
            }
            return scan;
        }
    };
    let committed = (committed_len as usize).min(buf.len());
    let mut at = data_start;
    scan.valid_end = data_start.min(committed) as u64;

    // Committed region: every byte was once fsynced under a manifest
    // commit, so damage here is corruption, never a torn append.
    while at < committed {
        match frame::parse_frame(&buf[..committed], at) {
            frame::Parsed::Frame { payload, end } => {
                scan.frames += 1;
                match frame::decode_block(&payload) {
                    Ok(rows) => scan.rows.extend(rows),
                    Err(reason) => scan.corrupt.push(Corruption {
                        segment: name.to_string(),
                        offset: at as u64,
                        reason,
                    }),
                }
                at = end;
                scan.valid_end = at as u64;
            }
            frame::Parsed::BadCrc { end } => {
                scan.corrupt.push(Corruption {
                    segment: name.to_string(),
                    offset: at as u64,
                    reason: "crc mismatch".to_string(),
                });
                // The length field may itself be damaged; resync on the
                // magic rather than trusting `end` blindly.
                at = match frame::resync(&buf[..committed], at) {
                    Some(next) if next < end => next,
                    _ => end.min(committed),
                };
            }
            frame::Parsed::BadMagic | frame::Parsed::Truncated => {
                scan.corrupt.push(Corruption {
                    segment: name.to_string(),
                    offset: at as u64,
                    reason: "bytes are not a frame".to_string(),
                });
                match frame::resync(&buf[..committed], at) {
                    Some(next) => at = next,
                    None => break,
                }
            }
        }
    }
    // Trailing committed bytes that never resynced stay quarantined in
    // place; the manifest length shrinks to the last good frame.

    // Uncommitted region: adopt whole valid frames (the write beat the
    // crash, the manifest rename did not), stop at the first tear.
    let mut adopt_at = committed.max(data_start);
    while adopt_at < buf.len() {
        match frame::parse_frame(buf, adopt_at) {
            frame::Parsed::Frame { payload, end } => match frame::decode_block(&payload) {
                Ok(rows) => {
                    scan.frames += 1;
                    scan.adopted_frames += 1;
                    scan.rows.extend(rows);
                    adopt_at = end;
                    scan.valid_end = end as u64;
                }
                Err(_) => break,
            },
            _ => break,
        }
    }
    if (adopt_at as u64) < buf.len() as u64 {
        scan.torn_at = Some(adopt_at as u64);
    }
    scan
}

pub(crate) fn list_segment_files(dir: &Path) -> Result<Vec<String>, StoreError> {
    let mut names = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(names),
        Err(e) => return Err(io_err(dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        if let Some(name) = entry.file_name().to_str() {
            if valid_segment_name(name) {
                names.push(name.to_string());
            }
        }
    }
    names.sort();
    Ok(names)
}
