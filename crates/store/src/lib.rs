//! # corescope-store
//!
//! A crash-safe, columnar, on-disk campaign store: the durable side of
//! million-scenario sweeps. The scheduler appends one [`Row`] per
//! completed scenario; rows are batched into CRC-framed columnar blocks
//! inside append-only segment files, and a manifest journal committed
//! by atomic rename records exactly how many bytes of each segment are
//! durable.
//!
//! The design center is *kill-anywhere resume*: a campaign process may
//! die at any byte — mid-frame, between the data fsync and the manifest
//! rename, mid-compaction — and [`Store::open`] brings the directory
//! back to a consistent state (torn tails truncated, completed-but-
//! uncommitted frames adopted, interior corruption reported with typed
//! offsets) while a resumed campaign skips every committed scenario
//! digest. Because the engine is deterministic and rows are keyed by
//! the scenario content hash, resume is literally rerun.
//!
//! Self-contained on purpose: no dependencies beyond std, hand-rolled
//! CRC-32 framing, and a line-based manifest — the store must be
//! readable in ten years with a hex editor.
//!
//! ```
//! use corescope_store::{Row, Store};
//! let dir = std::env::temp_dir().join(format!("doc-store-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let mut store = Store::open(&dir, "engine-doc").unwrap();
//! store.append(Row { digest: 7, makespan: 1.25, ..Row::default() }).unwrap();
//! store.flush().unwrap();
//! drop(store);
//! let reopened = Store::open(&dir, "engine-doc").unwrap();
//! assert!(reopened.contains(7));
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod frame;
pub mod fsck;
mod store;

pub use fsck::{CompactReport, FsckReport};
pub use store::{Options, RecoveryReport, Store, MANIFEST, QUARANTINE, WRITER_LOCK};

use std::path::PathBuf;

/// One committed scenario outcome — the store's unit of content.
///
/// The digest is the scenario's canonical content hash (everything that
/// feeds the engine run), the six axis strings are the stable lowercase
/// keys the scenario IR already defines, and the scalars are the
/// engine's result counters. Encoded column-major per block; see
/// [`frame`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Row {
    /// Scenario content hash (`Scenario::digest()` upstream).
    pub digest: u128,
    /// Machine key, e.g. `dmz`.
    pub system: String,
    /// Fidelity key, `quick` or `full`.
    pub fidelity: String,
    /// Placement scheme key, e.g. `scheme-a` or `scatter-local`.
    pub placement: String,
    /// MPI implementation key, e.g. `mpich2`.
    pub mpi: String,
    /// Lock layer key, e.g. `sysv`.
    pub lock: String,
    /// Workload kind, e.g. `bsp` or `stream`.
    pub workload: String,
    /// World size.
    pub nranks: u32,
    /// Simulated makespan in seconds.
    pub makespan: f64,
    /// Engine events processed.
    pub events: u64,
    /// Faults injected by the fault plan.
    pub faults_applied: u64,
    /// Checkpoints taken by the recovery policy.
    pub checkpoints_taken: u64,
    /// Restarts performed.
    pub recoveries: u64,
    /// Transport retries performed.
    pub retries: u64,
}

/// A torn append: bytes past the last valid frame of a segment.
#[derive(Debug, Clone)]
pub struct Torn {
    /// Segment file name.
    pub segment: String,
    /// Byte offset the tear starts at.
    pub offset: u64,
    /// Bytes dropped (writer mode truncates them away).
    pub dropped: u64,
}

/// A damaged frame inside a committed region — a flipped bit, not a
/// crash artifact.
#[derive(Debug, Clone)]
pub struct Corruption {
    /// Segment file name.
    pub segment: String,
    /// Byte offset of the damaged frame.
    pub offset: u64,
    /// What the reader saw.
    pub reason: String,
}

impl Corruption {
    /// The typed error equivalent, for callers that treat corruption as
    /// fatal rather than skippable.
    pub fn to_error(&self) -> StoreError {
        StoreError::Corrupt {
            segment: self.segment.clone(),
            offset: self.offset,
            reason: self.reason.clone(),
        }
    }
}

/// Every way the store can fail, each with enough context to act on.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// The path being read or written.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// The store directory cannot be written (read-only mount, missing
    /// permissions, or a read-only handle asked to append).
    Unwritable {
        /// The store root.
        dir: PathBuf,
        /// Why.
        reason: String,
    },
    /// Another live writer holds the store.
    Locked {
        /// The store root.
        dir: PathBuf,
        /// Contents of the lock file (the owner's pid).
        owner: String,
    },
    /// A damaged frame at a known place.
    Corrupt {
        /// Segment file name.
        segment: String,
        /// Byte offset of the damage.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// The manifest references a segment that is not on disk.
    MissingSegment {
        /// Segment file name.
        segment: String,
    },
    /// The store was written under a different engine tag; its rows
    /// would alias scenarios from a different simulation.
    EngineMismatch {
        /// Tag found in the store.
        found: String,
        /// Tag the caller expected.
        expected: String,
    },
    /// The manifest itself is missing or damaged.
    Manifest {
        /// Manifest path.
        path: PathBuf,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store io error at {}: {source}", path.display())
            }
            StoreError::Unwritable { dir, reason } => {
                write!(f, "store directory {} is unwritable: {reason}", dir.display())
            }
            StoreError::Locked { dir, owner } => {
                write!(f, "store {} is locked by another writer (pid {owner})", dir.display())
            }
            StoreError::Corrupt { segment, offset, reason } => {
                write!(f, "corrupt frame in {segment} at offset {offset}: {reason}")
            }
            StoreError::MissingSegment { segment } => {
                write!(
                    f,
                    "segment {segment} is listed in the manifest but missing on disk \
                     (run store_fsck --repair)"
                )
            }
            StoreError::EngineMismatch { found, expected } => {
                write!(f, "store engine tag mismatch: found {found:?}, expected {expected:?}")
            }
            StoreError::Manifest { path, reason } => {
                write!(f, "bad manifest at {}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    const TAG: &str = "corescope-engine-test";

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(label: &str) -> TempDir {
            let dir = std::env::temp_dir()
                .join(format!("corescope-store-{label}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn row(i: u64) -> Row {
        Row {
            digest: u128::from(i) * 0x9E37_79B9_7F4A_7C15,
            system: "dmz".to_string(),
            fidelity: "quick".to_string(),
            placement: "scatter-local".to_string(),
            mpi: "mpich2".to_string(),
            lock: "sysv".to_string(),
            workload: "bsp".to_string(),
            nranks: 4,
            makespan: i as f64 * 0.5,
            events: i,
            faults_applied: 0,
            checkpoints_taken: 0,
            recoveries: 0,
            retries: 0,
        }
    }

    #[test]
    fn append_flush_reopen_round_trips() {
        let tmp = TempDir::new("roundtrip");
        let mut store = Store::open(tmp.path(), TAG).unwrap();
        for i in 0..10 {
            assert!(store.append(row(i)).unwrap());
        }
        // Duplicate digests are skipped without touching disk.
        assert!(!store.append(row(3)).unwrap());
        store.flush().unwrap();
        drop(store);

        let store = Store::open(tmp.path(), TAG).unwrap();
        assert!(store.recovery().is_clean());
        assert_eq!(store.rows_committed(), 10);
        let mut rows = store.rows().unwrap();
        rows.sort_by_key(|r| r.events);
        assert_eq!(rows, (0..10).map(row).collect::<Vec<_>>());
    }

    #[test]
    fn resume_skips_committed_digests() {
        let tmp = TempDir::new("resume");
        let mut store = Store::open(tmp.path(), TAG).unwrap();
        for i in 0..5 {
            store.append(row(i)).unwrap();
        }
        store.flush().unwrap();
        drop(store);

        let mut store = Store::open(tmp.path(), TAG).unwrap();
        let pending: Vec<u64> = (0..8).filter(|&i| !store.contains(row(i).digest)).collect();
        assert_eq!(pending, vec![5, 6, 7]);
        for i in pending {
            store.append(row(i)).unwrap();
        }
        store.flush().unwrap();
        assert_eq!(store.rows().unwrap().len(), 8);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let tmp = TempDir::new("torn");
        let mut store = Store::open(tmp.path(), TAG).unwrap();
        for i in 0..4 {
            store.append(row(i)).unwrap();
        }
        store.flush().unwrap();
        store.simulate_torn_append(&[0xCB; 37]).unwrap();
        drop(store);

        let store = Store::open(tmp.path(), TAG).unwrap();
        assert_eq!(store.recovery().torn.len(), 1);
        assert_eq!(store.recovery().torn[0].dropped, 37);
        assert_eq!(store.rows_committed(), 4);
        drop(store);
        // Second open is clean: the truncation was physical.
        let store = Store::open(tmp.path(), TAG).unwrap();
        assert!(store.recovery().is_clean(), "{:?}", store.recovery());
    }

    #[test]
    fn uncommitted_valid_frames_are_adopted() {
        let tmp = TempDir::new("adopt");
        let mut store = Store::open(tmp.path(), TAG).unwrap();
        store.append(row(1)).unwrap();
        store.flush().unwrap();
        // Hand-append a valid frame without a manifest commit — the
        // state a crash between fsync and rename leaves.
        let framed = frame::frame_bytes(&frame::encode_block(&[row(2)]).unwrap());
        store.simulate_torn_append(&framed).unwrap();
        drop(store);

        let store = Store::open(tmp.path(), TAG).unwrap();
        assert_eq!(store.recovery().adopted_frames, 1);
        assert!(store.recovery().torn.is_empty());
        assert!(store.contains(row(2).digest));
        assert_eq!(store.rows_committed(), 2);
    }

    #[test]
    fn flipped_bit_is_reported_as_typed_corruption() {
        let tmp = TempDir::new("flip");
        let mut store = Store::open(tmp.path(), TAG).unwrap();
        for i in 0..6 {
            store.append(row(i)).unwrap();
            store.flush().unwrap(); // one frame per row
        }
        drop(store);

        // Flip one byte inside the third frame's payload.
        let seg = tmp.path().join("seg-00000001.css");
        let mut bytes = std::fs::read(&seg).unwrap();
        let header = frame::segment_header(TAG).len();
        let frame_len = (bytes.len() - header) / 6;
        let target = header + 2 * frame_len + frame::FRAME_HEADER + 3;
        bytes[target] ^= 0x10;
        std::fs::write(&seg, &bytes).unwrap();

        let store = Store::open(tmp.path(), TAG).unwrap();
        let report = store.recovery();
        assert_eq!(report.corrupt.len(), 1, "{report:?}");
        assert_eq!(report.corrupt[0].segment, "seg-00000001.css");
        assert_eq!(report.corrupt[0].offset as usize, header + 2 * frame_len);
        let err = report.corrupt[0].to_error();
        assert!(matches!(err, StoreError::Corrupt { offset, .. } if offset > 0));
        // The other five rows survive; the damaged one is gone until
        // the campaign reruns it.
        assert_eq!(store.rows_committed(), 5);
    }

    #[test]
    fn second_writer_is_locked_out_and_dead_owner_is_taken_over() {
        let tmp = TempDir::new("lock");
        let store = Store::open(tmp.path(), TAG).unwrap();
        match Store::open(tmp.path(), TAG) {
            Err(StoreError::Locked { owner, .. }) => {
                assert_eq!(owner, std::process::id().to_string());
            }
            other => panic!("expected Locked, got {:?}", other.err()),
        }
        drop(store);
        // Lock released on drop.
        let store = Store::open(tmp.path(), TAG).unwrap();
        drop(store);
        // A lock left by a dead pid is taken over immediately.
        std::fs::write(tmp.path().join(WRITER_LOCK), "999999999\n").unwrap();
        let store = Store::open(tmp.path(), TAG);
        assert!(store.is_ok(), "{:?}", store.err());
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn live_owner_lock_is_never_stolen_by_the_timeout() {
        let tmp = TempDir::new("livelock");
        // pid 1 is always alive; a zero timeout would steal this lock
        // if the age fallback ever ran against a checkable live owner.
        std::fs::write(tmp.path().join(WRITER_LOCK), "1\n").unwrap();
        let options =
            Options { lock_timeout: std::time::Duration::from_secs(0), ..Options::default() };
        match Store::open_with(tmp.path(), TAG, options) {
            Err(StoreError::Locked { owner, .. }) => assert_eq!(owner, "1"),
            Err(other) => panic!("expected Locked, got {other:?}"),
            Ok(_) => panic!("lock stolen from a live owner"),
        }
    }

    #[test]
    fn flush_heartbeats_the_writer_lock() {
        let tmp = TempDir::new("heartbeat");
        let mut store = Store::open(tmp.path(), TAG).unwrap();
        let lock = tmp.path().join(WRITER_LOCK);
        // Age the lock artificially, then check a flush refreshes it —
        // the property the non-Linux timeout fallback depends on.
        let past = std::time::SystemTime::now() - std::time::Duration::from_secs(3600);
        let file = std::fs::File::options().write(true).open(&lock).unwrap();
        file.set_modified(past).unwrap();
        drop(file);
        let aged = std::fs::metadata(&lock).unwrap().modified().unwrap();
        store.append(row(1)).unwrap();
        store.flush().unwrap();
        let refreshed = std::fs::metadata(&lock).unwrap().modified().unwrap();
        assert!(refreshed > aged, "flush must refresh the lock mtime");
    }

    #[test]
    fn failed_manifest_commit_keeps_rows_buffered_for_retry() {
        let tmp = TempDir::new("manifest-enospc");
        let mut store = Store::open(tmp.path(), TAG).unwrap();
        for i in 0..3 {
            store.append(row(i)).unwrap();
        }
        store.flush().unwrap();
        for i in 3..6 {
            store.append(row(i)).unwrap();
        }
        // Budget covers the frame bytes exactly, so the data write
        // lands and the manifest commit is what hits the injected
        // ENOSPC.
        let framed: u64 = frame::encode_blocks(&(3..6).map(row).collect::<Vec<_>>())
            .unwrap()
            .iter()
            .map(|p| (frame::FRAME_HEADER + p.len()) as u64)
            .sum();
        store.set_write_budget(Some(framed));
        let err = store.flush().unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
        // Nothing advanced in memory: the rows stay buffered and a
        // retry re-commits them.
        assert_eq!(store.rows_committed(), 3);
        assert!(store.contains(row(4).digest), "buffered row lost after failed commit");
        store.set_write_budget(None);
        store.flush().unwrap();
        assert_eq!(store.rows_committed(), 6);
        drop(store);
        let store = Store::open(tmp.path(), TAG).unwrap();
        assert!(store.recovery().is_clean(), "{:?}", store.recovery());
        assert_eq!(store.rows_committed(), 6);
        assert_eq!(store.rows().unwrap().len(), 6);
    }

    #[test]
    fn engine_tag_mismatch_is_typed() {
        let tmp = TempDir::new("tag");
        drop(Store::open(tmp.path(), TAG).unwrap());
        match Store::open(tmp.path(), "other-engine") {
            Err(StoreError::EngineMismatch { found, expected }) => {
                assert_eq!(found, TAG);
                assert_eq!(expected, "other-engine");
            }
            other => panic!("expected EngineMismatch, got {:?}", other.err()),
        }
    }

    #[test]
    fn segments_roll_and_scans_span_them() {
        let tmp = TempDir::new("roll");
        let options = Options { roll_bytes: 256, flush_rows: 2, ..Options::default() };
        let mut store = Store::open_with(tmp.path(), TAG, options).unwrap();
        for i in 0..20 {
            store.append(row(i)).unwrap();
        }
        store.flush().unwrap();
        assert!(store.segment_count() > 1, "only {} segments", store.segment_count());
        assert_eq!(store.rows().unwrap().len(), 20);
        drop(store);
        let store = Store::open(tmp.path(), TAG).unwrap();
        assert_eq!(store.rows_committed(), 20);
    }

    #[test]
    fn write_budget_injects_torn_enospc_and_recovery_survives() {
        let tmp = TempDir::new("enospc");
        let mut store = Store::open(tmp.path(), TAG).unwrap();
        for i in 0..4 {
            store.append(row(i)).unwrap();
        }
        store.flush().unwrap();
        store.set_write_budget(Some(10));
        for i in 4..8 {
            store.append(row(i)).unwrap();
        }
        let err = store.flush().unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
        store.set_write_budget(None);
        // In-process retry heals the torn bytes and lands the rows.
        store.flush().unwrap();
        assert_eq!(store.rows_committed(), 8);
        drop(store);
        let store = Store::open(tmp.path(), TAG).unwrap();
        assert!(store.recovery().is_clean(), "{:?}", store.recovery());
        assert_eq!(store.rows_committed(), 8);
    }

    #[test]
    fn fsck_repairs_torn_flip_and_missing() {
        let tmp = TempDir::new("fsck");
        let options = Options { roll_bytes: 200, flush_rows: 1, ..Options::default() };
        let mut store = Store::open_with(tmp.path(), TAG, options).unwrap();
        for i in 0..12 {
            store.append(row(i)).unwrap();
        }
        store.flush().unwrap();
        assert!(store.segment_count() >= 3);
        let second = "seg-00000002.css".to_string();
        drop(store);

        // Inject all three corruption classes.
        let first = tmp.path().join("seg-00000001.css");
        let mut bytes = std::fs::read(&first).unwrap();
        let at = frame::segment_header(TAG).len() + frame::FRAME_HEADER + 1;
        bytes[at] ^= 0x01; // flipped byte
        bytes.extend_from_slice(&[0xAA; 21]); // torn tail
        std::fs::write(&first, &bytes).unwrap();
        std::fs::remove_file(tmp.path().join(&second)).unwrap(); // missing

        let report = fsck::verify(tmp.path()).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.corrupt.len(), 1);
        assert_eq!(report.torn.len(), 1);
        assert_eq!(report.missing, vec![second]);

        let repaired = fsck::repair(tmp.path()).unwrap();
        assert!(repaired.is_clean(), "{:?}", repaired.lines());
        assert!(!repaired.actions.is_empty());
        assert!(tmp.path().join(QUARANTINE).is_dir());

        // The repaired store opens clean and the campaign can rerun the
        // lost scenarios.
        let store = Store::open(tmp.path(), TAG).unwrap();
        assert!(store.recovery().is_clean(), "{:?}", store.recovery());
        assert!(store.rows_committed() < 12);
    }

    #[test]
    fn compact_folds_duplicates_and_merges_segments() {
        let tmp = TempDir::new("compact");
        let options = Options { roll_bytes: 200, flush_rows: 1, ..Options::default() };
        let mut store = Store::open_with(tmp.path(), TAG, options).unwrap();
        for i in 0..10 {
            store.append(row(i)).unwrap();
        }
        store.flush().unwrap();
        let before = store.segment_count();
        assert!(before > 1);
        drop(store);

        let report = fsck::compact(tmp.path()).unwrap();
        assert_eq!(report.segments_before, before);
        assert_eq!(report.segments_after, 1);
        assert_eq!(report.rows_after, 10);
        assert!(report.bytes_after <= report.bytes_before);

        let store = Store::open(tmp.path(), TAG).unwrap();
        assert!(store.recovery().is_clean());
        assert_eq!(store.rows_committed(), 10);
        assert_eq!(store.segment_count(), 1);
    }

    #[test]
    fn missing_manifest_with_segments_is_typed_and_repairable() {
        let tmp = TempDir::new("manifest");
        let mut store = Store::open(tmp.path(), TAG).unwrap();
        for i in 0..3 {
            store.append(row(i)).unwrap();
        }
        store.flush().unwrap();
        drop(store);
        std::fs::remove_file(tmp.path().join(MANIFEST)).unwrap();

        match Store::open(tmp.path(), TAG) {
            Err(StoreError::Manifest { reason, .. }) => {
                assert!(reason.contains("store_fsck"), "{reason}");
            }
            other => panic!("expected Manifest error, got {:?}", other.err()),
        }
        let report = fsck::repair(tmp.path()).unwrap();
        assert!(report.is_clean(), "{:?}", report.lines());
        let store = Store::open(tmp.path(), TAG).unwrap();
        assert_eq!(store.rows_committed(), 3);
    }

    #[test]
    fn reader_mode_never_mutates() {
        let tmp = TempDir::new("reader");
        let mut store = Store::open(tmp.path(), TAG).unwrap();
        store.append(row(1)).unwrap();
        store.flush().unwrap();
        store.simulate_torn_append(&[0x11; 9]).unwrap();
        drop(store);

        let seg = tmp.path().join("seg-00000001.css");
        let len_before = std::fs::metadata(&seg).unwrap().len();
        let reader = Store::open_reader(tmp.path()).unwrap();
        assert_eq!(reader.recovery().torn.len(), 1);
        assert_eq!(std::fs::metadata(&seg).unwrap().len(), len_before);
        let mut reader = reader;
        assert!(matches!(reader.append(row(2)), Err(StoreError::Unwritable { .. })));
        assert!(!tmp.path().join(WRITER_LOCK).exists());
    }
}
