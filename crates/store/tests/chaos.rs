//! Chaos rig for the campaign store: every way a campaign process can
//! die or a disk can lie — truncation at any byte, ENOSPC at any write,
//! unwritable roots, leftover manifest temp files, writer-lock
//! contention — must come back as a typed error or a clean recovery,
//! never a panic and never a lost committed row. Every test body runs
//! under a watchdog thread; a wedged store fails the test instead of
//! wedging the suite.

use corescope_store::{frame, fsck, Options, Row, Store, StoreError, MANIFEST};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::time::Duration;

const TAG: &str = "corescope-engine-chaos";

/// Runs `body` on its own thread and panics if it does not finish within
/// `secs` — the no-hang guarantee, enforced mechanically.
fn watchdog<T: Send + 'static>(secs: u64, body: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(body());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(value) => {
            let _ = worker.join();
            value
        }
        Err(_) => panic!("watchdog: test body still running after {secs}s — store hung"),
    }
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "corescope-store-chaos-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic pseudo-random row `j` of stream `seed` (splitmix-style
/// mixing; the chaos suite cannot use a real RNG and stay reproducible).
fn mixed_row(seed: u64, j: u64) -> Row {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(j);
    let mut next = || {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let systems = ["dmz", "longs", "shc"];
    let workloads = ["bsp", "stream", "alltoall", "dgemm"];
    Row {
        digest: (u128::from(next()) << 64) | u128::from(next()),
        system: systems[(next() % 3) as usize].to_string(),
        fidelity: if next() % 2 == 0 { "quick" } else { "full" }.to_string(),
        placement: "scatter-local".to_string(),
        mpi: "mpich2".to_string(),
        lock: "sysv".to_string(),
        workload: workloads[(next() % 4) as usize].to_string(),
        nranks: (next() % 64 + 1) as u32,
        makespan: (next() % 1_000_000) as f64 * 1.0e-3,
        events: next() % 1_000_000,
        faults_applied: next() % 7,
        checkpoints_taken: next() % 5,
        recoveries: next() % 3,
        retries: next() % 9,
    }
}

/// Frame end offsets of `bytes` (a golden segment), walked with the
/// public codec — the oracle for how many rows survive a given cut.
fn frame_ends(bytes: &[u8]) -> (usize, Vec<(usize, usize)>) {
    let (_, data_start) = frame::parse_segment_header(bytes).expect("golden header");
    let mut ends = Vec::new();
    let mut at = data_start;
    while at < bytes.len() {
        match frame::parse_frame(bytes, at) {
            frame::Parsed::Frame { payload, end } => {
                let rows = frame::decode_block(&payload).expect("golden frame").len();
                ends.push((end, rows));
                at = end;
            }
            other => panic!("golden segment has a non-frame at {at}: {other:?}"),
        }
    }
    (data_start, ends)
}

/// Reopens `dir` in writer mode until recovery reports clean. Damage
/// converges in at most three opens (shrink the manifest, then truncate
/// the now-uncommitted tail); anything left after that — a destroyed
/// segment header — needs one `fsck::repair` pass, never more.
fn converge(dir: &Path, context: &str) -> Store {
    for _ in 0..3 {
        let store =
            Store::open(dir, TAG).unwrap_or_else(|e| panic!("{context}: reopen failed: {e}"));
        if store.recovery().is_clean() {
            return store;
        }
    }
    let report = fsck::repair(dir).unwrap_or_else(|e| panic!("{context}: repair failed: {e}"));
    assert!(report.is_clean(), "{context}: unrepairable: {:?}", report.lines());
    let store = Store::open(dir, TAG).unwrap();
    assert!(
        store.recovery().is_clean(),
        "{context}: dirty even after repair ({})",
        store.recovery().summary()
    );
    store
}

/// The satellite guarantee, proven exhaustively: a segment truncated at
/// EVERY possible byte offset reopens without panicking, recovers
/// exactly the rows whose frames lie fully below the cut, and converges
/// back to a clean store the campaign can rerun into.
#[test]
fn truncation_at_every_byte_offset_recovers_the_committed_prefix() {
    watchdog(120, || {
        // Golden store: three flushed frames of three rows each.
        let golden = TempDir::new("trunc-golden");
        let rows: Vec<Row> = (0..9).map(|j| mixed_row(11, j)).collect();
        {
            let mut store = Store::open(golden.path(), TAG).unwrap();
            for chunk in rows.chunks(3) {
                for row in chunk {
                    store.append(row.clone()).unwrap();
                }
                store.flush().unwrap();
            }
        }
        let seg_name = "seg-00000001.css";
        let seg_bytes = std::fs::read(golden.path().join(seg_name)).unwrap();
        let manifest = std::fs::read(golden.path().join(MANIFEST)).unwrap();
        let (data_start, ends) = frame_ends(&seg_bytes);
        assert_eq!(ends.len(), 3, "golden store should hold three frames");

        let scratch = TempDir::new("trunc-scratch");
        for cut in 0..=seg_bytes.len() {
            let dir = scratch.path().join(format!("cut-{cut}"));
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join(seg_name), &seg_bytes[..cut]).unwrap();
            std::fs::write(dir.join(MANIFEST), &manifest).unwrap();

            // Rows that must survive: frames wholly below the cut. A cut
            // inside the segment header poisons the whole segment.
            let expected: usize = if cut < data_start {
                0
            } else {
                ends.iter().filter(|(end, _)| *end <= cut).map(|(_, n)| n).sum()
            };

            let store =
                Store::open(&dir, TAG).unwrap_or_else(|e| panic!("cut at {cut}: open failed: {e}"));
            assert_eq!(
                store.rows_committed() as usize,
                expected,
                "cut at {cut}: wrong committed prefix ({})",
                store.recovery().summary()
            );
            let recovered = store.rows().unwrap();
            assert_eq!(recovered.len(), expected, "cut at {cut}");
            for row in &recovered {
                assert!(rows.contains(row), "cut at {cut}: invented row {row:?}");
            }
            if cut < seg_bytes.len() {
                // The loss must be observable: either the report flags
                // damage, or rows are visibly missing (an exact frame-
                // boundary cut scans clean but short).
                assert!(
                    !store.recovery().is_clean() || expected < rows.len(),
                    "cut at {cut}: lost bytes went unreported"
                );
            }
            drop(store);

            // Converge back to a clean store and rerun the lost rows —
            // resume is literally rerun.
            let mut store = converge(&dir, &format!("cut at {cut}"));
            for row in &rows {
                if !store.contains(row.digest) {
                    store.append(row.clone()).unwrap();
                }
            }
            store.flush().unwrap();
            assert_eq!(store.rows().unwrap().len(), rows.len(), "cut at {cut}: rerun incomplete");
            drop(store);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    });
}

/// ENOSPC injected after every possible byte budget: the flush fails
/// with a typed error, and whatever the failure point — mid-frame,
/// before the manifest temp file, between fsync and rename — a reopen
/// converges with no acknowledged row lost and no panic.
#[test]
fn enospc_at_every_write_budget_converges_on_reopen() {
    watchdog(120, || {
        // Size the sweep off a dry run: the second flush writes one
        // frame plus one manifest rewrite; pad to cover both.
        let dry = TempDir::new("enospc-dry");
        let frame_len = {
            let mut store = Store::open(dry.path(), TAG).unwrap();
            for j in 0..3 {
                store.append(mixed_row(23, j)).unwrap();
            }
            store.flush().unwrap();
            std::fs::metadata(dry.path().join("seg-00000001.css")).unwrap().len() as usize
        };
        let scratch = TempDir::new("enospc-scratch");
        for budget in 0..frame_len + 200 {
            let dir = scratch.path().join(format!("budget-{budget}"));
            let mut store = Store::open(&dir, TAG).unwrap();
            for j in 0..3 {
                store.append(mixed_row(29, j)).unwrap();
            }
            store.flush().unwrap();
            store.set_write_budget(Some(budget as u64));
            for j in 3..6 {
                store.append(mixed_row(29, j)).unwrap();
            }
            let failed = match store.flush() {
                Ok(()) => false,
                Err(StoreError::Io { .. }) => true,
                Err(other) => panic!("budget {budget}: expected Io, got {other}"),
            };
            store.set_write_budget(None);
            // In-process retry: a no-op when the frame already landed
            // (only the manifest commit failed), a real rewrite when the
            // frame itself tore. Either way it must not error.
            store.flush().unwrap_or_else(|e| panic!("budget {budget}: retry failed: {e}"));
            drop(store);

            let store = Store::open(&dir, TAG)
                .unwrap_or_else(|e| panic!("budget {budget}: reopen failed: {e}"));
            for j in 0..6 {
                assert!(
                    store.contains(mixed_row(29, j).digest),
                    "budget {budget} (flush {}): lost row {j} ({})",
                    if failed { "failed" } else { "succeeded" },
                    store.recovery().summary()
                );
            }
            drop(store);
            // Convergence: one more open is fully clean.
            let store = Store::open(&dir, TAG).unwrap();
            assert!(store.recovery().is_clean(), "budget {budget}: {}", store.recovery().summary());
            drop(store);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    });
}

/// An unwritable root is a typed `Unwritable`, a manifest that is
/// secretly a directory is a typed error too — neither panics.
#[test]
fn unwritable_roots_and_blocked_manifests_are_typed() {
    watchdog(30, || {
        let tmp = TempDir::new("unwritable");
        let blocker = tmp.path().join("not-a-dir");
        std::fs::write(&blocker, b"i am a file").unwrap();
        match Store::open(&blocker.join("store"), TAG) {
            Err(StoreError::Unwritable { dir, .. }) => {
                assert_eq!(dir, blocker.join("store"));
            }
            other => panic!("expected Unwritable, got {:?}", other.err().map(|e| e.to_string())),
        }

        let dir = tmp.path().join("manifest-blocked");
        drop(Store::open(&dir, TAG).unwrap());
        std::fs::remove_file(dir.join(MANIFEST)).unwrap();
        std::fs::create_dir(dir.join(MANIFEST)).unwrap();
        assert!(
            Store::open(&dir, TAG).is_err(),
            "a directory posing as the manifest must not open"
        );
        assert!(Store::open_reader(&dir).is_err());
    });
}

/// A crash between the manifest temp-file write and its rename leaves
/// `MANIFEST.tmp` garbage behind; the next open must ignore it and the
/// next flush must overwrite it.
#[test]
fn leftover_manifest_temp_file_is_harmless() {
    watchdog(30, || {
        let tmp = TempDir::new("manifest-tmp");
        {
            let mut store = Store::open(tmp.path(), TAG).unwrap();
            store.append(mixed_row(31, 0)).unwrap();
            store.flush().unwrap();
        }
        std::fs::write(tmp.path().join("MANIFEST.tmp"), b"\xFF\xFE torn manifest rewrite").unwrap();

        let mut store = Store::open(tmp.path(), TAG).unwrap();
        assert!(store.recovery().is_clean(), "{}", store.recovery().summary());
        assert_eq!(store.rows_committed(), 1);
        store.append(mixed_row(31, 1)).unwrap();
        store.flush().unwrap();
        drop(store);

        let store = Store::open(tmp.path(), TAG).unwrap();
        assert_eq!(store.rows_committed(), 2);
        assert!(store.recovery().is_clean());
    });
}

/// Eight writers hammer one store. The lock admits exactly one at a
/// time (every rejection is a typed `Locked` with an owner), everybody
/// eventually gets in, and the final store holds every row, clean.
#[test]
fn writer_lock_contention_admits_one_at_a_time() {
    watchdog(60, || {
        let tmp = TempDir::new("contention");
        let dir = tmp.path().to_path_buf();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(8));
        let workers: Vec<_> = (0..8u64)
            .map(|i| {
                let dir = dir.clone();
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut rejections = 0u64;
                    barrier.wait();
                    loop {
                        match Store::open(&dir, TAG) {
                            Ok(mut store) => {
                                // Hold the lock long enough that the
                                // barrier-released pack truly collides.
                                std::thread::sleep(Duration::from_millis(3));
                                store.append(mixed_row(41, i)).unwrap();
                                store.flush().unwrap();
                                return rejections;
                            }
                            Err(StoreError::Locked { owner, .. }) => {
                                // The owner is this process — or "" /
                                // "unknown" when the read raced the
                                // holder's pid write or lock release.
                                assert!(
                                    owner == std::process::id().to_string()
                                        || owner.is_empty()
                                        || owner == "unknown",
                                    "unexpected lock owner {owner:?}"
                                );
                                rejections += 1;
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(other) => panic!("writer {i}: unexpected error {other}"),
                        }
                    }
                })
            })
            .collect();
        let rejections: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        // With eight contenders someone must have been turned away at
        // least once, or the lock admitted two writers concurrently.
        assert!(rejections > 0, "no contention observed — lock suspect");

        let store = Store::open(&dir, TAG).unwrap();
        assert!(store.recovery().is_clean(), "{}", store.recovery().summary());
        assert_eq!(store.rows_committed(), 8);
        for i in 0..8 {
            assert!(store.contains(mixed_row(41, i).digest));
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any batch of rows round-trips through append/flush/reopen with
    /// arbitrary flush boundaries, and duplicate digests stay deduped.
    #[test]
    fn prop_rows_round_trip_across_flush_boundaries(
        seed in 0u64..10_000,
        n in 1usize..24,
        flush_every in 1usize..8,
    ) {
        let tmp = TempDir::new(&format!("prop-rt-{seed}-{n}-{flush_every}"));
        let rows: Vec<Row> = (0..n as u64).map(|j| mixed_row(seed, j)).collect();
        let mut store = Store::open(tmp.path(), TAG).unwrap();
        for (i, row) in rows.iter().enumerate() {
            prop_assert!(store.append(row.clone()).unwrap());
            prop_assert!(!store.append(row.clone()).unwrap(), "duplicate accepted");
            if (i + 1) % flush_every == 0 {
                store.flush().unwrap();
            }
        }
        store.flush().unwrap();
        drop(store);

        let store = Store::open(tmp.path(), TAG).unwrap();
        prop_assert!(store.recovery().is_clean());
        let mut got = store.rows().unwrap();
        let mut want = rows.clone();
        got.sort_by_key(|r| r.digest);
        want.sort_by_key(|r| r.digest);
        prop_assert_eq!(got, want);
    }

    /// A store truncated at a sampled offset — including inside the
    /// header and across segment boundaries — opens without panicking,
    /// never invents rows, and the second open is clean.
    #[test]
    fn prop_truncated_stores_recover_a_true_prefix(
        seed in 0u64..10_000,
        n in 2usize..20,
        cut_permille in 0u32..1000,
    ) {
        let tmp = TempDir::new(&format!("prop-cut-{seed}-{n}-{cut_permille}"));
        let rows: Vec<Row> = (0..n as u64).map(|j| mixed_row(seed, j)).collect();
        // Tiny roll threshold so cuts land in every segment position.
        let options = Options { roll_bytes: 160, flush_rows: 2, ..Options::default() };
        let mut store = Store::open_with(tmp.path(), TAG, options).unwrap();
        for row in &rows {
            store.append(row.clone()).unwrap();
        }
        store.flush().unwrap();
        let victim = tmp.path().join(format!("seg-{:08}.css", store.segment_count()));
        drop(store);

        let bytes = std::fs::read(&victim).unwrap();
        let cut = bytes.len() * cut_permille as usize / 1000;
        std::fs::write(&victim, &bytes[..cut]).unwrap();

        let store = Store::open(tmp.path(), TAG).unwrap();
        let digests: std::collections::HashSet<u128> = rows.iter().map(|r| r.digest).collect();
        prop_assert!(store.rows_committed() as usize <= n);
        for row in store.rows().unwrap() {
            prop_assert!(digests.contains(&row.digest), "invented digest {:x}", row.digest);
        }
        drop(store);
        let store = converge(tmp.path(), &format!("seed {seed} cut {cut}"));
        prop_assert!(store.rows_committed() as usize <= n);
    }

    /// Frame codec fuzz: a frame cut anywhere is Truncated, a frame with
    /// any single byte flipped never parses as a valid frame.
    #[test]
    fn prop_frames_never_lie(seed in 0u64..10_000, n in 0usize..9) {
        let rows: Vec<Row> = (0..n as u64).map(|j| mixed_row(seed, j)).collect();
        let framed = frame::frame_bytes(&frame::encode_block(&rows).unwrap());
        let cut = (seed as usize * 31) % framed.len();
        prop_assert!(matches!(frame::parse_frame(&framed[..cut], 0), frame::Parsed::Truncated));
        let mut bad = framed.clone();
        let at = (seed as usize * 17) % framed.len();
        bad[at] ^= 1 << (seed % 8);
        if let frame::Parsed::Frame { payload, .. } = frame::parse_frame(&bad, 0) {
            // The flip landed in the payload and the CRC still matched —
            // impossible for a single-bit flip under CRC-32.
            prop_assert!(false, "flipped bit at {at} yielded a frame ({} bytes)", payload.len());
        }
    }
}
