//! Task-to-core mapping strategies.
//!
//! The paper runs its Longs experiments "so as to minimize the effect of
//! the HT ladder": four-task runs use the four *central* sockets (2–5 in
//! our numbering). The bound mappings here therefore order sockets by
//! centrality (mean hop distance to all sockets), while the unbound OS
//! scatter uses plain socket-id order — the Linux 2.6 load balancer of the
//! era spread runnable tasks across sockets but knew nothing about ladder
//! centrality.

use corescope_machine::{CoreId, Error, Machine, Result, SocketId};

/// Sockets ordered most-central first (ties broken by socket id).
///
/// On the Longs ladder this puts the interior sockets 2, 3, 4, 5 ahead of
/// the corner sockets 0, 1, 6, 7; on two-socket machines it is just
/// `[0, 1]`.
pub fn central_socket_order(machine: &Machine) -> Vec<SocketId> {
    let mut order: Vec<SocketId> = machine.sockets().collect();
    order.sort_by(|&a, &b| {
        machine
            .topology()
            .mean_hops_from(a)
            .total_cmp(&machine.topology().mean_hops_from(b))
            .then(a.cmp(&b))
    });
    order
}

fn check_capacity(machine: &Machine, nranks: usize, limit: usize) -> Result<()> {
    if nranks == 0 {
        return Err(Error::InvalidSpec("zero ranks requested".into()));
    }
    if nranks > limit {
        return Err(Error::InvalidSpec(format!(
            "{nranks} ranks exceed capacity {limit} on {}",
            machine.spec().name
        )));
    }
    Ok(())
}

/// One MPI task per socket: rank *k* runs on the first core of the *k*-th
/// most-central socket. Errors if `nranks` exceeds the socket count.
///
/// # Errors
///
/// Returns [`Error::InvalidSpec`] for zero ranks or more ranks than
/// sockets, and [`Error::InvalidPlacement`] for a machine whose sockets
/// hold no cores.
pub fn one_per_socket(machine: &Machine, nranks: usize) -> Result<Vec<CoreId>> {
    check_capacity(machine, nranks, machine.num_compute_sockets())?;
    let order: Vec<SocketId> = central_socket_order(machine)
        .into_iter()
        .filter(|s| s.index() < machine.num_compute_sockets())
        .collect();
    order[..nranks]
        .iter()
        .map(|&s| {
            machine
                .cores_of(s)
                .next()
                .ok_or_else(|| Error::InvalidPlacement(format!("socket {s} has no cores")))
        })
        .collect()
}

/// Two MPI tasks per socket (packed): both cores of each central socket
/// fill before the next socket is used.
///
/// # Errors
///
/// Returns [`Error::InvalidSpec`] for zero ranks or more ranks than cores.
pub fn packed(machine: &Machine, nranks: usize) -> Result<Vec<CoreId>> {
    check_capacity(machine, nranks, machine.num_cores())?;
    let order = central_socket_order(machine);
    let mut cores = Vec::with_capacity(nranks);
    'outer: for &s in &order {
        for core in machine.cores_of(s) {
            cores.push(core);
            if cores.len() == nranks {
                break 'outer;
            }
        }
    }
    Ok(cores)
}

/// The unbound (no `numactl`) case: the OS load balancer spreads tasks
/// round-robin over sockets in id order, then fills second cores.
///
/// # Errors
///
/// Returns [`Error::InvalidSpec`] for zero ranks or more ranks than
/// cores, and [`Error::InvalidPlacement`] if a socket is missing a core
/// the pass expects.
pub fn os_scatter(machine: &Machine, nranks: usize) -> Result<Vec<CoreId>> {
    check_capacity(machine, nranks, machine.num_cores())?;
    let mut cores = Vec::with_capacity(nranks);
    let cps = machine.spec().cores_per_socket;
    'outer: for pass in 0..cps {
        for s in machine.compute_sockets() {
            let core = machine.cores_of(s).nth(pass).ok_or_else(|| {
                Error::InvalidPlacement(format!("socket {s} has no core for pass {pass}"))
            })?;
            cores.push(core);
            if cores.len() == nranks {
                break 'outer;
            }
        }
    }
    Ok(cores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corescope_machine::systems;

    fn longs() -> Machine {
        Machine::new(systems::longs())
    }

    fn dmz() -> Machine {
        Machine::new(systems::dmz())
    }

    #[test]
    fn central_order_prefers_interior_sockets() {
        let m = longs();
        let order = central_socket_order(&m);
        let first_four: Vec<usize> = order[..4].iter().map(|s| s.index()).collect();
        assert_eq!(first_four, vec![2, 3, 4, 5], "paper used nodes 2-5 for 4-task runs");
    }

    #[test]
    fn one_per_socket_uses_distinct_sockets() {
        let m = longs();
        let cores = one_per_socket(&m, 8).unwrap();
        let mut sockets: Vec<usize> = cores.iter().map(|&c| m.socket_of(c).index()).collect();
        sockets.sort_unstable();
        assert_eq!(sockets, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn one_per_socket_rejects_too_many() {
        let m = longs();
        assert!(one_per_socket(&m, 9).is_err());
        assert!(one_per_socket(&m, 0).is_err());
    }

    #[test]
    fn packed_fills_sockets_in_pairs() {
        let m = longs();
        let cores = packed(&m, 4).unwrap();
        // Two central sockets, both cores each.
        let sockets: Vec<usize> = cores.iter().map(|&c| m.socket_of(c).index()).collect();
        assert_eq!(sockets, vec![2, 2, 3, 3]);
    }

    #[test]
    fn packed_can_fill_whole_machine() {
        let m = longs();
        let cores = packed(&m, 16).unwrap();
        let mut idx: Vec<usize> = cores.iter().map(|c| c.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn os_scatter_spreads_before_packing() {
        let m = dmz();
        let cores = os_scatter(&m, 3).unwrap();
        let sockets: Vec<usize> = cores.iter().map(|&c| m.socket_of(c).index()).collect();
        assert_eq!(sockets, vec![0, 1, 0], "spread across sockets before second cores");
    }

    #[test]
    fn mappings_skip_memory_only_nodes() {
        // A DMZ with its second socket converted to a memory-only node:
        // both mappings must keep every rank on socket 0's cores.
        let mut spec = systems::dmz();
        spec.memory_only_nodes = 1;
        let m = Machine::new(spec);
        assert_eq!(one_per_socket(&m, 1).unwrap(), vec![CoreId::new(0)]);
        assert!(one_per_socket(&m, 2).is_err(), "only one compute socket");
        assert_eq!(os_scatter(&m, 2).unwrap(), vec![CoreId::new(0), CoreId::new(1)]);
        assert_eq!(packed(&m, 2).unwrap().len(), 2);
        assert!(os_scatter(&m, 3).is_err());
    }

    #[test]
    fn mappings_never_duplicate_cores() {
        let m = longs();
        for n in 1..=16 {
            for cores in [packed(&m, n).unwrap(), os_scatter(&m, n).unwrap()] {
                let mut seen = cores.clone();
                seen.sort_unstable();
                seen.dedup();
                assert_eq!(seen.len(), cores.len(), "duplicates at n={n}");
            }
        }
    }
}
