//! The six processor/memory placement schemes of the paper's Table 5.

use crate::{mapping, policy};
use corescope_machine::engine::RankPlacement;
use corescope_machine::{Machine, NumaNodeId, Result};
use std::fmt;

/// A `numactl` task/memory placement scheme (Table 5 of the paper).
///
/// | Scheme | Tasks | Memory |
/// |---|---|---|
/// | `Default` | OS scatter | first-touch (±misplacement) |
/// | `OneMpiLocalAlloc` | one per socket | local |
/// | `OneMpiMembind` | one per socket | packed onto listed nodes |
/// | `TwoMpiLocalAlloc` | two per socket | local |
/// | `TwoMpiMembind` | two per socket | packed onto listed nodes |
/// | `Interleave` | OS scatter | round-robin over all nodes |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No `numactl` at all.
    Default,
    /// One MPI task per socket + `--localalloc`.
    OneMpiLocalAlloc,
    /// One MPI task per socket + `--membind` (packed, see
    /// [`policy::membind_packed`]).
    OneMpiMembind,
    /// Two MPI tasks per socket + `--localalloc`.
    TwoMpiLocalAlloc,
    /// Two MPI tasks per socket + `--membind` (packed).
    TwoMpiMembind,
    /// `--interleave=all`, tasks unbound.
    Interleave,
}

impl Scheme {
    /// All six schemes in the paper's column order.
    pub fn all() -> [Scheme; 6] {
        [
            Scheme::Default,
            Scheme::OneMpiLocalAlloc,
            Scheme::OneMpiMembind,
            Scheme::TwoMpiLocalAlloc,
            Scheme::TwoMpiMembind,
            Scheme::Interleave,
        ]
    }

    /// The paper's column heading for this scheme.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Default => "Default",
            Scheme::OneMpiLocalAlloc => "One MPI + Local Alloc",
            Scheme::OneMpiMembind => "One MPI + Membind",
            Scheme::TwoMpiLocalAlloc => "Two MPI + Local Alloc",
            Scheme::TwoMpiMembind => "Two MPI + Membind",
            Scheme::Interleave => "Interleave",
        }
    }

    /// Short identifier for CSV columns.
    pub fn key(self) -> &'static str {
        match self {
            Scheme::Default => "default",
            Scheme::OneMpiLocalAlloc => "one_localalloc",
            Scheme::OneMpiMembind => "one_membind",
            Scheme::TwoMpiLocalAlloc => "two_localalloc",
            Scheme::TwoMpiMembind => "two_membind",
            Scheme::Interleave => "interleave",
        }
    }

    /// Whether the scheme binds one task per socket (and therefore cannot
    /// run more ranks than sockets — the paper's "—" table cells).
    pub fn is_one_per_socket(self) -> bool {
        matches!(self, Scheme::OneMpiLocalAlloc | Scheme::OneMpiMembind)
    }

    /// Resolves the scheme to concrete rank placements on a machine.
    ///
    /// # Errors
    ///
    /// Returns [`corescope_machine::Error::InvalidSpec`] when the scheme
    /// cannot host `nranks` ranks (e.g. one-task-per-socket schemes with
    /// more ranks than sockets — the paper's dashed-out cells).
    pub fn resolve(self, machine: &Machine, nranks: usize) -> Result<Vec<RankPlacement>> {
        self.resolve_with(machine, nranks, policy::DEFAULT_MISPLACEMENT)
    }

    /// [`Scheme::resolve`] with an explicit first-touch misplacement
    /// fraction. Only [`Scheme::Default`] uses the fraction; every other
    /// scheme pins memory explicitly and ignores it.
    ///
    /// # Errors
    ///
    /// Same as [`Scheme::resolve`].
    pub fn resolve_with(
        self,
        machine: &Machine,
        nranks: usize,
        misplacement: f64,
    ) -> Result<Vec<RankPlacement>> {
        let cores = match self {
            Scheme::Default | Scheme::Interleave => mapping::os_scatter(machine, nranks)?,
            Scheme::OneMpiLocalAlloc | Scheme::OneMpiMembind => {
                mapping::one_per_socket(machine, nranks)?
            }
            Scheme::TwoMpiLocalAlloc | Scheme::TwoMpiMembind => mapping::packed(machine, nranks)?,
        };

        let mut placements = Vec::with_capacity(nranks);
        match self {
            Scheme::Default => {
                for &core in &cores {
                    let layout = policy::default_first_touch(machine, core, misplacement)?;
                    placements.push(RankPlacement::new(core, layout));
                }
            }
            Scheme::Interleave => {
                let layout = policy::interleave_all(machine)?;
                for &core in &cores {
                    placements.push(RankPlacement::new(core, layout.clone()));
                }
            }
            Scheme::OneMpiLocalAlloc | Scheme::TwoMpiLocalAlloc => {
                for &core in &cores {
                    placements.push(RankPlacement::new(core, policy::local(machine, core)));
                }
            }
            Scheme::OneMpiMembind | Scheme::TwoMpiMembind => {
                // Node list in the same centrality order the tasks use.
                let node_order: Vec<NumaNodeId> = mapping::central_socket_order(machine)
                    .into_iter()
                    .map(|s| machine.node_of_socket(s))
                    .collect();
                let layout = policy::membind_packed(&node_order, nranks)?;
                for &core in &cores {
                    placements.push(RankPlacement::new(core, layout.clone()));
                }
            }
        }
        Ok(placements)
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corescope_machine::systems;

    fn longs() -> Machine {
        Machine::new(systems::longs())
    }

    #[test]
    fn all_has_six_distinct_schemes() {
        let all = Scheme::all();
        assert_eq!(all.len(), 6);
        let mut keys: Vec<_> = all.iter().map(|s| s.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 6);
    }

    #[test]
    fn one_per_socket_caps_at_socket_count() {
        let m = longs();
        assert!(Scheme::OneMpiLocalAlloc.resolve(&m, 8).is_ok());
        assert!(Scheme::OneMpiLocalAlloc.resolve(&m, 16).is_err());
        // The paper's 16-task Longs rows only exist for Two-MPI schemes.
        assert!(Scheme::TwoMpiLocalAlloc.resolve(&m, 16).is_ok());
    }

    #[test]
    fn localalloc_pages_follow_tasks() {
        let m = longs();
        for scheme in [Scheme::OneMpiLocalAlloc, Scheme::TwoMpiLocalAlloc] {
            for p in scheme.resolve(&m, 8).unwrap() {
                let node = m.node_of_socket(m.socket_of(p.core));
                assert_eq!(p.layout.fraction(node), 1.0);
            }
        }
    }

    #[test]
    fn membind_concentrates_pages() {
        let m = longs();
        let placements = Scheme::TwoMpiMembind.resolve(&m, 8).unwrap();
        // 8 ranks pack onto 2 nodes; every rank shares the same layout.
        for p in &placements {
            assert_eq!(p.layout.num_nodes(), 2);
            assert_eq!(p.layout, placements[0].layout);
        }
    }

    #[test]
    fn interleave_spreads_pages_over_all_nodes() {
        let m = longs();
        let placements = Scheme::Interleave.resolve(&m, 4).unwrap();
        for p in &placements {
            assert_eq!(p.layout.num_nodes(), 8);
        }
    }

    #[test]
    fn default_layout_is_mostly_local() {
        let m = longs();
        for p in Scheme::Default.resolve(&m, 4).unwrap() {
            let node = m.node_of_socket(m.socket_of(p.core));
            assert!(p.layout.fraction(node) > 0.85);
        }
    }

    #[test]
    fn resolve_with_varies_default_misplacement_only() {
        let m = longs();
        let zero = Scheme::Default.resolve_with(&m, 4, 0.0).unwrap();
        for p in &zero {
            let node = m.node_of_socket(m.socket_of(p.core));
            assert_eq!(p.layout.fraction(node), 1.0);
        }
        // The explicit-binding schemes ignore the fraction entirely.
        let a = Scheme::TwoMpiLocalAlloc.resolve_with(&m, 8, 0.0).unwrap();
        let b = Scheme::TwoMpiLocalAlloc.resolve_with(&m, 8, 0.4).unwrap();
        assert_eq!(a, b);
        // And the default fraction matches the plain resolve path.
        let c = Scheme::Default.resolve(&m, 4).unwrap();
        let d = Scheme::Default.resolve_with(&m, 4, policy::DEFAULT_MISPLACEMENT).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn display_matches_table5() {
        assert_eq!(Scheme::TwoMpiMembind.to_string(), "Two MPI + Membind");
        assert_eq!(Scheme::Default.to_string(), "Default");
    }

    #[test]
    fn placements_use_distinct_cores() {
        let m = longs();
        for scheme in Scheme::all() {
            let Ok(ps) = scheme.resolve(&m, 8) else { continue };
            let mut cores: Vec<_> = ps.iter().map(|p| p.core).collect();
            cores.sort_unstable();
            cores.dedup();
            assert_eq!(cores.len(), 8, "{scheme} duplicated cores");
        }
    }
}
