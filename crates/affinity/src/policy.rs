//! `numactl`-style page-placement policies.
//!
//! Each function resolves to a [`MemoryLayout`] — the fraction of a rank's
//! pages on each NUMA node — for one rank, given where the rank runs.

use corescope_machine::{CoreId, Machine, MemoryLayout, NumaNodeId, Result};

/// Fraction of pages the default (unbound) first-touch policy leaves on
/// the wrong node: early allocations made before the load balancer settles
/// tasks, shared mappings, and pages touched by rank 0 during setup.
pub const DEFAULT_MISPLACEMENT: f64 = 0.10;

/// How many ranks' working sets fit per node before `membind` spills to
/// the next listed node (see [`membind_packed`]).
pub const MEMBIND_RANKS_PER_NODE: usize = 4;

/// `--localalloc`: every page on the node of the socket running the rank.
pub fn local(machine: &Machine, core: CoreId) -> MemoryLayout {
    MemoryLayout::single(machine.node_of_socket(machine.socket_of(core)))
}

/// `--interleave=all`: pages round-robin across every node in the machine.
///
/// # Errors
///
/// Never fails for a valid machine; the `Result` mirrors
/// [`MemoryLayout::uniform`].
pub fn interleave_all(machine: &Machine) -> Result<MemoryLayout> {
    let nodes: Vec<NumaNodeId> = machine.nodes().collect();
    MemoryLayout::uniform(&nodes)
}

/// The default (no `numactl`) policy: first-touch lands pages locally,
/// but a `misplacement` fraction ends up spread over the whole machine
/// (allocations made before the scheduler settled, shared pages, etc.).
///
/// # Errors
///
/// Mirrors [`MemoryLayout::uniform`]; never fails for a valid machine.
pub fn default_first_touch(
    machine: &Machine,
    core: CoreId,
    misplacement: f64,
) -> Result<MemoryLayout> {
    let local_layout = local(machine, core);
    if machine.num_sockets() <= 1 || misplacement <= 0.0 {
        return Ok(local_layout);
    }
    let spread = interleave_all(machine)?;
    Ok(local_layout.mix(&spread, misplacement))
}

/// `--membind=<nodes>` as the paper's experiments exercised it: memory is
/// forced onto the *listed* node set, and Linux fills the list in order —
/// so the working sets of several ranks **concentrate on the first few
/// nodes** instead of spreading with the tasks. We model one node's DIMMs
/// absorbing [`MEMBIND_RANKS_PER_NODE`] ranks' pages before spilling:
/// an `nranks`-task run packs all pages uniformly onto the first
/// `ceil(nranks / MEMBIND_RANKS_PER_NODE)` nodes of `node_order`.
///
/// This is the mechanism behind the paper's finding that "forcing membind
/// ... result\[s\] in worst-case performance for almost all test cases":
/// the packed controllers saturate and most ranks access them remotely
/// over the ladder.
///
/// # Errors
///
/// Mirrors [`MemoryLayout::uniform`]; fails only for an empty
/// `node_order`.
pub fn membind_packed(node_order: &[NumaNodeId], nranks: usize) -> Result<MemoryLayout> {
    let needed = nranks.div_ceil(MEMBIND_RANKS_PER_NODE).max(1);
    let take = needed.min(node_order.len().max(1));
    MemoryLayout::uniform(&node_order[..take.min(node_order.len())])
}

#[cfg(test)]
mod tests {
    use super::*;
    use corescope_machine::systems;

    fn longs() -> Machine {
        Machine::new(systems::longs())
    }

    #[test]
    fn local_is_fully_on_own_node() {
        let m = longs();
        let l = local(&m, CoreId::new(6)); // socket 3
        assert_eq!(l.fraction(NumaNodeId::new(3)), 1.0);
    }

    #[test]
    fn interleave_spreads_evenly() {
        let m = longs();
        let l = interleave_all(&m).unwrap();
        for n in m.nodes() {
            assert!((l.fraction(n) - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn default_mixes_local_and_spread() {
        let m = longs();
        let l = default_first_touch(&m, CoreId::new(0), 0.10).unwrap();
        // 90% local + 10%/8 interleaved share on node 0.
        assert!((l.fraction(NumaNodeId::new(0)) - (0.9 + 0.1 / 8.0)).abs() < 1e-12);
        assert!((l.fraction(NumaNodeId::new(5)) - 0.1 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn default_with_zero_misplacement_is_local() {
        let m = longs();
        let l = default_first_touch(&m, CoreId::new(2), 0.0).unwrap();
        assert_eq!(l, local(&m, CoreId::new(2)));
    }

    #[test]
    fn membind_packs_small_runs_onto_one_node() {
        let nodes: Vec<NumaNodeId> = (0..8).map(NumaNodeId::new).collect();
        for n in 1..=4 {
            let l = membind_packed(&nodes, n).unwrap();
            assert_eq!(l.num_nodes(), 1, "{n} ranks should pack to one node");
            assert_eq!(l.fraction(nodes[0]), 1.0);
        }
    }

    #[test]
    fn membind_spills_with_more_ranks() {
        let nodes: Vec<NumaNodeId> = (0..8).map(NumaNodeId::new).collect();
        assert_eq!(membind_packed(&nodes, 8).unwrap().num_nodes(), 2);
        assert_eq!(membind_packed(&nodes, 16).unwrap().num_nodes(), 4);
    }

    #[test]
    fn membind_never_exceeds_listed_nodes() {
        let nodes: Vec<NumaNodeId> = (0..2).map(NumaNodeId::new).collect();
        let l = membind_packed(&nodes, 32).unwrap();
        assert_eq!(l.num_nodes(), 2);
    }
}
