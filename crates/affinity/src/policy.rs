//! `numactl`-style page-placement policies.
//!
//! Each function resolves to a [`MemoryLayout`] — the fraction of a rank's
//! pages on each NUMA node — for one rank, given where the rank runs.

use corescope_machine::{CoreId, Machine, MemoryLayout, NumaNodeId, Result};

/// Fraction of pages the default (unbound) first-touch policy leaves on
/// the wrong node: early allocations made before the load balancer settles
/// tasks, shared mappings, and pages touched by rank 0 during setup.
pub const DEFAULT_MISPLACEMENT: f64 = 0.10;

/// How many ranks' working sets fit per node before `membind` spills to
/// the next listed node (see [`membind_packed`]).
pub const MEMBIND_RANKS_PER_NODE: usize = 4;

/// Fraction of a node's DIMM capacity a large data structure (e.g. a
/// replicated cross-section table) can actually claim before first-touch
/// spills off-node: the rest holds the OS, the application image, page
/// cache, and every other allocation.
pub const TABLE_USABLE_FRACTION: f64 = 0.75;

/// `--localalloc`: every page on the node of the socket running the rank.
pub fn local(machine: &Machine, core: CoreId) -> MemoryLayout {
    MemoryLayout::single(machine.node_of_socket(machine.socket_of(core)))
}

/// `--interleave=all`: pages round-robin across every node in the machine.
///
/// # Errors
///
/// Never fails for a valid machine; the `Result` mirrors
/// [`MemoryLayout::uniform`].
pub fn interleave_all(machine: &Machine) -> Result<MemoryLayout> {
    let nodes: Vec<NumaNodeId> = machine.nodes().collect();
    MemoryLayout::uniform(&nodes)
}

/// The default (no `numactl`) policy: first-touch lands pages locally,
/// but a `misplacement` fraction ends up spread over the whole machine
/// (allocations made before the scheduler settled, shared pages, etc.).
///
/// # Errors
///
/// Mirrors [`MemoryLayout::uniform`]; never fails for a valid machine.
pub fn default_first_touch(
    machine: &Machine,
    core: CoreId,
    misplacement: f64,
) -> Result<MemoryLayout> {
    let local_layout = local(machine, core);
    if machine.num_sockets() <= 1 || misplacement <= 0.0 {
        return Ok(local_layout);
    }
    let spread = interleave_all(machine)?;
    Ok(local_layout.mix(&spread, misplacement))
}

/// `--membind=<nodes>` as the paper's experiments exercised it: memory is
/// forced onto the *listed* node set, and Linux fills the list in order —
/// so the working sets of several ranks **concentrate on the first few
/// nodes** instead of spreading with the tasks. We model one node's DIMMs
/// absorbing [`MEMBIND_RANKS_PER_NODE`] ranks' pages before spilling:
/// an `nranks`-task run packs all pages uniformly onto the first
/// `ceil(nranks / MEMBIND_RANKS_PER_NODE)` nodes of `node_order`.
///
/// This is the mechanism behind the paper's finding that "forcing membind
/// ... result\[s\] in worst-case performance for almost all test cases":
/// the packed controllers saturate and most ranks access them remotely
/// over the ladder.
///
/// # Errors
///
/// Mirrors [`MemoryLayout::uniform`]; fails only for an empty
/// `node_order`.
pub fn membind_packed(node_order: &[NumaNodeId], nranks: usize) -> Result<MemoryLayout> {
    let needed = nranks.div_ceil(MEMBIND_RANKS_PER_NODE).max(1);
    let take = needed.min(node_order.len().max(1));
    MemoryLayout::uniform(&node_order[..take.min(node_order.len())])
}

/// Shared FCFS fill state: ranks allocate in rank order, each following
/// its own node-preference order, from a per-node budget of
/// `capacity × usable_fraction` bytes. Whatever finds no free capacity
/// anywhere spreads uniformly over the whole machine (the OS reclaims
/// page cache and swaps cold pages without regard for locality).
fn fcfs_spill(
    machine: &Machine,
    orders: &[Vec<NumaNodeId>],
    bytes: f64,
    usable_fraction: f64,
) -> Result<Vec<MemoryLayout>> {
    let all: Vec<NumaNodeId> = machine.nodes().collect();
    let mut free: Vec<f64> =
        machine.spec().sockets.iter().map(|&cap| cap * usable_fraction.max(0.0)).collect();
    let mut out = Vec::with_capacity(orders.len());
    for order in orders {
        if bytes <= 0.0 {
            out.push(MemoryLayout::uniform(&order[..1])?);
            continue;
        }
        let mut weights: Vec<(NumaNodeId, f64)> = Vec::new();
        let mut remaining = bytes;
        for &node in order {
            if remaining <= 0.0 {
                break;
            }
            let take = remaining.min(free[node.index()]);
            if take > 0.0 {
                weights.push((node, take));
                free[node.index()] -= take;
                remaining -= take;
            }
        }
        if remaining > 0.0 {
            for &node in &all {
                weights.push((node, remaining / all.len() as f64));
            }
        }
        out.push(MemoryLayout::new(weights)?);
    }
    Ok(out)
}

/// First-touch placement of one `bytes`-byte structure per rank,
/// allocated in rank order: each rank claims from its local node first,
/// then spills to the nearest nodes by hop distance (node id breaks
/// ties) with capacity still free. Early ranks stay fully local; late
/// ranks land mostly remote — which is why first-touch loses to
/// interleaving once per-rank tables exceed a node's usable share.
///
/// # Errors
///
/// Mirrors [`MemoryLayout::new`]; never fails for a valid machine.
pub fn first_touch_spill(
    machine: &Machine,
    cores: &[CoreId],
    bytes: f64,
    usable_fraction: f64,
) -> Result<Vec<MemoryLayout>> {
    let orders: Vec<Vec<NumaNodeId>> = cores
        .iter()
        .map(|&core| {
            let home = machine.socket_of(core);
            let mut nodes: Vec<NumaNodeId> = machine.nodes().collect();
            nodes.sort_by_key(|&n| {
                (machine.topology().hops(home, machine.socket_of_node(n)), n.index())
            });
            nodes
        })
        .collect();
    fcfs_spill(machine, &orders, bytes, usable_fraction)
}

/// `membind`-style placement of one `bytes`-byte structure per rank:
/// every rank fills the *listed* node order (then the rest of the
/// machine's zonelist in node order), first-come-first-served in rank
/// order, regardless of where it runs. Rank locality is ignored by
/// construction — the paper's "worst-case performance" mechanism.
///
/// # Errors
///
/// Returns an error for an empty `node_order` (mirroring
/// [`MemoryLayout::uniform`]).
pub fn membind_spill(
    machine: &Machine,
    node_order: &[NumaNodeId],
    nranks: usize,
    bytes: f64,
    usable_fraction: f64,
) -> Result<Vec<MemoryLayout>> {
    // Probe the empty-order error path before cloning per rank.
    MemoryLayout::uniform(node_order)?;
    let mut order = node_order.to_vec();
    for n in machine.nodes() {
        if !order.contains(&n) {
            order.push(n);
        }
    }
    let orders = vec![order; nranks];
    fcfs_spill(machine, &orders, bytes, usable_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corescope_machine::systems;

    fn longs() -> Machine {
        Machine::new(systems::longs())
    }

    #[test]
    fn local_is_fully_on_own_node() {
        let m = longs();
        let l = local(&m, CoreId::new(6)); // socket 3
        assert_eq!(l.fraction(NumaNodeId::new(3)), 1.0);
    }

    #[test]
    fn interleave_spreads_evenly() {
        let m = longs();
        let l = interleave_all(&m).unwrap();
        for n in m.nodes() {
            assert!((l.fraction(n) - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn default_mixes_local_and_spread() {
        let m = longs();
        let l = default_first_touch(&m, CoreId::new(0), 0.10).unwrap();
        // 90% local + 10%/8 interleaved share on node 0.
        assert!((l.fraction(NumaNodeId::new(0)) - (0.9 + 0.1 / 8.0)).abs() < 1e-12);
        assert!((l.fraction(NumaNodeId::new(5)) - 0.1 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn default_with_zero_misplacement_is_local() {
        let m = longs();
        let l = default_first_touch(&m, CoreId::new(2), 0.0).unwrap();
        assert_eq!(l, local(&m, CoreId::new(2)));
    }

    #[test]
    fn membind_packs_small_runs_onto_one_node() {
        let nodes: Vec<NumaNodeId> = (0..8).map(NumaNodeId::new).collect();
        for n in 1..=4 {
            let l = membind_packed(&nodes, n).unwrap();
            assert_eq!(l.num_nodes(), 1, "{n} ranks should pack to one node");
            assert_eq!(l.fraction(nodes[0]), 1.0);
        }
    }

    #[test]
    fn membind_spills_with_more_ranks() {
        let nodes: Vec<NumaNodeId> = (0..8).map(NumaNodeId::new).collect();
        assert_eq!(membind_packed(&nodes, 8).unwrap().num_nodes(), 2);
        assert_eq!(membind_packed(&nodes, 16).unwrap().num_nodes(), 4);
    }

    #[test]
    fn membind_never_exceeds_listed_nodes() {
        let nodes: Vec<NumaNodeId> = (0..2).map(NumaNodeId::new).collect();
        let l = membind_packed(&nodes, 32).unwrap();
        assert_eq!(l.num_nodes(), 2);
    }

    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    fn dmz() -> Machine {
        Machine::new(systems::dmz())
    }

    /// DMZ cores 0..4 (two per socket), as the packed mapping pins them.
    fn dmz_cores() -> Vec<CoreId> {
        (0..4).map(CoreId::new).collect()
    }

    #[test]
    fn small_tables_stay_fully_local_under_first_touch() {
        // 0.25 GiB × 2 ranks fits one DMZ node's 1.5 GiB usable share.
        let m = dmz();
        let layouts = first_touch_spill(&m, &dmz_cores(), 0.25 * GIB, 0.75).unwrap();
        for (rank, l) in layouts.iter().enumerate() {
            let home = m.node_of_socket(m.socket_of(CoreId::new(rank)));
            assert_eq!(l.fraction(home), 1.0, "rank {rank} should be fully local");
        }
    }

    #[test]
    fn oversized_tables_spill_later_ranks_remote() {
        // 1.5 GiB each: rank 0 drains node 0, rank 1 lands entirely on
        // node 1, ranks 2 and 3 find nothing free and go uniform.
        let m = dmz();
        let layouts = first_touch_spill(&m, &dmz_cores(), 1.5 * GIB, 0.75).unwrap();
        let (n0, n1) = (NumaNodeId::new(0), NumaNodeId::new(1));
        assert_eq!(layouts[0].fraction(n0), 1.0);
        assert_eq!(layouts[1].fraction(n1), 1.0, "rank 1 must spill fully remote");
        for rank in [2, 3] {
            assert!((layouts[rank].fraction(n0) - 0.5).abs() < 1e-12, "rank {rank} uniform");
        }
    }

    #[test]
    fn first_touch_spill_prefers_nearest_nodes_on_the_ladder() {
        let m = longs();
        // One rank on socket 0 with a table bigger than one node: the
        // spill must land on a 1-hop neighbour, not a far corner.
        let layouts = first_touch_spill(&m, &[CoreId::new(0)], 4.0 * GIB, 0.75).unwrap();
        let l = &layouts[0];
        assert!(l.fraction(NumaNodeId::new(0)) > 0.7);
        let spilled: Vec<_> = l
            .shares()
            .filter(|&(n, _)| n != NumaNodeId::new(0))
            .map(|(n, _)| m.topology().hops(m.socket_of(CoreId::new(0)), m.socket_of_node(n)))
            .collect();
        assert!(spilled.iter().all(|&h| h == 1), "spill hops {spilled:?}");
    }

    #[test]
    fn membind_spill_ignores_rank_locality() {
        let m = dmz();
        let order = vec![NumaNodeId::new(0), NumaNodeId::new(1)];
        let layouts = membind_spill(&m, &order, 4, 0.25 * GIB, 0.75).unwrap();
        // Everything fits the first listed node: even socket-1 ranks'
        // tables land on node 0.
        for (rank, l) in layouts.iter().enumerate() {
            assert_eq!(l.fraction(NumaNodeId::new(0)), 1.0, "rank {rank}");
        }
        assert!(membind_spill(&m, &[], 2, GIB, 0.75).is_err());
    }

    #[test]
    fn membind_spill_fills_the_listed_order_then_the_zonelist() {
        let m = dmz();
        let order = vec![NumaNodeId::new(1)];
        // 2 ranks × 1.5 GiB: node 1's 1.5 GiB usable absorbs rank 0, the
        // zonelist fallback (node 0) takes rank 1.
        let layouts = membind_spill(&m, &order, 2, 1.5 * GIB, 0.75).unwrap();
        assert_eq!(layouts[0].fraction(NumaNodeId::new(1)), 1.0);
        assert_eq!(layouts[1].fraction(NumaNodeId::new(0)), 1.0);
    }

    #[test]
    fn zero_byte_tables_sit_on_the_first_preferred_node() {
        let m = dmz();
        let layouts = first_touch_spill(&m, &dmz_cores(), 0.0, 0.75).unwrap();
        assert_eq!(layouts[3].fraction(NumaNodeId::new(1)), 1.0);
    }
}
