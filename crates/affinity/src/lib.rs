//! # corescope-affinity
//!
//! Processor and memory affinity for simulated NUMA machines: the
//! `numactl`-style page-placement policies and the six task/memory
//! placement schemes of the paper's Table 5.
//!
//! The machine crate provides the *mechanism* (a
//! [`MemoryLayout`](corescope_machine::MemoryLayout) describing where a
//! rank's pages live); this crate provides the *policy*: how `localalloc`,
//! `membind`, `interleave` and the default first-touch-under-the-OS-
//! scheduler behaviours distribute pages, and how MPI tasks are mapped to
//! cores (one task per socket vs. two, OS scatter for unbound runs).
//!
//! ```
//! use corescope_machine::{systems, Machine};
//! use corescope_affinity::Scheme;
//!
//! # fn main() -> Result<(), corescope_machine::Error> {
//! let machine = Machine::new(systems::longs());
//! // "One MPI task per socket and local allocation policy".
//! let placements = Scheme::OneMpiLocalAlloc.resolve(&machine, 4)?;
//! assert_eq!(placements.len(), 4);
//! // Each rank's pages are entirely on its own socket's node.
//! for p in &placements {
//!     let node = machine.node_of_socket(machine.socket_of(p.core));
//!     assert_eq!(p.layout.fraction(node), 1.0);
//! }
//! # Ok(())
//! # }
//! ```

pub mod mapping;
pub mod policy;
pub mod scheme;

pub use mapping::{central_socket_order, one_per_socket, os_scatter, packed};
pub use policy::{
    default_first_touch, first_touch_spill, interleave_all, local, membind_packed, membind_spill,
};
pub use scheme::Scheme;
