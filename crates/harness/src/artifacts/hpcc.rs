//! HPCC artifacts: Figures 8 (HPL), 9 (DGEMM/FFT single/star), 11
//! (RandomAccess), 12 (PTRANS + ring/pingpong bandwidth) and 13
//! (latencies), all under the six LAM/NUMA runtime options.

use crate::context::{lam_profile, Systems};
use crate::fidelity::Fidelity;
use crate::report::{Cell, Table};
use crate::runtime::RuntimeOption;
use corescope_kernels::blas::{append_dgemm_single, append_dgemm_star, BlasVariant, DgemmParams};
use corescope_kernels::fft::{append_single as fft_single, append_star as fft_star, FftParams};
use corescope_kernels::hpcc::{ring_bandwidth, ring_latency};
use corescope_kernels::hpl::{append_run as hpl_run, HplParams};
use corescope_kernels::ptrans::{append_run as ptrans_run, PtransParams};
use corescope_kernels::randomaccess::{
    append_mpi as ra_mpi, append_single as ra_single, append_star as ra_star, RaParams,
};
use corescope_machine::engine::RankPlacement;
use corescope_machine::{Machine, Result};
use corescope_smpi::imb::pingpong_bandwidth;
use corescope_smpi::imb::pingpong_time;
use corescope_smpi::CommWorld;

/// Runs `build` on Longs/16 ranks under `option`; returns the makespan
/// (`None` if the option's scheme cannot place 16 ranks — it always can).
fn option_run(
    machine: &Machine,
    option: RuntimeOption,
    build: impl FnOnce(&mut CommWorld<'_>),
) -> Result<(f64, Vec<RankPlacement>)> {
    let placements =
        option.scheme().resolve(machine, 16).expect("all runtime options place 16 ranks on longs");
    let mut world = CommWorld::new(machine, placements.clone(), lam_profile(), option.lock());
    build(&mut world);
    Ok((world.run()?.makespan, placements))
}

/// Figure 8: HPL GFlop/s under the six options (Longs, 16 cores) plus the
/// DMZ reference point.
pub fn figure8(fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let n = match fidelity {
        Fidelity::Full => 16_384,
        Fidelity::Quick => 4_096,
    };
    let params = HplParams { n, nb: 256, dgemm_efficiency: 0.85 };
    let mut table = Table::with_columns(
        "Figure 8: HPL with LAM/NUMA options (GFlop/s)",
        &["Option", "Longs 16 cores", "DMZ 4 cores"],
    );
    // DMZ reference: default options only, as in the paper.
    let dmz_placements =
        RuntimeOption::Default.scheme().resolve(&systems.dmz, 4).expect("dmz places 4 ranks");
    let mut dmz_world =
        CommWorld::new(&systems.dmz, dmz_placements, lam_profile(), RuntimeOption::Default.lock());
    hpl_run(&mut dmz_world, &params);
    let dmz_gf = params.gflops(dmz_world.run()?.makespan);

    for option in RuntimeOption::all() {
        let (time, _) = option_run(&systems.longs, option, |w| hpl_run(w, &params))?;
        let dmz_cell =
            if option == RuntimeOption::Default { Cell::num(dmz_gf) } else { Cell::Dash };
        table.push_row(option.name(), vec![Cell::num(params.gflops(time)), dmz_cell]);
    }
    Ok(vec![table])
}

/// Figure 9: Single and Star DGEMM + FFT GFlop/s per core vs options.
pub fn figure9(fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let machine = &systems.longs;
    let dgemm = DgemmParams { n: 1000, reps: fidelity.steps(3).max(1), variant: BlasVariant::Acml };
    let fft = FftParams { points_per_rank: 1 << 20, reps: fidelity.steps(3).max(1) };
    let dgemm_flops = dgemm.flops_per_rank();
    let fft_flops_total =
        fft.reps as f64 * corescope_kernels::fft::fft_flops(fft.points_per_rank as f64);

    let mut table = Table::with_columns(
        "Figure 9: Single/Star DGEMM and FFT on Longs (GFlop/s per core)",
        &["Option", "Single DGEMM", "Star DGEMM", "Single FFT", "Star FFT"],
    );
    for option in RuntimeOption::all() {
        let (t_sd, _) = option_run(machine, option, |w| append_dgemm_single(w, &dgemm))?;
        let (t_td, _) = option_run(machine, option, |w| append_dgemm_star(w, &dgemm))?;
        let (t_sf, _) = option_run(machine, option, |w| fft_single(w, &fft))?;
        let (t_tf, _) = option_run(machine, option, |w| fft_star(w, &fft))?;
        table.push_row(
            option.name(),
            vec![
                Cell::num(dgemm_flops / t_sd / 1e9),
                Cell::num(dgemm_flops / t_td / 1e9),
                Cell::num(fft_flops_total / t_sf / 1e9),
                Cell::num(fft_flops_total / t_tf / 1e9),
            ],
        );
    }
    Ok(vec![table])
}

/// Figure 11: RandomAccess GUP/s (Single, Star per-core, MPI aggregate)
/// vs options.
pub fn figure11(fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let machine = &systems.longs;
    let params = match fidelity {
        Fidelity::Full => RaParams { table_words_per_rank: 1 << 24, updates_per_rank: 1 << 22 },
        Fidelity::Quick => RaParams { table_words_per_rank: 1 << 21, updates_per_rank: 1 << 16 },
    };
    let mut table = Table::with_columns(
        "Figure 11: RandomAccess on Longs (GUP/s)",
        &["Option", "Single", "Star per-core", "MPI (16 ranks)"],
    );
    for option in RuntimeOption::all() {
        let (t_single, _) = option_run(machine, option, |w| ra_single(w, &params))?;
        let (t_star, _) = option_run(machine, option, |w| ra_star(w, &params))?;
        let (t_mpi, _) = option_run(machine, option, |w| ra_mpi(w, &params))?;
        table.push_row(
            option.name(),
            vec![
                Cell::num_with(params.gups(1, t_single), 4),
                Cell::num_with(params.gups(1, t_star), 4),
                Cell::num_with(params.gups(16, t_mpi), 4),
            ],
        );
    }
    Ok(vec![table])
}

/// Figure 12: PTRANS bandwidth plus ring/pingpong bandwidth vs options.
pub fn figure12(fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let machine = &systems.longs;
    let params = PtransParams {
        n: match fidelity {
            Fidelity::Full => 8_192,
            Fidelity::Quick => 2_048,
        },
        reps: 1,
        ..PtransParams::default()
    };
    let moved = (params.n * params.n) as f64 * 8.0;
    let reps = fidelity.steps(10).max(2);
    let mut table = Table::with_columns(
        "Figure 12: PTRANS and ring/pingpong bandwidth on Longs (GB/s)",
        &["Option", "PTRANS", "Ring BW/rank", "PingPong BW"],
    );
    for option in RuntimeOption::all() {
        let (t_pt, placements) = option_run(machine, option, |w| ptrans_run(w, &params))?;
        let profile = lam_profile();
        let ring = ring_bandwidth(machine, &placements, &profile, option.lock(), reps)?;
        let pp = pingpong_bandwidth(machine, &placements, &profile, option.lock(), 2e6, reps)?;
        table.push_row(
            option.name(),
            vec![
                Cell::num(moved / t_pt / 1e9),
                Cell::num_with(ring / 1e9, 3),
                Cell::num_with(pp / 1e9, 3),
            ],
        );
    }
    Ok(vec![table])
}

/// Figure 13: ring and pingpong small-message latency vs options.
pub fn figure13(fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let machine = &systems.longs;
    let reps = fidelity.steps(50).max(5);
    let mut table = Table::with_columns(
        "Figure 13: Communication latency on Longs (microseconds)",
        &["Option", "PingPong", "Ring"],
    );
    for option in RuntimeOption::all() {
        let placements = option.scheme().resolve(machine, 16).expect("16 ranks place on longs");
        let profile = lam_profile();
        let pp = pingpong_time(machine, &placements, &profile, option.lock(), 8.0, reps)?;
        let ring = ring_latency(machine, &placements, &profile, option.lock(), reps)?;
        table.push_row(option.name(), vec![Cell::num(pp * 1e6), Cell::num(ring * 1e6)]);
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_tuned_options_win() {
        let t = &figure8(Fidelity::Quick).unwrap()[0];
        let tuned = t.value("localalloc+usysv", "Longs 16 cores").unwrap();
        let stock = t.value("sysv", "Longs 16 cores").unwrap();
        assert!(tuned >= stock, "tuned {tuned} vs stock {stock}");
        assert!(t.value("default", "DMZ 4 cores").is_some());
        assert!(t.value("sysv", "DMZ 4 cores").is_none());
    }

    #[test]
    fn figure9_dgemm_star_equals_single() {
        let t = &figure9(Fidelity::Quick).unwrap()[0];
        for option in ["default", "localalloc+usysv"] {
            let single = t.value(option, "Single DGEMM").unwrap();
            let star = t.value(option, "Star DGEMM").unwrap();
            assert!(
                (single - star).abs() / single < 0.1,
                "{option}: DGEMM single {single} vs star {star} should be almost identical"
            );
        }
        // FFT shows more single->star impact than DGEMM.
        let fs = t.value("default", "Single FFT").unwrap();
        let ft = t.value("default", "Star FFT").unwrap();
        assert!(ft <= fs, "star FFT {ft} must not beat single {fs}");
    }

    #[test]
    fn figure11_mpi_randomaccess_suffers_under_sysv() {
        let t = &figure11(Fidelity::Quick).unwrap()[0];
        let sysv = t.value("sysv", "MPI (16 ranks)").unwrap();
        let usysv = t.value("usysv", "MPI (16 ranks)").unwrap();
        assert!(usysv > sysv, "spinlocks must help RA: {usysv} vs {sysv}");
    }

    #[test]
    fn figure12_usysv_clearly_beats_sysv_on_ptrans() {
        let t = &figure12(Fidelity::Quick).unwrap()[0];
        let sysv = t.value("sysv", "PTRANS").unwrap();
        let usysv = t.value("usysv", "PTRANS").unwrap();
        assert!(usysv > sysv, "usysv {usysv} vs sysv {sysv}");
    }

    #[test]
    fn figure13_sysv_latency_dominates() {
        let t = &figure13(Fidelity::Quick).unwrap()[0];
        let pp_sysv = t.value("sysv", "PingPong").unwrap();
        let pp_usysv = t.value("usysv", "PingPong").unwrap();
        assert!(pp_sysv > 2.0 * pp_usysv);
        // Ring > pingpong under the same option.
        let ring = t.value("usysv", "Ring").unwrap();
        assert!(ring > pp_usysv);
    }
}
