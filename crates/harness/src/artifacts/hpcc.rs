//! HPCC artifacts: Figures 8 (HPL), 9 (DGEMM/FFT single/star), 11
//! (RandomAccess), 12 (PTRANS + ring/pingpong bandwidth) and 13
//! (latencies), all under the six LAM/NUMA runtime options.
//!
//! Figures 8, 9, 11 and the PTRANS column of 12 enumerate [`Scenario`]
//! batches and run them through the [`Scheduler`]; the ring/pingpong
//! helper columns and Figure 13's latency probes use bespoke kernel
//! helpers that need raw placements, so they stay direct engine calls.

use crate::context::{lam_profile, Systems};
use crate::fidelity::Fidelity;
use crate::report::{Cell, Table};
use crate::runtime::RuntimeOption;
use corescope_kernels::blas::{BlasVariant, DgemmParams};
use corescope_kernels::fft::FftParams;
use corescope_kernels::hpcc::{ring_bandwidth, ring_latency};
use corescope_kernels::hpl::HplParams;
use corescope_kernels::ptrans::PtransParams;
use corescope_kernels::randomaccess::RaParams;
use corescope_machine::Result;
use corescope_sched::{Placement, Scenario, Scheduler, System, Workload};
use corescope_smpi::imb::pingpong_bandwidth;
use corescope_smpi::imb::pingpong_time;
use corescope_smpi::MpiImpl;

/// The standard HPCC scenario: Longs, 16 ranks, LAM, under `option`'s
/// placement scheme and lock layer.
fn option_scenario(option: RuntimeOption, workload: Workload, fidelity: Fidelity) -> Scenario {
    Scenario::new(System::Longs, 16, workload)
        .with_fidelity(fidelity)
        .with_placement(Placement::Scheme(option.scheme()))
        .with_mpi(MpiImpl::Lam)
        .with_lock(option.lock())
}

/// Figure 8: HPL GFlop/s under the six options (Longs, 16 cores) plus the
/// DMZ reference point.
pub fn figure8(fidelity: Fidelity, sched: &Scheduler) -> Result<Vec<Table>> {
    let n = match fidelity {
        Fidelity::Full => 16_384,
        Fidelity::Quick => 4_096,
    };
    let params = HplParams { n, nb: 256, dgemm_efficiency: 0.85 };
    let workload =
        Workload::Hpl { n: params.n, nb: params.nb, dgemm_efficiency: params.dgemm_efficiency };

    // DMZ reference (default options only, as in the paper) plus the six
    // Longs options, in one batch.
    let dmz_ref = Scenario::new(System::Dmz, 4, workload.clone())
        .with_fidelity(fidelity)
        .with_placement(Placement::Scheme(RuntimeOption::Default.scheme()))
        .with_mpi(MpiImpl::Lam)
        .with_lock(RuntimeOption::Default.lock());
    let mut batch = vec![dmz_ref];
    batch.extend(
        RuntimeOption::all().into_iter().map(|o| option_scenario(o, workload.clone(), fidelity)),
    );
    let mut outcomes = sched.run_batch(&batch).into_iter();

    let mut table = Table::with_columns(
        "Figure 8: HPL with LAM/NUMA options (GFlop/s)",
        &["Option", "Longs 16 cores", "DMZ 4 cores"],
    );
    let dmz_gf = params.gflops(outcomes.next().expect("dmz outcome")?.result.makespan);
    for option in RuntimeOption::all() {
        let time = outcomes.next().expect("one outcome per option")?.result.makespan;
        let dmz_cell =
            if option == RuntimeOption::Default { Cell::num(dmz_gf) } else { Cell::Dash };
        table.push_row(option.name(), vec![Cell::num(params.gflops(time)), dmz_cell]);
    }
    Ok(vec![table])
}

/// Figure 9: Single and Star DGEMM + FFT GFlop/s per core vs options.
pub fn figure9(fidelity: Fidelity, sched: &Scheduler) -> Result<Vec<Table>> {
    let dgemm = DgemmParams { n: 1000, reps: fidelity.steps(3).max(1), variant: BlasVariant::Acml };
    let fft = FftParams { points_per_rank: 1 << 20, reps: fidelity.steps(3).max(1) };
    let dgemm_flops = dgemm.flops_per_rank();
    let fft_flops_total =
        fft.reps as f64 * corescope_kernels::fft::fft_flops(fft.points_per_rank as f64);

    let workloads = [
        Workload::DgemmSingle { n: dgemm.n, reps: dgemm.reps, variant: dgemm.variant },
        Workload::DgemmStar { n: dgemm.n, reps: dgemm.reps, variant: dgemm.variant },
        Workload::FftSingle { points_per_rank: fft.points_per_rank, reps: fft.reps },
        Workload::FftStar { points_per_rank: fft.points_per_rank, reps: fft.reps },
    ];
    let batch: Vec<Scenario> = RuntimeOption::all()
        .into_iter()
        .flat_map(|o| workloads.iter().map(move |w| option_scenario(o, w.clone(), fidelity)))
        .collect();
    let mut outcomes = sched.run_batch(&batch).into_iter();

    let mut table = Table::with_columns(
        "Figure 9: Single/Star DGEMM and FFT on Longs (GFlop/s per core)",
        &["Option", "Single DGEMM", "Star DGEMM", "Single FFT", "Star FFT"],
    );
    for option in RuntimeOption::all() {
        let mut next = || -> Result<f64> {
            Ok(outcomes.next().expect("one outcome per option x workload")?.result.makespan)
        };
        let (t_sd, t_td, t_sf, t_tf) = (next()?, next()?, next()?, next()?);
        table.push_row(
            option.name(),
            vec![
                Cell::num(dgemm_flops / t_sd / 1e9),
                Cell::num(dgemm_flops / t_td / 1e9),
                Cell::num(fft_flops_total / t_sf / 1e9),
                Cell::num(fft_flops_total / t_tf / 1e9),
            ],
        );
    }
    Ok(vec![table])
}

/// Figure 11: RandomAccess GUP/s (Single, Star per-core, MPI aggregate)
/// vs options.
pub fn figure11(fidelity: Fidelity, sched: &Scheduler) -> Result<Vec<Table>> {
    let params = match fidelity {
        Fidelity::Full => RaParams { table_words_per_rank: 1 << 24, updates_per_rank: 1 << 22 },
        Fidelity::Quick => RaParams { table_words_per_rank: 1 << 21, updates_per_rank: 1 << 16 },
    };
    let workloads = [
        Workload::RandomAccessSingle {
            table_words_per_rank: params.table_words_per_rank,
            updates_per_rank: params.updates_per_rank,
        },
        Workload::RandomAccessStar {
            table_words_per_rank: params.table_words_per_rank,
            updates_per_rank: params.updates_per_rank,
        },
        Workload::RandomAccessMpi {
            table_words_per_rank: params.table_words_per_rank,
            updates_per_rank: params.updates_per_rank,
        },
    ];
    let batch: Vec<Scenario> = RuntimeOption::all()
        .into_iter()
        .flat_map(|o| workloads.iter().map(move |w| option_scenario(o, w.clone(), fidelity)))
        .collect();
    let mut outcomes = sched.run_batch(&batch).into_iter();

    let mut table = Table::with_columns(
        "Figure 11: RandomAccess on Longs (GUP/s)",
        &["Option", "Single", "Star per-core", "MPI (16 ranks)"],
    );
    for option in RuntimeOption::all() {
        let mut next = || -> Result<f64> {
            Ok(outcomes.next().expect("one outcome per option x mode")?.result.makespan)
        };
        let (t_single, t_star, t_mpi) = (next()?, next()?, next()?);
        table.push_row(
            option.name(),
            vec![
                Cell::num_with(params.gups(1, t_single), 4),
                Cell::num_with(params.gups(1, t_star), 4),
                Cell::num_with(params.gups(16, t_mpi), 4),
            ],
        );
    }
    Ok(vec![table])
}

/// Figure 12: PTRANS bandwidth plus ring/pingpong bandwidth vs options.
pub fn figure12(fidelity: Fidelity, sched: &Scheduler) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let machine = &systems.longs;
    let params = PtransParams {
        n: match fidelity {
            Fidelity::Full => 8_192,
            Fidelity::Quick => 2_048,
        },
        reps: 1,
        ..PtransParams::default()
    };
    let moved = (params.n * params.n) as f64 * 8.0;
    let reps = fidelity.steps(10).max(2);

    let workload =
        Workload::Ptrans { n: params.n, reps: params.reps, block_bytes: params.block_bytes };
    let batch: Vec<Scenario> = RuntimeOption::all()
        .into_iter()
        .map(|o| option_scenario(o, workload.clone(), fidelity))
        .collect();
    let mut outcomes = sched.run_batch(&batch).into_iter();

    let mut table = Table::with_columns(
        "Figure 12: PTRANS and ring/pingpong bandwidth on Longs (GB/s)",
        &["Option", "PTRANS", "Ring BW/rank", "PingPong BW"],
    );
    for option in RuntimeOption::all() {
        let t_pt = outcomes.next().expect("one PTRANS outcome per option")?.result.makespan;
        // The ring/pingpong helpers need raw placements, so they bypass
        // the scheduler (they are cheap point probes, not sweeps).
        let placements = option.scheme().resolve(machine, 16)?;
        let profile = lam_profile();
        let ring = ring_bandwidth(machine, &placements, &profile, option.lock(), reps)?;
        let pp = pingpong_bandwidth(machine, &placements, &profile, option.lock(), 2e6, reps)?;
        table.push_row(
            option.name(),
            vec![
                Cell::num(moved / t_pt / 1e9),
                Cell::num_with(ring / 1e9, 3),
                Cell::num_with(pp / 1e9, 3),
            ],
        );
    }
    Ok(vec![table])
}

/// Figure 13: ring and pingpong small-message latency vs options.
pub fn figure13(fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let machine = &systems.longs;
    let reps = fidelity.steps(50).max(5);
    let mut table = Table::with_columns(
        "Figure 13: Communication latency on Longs (microseconds)",
        &["Option", "PingPong", "Ring"],
    );
    for option in RuntimeOption::all() {
        let placements = option.scheme().resolve(machine, 16)?;
        let profile = lam_profile();
        let pp = pingpong_time(machine, &placements, &profile, option.lock(), 8.0, reps)?;
        let ring = ring_latency(machine, &placements, &profile, option.lock(), reps)?;
        table.push_row(option.name(), vec![Cell::num(pp * 1e6), Cell::num(ring * 1e6)]);
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> Scheduler {
        Scheduler::new(2)
    }

    #[test]
    fn figure8_tuned_options_win() {
        let t = &figure8(Fidelity::Quick, &sched()).unwrap()[0];
        let tuned = t.value("localalloc+usysv", "Longs 16 cores").unwrap();
        let stock = t.value("sysv", "Longs 16 cores").unwrap();
        assert!(tuned >= stock, "tuned {tuned} vs stock {stock}");
        assert!(t.value("default", "DMZ 4 cores").is_some());
        assert!(t.value("sysv", "DMZ 4 cores").is_none());
    }

    #[test]
    fn figure9_dgemm_star_equals_single() {
        let t = &figure9(Fidelity::Quick, &sched()).unwrap()[0];
        for option in ["default", "localalloc+usysv"] {
            let single = t.value(option, "Single DGEMM").unwrap();
            let star = t.value(option, "Star DGEMM").unwrap();
            assert!(
                (single - star).abs() / single < 0.1,
                "{option}: DGEMM single {single} vs star {star} should be almost identical"
            );
        }
        // FFT shows more single->star impact than DGEMM.
        let fs = t.value("default", "Single FFT").unwrap();
        let ft = t.value("default", "Star FFT").unwrap();
        assert!(ft <= fs, "star FFT {ft} must not beat single {fs}");
    }

    #[test]
    fn figure11_mpi_randomaccess_suffers_under_sysv() {
        let t = &figure11(Fidelity::Quick, &sched()).unwrap()[0];
        let sysv = t.value("sysv", "MPI (16 ranks)").unwrap();
        let usysv = t.value("usysv", "MPI (16 ranks)").unwrap();
        assert!(usysv > sysv, "spinlocks must help RA: {usysv} vs {sysv}");
    }

    #[test]
    fn figure12_usysv_clearly_beats_sysv_on_ptrans() {
        let t = &figure12(Fidelity::Quick, &sched()).unwrap()[0];
        let sysv = t.value("sysv", "PTRANS").unwrap();
        let usysv = t.value("usysv", "PTRANS").unwrap();
        assert!(usysv > sysv, "usysv {usysv} vs sysv {sysv}");
    }

    #[test]
    fn figure13_sysv_latency_dominates() {
        let t = &figure13(Fidelity::Quick).unwrap()[0];
        let pp_sysv = t.value("sysv", "PingPong").unwrap();
        let pp_usysv = t.value("usysv", "PingPong").unwrap();
        assert!(pp_sysv > 2.0 * pp_usysv);
        // Ring > pingpong under the same option.
        let ring = t.value("usysv", "Ring").unwrap();
        assert!(ring > pp_usysv);
    }

    #[test]
    fn figure9_parallel_matches_serial_byte_for_byte() {
        let serial = figure9(Fidelity::Quick, &Scheduler::new(1)).unwrap();
        let parallel = figure9(Fidelity::Quick, &Scheduler::new(8)).unwrap();
        assert_eq!(serial[0].to_csv(), parallel[0].to_csv());
    }
}
