//! BLAS artifacts: Figures 4–7 (DAXPY and DGEMM, ACML vs vanilla, on the
//! DMZ system).

use crate::context::{default_stack, Systems};
use crate::fidelity::Fidelity;
use crate::report::{Cell, Table};
use corescope_affinity::Scheme;
use corescope_kernels::blas::{
    append_daxpy_star, append_dgemm_star, BlasVariant, DaxpyParams, DgemmParams,
};
use corescope_machine::{Machine, Result};
use corescope_smpi::CommWorld;

#[derive(Debug, Clone, Copy)]
enum Kernel {
    Daxpy,
    Dgemm,
}

/// Aggregate GFlop/s for `nranks` concurrent kernel instances.
fn star_gflops(
    machine: &Machine,
    scheme: Scheme,
    nranks: usize,
    kernel: Kernel,
    n: usize,
    variant: BlasVariant,
    fidelity: Fidelity,
) -> Result<f64> {
    let (profile, lock) = default_stack();
    let placements =
        scheme.resolve(machine, nranks).expect("blas figures use placeable configurations");
    let mut world = CommWorld::new(machine, placements, profile, lock);
    let flops_per_rank = match kernel {
        Kernel::Daxpy => {
            let params = DaxpyParams { n, reps: fidelity.steps(50).max(2), variant };
            append_daxpy_star(&mut world, &params);
            params.flops_per_rank()
        }
        Kernel::Dgemm => {
            let params = DgemmParams { n, reps: fidelity.steps(3).max(1), variant };
            append_dgemm_star(&mut world, &params);
            params.flops_per_rank()
        }
    };
    let report = world.run()?;
    Ok(nranks as f64 * flops_per_rank / report.makespan / 1e9)
}

fn totals_figure(
    title: &str,
    kernel: Kernel,
    variant: BlasVariant,
    sizes: &[usize],
    fidelity: Fidelity,
) -> Result<Table> {
    let systems = Systems::new();
    let machine = &systems.dmz;
    let mut table = Table::with_columns(
        title,
        &["n", "Total (1 core)", "Total (2 cores)", "Total (4 cores)", "Per core (4)"],
    );
    for &n in sizes {
        let g1 = star_gflops(machine, Scheme::TwoMpiLocalAlloc, 1, kernel, n, variant, fidelity)?;
        let g2 = star_gflops(machine, Scheme::TwoMpiLocalAlloc, 2, kernel, n, variant, fidelity)?;
        let g4 = star_gflops(machine, Scheme::TwoMpiLocalAlloc, 4, kernel, n, variant, fidelity)?;
        table.push_row(
            n.to_string(),
            vec![
                Cell::num_with(g1, 3),
                Cell::num_with(g2, 3),
                Cell::num_with(g4, 3),
                Cell::num_with(g4 / 4.0, 3),
            ],
        );
    }
    Ok(table)
}

fn per_core_figure(
    title: &str,
    kernel: Kernel,
    variant: BlasVariant,
    sizes: &[usize],
    fidelity: Fidelity,
) -> Result<Table> {
    let systems = Systems::new();
    let machine = &systems.dmz;
    let mut table = Table::with_columns(
        title,
        &["n", "1 task/socket (2 ranks)", "2 tasks/socket (2 ranks)", "2 tasks/socket (4 ranks)"],
    );
    for &n in sizes {
        let spread =
            star_gflops(machine, Scheme::OneMpiLocalAlloc, 2, kernel, n, variant, fidelity)?;
        let packed2 =
            star_gflops(machine, Scheme::TwoMpiLocalAlloc, 2, kernel, n, variant, fidelity)?;
        let packed4 =
            star_gflops(machine, Scheme::TwoMpiLocalAlloc, 4, kernel, n, variant, fidelity)?;
        table.push_row(
            n.to_string(),
            vec![
                Cell::num_with(spread / 2.0, 3),
                Cell::num_with(packed2 / 2.0, 3),
                Cell::num_with(packed4 / 4.0, 3),
            ],
        );
    }
    Ok(table)
}

const DAXPY_SIZES: [usize; 5] = [10_000, 50_000, 250_000, 1_000_000, 10_000_000];
const DGEMM_SIZES: [usize; 5] = [100, 250, 500, 1000, 2000];

/// Figure 4: ACML DAXPY, total and per-core GFlop/s on DMZ.
pub fn figure4(fidelity: Fidelity) -> Result<Vec<Table>> {
    Ok(vec![totals_figure(
        "Figure 4: BLAS 1 (DAXPY) performance, ACML, DMZ (GFlop/s)",
        Kernel::Daxpy,
        BlasVariant::Acml,
        &fidelity.thin(&DAXPY_SIZES),
        fidelity,
    )?])
}

/// Figure 5: vanilla DAXPY per core, one vs two tasks per socket.
pub fn figure5(fidelity: Fidelity) -> Result<Vec<Table>> {
    Ok(vec![per_core_figure(
        "Figure 5: BLAS 1 (DAXPY) per-core performance, vanilla, DMZ (GFlop/s)",
        Kernel::Daxpy,
        BlasVariant::Vanilla,
        &fidelity.thin(&DAXPY_SIZES),
        fidelity,
    )?])
}

/// Figure 6: ACML DGEMM, total and per-core GFlop/s on DMZ.
pub fn figure6(fidelity: Fidelity) -> Result<Vec<Table>> {
    Ok(vec![totals_figure(
        "Figure 6: BLAS 3 (DGEMM) performance, ACML, DMZ (GFlop/s)",
        Kernel::Dgemm,
        BlasVariant::Acml,
        &fidelity.thin(&DGEMM_SIZES),
        fidelity,
    )?])
}

/// Figure 7: vanilla DGEMM per core, one vs two tasks per socket.
pub fn figure7(fidelity: Fidelity) -> Result<Vec<Table>> {
    Ok(vec![per_core_figure(
        "Figure 7: BLAS 3 (DGEMM) per-core performance, vanilla, DMZ (GFlop/s)",
        Kernel::Dgemm,
        BlasVariant::Vanilla,
        &fidelity.thin(&DGEMM_SIZES),
        fidelity,
    )?])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_dgemm_scales_and_figure4_daxpy_does_not() {
        let dgemm = &figure6(Fidelity::Quick).unwrap()[0];
        let g1 = dgemm.value("500", "Total (1 core)").unwrap();
        let g4 = dgemm.value("500", "Total (4 cores)").unwrap();
        assert!(g4 > 3.5 * g1, "cache-friendly DGEMM scales: {g4} vs {g1}");

        let daxpy = &figure4(Fidelity::Quick).unwrap()[0];
        let d1 = daxpy.value("10000000", "Total (1 core)").unwrap();
        let d4 = daxpy.value("10000000", "Total (4 cores)").unwrap();
        assert!(d4 < 2.5 * d1, "bandwidth-bound DAXPY must not scale with cores: {d4} vs {d1}");
    }

    #[test]
    fn figure5_packing_hurts_large_daxpy() {
        let t = &figure5(Fidelity::Quick).unwrap()[0];
        let spread = t.value("10000000", "1 task/socket (2 ranks)").unwrap();
        let packed = t.value("10000000", "2 tasks/socket (2 ranks)").unwrap();
        assert!(packed < spread, "packed {packed} vs spread {spread}");
    }

    #[test]
    fn figure7_vanilla_dgemm_is_slow_but_insensitive_to_packing() {
        let t = &figure7(Fidelity::Quick).unwrap()[0];
        let spread = t.value("500", "1 task/socket (2 ranks)").unwrap();
        let packed = t.value("500", "2 tasks/socket (2 ranks)").unwrap();
        assert!(spread < 1.0, "vanilla DGEMM is far from peak: {spread}");
        assert!(
            (spread - packed).abs() / spread < 0.1,
            "cache-resident DGEMM should not care about packing"
        );
    }

    #[test]
    fn small_daxpy_is_cache_resident_and_faster() {
        let t = &figure4(Fidelity::Quick).unwrap()[0];
        let small = t.value("10000", "Total (1 core)").unwrap();
        let large = t.value("10000000", "Total (1 core)").unwrap();
        assert!(small > large, "L2-resident vectors must be faster: {small} vs {large}");
    }
}
