//! Extra X9: the crash-safe campaign store, proven by killing it.
//!
//! The artifact runs one sweep campaign twice against the journaled
//! columnar store (`corescope-store`):
//!
//! 1. **uninterrupted** — every scenario runs, rows land in a fresh
//!    store, and the group-by/percentile aggregate
//!    ([`crate::aggregate`]) is rendered to CSV;
//! 2. **killed and resumed** — the same campaign runs to its midpoint,
//!    then the writer "dies mid-append": raw garbage is appended to the
//!    newest segment past the committed region with no manifest commit,
//!    which is byte-for-byte what `kill -9` inside a `write(2)` leaves
//!    behind. A second writer then opens the store (recovery must
//!    truncate the torn tail), skips every committed scenario, and runs
//!    only the remainder.
//!
//! The artifact *checks*, not just reports:
//!
//! - recovery after the simulated kill saw real damage (a torn tail) —
//!   otherwise the test proved nothing;
//! - the resumed writer skipped exactly the committed half (resume =
//!   rerun only what is missing);
//! - the aggregate CSV from the killed-and-resumed store is
//!   **byte-identical** to the uninterrupted one.
//!
//! The in-process kill makes the crash point deterministic; CI
//! additionally SIGKILLs a real `repro --store` campaign at a random
//! moment and byte-diffs `store_fsck --dump` output, covering the
//! nondeterministic crash points this artifact cannot.

use crate::aggregate::campaign_table;
use crate::fidelity::Fidelity;
use crate::report::{Cell, Table};
use corescope_machine::{Error, Result};
use corescope_sched::{Scenario, Scheduler, StoreSink, System, Workload};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Steps grid for the BSP sweep (scaled by fidelity): five distinct
/// makespans per (system, nranks) group so the percentile columns have
/// real spread.
const STEPS_GRID: [usize; 5] = [40, 60, 80, 100, 120];

/// The campaign: two systems × two world sizes × the steps grid.
fn scenarios(fidelity: Fidelity) -> Vec<Scenario> {
    let mut out = Vec::new();
    for system in [System::Dmz, System::Longs] {
        for nranks in [2usize, 4] {
            for steps in STEPS_GRID {
                out.push(
                    Scenario::new(
                        system,
                        nranks,
                        Workload::Bsp {
                            steps: fidelity.steps(steps),
                            flops_per_step: 2.0e6,
                            bytes_per_step: 2.0e6,
                            sync_bytes: 8.0,
                        },
                    )
                    .with_fidelity(fidelity),
                );
            }
        }
    }
    out
}

fn tmpdir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "corescope-x9-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn store_err(context: &str, e: impl std::fmt::Display) -> Error {
    Error::InvalidSpec(format!("X9 {context}: {e}"))
}

/// Runs every scenario in `todo` not already committed in the store at
/// `dir`, flushes, and returns (aggregate table, engine runs, skipped).
fn run_campaign(dir: &Path, todo: &[Scenario], jobs: usize) -> Result<(Table, usize, usize)> {
    let sink = Arc::new(StoreSink::open(dir).map_err(|e| store_err("opening the store", e))?);
    let remaining: Vec<Scenario> =
        todo.iter().filter(|s| !sink.contains(s.digest())).cloned().collect();
    let skipped = todo.len() - remaining.len();
    let sched = Scheduler::new(jobs).with_store(Arc::clone(&sink));
    for outcome in sched.run_batch(&remaining) {
        outcome.map_err(|e| store_err("campaign scenario", e))?;
    }
    sink.flush();
    if sink.append_errors() > 0 {
        return Err(store_err("store appends", format!("{} failed", sink.append_errors())));
    }
    let rows = sink.rows().map_err(|e| store_err("scanning the store", e))?;
    let table = campaign_table("Extra X9: campaign aggregate (by system, workload, ranks)", &rows);
    Ok((table, sched.stats().engine_runs, skipped))
}

/// The newest segment file in the store directory — where a dying
/// writer's torn append would land.
fn newest_segment(dir: &Path) -> Result<PathBuf> {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| store_err("listing segments", e))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "css"))
        .collect();
    segments.sort();
    segments.pop().ok_or_else(|| store_err("listing segments", "no segment files"))
}

/// Extra X9 entry point. The shared scheduler is consulted only for its
/// job count: the experiment needs private schedulers wired to private
/// stores, and cold caches are the point — resume must come from the
/// store's committed digests, not from a warm result cache.
pub fn extra9(fidelity: Fidelity, sched: &Scheduler) -> Result<Vec<Table>> {
    let all = scenarios(fidelity);
    let half = all.len() / 2;
    let jobs = sched.jobs();

    // Reference: the campaign nothing ever happened to.
    let dir_a = tmpdir("uninterrupted");
    let (table_a, runs_a, skipped_a) = run_campaign(&dir_a, &all, jobs)?;
    let csv_a = table_a.to_csv();
    if runs_a != all.len() || skipped_a != 0 {
        let _ = std::fs::remove_dir_all(&dir_a);
        return Err(store_err(
            "baseline",
            format!("expected {} fresh engine runs, got {runs_a}", all.len()),
        ));
    }

    // The doomed campaign: half the sweep, then death mid-append.
    let dir_b = tmpdir("killed");
    let (_, runs_first, _) = run_campaign(&dir_b, &all[..half], jobs)?;
    let torn_garbage = b"CSB1\xff\xff\xff\xff torn mid-write by kill -9";
    {
        use std::io::Write;
        let segment = newest_segment(&dir_b)?;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&segment)
            .map_err(|e| store_err("tearing the segment", e))?;
        file.write_all(torn_garbage).map_err(|e| store_err("tearing the segment", e))?;
    }

    // Resume: recovery must see (and discard) the tear, the committed
    // half must be skipped, and only the remainder may run.
    let resumed =
        Arc::new(StoreSink::open(&dir_b).map_err(|e| store_err("resuming the store", e))?);
    let recovery_clean = resumed.recovery_is_clean();
    let recovery_line = resumed.recovery_summary();
    let resumed_rows = resumed.resumed_rows();
    drop(resumed); // release the writer lock for run_campaign's own open
    if recovery_clean {
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
        return Err(store_err(
            "recovery",
            format!("the torn tail went undetected ({recovery_line})"),
        ));
    }
    let (table_b, runs_resumed, skipped_resumed) = run_campaign(&dir_b, &all, jobs)?;
    let csv_b = table_b.to_csv();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);

    if resumed_rows != half {
        return Err(store_err(
            "recovery",
            format!("store reports {resumed_rows} committed rows after the kill, expected {half}"),
        ));
    }
    if skipped_resumed != half || runs_resumed != all.len() - half {
        return Err(store_err(
            "resume",
            format!(
                "expected to skip {half} committed scenarios and run {}, \
                 but skipped {skipped_resumed} and ran {runs_resumed}",
                all.len() - half
            ),
        ));
    }
    if csv_a != csv_b {
        return Err(store_err(
            "aggregate",
            "killed-and-resumed aggregate differs from the uninterrupted one",
        ));
    }

    let crc = corescope_store::frame::crc32(csv_a.as_bytes());
    let mut proof =
        Table::with_columns("Extra X9: kill-anywhere resume proof", &["check", "value", "status"]);
    let mut check = |label: &str, value: f64, ok: bool| {
        proof.push_row(
            label,
            vec![Cell::num_with(value, 0), Cell::text(if ok { "ok" } else { "FAIL" })],
        );
    };
    check("campaign scenarios", all.len() as f64, true);
    check("committed before kill", runs_first as f64, runs_first == half);
    check("torn tail detected on reopen", 1.0, !recovery_clean);
    check("committed scenarios skipped on resume", skipped_resumed as f64, true);
    check("engine runs after resume", runs_resumed as f64, true);
    check("aggregate byte-identical (crc32)", f64::from(crc), true);

    // table_b is the killed-and-resumed aggregate — byte-identical to
    // the uninterrupted one by the check above, so either could stand
    // here; printing the survivor is the point of the exercise.
    Ok(vec![table_b, proof])
}
