//! AMBER artifacts: Tables 7 (JAC FFT phase), 8 (PME/GB speedups) and 9
//! (JAC overall vs numactl options).

use crate::aggregate::pivot_table;
use crate::context::{default_stack, scheme_sweep, Systems};
use crate::fidelity::Fidelity;
use crate::report::Table;
use corescope_affinity::Scheme;
use corescope_apps::md::AmberBenchmark;
use corescope_machine::{Machine, Result};
use corescope_smpi::CommWorld;

fn jac(fidelity: Fidelity) -> AmberBenchmark {
    let mut b = AmberBenchmark::jac();
    b.steps = fidelity.steps(b.steps);
    b
}

fn sized(mut b: AmberBenchmark, fidelity: Fidelity) -> AmberBenchmark {
    b.steps = fidelity.steps(b.steps);
    b
}

/// Table 7: the FFT part of the JAC benchmark vs schemes on Longs + DMZ.
pub fn table7(fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let (profile, lock) = default_stack();
    let bench = jac(fidelity);
    let build = |w: &mut CommWorld<'_>, _n: usize| {
        for _ in 0..bench.steps {
            bench.append_pme_fft_part(w);
        }
    };
    let workloads: Vec<(&str, &crate::context::WorkloadFn<'_>)> = vec![("JAC FFT", &build)];
    let longs = scheme_sweep(
        "Table 7: FFT part of the JAC benchmark, Longs (seconds)",
        &systems.longs,
        &[2, 4, 8, 16],
        &workloads,
        &profile,
        lock,
    )?;
    let dmz = scheme_sweep(
        "Table 7 (cont.): FFT part of the JAC benchmark, DMZ (seconds)",
        &systems.dmz,
        &[2, 4],
        &workloads,
        &profile,
        lock,
    )?;
    Ok(vec![longs, dmz])
}

fn speedup_row(
    machine: &Machine,
    bench: &AmberBenchmark,
    counts: &[usize],
) -> Result<Vec<Option<f64>>> {
    let (profile, lock) = default_stack();
    let time = |n: usize| -> Result<f64> {
        let placements = Scheme::Default.resolve(machine, n)?;
        let mut w = CommWorld::new(machine, placements, profile.clone(), lock);
        bench.append_run(&mut w);
        Ok(w.run()?.makespan)
    };
    let t1 = time(1)?;
    let mut values = Vec::new();
    for &n in counts {
        if n > machine.num_cores() {
            values.push(None);
        } else {
            values.push(Some(t1 / time(n)?));
        }
    }
    Ok(values)
}

/// Table 8: AMBER multi-core speedups (no numactl) for all five
/// benchmarks on DMZ and Longs.
pub fn table8(fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let benches: Vec<AmberBenchmark> =
        AmberBenchmark::all().into_iter().map(|b| sized(b, fidelity)).collect();
    let mut rows = Vec::new();
    for (sys_name, machine, counts) in
        [("DMZ", &systems.dmz, vec![2usize, 4]), ("Longs", &systems.longs, vec![2, 4, 8, 16])]
    {
        // Collect per-benchmark speedup columns.
        let per_bench: Vec<Vec<Option<f64>>> =
            benches.iter().map(|b| speedup_row(machine, b, &counts)).collect::<Result<_>>()?;
        for (row_idx, &n) in counts.iter().enumerate() {
            let values: Vec<Option<f64>> = per_bench.iter().map(|col| col[row_idx]).collect();
            rows.push((format!("{n} {sys_name}"), values));
        }
    }
    Ok(vec![pivot_table(
        "Table 8: AMBER multi-core speedup (no numactl)",
        &["Cores/system", "dhfr", "factor_ix", "gb_cox2", "gb_mb", "JAC"],
        &rows,
    )])
}

/// Table 9: overall JAC runtime vs schemes on Longs + DMZ.
pub fn table9(fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let (profile, lock) = default_stack();
    let bench = jac(fidelity);
    let build = |w: &mut CommWorld<'_>, _n: usize| bench.append_run(w);
    let workloads: Vec<(&str, &crate::context::WorkloadFn<'_>)> = vec![("JAC", &build)];
    let longs = scheme_sweep(
        "Table 9: Overall JAC performance, Longs (seconds)",
        &systems.longs,
        &[2, 4, 8, 16],
        &workloads,
        &profile,
        lock,
    )?;
    let dmz = scheme_sweep(
        "Table 9 (cont.): Overall JAC performance, DMZ (seconds)",
        &systems.dmz,
        &[2, 4],
        &workloads,
        &profile,
        lock,
    )?;
    Ok(vec![longs, dmz])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_gb_outscales_pme_at_16() {
        let t = &table8(Fidelity::Quick).unwrap()[0];
        let gb = t.value("16 Longs", "gb_mb").unwrap();
        let pme = t.value("16 Longs", "JAC").unwrap();
        assert!(gb > pme, "GB {gb:.1} must outscale PME {pme:.1} at 16 cores");
        // Near-linear at low counts.
        let jac2 = t.value("2 DMZ", "JAC").unwrap();
        assert!(jac2 > 1.7 && jac2 < 2.1, "2-core JAC speedup {jac2:.2}");
    }

    #[test]
    fn table9_localalloc_is_never_worse_than_membind_at_scale() {
        let t = &table9(Fidelity::Quick).unwrap()[0];
        let la = t.value("8 JAC", "Two MPI + Local Alloc").unwrap();
        let mb = t.value("8 JAC", "Two MPI + Membind").unwrap();
        assert!(mb >= la * 0.99, "membind {mb:.2} vs localalloc {la:.2}");
    }

    #[test]
    fn table7_fft_part_shrinks_with_ranks() {
        let tables = table7(Fidelity::Quick).unwrap();
        let longs = &tables[0];
        let t2 = longs.value("2 JAC FFT", "Default").unwrap();
        let t16 = longs.value("16 JAC FFT", "Default").unwrap();
        assert!(t16 < t2, "FFT part must shrink: {t2:.3} -> {t16:.3}");
    }
}
