//! One entry point per paper artifact (table or figure).

pub mod amber;
pub mod blas;
pub mod bottleneck;
pub mod calibration;
pub mod campaign;
pub mod hpcc;
pub mod hybrid;
pub mod imb;
pub mod lammps;
pub mod nas;
pub mod pop;
pub mod recovery;
pub mod statics;
pub mod stream;
pub mod topo;
pub mod xs;

use crate::fidelity::Fidelity;
use crate::report::Table;
use corescope_machine::{Error, Result};
use corescope_sched::{Scheduler, System};
use std::fmt;

/// A request named an artifact id that does not exist. Carries the
/// requested string so `repro` and `corescope-serve` can report it (and
/// point at the catalogue) instead of silently skipping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownArtifact {
    /// What the request said, verbatim.
    pub requested: String,
}

impl UnknownArtifact {
    /// The valid id closest to the requested string by edit distance,
    /// when it is close enough to plausibly be a typo.
    pub fn nearest(&self) -> Option<&'static str> {
        let requested = self.requested.to_lowercase();
        Artifact::all()
            .into_iter()
            .map(|a| (edit_distance(&requested, a.id()), a.id()))
            .min()
            .filter(|(d, _)| *d <= 2)
            .map(|(_, id)| id)
    }
}

/// Levenshtein distance, small-string sized.
fn edit_distance(a: &str, b: &str) -> usize {
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.chars().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

impl fmt::Display for UnknownArtifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown artifact '{}' (valid ids are t1..t14, f2..f17, x1..x5, x7, x9, x10, x11; \
             run with --list for the catalogue)",
            self.requested
        )?;
        if let Some(nearest) = self.nearest() {
            write!(f, " — did you mean '{nearest}'?")?;
        }
        Ok(())
    }
}

impl std::error::Error for UnknownArtifact {}

/// Every table and figure of the paper's evaluation, by its number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the paper's artifact numbers
pub enum Artifact {
    T1,
    F2,
    F3,
    F4,
    F5,
    F6,
    F7,
    F8,
    F9,
    F10,
    F11,
    F12,
    F13,
    F14,
    F15,
    F16,
    F17,
    T2,
    T3,
    T4,
    T5,
    T6,
    T7,
    T8,
    T9,
    T10,
    T11,
    T12,
    T13,
    T14,
    /// Extra (not in the paper): the hybrid programming model Section
    /// 3.4 proposes, measured.
    X1,
    /// Extra: predicted lmbench-style memory-latency plateaus.
    X2,
    /// Extra: fault-injection resilience campaign (scheduled brownouts,
    /// kills, and rank stalls with bounded-degradation checks).
    X3,
    /// Extra: time-resolved bottleneck attribution for STREAM, PingPong,
    /// and NAS CG on all three systems.
    X4,
    /// Extra: recovery campaign — checkpoint/restart under rank-kill
    /// faults, swept around the Young/Daly optimum with bounded-recovery
    /// and attribution-shift checks.
    X5,
    /// Extra: auto-calibration — fit the model parameters back to the
    /// paper targets from a perturbed start, with recovery, headline and
    /// sensitivity invariants checked.
    X7,
    /// Extra: crash-safe campaign store — a sweep killed mid-write must
    /// recover, resume past committed scenarios, and aggregate
    /// byte-identically to an uninterrupted run.
    X9,
    /// Extra: the XSBench-style cross-section lookup family — table
    /// size × placement sweep with a checked first-touch/interleave
    /// NUMA crossover.
    X10,
    /// Extra: the "then vs now" generation study — STREAM and the
    /// lookup proxy swept over every `corescope-topo` generation,
    /// hard-asserting that at least two 2006 placement verdicts flip
    /// on the chiplet and memory-tier machines.
    X11,
}

impl Artifact {
    /// All artifacts in paper order.
    pub fn all() -> Vec<Artifact> {
        use Artifact::*;
        vec![
            T1, F2, F3, F4, F5, F6, F7, F8, F9, F10, F11, F12, F13, F14, F15, F16, F17, T2, T3, T4,
            T5, T6, T7, T8, T9, T10, T11, T12, T13, T14, X1, X2, X3, X4, X5, X7, X9, X10, X11,
        ]
    }

    /// Lowercase id used on the `repro` command line ("t2", "f10", ...).
    pub fn id(self) -> &'static str {
        use Artifact::*;
        match self {
            T1 => "t1",
            F2 => "f2",
            F3 => "f3",
            F4 => "f4",
            F5 => "f5",
            F6 => "f6",
            F7 => "f7",
            F8 => "f8",
            F9 => "f9",
            F10 => "f10",
            F11 => "f11",
            F12 => "f12",
            F13 => "f13",
            F14 => "f14",
            F15 => "f15",
            F16 => "f16",
            F17 => "f17",
            T2 => "t2",
            T3 => "t3",
            T4 => "t4",
            T5 => "t5",
            T6 => "t6",
            T7 => "t7",
            T8 => "t8",
            T9 => "t9",
            T10 => "t10",
            T11 => "t11",
            T12 => "t12",
            T13 => "t13",
            T14 => "t14",
            X1 => "x1",
            X2 => "x2",
            X3 => "x3",
            X4 => "x4",
            X5 => "x5",
            X7 => "x7",
            X9 => "x9",
            X10 => "x10",
            X11 => "x11",
        }
    }

    /// Parses an artifact id.
    pub fn parse(s: &str) -> Option<Artifact> {
        Artifact::all().into_iter().find(|a| a.id() == s.to_lowercase())
    }

    /// Parses an artifact id with a typed error for unknown names.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownArtifact`] carrying the requested string.
    pub fn from_id(s: &str) -> std::result::Result<Artifact, UnknownArtifact> {
        Artifact::parse(s).ok_or_else(|| UnknownArtifact { requested: s.to_string() })
    }

    /// The paper's caption, abbreviated.
    pub fn title(self) -> &'static str {
        use Artifact::*;
        match self {
            T1 => "Table 1: System configurations",
            F2 => "Figure 2: Memory bandwidth",
            F3 => "Figure 3: Memory bandwidth per core",
            F4 => "Figure 4: DAXPY performance (ACML)",
            F5 => "Figure 5: DAXPY performance per core (vanilla)",
            F6 => "Figure 6: DGEMM performance (ACML)",
            F7 => "Figure 7: DGEMM performance per core (vanilla)",
            F8 => "Figure 8: HPL performance with LAM/NUMA options",
            F9 => "Figure 9: Processor performance with runtime options",
            F10 => "Figure 10: LAM/NUMA options vs memory performance (STREAM)",
            F11 => "Figure 11: HPCC RandomAccess with runtime options",
            F12 => "Figure 12: LAM/NUMA options vs communication performance (PTRANS)",
            F13 => "Figure 13: Communication latency",
            F14 => "Figure 14: Intra-node IMB PingPong across MPI implementations",
            F15 => "Figure 15: Intra-node IMB Exchange across MPI implementations",
            F16 => "Figure 16: OpenMPI PingPong with scheduler affinity",
            F17 => "Figure 17: OpenMPI Exchange with scheduler affinity",
            T2 => "Table 2: numactl options vs NAS CG/FT on Longs",
            T3 => "Table 3: numactl options vs NAS CG/FT on DMZ",
            T4 => "Table 4: Multi-core speedup for NAS benchmarks",
            T5 => "Table 5: numactl options used for experiments",
            T6 => "Table 6: AMBER benchmark descriptions",
            T7 => "Table 7: FFT performance in the JAC benchmark",
            T8 => "Table 8: AMBER PME/GB multi-core speedup",
            T9 => "Table 9: Overall performance of the JAC benchmark",
            T10 => "Table 10: LAMMPS multi-core speedup",
            T11 => "Table 11: numactl options vs LAMMPS LJ",
            T12 => "Table 12: POP multi-core speedup",
            T13 => "Table 13: numactl options vs POP baroclinic time",
            T14 => "Table 14: numactl options vs POP barotropic time",
            X1 => "Extra X1: hybrid (OpenMP-in-socket) vs pure MPI",
            X2 => "Extra X2: memory-latency plateaus (lmbench-style)",
            X3 => "Extra X3: fault-injection resilience campaign",
            X4 => "Extra X4: time-resolved bottleneck attribution",
            X5 => "Extra X5: recovery campaign (checkpoint/restart under rank kills)",
            X7 => "Extra X7: auto-calibration against the paper-target registry",
            X9 => "Extra X9: crash-safe campaign store (kill-anywhere resume)",
            X10 => "Extra X10: cross-section lookup NUMA crossover (XSBench-style)",
            X11 => "Extra X11: then vs now — 2006 verdicts across machine generations",
        }
    }

    /// One-line description for the `repro --list` catalogue: what the
    /// artifact measures and which claim it carries.
    pub fn describe(self) -> &'static str {
        use Artifact::*;
        match self {
            T1 => "static system-configuration table (Tiger, DMZ, Longs)",
            F2 => "STREAM aggregate bandwidth vs core count on all three systems",
            F3 => "STREAM per-core bandwidth: second cores add nothing on Longs",
            F4 => "DAXPY GFlop/s with the tuned (ACML-style) BLAS",
            F5 => "DAXPY per-core GFlop/s with the vanilla BLAS",
            F6 => "DGEMM GFlop/s with the tuned (ACML-style) BLAS",
            F7 => "DGEMM per-core GFlop/s with the vanilla BLAS",
            F8 => "HPL under the LAM/numactl placement options",
            F9 => "compute-bound kernels are placement-insensitive",
            F10 => "STREAM under the placement options: local alloc wins",
            F11 => "HPCC RandomAccess under the placement options",
            F12 => "HPCC PTRANS: placement moves communication bandwidth",
            F13 => "PingPong latency on Longs: SysV vs spin-lock transports",
            F14 => "intra-node PingPong latency across MPI implementations",
            F15 => "intra-node Exchange across MPI implementations",
            F16 => "OpenMPI PingPong with and without scheduler affinity",
            F17 => "OpenMPI Exchange with and without scheduler affinity",
            T2 => "numactl options vs NAS CG/FT on Longs (membind penalty)",
            T3 => "numactl options vs NAS CG/FT on DMZ (smaller penalty)",
            T4 => "NAS multi-core speedup: memory-bound codes stall at 8",
            T5 => "static catalogue of the numactl option bundles",
            T6 => "static catalogue of the AMBER benchmark inputs",
            T7 => "FFT share of JAC: small transforms, cache-resident",
            T8 => "AMBER PME/GB speedup: GB scales, PME saturates",
            T9 => "JAC wall time under the placement options",
            T10 => "LAMMPS speedup: neighbor-list traffic caps scaling",
            T11 => "numactl options vs LAMMPS Lennard-Jones wall time",
            T12 => "POP speedup: barotropic solver is latency-bound",
            T13 => "numactl options vs POP baroclinic (bandwidth-bound) time",
            T14 => "numactl options vs POP barotropic (latency-bound) time",
            X1 => "hybrid OpenMP-in-socket vs pure MPI, as Section 3.4 proposes",
            X2 => "analytic lmbench-style memory-latency plateaus per system",
            X3 => "fault-injection campaign with bounded-degradation checks",
            X4 => "time-resolved bottleneck attribution for STREAM/PingPong/CG",
            X5 => "checkpoint/restart under rank kills, swept around Young/Daly",
            X7 => "fit the calibration back to the paper targets from a perturbed start",
            X9 => "kill a store-backed sweep mid-write; resume must aggregate identically",
            X10 => "table size x placement sweep; first-touch/interleave crossover checked",
            X11 => "sweep STREAM + xs-lookup over all generations; >=2 2006 verdicts flip",
        }
    }

    /// Regenerates the artifact with a private single-job scheduler.
    ///
    /// # Errors
    ///
    /// Propagates engine errors from the underlying simulations.
    pub fn run(self, fidelity: Fidelity) -> Result<Vec<Table>> {
        self.run_with(fidelity, &Scheduler::new(1))
    }

    /// Regenerates the artifact, executing its simulation sweeps through
    /// `sched` — which brings the work-stealing fan-out, the result
    /// cache and in-flight dedup to every scenario-enumerated artifact.
    /// Results are byte-identical at any job count or cache temperature.
    ///
    /// # Errors
    ///
    /// Propagates engine errors from the underlying simulations.
    pub fn run_with(self, fidelity: Fidelity, sched: &Scheduler) -> Result<Vec<Table>> {
        use Artifact::*;
        match self {
            T1 => Ok(vec![statics::table1()]),
            T5 => Ok(vec![statics::table5()]),
            T6 => Ok(vec![statics::table6()]),
            F2 => stream::figure2(fidelity, sched),
            F3 => stream::figure3(fidelity, sched),
            F4 => blas::figure4(fidelity),
            F5 => blas::figure5(fidelity),
            F6 => blas::figure6(fidelity),
            F7 => blas::figure7(fidelity),
            F8 => hpcc::figure8(fidelity, sched),
            F9 => hpcc::figure9(fidelity, sched),
            F10 => stream::figure10(fidelity, sched),
            F11 => hpcc::figure11(fidelity, sched),
            F12 => hpcc::figure12(fidelity, sched),
            F13 => hpcc::figure13(fidelity),
            F14 => imb::figure14(fidelity),
            F15 => imb::figure15(fidelity),
            F16 => imb::figure16(fidelity),
            F17 => imb::figure17(fidelity),
            T2 => nas::table2(fidelity),
            T3 => nas::table3(fidelity),
            T4 => nas::table4(fidelity),
            T7 => amber::table7(fidelity),
            T8 => amber::table8(fidelity),
            T9 => amber::table9(fidelity),
            T10 => lammps::table10(fidelity),
            T11 => lammps::table11(fidelity),
            T12 => pop::table12(fidelity),
            T13 => pop::table13(fidelity),
            T14 => pop::table14(fidelity),
            X1 => hybrid::extra1(fidelity),
            X2 => Ok(vec![statics::extra2()]),
            X3 => crate::resilience::extra3(fidelity),
            X4 => bottleneck::extra4(fidelity),
            X5 => recovery::extra5(fidelity, sched),
            X7 => calibration::extra7(fidelity, sched),
            X9 => campaign::extra9(fidelity, sched),
            X10 => xs::extra10(fidelity, sched),
            X11 => topo::extra11(fidelity, sched),
        }
    }

    /// Regenerates the artifact restricted to an explicit machine set
    /// (the `repro --machine` axis). `None` (or an empty list) is the
    /// default sweep, byte-identical to [`Artifact::run_with`]. Only
    /// artifacts that genuinely sweep a machine-generation axis accept
    /// a filter; anything else reports a typed error instead of
    /// silently ignoring the request.
    ///
    /// # Errors
    ///
    /// Propagates engine errors, and returns [`Error::InvalidSpec`]
    /// when `machines` is non-empty for an artifact without the axis.
    pub fn run_on(
        self,
        fidelity: Fidelity,
        sched: &Scheduler,
        machines: Option<&[System]>,
    ) -> Result<Vec<Table>> {
        match machines {
            Some(list) if !list.is_empty() => match self {
                Artifact::X11 => topo::extra11_on(fidelity, sched, Some(list)),
                _ => Err(Error::InvalidSpec(format!(
                    "artifact '{}' has no --machine axis (only x11 sweeps machine generations)",
                    self.id()
                ))),
            },
            _ => self.run_with(fidelity, sched),
        }
    }
}

impl fmt::Display for Artifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.title())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_have_unique_ids() {
        let all = Artifact::all();
        assert_eq!(all.len(), 39, "30 paper artifacts + the X1-X5, X7, X9-X11 extras");
        let mut ids: Vec<_> = all.iter().map(|a| a.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 39);
    }

    #[test]
    fn unknown_artifacts_suggest_the_nearest_id() {
        let err = Artifact::from_id("x8").unwrap_err();
        assert!(err.nearest().is_some());
        let rendered = err.to_string();
        assert!(rendered.contains("did you mean"), "{rendered}");

        let err = Artifact::from_id("x77").unwrap_err();
        assert_eq!(err.nearest(), Some("x7"));

        let err = Artifact::from_id("x100").unwrap_err();
        assert_eq!(err.nearest(), Some("x10"));

        let err = Artifact::from_id("x111").unwrap_err();
        assert_eq!(err.nearest(), Some("x11"));
        assert!(err.to_string().contains("x11"), "{err}");

        // Nothing close: no suggestion rather than a wild guess.
        let err = Artifact::from_id("zzzzzzzz").unwrap_err();
        assert_eq!(err.nearest(), None);
        assert!(!err.to_string().contains("did you mean"));
    }

    #[test]
    fn every_artifact_has_a_description() {
        for a in Artifact::all() {
            assert!(!a.describe().is_empty());
            assert!(a.describe().len() < 80, "{}: keep --list one-line", a.id());
        }
    }

    #[test]
    fn parse_round_trips() {
        for a in Artifact::all() {
            assert_eq!(Artifact::parse(a.id()), Some(a));
        }
        assert_eq!(Artifact::parse("T2"), Some(Artifact::T2));
        assert_eq!(Artifact::parse("nope"), None);
    }

    #[test]
    fn machine_axis_rejected_by_artifacts_without_it() {
        let sched = Scheduler::new(1);
        let machines = [System::Epyc];
        let err = Artifact::F2.run_on(Fidelity::Quick, &sched, Some(&machines)).unwrap_err();
        assert!(err.to_string().contains("--machine axis"), "{err}");

        // None (and an empty list) mean "default sweep" for everyone.
        let tables = Artifact::T1.run_on(Fidelity::Quick, &sched, None).unwrap();
        assert_eq!(tables.len(), 1);
        let tables = Artifact::T1.run_on(Fidelity::Quick, &sched, Some(&[])).unwrap();
        assert_eq!(tables.len(), 1);
    }

    #[test]
    fn statics_run_instantly() {
        for a in [Artifact::T1, Artifact::T5, Artifact::T6] {
            let tables = a.run(Fidelity::Quick).unwrap();
            assert_eq!(tables.len(), 1);
            assert!(tables[0].num_rows() > 0);
        }
    }
}
