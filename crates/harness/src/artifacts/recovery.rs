//! Extra X5: the recovery campaign — checkpoint/restart under rank-kill
//! faults, checked against first-order fault-tolerance theory.
//!
//! The campaign runs a BSP workload (stream-traffic compute steps
//! separated by allreduce reductions) on DMZ and Longs and sweeps the
//! coordinated-checkpoint interval around the Young/Daly optimum
//! `τ* = sqrt(2 δ M)` while deterministic [`FaultKind::RankKill`] faults
//! fire once per MTBF, rotating over ranks. Three claims are *checked*,
//! not just reported — any violation fails the artifact run:
//!
//! 1. **Young/Daly alignment** — the per-checkpoint cost `δ` is measured
//!    empirically (checkpointed fault-free run vs. plain fault-free run),
//!    and the swept interval that minimizes the faulted makespan must
//!    land within one grid step of `τ*` computed from that measured `δ`;
//! 2. **bounded recovery** — with kills at MTBF spacing, the best swept
//!    makespan must stay within [`RECOVERY_BOUND`] of fault-free;
//! 3. **attribution shift** — checkpoint traffic is real flow traffic,
//!    so with one rank per socket (controllers with headroom; the
//!    fault-free run is flow-cap-bound) a membind-style checkpoint store
//!    (every rank's checkpoint stream bound to node 0 via
//!    [`CheckpointTarget::Node`]) must shift the traced bottleneck
//!    attribution toward the memory controllers.
//!
//! The campaign is *scenario-enumerated*: each measurement phase (the
//! fault-free baselines, the δ probes, the 4-campaign × 5-interval
//! sweep) is one [`Scheduler`] batch, so the twenty-plus engine runs fan
//! out over workers and land in the result cache. The traced
//! attribution runs (claim 3) need `RunTrace`s, which the scenario IR
//! deliberately does not cache, so those stay direct engine calls.
//!
//! [`FaultKind::RankKill`]: corescope_machine::FaultKind::RankKill

use crate::context::{default_stack, Systems};
use crate::fidelity::Fidelity;
use crate::report::{Cell, Table};
use corescope_affinity::Scheme;
use corescope_machine::{
    young_daly_interval, CheckpointPolicy, CheckpointTarget, ComputePhase, Error, FaultPlan,
    Machine, NumaNodeId, RankId, Result, RunTrace, TraceConfig, TrafficProfile,
};
use corescope_sched::{Placement, Scenario, Scheduler, System, Workload};
use corescope_smpi::CommWorld;

/// Bounded-recovery guarantee: with kills at MTBF spacing and the best
/// swept checkpoint interval, the makespan must stay within this factor
/// of the fault-free run.
pub const RECOVERY_BOUND: f64 = 1.5;

/// Multiples of `τ*` swept (a geometric grid centered on the optimum).
const TAU_GRID: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// Index of `τ*` itself in [`TAU_GRID`].
const TAU_STAR_IDX: usize = 2;

/// One campaign: a system, a world size, and a fault rate expressed as
/// kills per fault-free makespan (MTBF = fault-free / kills).
struct Campaign {
    system: System,
    nranks: usize,
    kills: usize,
}

impl Campaign {
    fn name(&self) -> String {
        format!("{} x{}, {} kills", self.system.key(), self.nranks, self.kills)
    }
}

fn campaigns() -> Vec<Campaign> {
    vec![
        Campaign { system: System::Dmz, nranks: 4, kills: 3 },
        Campaign { system: System::Dmz, nranks: 4, kills: 2 },
        Campaign { system: System::Longs, nranks: 8, kills: 3 },
        Campaign { system: System::Longs, nranks: 8, kills: 2 },
    ]
}

/// BSP steps at full fidelity.
const BSP_STEPS: usize = 200;
/// Flops per BSP step per rank.
const STEP_FLOPS: f64 = 5.0e6;
/// DRAM bytes streamed per BSP step per rank. Past L2 and large enough
/// that the step is memory-bound: a concurrent checkpoint stream then
/// has to steal controller bandwidth from the step, which is what gives
/// checkpoints a nonzero cost δ for Young/Daly to work with.
const STEP_BYTES: f64 = 8.0e6;
/// Checkpoint bytes per rank at full fidelity (scaled with the step
/// count so `δ` stays proportionate to the run at every fidelity).
const CKPT_BYTES: f64 = 1.0e7;

/// The campaign's BSP scenario: the scenario defaults (two MPI per
/// socket, localalloc, MPICH2, spin locks) are exactly the old
/// `default_stack()` world.
fn bsp_scenario(system: System, nranks: usize, fidelity: Fidelity) -> Scenario {
    Scenario::new(
        system,
        nranks,
        Workload::Bsp {
            steps: fidelity.steps(BSP_STEPS),
            flops_per_step: STEP_FLOPS,
            bytes_per_step: STEP_BYTES,
            sync_bytes: 8.0,
        },
    )
    .with_fidelity(fidelity)
}

/// Builds the BSP workload as a traced-capable world (claim 3 needs
/// `observe`, which the scenario/cache path deliberately omits).
fn bsp_world<'m>(
    machine: &'m Machine,
    scheme: Scheme,
    nranks: usize,
    fidelity: Fidelity,
) -> Result<CommWorld<'m>> {
    let placements = scheme
        .resolve(machine, nranks)
        .map_err(|e| Error::InvalidSpec(format!("X5 placement failed: {e}")))?;
    let (profile, lock) = default_stack();
    let mut world = CommWorld::new(machine, placements, profile, lock);
    let phase = ComputePhase::new("bsp-step", STEP_FLOPS, TrafficProfile::stream(STEP_BYTES));
    for _ in 0..fidelity.steps(BSP_STEPS) {
        world.compute_all(|_| Some(phase.clone()));
        world.allreduce(8.0);
    }
    Ok(world)
}

/// Checkpoint payload per rank at this fidelity.
fn ckpt_bytes(fidelity: Fidelity) -> f64 {
    CKPT_BYTES * fidelity.steps(BSP_STEPS) as f64 / BSP_STEPS as f64
}

fn recovery_violation(campaign: &str, what: impl std::fmt::Display) -> Error {
    Error::InvalidSpec(format!("recovery invariant violated for '{campaign}': {what}"))
}

/// One point of the interval sweep.
struct SweepPoint {
    tau: f64,
    makespan: f64,
    checkpoints: usize,
    recoveries: usize,
}

/// A campaign's measured results.
struct CampaignResult {
    fault_free: f64,
    delta: f64,
    mtbf: f64,
    tau_star: f64,
    sweep: Vec<SweepPoint>,
    best: usize,
}

/// Runs every campaign in three scheduler batches — fault-free
/// baselines, δ probes, then the full interval sweep — and applies the
/// per-campaign invariant checks.
fn run_campaigns(fidelity: Fidelity, sched: &Scheduler) -> Result<Vec<CampaignResult>> {
    let cs = campaigns();
    let bytes = ckpt_bytes(fidelity);

    // Batch A: fault-free baselines (duplicate digests — the two DMZ and
    // two Longs campaigns share theirs — collapse in the scheduler).
    let baselines: Vec<Scenario> =
        cs.iter().map(|c| bsp_scenario(c.system, c.nranks, fidelity)).collect();
    let fault_free: Vec<f64> = sched
        .run_batch(&baselines)
        .into_iter()
        .map(|o| Ok(o?.result.makespan))
        .collect::<Result<_>>()?;

    // Batch B: measure the per-checkpoint cost δ empirically — a
    // checkpointed but fault-free run against the plain fault-free run.
    // Checkpoints are concurrent flows, so δ is the *contention* cost,
    // which is exactly what Young/Daly's δ means for this engine.
    let probes: Vec<Scenario> = cs
        .iter()
        .zip(&fault_free)
        .map(|(c, &free)| {
            bsp_scenario(c.system, c.nranks, fidelity)
                .with_recovery(CheckpointPolicy::new(free / 8.0, bytes))
        })
        .collect();
    let probe_results = sched.run_batch(&probes);

    let mut deltas = Vec::with_capacity(cs.len());
    for ((c, &free), probe) in cs.iter().zip(&fault_free).zip(probe_results) {
        let probe = probe?.result;
        if probe.checkpoints_taken == 0 {
            return Err(recovery_violation(&c.name(), "probe run took no checkpoints"));
        }
        let delta = (probe.makespan - free) / probe.checkpoints_taken as f64;
        if delta <= 0.0 {
            return Err(recovery_violation(
                &c.name(),
                format!("checkpoints must cost time, measured δ = {delta:e}"),
            ));
        }
        deltas.push(delta);
    }

    // Batch C: the full sweep — every campaign's five interval points in
    // one batch. Deterministic kills, one per MTBF, rotating over ranks
    // (the plan validator rejects killing the same rank twice); the same
    // plan drives every sweep point, so the comparison is
    // apples-to-apples.
    let mut sweep_batch = Vec::with_capacity(cs.len() * TAU_GRID.len());
    let mut tau_stars = Vec::with_capacity(cs.len());
    for ((c, &free), &delta) in cs.iter().zip(&fault_free).zip(&deltas) {
        let mtbf = free / c.kills as f64;
        let tau_star = young_daly_interval(delta, mtbf);
        tau_stars.push(tau_star);
        let plan = (1..=c.kills)
            .fold(FaultPlan::new(), |p, k| p.rank_kill(k as f64 * mtbf, RankId::new(k % c.nranks)));
        for factor in TAU_GRID {
            sweep_batch.push(
                bsp_scenario(c.system, c.nranks, fidelity)
                    .with_recovery(CheckpointPolicy::new(factor * tau_star, bytes))
                    .with_faults(plan.clone()),
            );
        }
    }
    let mut sweep_outcomes = sched.run_batch(&sweep_batch).into_iter();

    let mut results = Vec::with_capacity(cs.len());
    for (i, c) in cs.iter().enumerate() {
        let name = c.name();
        let tau_star = tau_stars[i];
        let mut sweep = Vec::with_capacity(TAU_GRID.len());
        for factor in TAU_GRID {
            let tau = factor * tau_star;
            let point = sweep_outcomes.next().expect("one outcome per sweep point")?.result;
            if point.recoveries != c.kills {
                return Err(recovery_violation(
                    &name,
                    format!(
                        "scheduled {} kills but {} recoveries happened at τ = {tau:.4}",
                        c.kills, point.recoveries
                    ),
                ));
            }
            sweep.push(SweepPoint {
                tau,
                makespan: point.makespan,
                checkpoints: point.checkpoints_taken,
                recoveries: point.recoveries,
            });
        }

        let best = sweep
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.makespan.total_cmp(&b.1.makespan))
            .map(|(j, _)| j)
            .unwrap_or(TAU_STAR_IDX);

        // Claim 1: the measured optimum tracks Young/Daly — within one
        // grid step of τ* on a ×2 geometric grid.
        if best.abs_diff(TAU_STAR_IDX) > 1 {
            return Err(recovery_violation(
                &name,
                format!(
                    "measured optimal interval {:.4}s is more than one grid step from \
                     Young/Daly τ* = {tau_star:.4}s (sweep {:?})",
                    sweep[best].tau,
                    sweep.iter().map(|p| p.makespan).collect::<Vec<_>>(),
                ),
            ));
        }

        // Claim 2: recovery is bounded at the best interval.
        if sweep[best].makespan > fault_free[i] * RECOVERY_BOUND {
            return Err(recovery_violation(
                &name,
                format!(
                    "best faulted makespan {:.4}s exceeds {RECOVERY_BOUND} x fault-free {:.4}s",
                    sweep[best].makespan, fault_free[i]
                ),
            ));
        }

        results.push(CampaignResult {
            fault_free: fault_free[i],
            delta: deltas[i],
            mtbf: fault_free[i] / c.kills as f64,
            tau_star,
            sweep,
            best,
        });
    }
    Ok(results)
}

/// The share of ranked bottleneck time attributed to memory controllers.
fn mc_share(trace: &RunTrace) -> f64 {
    let ranking = trace.bottleneck_ranking();
    let total: f64 = ranking.iter().map(|a| a.seconds).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let share =
        ranking.iter().filter(|a| a.label.starts_with("mc:")).map(|a| a.seconds).sum::<f64>()
            / total;
    // Tiny negative rounding residue would otherwise print as "-0.0000".
    share.max(0.0)
}

/// Runs the DMZ one-rank-per-socket workload traced, optionally under a
/// checkpoint policy, and returns the memory-controller attribution
/// share.
fn shift_mc_share(
    systems: &Systems,
    fidelity: Fidelity,
    policy: Option<CheckpointPolicy>,
) -> Result<f64> {
    let mut world = bsp_world(&systems.dmz, Scheme::OneMpiLocalAlloc, 2, fidelity)?;
    if let Some(policy) = policy {
        world = world.with_recovery(policy);
    }
    let observed = world.observe(&FaultPlan::new(), TraceConfig::on());
    observed.result?;
    let trace = observed
        .trace
        .ok_or_else(|| Error::InvalidSpec("traced run produced no trace".to_string()))?;
    Ok(mc_share(&trace))
}

/// Extra X5: the recovery campaign tables.
///
/// # Errors
///
/// Propagates engine errors, and returns [`Error::InvalidSpec`] when a
/// recovery invariant is violated — the measured optimal checkpoint
/// interval straying from Young/Daly, the best faulted makespan
/// exceeding [`RECOVERY_BOUND`] x fault-free, or checkpoint traffic
/// failing to shift attribution toward the memory controllers under
/// membind (that is the point: the artifact doubles as a recovery
/// check).
pub fn extra5(fidelity: Fidelity, sched: &Scheduler) -> Result<Vec<Table>> {
    let systems = Systems::new();

    let mut sweep_table = Table::with_columns(
        "Extra X5: checkpoint-interval sweep under rank-kill faults (BSP workload)",
        &[
            "Campaign / interval",
            "Interval (s)",
            "Makespan (s)",
            "Overhead",
            "Checkpoints",
            "Recoveries",
        ],
    );
    let mut summary = Table::with_columns(
        "Extra X5: Young/Daly alignment and bounded recovery",
        &[
            "Campaign",
            "Fault-free (s)",
            "delta (s)",
            "MTBF (s)",
            "tau* (s)",
            "Best tau (s)",
            "Best/fault-free",
        ],
    );

    for (c, r) in campaigns().iter().zip(run_campaigns(fidelity, sched)?) {
        let name = c.name();
        for (i, p) in r.sweep.iter().enumerate() {
            let marker = if i == r.best { " <- best" } else { "" };
            sweep_table.push_row(
                format!("{name}, {:.2} tau*{marker}", TAU_GRID[i]),
                vec![
                    Cell::num_with(p.tau, 4),
                    Cell::num_with(p.makespan, 4),
                    Cell::num_with(p.makespan / r.fault_free, 3),
                    Cell::num_with(p.checkpoints as f64, 0),
                    Cell::num_with(p.recoveries as f64, 0),
                ],
            );
        }
        summary.push_row(
            name,
            vec![
                Cell::num_with(r.fault_free, 4),
                Cell::num_with(r.delta, 5),
                Cell::num_with(r.mtbf, 4),
                Cell::num_with(r.tau_star, 4),
                Cell::num_with(r.sweep[r.best].tau, 4),
                Cell::num_with(r.sweep[r.best].makespan / r.fault_free, 3),
            ],
        );
    }

    // Claim 3: one rank per socket leaves each controller headroom, so
    // the fault-free run is bound by per-flow caps, not the controllers.
    // A membind-style checkpoint store (every rank's checkpoint stream
    // bound to node 0) must tip the controller into being the binding
    // constraint and raise its share of the traced attribution.
    let base = shift_mc_share(&systems, fidelity, None)?;
    let free = sched
        .run_one(
            &bsp_scenario(System::Dmz, 2, fidelity)
                .with_placement(Placement::Scheme(Scheme::OneMpiLocalAlloc)),
        )?
        .result
        .makespan;
    let policy = CheckpointPolicy::new(free / 8.0, ckpt_bytes(fidelity));
    let own = shift_mc_share(&systems, fidelity, Some(policy.clone()))?;
    let membind = shift_mc_share(
        &systems,
        fidelity,
        Some(policy.with_target(CheckpointTarget::Node(NumaNodeId::new(0)))),
    )?;
    if membind <= base {
        return Err(recovery_violation(
            "dmz membind checkpoint store",
            format!(
                "checkpoint traffic must shift attribution toward the memory \
                 controllers (mc share {base:.4} without checkpoints, {membind:.4} with \
                 a node-0 store)"
            ),
        ));
    }
    let mut shift = Table::with_columns(
        "Extra X5: checkpoint traffic vs bottleneck attribution (DMZ, 1MPI/socket)",
        &["Run", "mc share of attributed time"],
    );
    shift.push_row("no checkpoints", vec![Cell::num_with(base, 4)]);
    shift.push_row("checkpointed, own layout", vec![Cell::num_with(own, 4)]);
    shift.push_row("checkpointed, membind store (node 0)", vec![Cell::num_with(membind, 4)]);

    Ok(vec![sweep_table, summary, shift])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extra5_checks_its_invariants() {
        // extra5 fails with InvalidSpec on any recovery-invariant
        // violation, so a clean return *is* the assertion; spot-check
        // the table shapes.
        let tables = extra5(Fidelity::Quick, &Scheduler::new(2)).unwrap();
        assert_eq!(tables.len(), 3);
        let (sweep, summary, shift) = (&tables[0], &tables[1], &tables[2]);
        assert_eq!(sweep.num_rows(), campaigns().len() * TAU_GRID.len());
        assert_eq!(summary.num_rows(), campaigns().len());
        for (label, _) in summary.rows() {
            let ratio = summary.value(label, "Best/fault-free").unwrap();
            assert!(ratio > 1.0 && ratio <= RECOVERY_BOUND, "{label}: {ratio}");
        }
        let col = "mc share of attributed time";
        let base = shift.value("no checkpoints", col).unwrap();
        let membind = shift.value("checkpointed, membind store (node 0)", col).unwrap();
        assert!(membind > base, "mc share must rise with checkpoints: {base} -> {membind}");
    }

    #[test]
    fn sweep_runs_recover_every_scheduled_kill() {
        let results = run_campaigns(Fidelity::Quick, &Scheduler::new(2)).unwrap();
        let cs = campaigns();
        let (c, r) = (&cs[0], &results[0]);
        assert!(r.delta > 0.0 && r.tau_star > 0.0);
        for p in &r.sweep {
            assert_eq!(p.recoveries, c.kills);
            assert!(p.makespan > r.fault_free, "faults must cost time");
        }
        assert!(r.mtbf > r.tau_star, "the sweep only makes sense with tau* below MTBF");
    }

    #[test]
    fn campaign_baselines_share_cache_entries() {
        // The two DMZ campaigns (and the two Longs ones) share their
        // fault-free baseline; batch dedup + cache must collapse them.
        let sched = Scheduler::new(1);
        let _ = run_campaigns(Fidelity::Quick, &sched).unwrap();
        let stats = sched.stats();
        assert!(
            stats.deduped + stats.hits_memory >= 2,
            "shared baselines must not run twice: {stats:?}"
        );
    }
}
