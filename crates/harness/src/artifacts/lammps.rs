//! LAMMPS artifacts: Tables 10 (multi-core speedup) and 11 (LJ vs
//! numactl options).

use crate::aggregate::pivot_table;
use crate::context::{default_stack, scheme_sweep, Systems};
use crate::fidelity::Fidelity;
use crate::report::Table;
use corescope_affinity::Scheme;
use corescope_apps::md::LammpsBenchmark;
use corescope_machine::{Machine, Result};
use corescope_smpi::CommWorld;

fn time(machine: &Machine, bench: LammpsBenchmark, n: usize) -> Result<f64> {
    let (profile, lock) = default_stack();
    let placements = Scheme::Default.resolve(machine, n).expect("counts fit the machine");
    let mut w = CommWorld::new(machine, placements, profile, lock);
    bench.append_run(&mut w);
    Ok(w.run()?.makespan)
}

/// Table 10: LJ/Chain/EAM speedups (no numactl) across the three systems.
pub fn table10(_fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let mut rows = Vec::new();
    for (sys_name, machine, counts) in [
        ("DMZ", &systems.dmz, vec![2usize, 4]),
        ("Longs", &systems.longs, vec![2, 4, 8, 16]),
        ("Tiger", &systems.tiger, vec![2]),
    ] {
        let t1: Vec<f64> =
            LammpsBenchmark::all().iter().map(|&b| time(machine, b, 1)).collect::<Result<_>>()?;
        for &n in &counts {
            let mut values = Vec::new();
            for (i, &b) in LammpsBenchmark::all().iter().enumerate() {
                values.push(Some(t1[i] / time(machine, b, n)?));
            }
            rows.push((format!("{n} {sys_name}"), values));
        }
    }
    Ok(vec![pivot_table(
        "Table 10: LAMMPS multi-core speedup (no numactl)",
        &["Cores/system", "LJ", "Chain", "EAM"],
        &rows,
    )])
}

/// Table 11: the LJ benchmark vs the six schemes on Longs + DMZ.
pub fn table11(_fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let (profile, lock) = default_stack();
    let build = |w: &mut CommWorld<'_>, _n: usize| LammpsBenchmark::Lj.append_run(w);
    let workloads: Vec<(&str, &crate::context::WorkloadFn<'_>)> = vec![("LJ", &build)];
    let longs = scheme_sweep(
        "Table 11: numactl options vs LAMMPS LJ, Longs (seconds)",
        &systems.longs,
        &[2, 4, 8, 16],
        &workloads,
        &profile,
        lock,
    )?;
    let dmz = scheme_sweep(
        "Table 11 (cont.): numactl options vs LAMMPS LJ, DMZ (seconds)",
        &systems.dmz,
        &[2, 4],
        &workloads,
        &profile,
        lock,
    )?;
    Ok(vec![longs, dmz])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table10_chain_is_superlinear_lj_is_not() {
        let t = &table10(Fidelity::Quick).unwrap()[0];
        let chain16 = t.value("16 Longs", "Chain").unwrap();
        let lj16 = t.value("16 Longs", "LJ").unwrap();
        assert!(chain16 > 16.0, "chain speedup {chain16:.1} should be superlinear");
        assert!(lj16 < 16.0, "LJ speedup {lj16:.1} stays sublinear");
        // Tiger row exists with 2 cores only.
        assert!(t.value("2 Tiger", "LJ").unwrap() > 1.5);
    }

    #[test]
    fn table11_longs_times_are_paper_scale() {
        let t = &table11(Fidelity::Quick).unwrap()[0];
        // Paper: 3.82 s at 2 tasks (default), 0.63 s at 16 (Two MPI + LA).
        let t2 = t.value("2 LJ", "Default").unwrap();
        let t16 = t.value("16 LJ", "Two MPI + Local Alloc").unwrap();
        assert!(t2 > 1.5 && t2 < 8.0, "2-task LJ = {t2:.2}");
        assert!(t16 < t2 / 4.0, "16-task LJ = {t16:.2}");
    }
}
