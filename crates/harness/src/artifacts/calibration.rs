//! Extra X7: the auto-calibration loop, run end-to-end and *checked*.
//!
//! The artifact perturbs the shipped calibration (+25% DRAM latency,
//! −25% HyperTransport bandwidth, +25% lookup latency, −25% lookup
//! concurrency), hands the perturbed point to
//! [`corescope_calib::search::fit`] over the stream, latency, and lookup
//! target families, and then treats the outcome as a set of invariants
//! rather than a report — any violation fails the run:
//!
//! 1. **recovery** — every one of the [`CalibParams::FIELDS`] must come
//!    back within [`RECOVERY_TOLERANCE`] of `CalibParams::paper_2006()`
//!    (the unfitted axes are pinned by construction; the four fitted
//!    axes must be pulled home by the targets alone);
//! 2. **headline claims at the fitted point** — grading the fitted
//!    point against the *full* registry, both paper headline
//!    inequalities (Longs single-core bandwidth under half the naive
//!    expectation, flat 8→16 aggregate) must still hold;
//! 3. **sensitivity sanity** — a Morris-style one-at-a-time pass must
//!    rank `dram_latency` as the strongest mover of the latency family,
//!    and `ht_bandwidth` must visibly move the stream family.
//!
//! Every candidate evaluation batches its scenarios through the shared
//! [`Scheduler`], so the fit inherits work-stealing fan-out, in-flight
//! dedup and the result cache; a warm-cache rerun of this artifact
//! performs zero engine runs. The emitted tables carry no scheduler
//! statistics, so output is byte-identical at any `--jobs` count or
//! cache temperature (`calib_bench` reports the runtime numbers).

use crate::fidelity::Fidelity;
use crate::report::{Cell, Table};
use corescope_calib::eval::Evaluator;
use corescope_calib::search::{fit, FitConfig};
use corescope_calib::sensitivity::{elementary_effects, ranking};
use corescope_calib::targets::Family;
use corescope_machine::{CalibParams, Error, Result};
use corescope_sched::Scheduler;

/// Every parameter must be fitted back to within this relative distance
/// of the shipped calibration.
pub const RECOVERY_TOLERANCE: f64 = 0.05;

/// Relative perturbation applied to `dram_latency` and `lookup_latency`
/// (up) and `ht_bandwidth` and `lookup_mlp` (down) before the fit.
pub const PERTURBATION: f64 = 0.25;

/// Axes the fit is allowed to move; everything else stays pinned at the
/// (perturbed) start, which for the unperturbed fields *is* the shipped
/// value. The lookup pair is identified by the X10 rate anchors: the
/// rate is proportional to `lookup_mlp / (base latency + lookup_latency)`
/// and the DMZ/Longs base latencies differ, giving two independent
/// equations.
pub const FITTED_AXES: [&str; 4] = ["dram_latency", "ht_bandwidth", "lookup_mlp", "lookup_latency"];

/// Fraction of the normalized parameter box stepped by the sensitivity
/// pass.
const SENSITIVITY_STEP: f64 = 0.1;

/// Axes the sensitivity pass probes: the fitted pair plus the knobs the
/// retired hand-rolled ablations used to sweep.
const SENSITIVITY_AXES: [&str; 8] = [
    "dram_latency",
    "ht_bandwidth",
    "probe_capacity_ladder",
    "lock_usysv",
    "same_socket_boost",
    "misplacement",
    "lookup_mlp",
    "lookup_latency",
];

fn calibration_violation(what: impl std::fmt::Display) -> Error {
    Error::InvalidSpec(format!("calibration invariant violated: {what}"))
}

fn axis(name: &str) -> usize {
    CalibParams::FIELDS
        .iter()
        .position(|f| f.name == name)
        .unwrap_or_else(|| panic!("unknown calibration field '{name}'"))
}

/// The perturbed starting point the fit must recover from.
pub fn perturbed_start() -> CalibParams {
    let mut p = CalibParams::paper_2006();
    p.dram_latency *= 1.0 + PERTURBATION;
    p.ht_bandwidth *= 1.0 - PERTURBATION;
    p.lookup_latency *= 1.0 + PERTURBATION;
    p.lookup_mlp *= 1.0 - PERTURBATION;
    p
}

/// The fit configuration the artifact (and the CI smoke) runs: quick
/// fidelity keeps a 150-evaluation CI budget (the four-axis simplex
/// needs its 70% Nelder–Mead share uncut to converge; the old two-axis
/// fit managed in 60), full fidelity doubles it.
pub fn fit_config(fidelity: Fidelity) -> FitConfig {
    let budget = match fidelity {
        Fidelity::Full => 300,
        Fidelity::Quick => 150,
    };
    FitConfig::new(FITTED_AXES.iter().map(|n| axis(n)).collect()).with_budget(budget)
}

/// Regenerates the X7 artifact.
///
/// # Errors
///
/// Propagates engine errors, and fails with a typed
/// [`Error::InvalidSpec`] when a calibration invariant is violated.
pub fn extra7(fidelity: Fidelity, sched: &Scheduler) -> Result<Vec<Table>> {
    let shipped = CalibParams::paper_2006();
    let start = perturbed_start();

    // --- The fit itself, over the families that identify the four axes.
    let fit_eval = Evaluator::with_families(
        sched,
        fidelity,
        &[Family::Stream, Family::Latency, Family::Lookup],
    );
    let config = fit_config(fidelity);
    let outcome = fit(&fit_eval, start, &config)?;
    if !outcome.converged {
        return Err(calibration_violation(format!(
            "fit did not converge: best score {:.6} after {} evaluations",
            outcome.best_score, outcome.evaluations
        )));
    }

    // --- Invariant 1: every parameter within tolerance of shipped.
    for field in &CalibParams::FIELDS {
        let fitted = field.read(&outcome.fitted);
        let reference = field.read(&shipped);
        let rel = ((fitted - reference) / reference).abs();
        if rel > RECOVERY_TOLERANCE {
            return Err(calibration_violation(format!(
                "parameter '{}' fitted to {fitted:.6e}, {:.1}% from shipped {reference:.6e}",
                field.name,
                rel * 100.0
            )));
        }
    }

    // --- Invariant 2: the full registry at start / fitted / shipped.
    let full = Evaluator::new(sched, fidelity);
    let at_start = full.evaluate(&start)?;
    let at_fitted = full.evaluate(&outcome.fitted)?;
    let at_shipped = full.evaluate(&shipped)?;
    for miss in at_fitted.misses() {
        if miss.family == Family::Headline {
            return Err(calibration_violation(format!(
                "headline claim '{}' fails at the fitted point (predicted {:.4})",
                miss.id, miss.predicted
            )));
        }
    }

    // --- Invariant 3: sensitivity ranks the fitted axes where expected.
    let sense_axes: Vec<usize> = SENSITIVITY_AXES.iter().map(|n| axis(n)).collect();
    let effects = elementary_effects(&fit_eval, &shipped, &sense_axes, SENSITIVITY_STEP)?;
    let latency_rank = ranking(&effects, Family::Latency);
    match latency_rank.first() {
        Some(top) if top.param == "dram_latency" => {}
        other => {
            return Err(calibration_violation(format!(
                "expected dram_latency to top the latency sensitivity ranking, got {:?}",
                other.map(|e| e.param)
            )))
        }
    }
    let stream_rank = ranking(&effects, Family::Stream);
    if !stream_rank.iter().any(|e| e.param == "ht_bandwidth") {
        return Err(calibration_violation(
            "ht_bandwidth has no measurable effect on the stream family",
        ));
    }
    let lookup_rank = ranking(&effects, Family::Lookup);
    for param in ["lookup_mlp", "lookup_latency"] {
        if !lookup_rank.iter().any(|e| e.param == param) {
            return Err(calibration_violation(format!(
                "{param} has no measurable effect on the lookup family"
            )));
        }
    }

    // --- Tables. Values only — no scheduler statistics, so the bytes
    // are identical at any job count or cache temperature.
    let mut summary =
        Table::with_columns("Extra X7: calibration fit summary", &["Metric", "Value"]);
    summary.push_row("evaluations", vec![Cell::num_with(outcome.evaluations as f64, 0)]);
    summary.push_row("score at perturbed start", vec![Cell::num_with(outcome.start_score, 6)]);
    summary.push_row("score at fitted point", vec![Cell::num_with(outcome.best_score, 6)]);
    summary.push_row("converged", vec![Cell::text(if outcome.converged { "yes" } else { "no" })]);

    let mut params = Table::with_columns(
        "Extra X7: fitted vs shipped parameters (ratios to shipped)",
        &["Parameter", "Start/shipped", "Fitted/shipped", "Delta %"],
    );
    for field in &CalibParams::FIELDS {
        let reference = field.read(&shipped);
        let s = field.read(&outcome.start) / reference;
        let f = field.read(&outcome.fitted) / reference;
        params.push_row(
            field.name,
            vec![Cell::num_with(s, 4), Cell::num_with(f, 4), Cell::num_with((f - 1.0) * 100.0, 2)],
        );
    }

    let mut scores = Table::with_columns(
        "Extra X7: weighted registry score by family",
        &["Family", "Perturbed start", "Fitted", "Shipped"],
    );
    for family in Family::all() {
        scores.push_row(
            family.key(),
            vec![
                Cell::num_with(at_start.family_score(family), 6),
                Cell::num_with(at_fitted.family_score(family), 6),
                Cell::num_with(at_shipped.family_score(family), 6),
            ],
        );
    }

    let mut sense = Table::with_columns(
        "Extra X7: sensitivity ranking (|delta family score| per unit step)",
        &["Family: parameter", "Magnitude"],
    );
    for (family, rank) in [
        (Family::Stream, &stream_rank),
        (Family::Latency, &latency_rank),
        (Family::Lookup, &lookup_rank),
    ] {
        for effect in rank.iter().take(3) {
            sense.push_row(
                format!("{}: {}", family.key(), effect.param),
                vec![Cell::num_with(effect.magnitude, 4)],
            );
        }
    }

    Ok(vec![summary, params, scores, sense])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extra7_passes_its_own_invariants_quick() {
        let sched = Scheduler::new(2);
        let tables = extra7(Fidelity::Quick, &sched).unwrap();
        assert_eq!(tables.len(), 4);
        assert!(tables[0].value("evaluations", "Value").unwrap() <= 150.0);
        assert!(tables[0].to_csv().contains("converged,yes"));
        // The fitted point sits within 5% of shipped on every axis, so
        // every ratio cell in the parameter table is close to one.
        assert_eq!(tables[1].num_rows(), CalibParams::FIELDS.len());
    }

    #[test]
    fn extra7_is_deterministic_across_job_counts() {
        let a = extra7(Fidelity::Quick, &Scheduler::new(1)).unwrap();
        let b = extra7(Fidelity::Quick, &Scheduler::new(4)).unwrap();
        let fmt =
            |tables: &[Table]| tables.iter().map(|t| t.to_csv()).collect::<Vec<_>>().join("\n");
        assert_eq!(fmt(&a), fmt(&b));
    }

    #[test]
    fn warm_cache_rerun_needs_no_engine_runs() {
        let sched = Scheduler::new(2);
        let _ = extra7(Fidelity::Quick, &sched).unwrap();
        let runs = sched.stats().engine_runs;
        let _ = extra7(Fidelity::Quick, &sched).unwrap();
        assert_eq!(sched.stats().engine_runs, runs, "second x7 pass must be pure cache hits");
    }
}
