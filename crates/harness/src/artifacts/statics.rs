//! Static tables (configuration inventories): Tables 1, 5 and 6.

use crate::report::{Cell, Table};
use corescope_affinity::Scheme;
use corescope_apps::md::AmberBenchmark;
use corescope_machine::systems;

/// Table 1: the three evaluation systems.
pub fn table1() -> Table {
    let mut t = Table::with_columns(
        "Table 1: System configurations",
        &["Name", "GHz", "Cores/socket", "Sockets", "Total cores", "Node mem (GB)"],
    );
    for spec in systems::all() {
        let sockets = spec.sockets.len();
        let mem_gb: f64 = spec.sockets.iter().sum::<f64>() / (1024.0 * 1024.0 * 1024.0);
        t.push_row(
            spec.name.clone(),
            vec![
                Cell::num_with(spec.core.frequency_hz / 1e9, 1),
                Cell::num_with(spec.cores_per_socket as f64, 0),
                Cell::num_with(sockets as f64, 0),
                Cell::num_with((sockets * spec.cores_per_socket) as f64, 0),
                Cell::num_with(mem_gb, 0),
            ],
        );
    }
    t
}

/// Table 5: the placement-scheme catalogue.
pub fn table5() -> Table {
    let mut t = Table::with_columns(
        "Table 5: numactl options used for experiments",
        &["Name", "Description"],
    );
    for scheme in Scheme::all() {
        let description = match scheme {
            Scheme::Default => "Default (no numactl)",
            Scheme::OneMpiLocalAlloc => "One MPI task per socket and local allocation policy",
            Scheme::OneMpiMembind => "One MPI task per socket with explicit memory binding",
            Scheme::TwoMpiLocalAlloc => "Two MPI tasks per socket and local allocation policy",
            Scheme::TwoMpiMembind => "Two MPI tasks per socket with explicit memory binding",
            Scheme::Interleave => "Interleaved memory allocation",
        };
        t.push_row(scheme.name(), vec![Cell::text(description)]);
    }
    t
}

/// Table 6: the AMBER benchmark systems.
pub fn table6() -> Table {
    let mut t = Table::with_columns(
        "Table 6: Description of AMBER benchmarks",
        &["Benchmark", "Atoms", "MD technique"],
    );
    for b in AmberBenchmark::all() {
        let method = match b.method {
            corescope_apps::md::AmberMethod::Pme => "PME",
            corescope_apps::md::AmberMethod::Gb => "GB",
        };
        t.push_row(b.name, vec![Cell::num_with(b.atoms as f64, 0), Cell::text(method)]);
    }
    t
}

/// Extra X2: the lmbench-style memory-latency plateaus the coherence
/// model predicts (load-to-use ns from core 0 to each NUMA node).
pub fn extra2() -> Table {
    use corescope_machine::Machine;
    let mut t = Table::with_columns(
        "Extra X2: predicted load-to-use latency from core 0 (ns)",
        &["System", "node0", "node1", "node2 (2 hops)", "farthest"],
    );
    for spec in systems::all() {
        let machine = Machine::new(spec);
        let table = corescope_kernels::memlat::latency_table(&machine);
        let row = &table[0];
        let two_hops = if row.len() > 4 { Cell::num(row[4]) } else { Cell::Dash };
        t.push_row(
            machine.spec().name.clone(),
            vec![
                Cell::num(row[0]),
                Cell::num(row[1]),
                two_hops,
                Cell::num(row.iter().copied().fold(0.0, f64::max)),
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.value("longs", "Total cores"), Some(16.0));
        assert_eq!(t.value("tiger", "GHz"), Some(2.2));
    }

    #[test]
    fn table5_has_six_schemes() {
        assert_eq!(table5().num_rows(), 6);
    }

    #[test]
    fn extra2_latencies_grow_with_distance() {
        let t = extra2();
        let local = t.value("longs", "node0").unwrap();
        let far = t.value("longs", "farthest").unwrap();
        assert!(far > local + 100.0, "{local} -> {far}");
        assert!(t.value("dmz", "node0").unwrap() < local);
    }

    #[test]
    fn table6_atom_counts() {
        let t = table6();
        assert_eq!(t.value("JAC", "Atoms"), Some(23_558.0));
        assert_eq!(t.value("gb_mb", "Atoms"), Some(2_492.0));
    }
}
