//! Intel MPI Benchmark artifacts: Figures 14–17 (intra-node PingPong and
//! Exchange on DMZ, across implementations and binding configurations).

use crate::context::Systems;
use crate::fidelity::Fidelity;
use crate::report::{Cell, Table};
use corescope_affinity::{policy, Scheme};
use corescope_machine::engine::RankPlacement;
use corescope_machine::{CoreId, Machine, Result};
use corescope_smpi::imb::{exchange_time, imb_message_sizes, pingpong_time};
use corescope_smpi::{LockLayer, MpiImpl, MpiProfile};

fn sizes(fidelity: Fidelity) -> Vec<f64> {
    fidelity.thin(&imb_message_sizes())
}

fn reps(fidelity: Fidelity, bytes: f64) -> usize {
    // Fewer repetitions for multi-megabyte messages, as IMB does.
    let base = if bytes >= 1e6 { 4 } else { 40 };
    fidelity.steps(base).max(2)
}

/// Figures 14/15 placements: two unbound processes (the OS scatters them
/// across the two sockets).
fn unbound2(machine: &Machine) -> Vec<RankPlacement> {
    Scheme::Default.resolve(machine, 2).expect("dmz places 2 ranks")
}

/// Figure 14: PingPong latency and bandwidth across MPICH2/LAM/OpenMPI.
pub fn figure14(fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let machine = &systems.dmz;
    let placements = unbound2(machine);
    let mut latency = Table::with_columns(
        "Figure 14a: IMB PingPong latency, DMZ (microseconds)",
        &["Bytes", "MPICH2", "LAM", "OpenMPI"],
    );
    let mut bandwidth = Table::with_columns(
        "Figure 14b: IMB PingPong bandwidth, DMZ (MB/s)",
        &["Bytes", "MPICH2", "LAM", "OpenMPI"],
    );
    for bytes in sizes(fidelity) {
        let mut lat_cells = Vec::new();
        let mut bw_cells = Vec::new();
        for imp in MpiImpl::all() {
            // Compare the implementations' own transports on an equal
            // (spin-lock) footing, as the paper's single-node runs did.
            let profile = imp.profile();
            let t = pingpong_time(
                machine,
                &placements,
                &profile,
                LockLayer::USysV,
                bytes,
                reps(fidelity, bytes),
            )?;
            lat_cells.push(Cell::num(t * 1e6));
            bw_cells.push(Cell::num(bytes / t / 1e6));
        }
        latency.push_row(format!("{bytes:.0}"), lat_cells);
        bandwidth.push_row(format!("{bytes:.0}"), bw_cells);
    }
    Ok(vec![latency, bandwidth])
}

/// Figure 15: Exchange across implementations (2 and 4 processes).
pub fn figure15(fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let machine = &systems.dmz;
    let p2 = unbound2(machine);
    let p4 = Scheme::Default.resolve(machine, 4).expect("dmz places 4 ranks");
    let mut table = Table::with_columns(
        "Figure 15: IMB Exchange time per iteration, DMZ (microseconds)",
        &["Bytes", "MPICH2 (2p)", "LAM (2p)", "OpenMPI (2p)", "OpenMPI (4p)"],
    );
    for bytes in sizes(fidelity) {
        let mut cells = Vec::new();
        for imp in MpiImpl::all() {
            let profile = imp.profile();
            let t = exchange_time(
                machine,
                &p2,
                &profile,
                LockLayer::USysV,
                2,
                bytes,
                reps(fidelity, bytes),
            )?;
            cells.push(Cell::num(t * 1e6));
        }
        let profile = MpiImpl::OpenMpi.profile();
        let t4 = exchange_time(
            machine,
            &p4,
            &profile,
            LockLayer::USysV,
            4,
            bytes,
            reps(fidelity, bytes),
        )?;
        cells.push(Cell::num(t4 * 1e6));
        table.push_row(format!("{bytes:.0}"), cells);
    }
    Ok(vec![table])
}

/// The binding configurations of Figures 16/17.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Binding {
    /// Both processes bound to socket 0 (`numactl --cpubind`).
    BoundSocket0,
    /// Both processes bound to socket 1.
    BoundSocket1,
    /// Unbound: the OS scatters the two processes across sockets.
    Unbound,
    /// Unbound with two additional parked processes. The parked
    /// processes' scheduler noise is modelled as a 15% software-overhead
    /// surcharge (the engine's parked ranks are otherwise silent).
    UnboundParked,
}

impl Binding {
    fn label(self) -> &'static str {
        match self {
            Binding::BoundSocket0 => "2 procs, bound 0",
            Binding::BoundSocket1 => "2 procs, bound 1",
            Binding::Unbound => "2 procs, unbound",
            Binding::UnboundParked => "2 procs, unbound, 2 parked",
        }
    }

    fn placements(self, machine: &Machine) -> Vec<RankPlacement> {
        let socket_cores = |s: usize| -> Vec<RankPlacement> {
            (0..2)
                .map(|c| {
                    let core = CoreId::new(2 * s + c);
                    RankPlacement::new(core, policy::local(machine, core))
                })
                .collect()
        };
        match self {
            Binding::BoundSocket0 => socket_cores(0),
            Binding::BoundSocket1 => socket_cores(1),
            Binding::Unbound => unbound2(machine),
            Binding::UnboundParked => {
                Scheme::Default.resolve(machine, 4).expect("dmz places 4 ranks")
            }
        }
    }

    fn profile(self) -> MpiProfile {
        let mut profile = MpiImpl::OpenMpi.profile();
        if self == Binding::UnboundParked {
            profile.overhead *= 1.15;
        }
        profile
    }
}

/// Figure 16: OpenMPI PingPong under the binding configurations.
pub fn figure16(fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let machine = &systems.dmz;
    let bindings =
        [Binding::BoundSocket0, Binding::BoundSocket1, Binding::Unbound, Binding::UnboundParked];
    let mut columns = vec!["Bytes".to_string()];
    columns.extend(bindings.iter().map(|b| b.label().to_string()));
    let mut table = Table::new(
        "Figure 16: OpenMPI PingPong bandwidth with scheduler affinity, DMZ (MB/s)",
        columns,
    );
    for bytes in sizes(fidelity) {
        let mut cells = Vec::new();
        for binding in bindings {
            let profile = binding.profile();
            let t = pingpong_time(
                machine,
                &binding.placements(machine),
                &profile,
                LockLayer::USysV,
                bytes,
                reps(fidelity, bytes),
            )?;
            cells.push(Cell::num(bytes / t / 1e6));
        }
        table.push_row(format!("{bytes:.0}"), cells);
    }
    Ok(vec![table])
}

/// Figure 17: OpenMPI Exchange under the binding configurations plus the
/// 4-process run.
pub fn figure17(fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let machine = &systems.dmz;
    let mut table = Table::with_columns(
        "Figure 17: OpenMPI Exchange time with scheduler affinity, DMZ (microseconds)",
        &["Bytes", "2 procs, bound 0", "2 procs, unbound", "2 procs, unbound, 2 parked", "4 procs"],
    );
    for bytes in sizes(fidelity) {
        let mut cells = Vec::new();
        for binding in [Binding::BoundSocket0, Binding::Unbound, Binding::UnboundParked] {
            let profile = binding.profile();
            let active = 2;
            let t = exchange_time(
                machine,
                &binding.placements(machine),
                &profile,
                LockLayer::USysV,
                active,
                bytes,
                reps(fidelity, bytes),
            )?;
            cells.push(Cell::num(t * 1e6));
        }
        let profile = MpiImpl::OpenMpi.profile();
        let p4 = Scheme::Default.resolve(machine, 4).expect("dmz places 4 ranks");
        let t4 = exchange_time(
            machine,
            &p4,
            &profile,
            LockLayer::USysV,
            4,
            bytes,
            reps(fidelity, bytes),
        )?;
        cells.push(Cell::num(t4 * 1e6));
        table.push_row(format!("{bytes:.0}"), cells);
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure14_implementation_ordering_flips_with_size() {
        let tables = figure14(Fidelity::Quick).unwrap();
        let (latency, bandwidth) = (&tables[0], &tables[1]);
        // Small messages: MPICH2 latency is the worst, LAM the best.
        let row = "4";
        let mpich = latency.value(row, "MPICH2").unwrap();
        let lam = latency.value(row, "LAM").unwrap();
        assert!(mpich > lam, "MPICH2 {mpich} vs LAM {lam} at 4 B");
        // Large messages: MPICH2 bandwidth wins.
        let big = "4194304";
        let bw_mpich = bandwidth.value(big, "MPICH2").unwrap();
        let bw_lam = bandwidth.value(big, "LAM").unwrap();
        assert!(bw_mpich > bw_lam, "{bw_mpich} vs {bw_lam} at 4 MiB");
    }

    #[test]
    fn figure16_bound_beats_unbound_by_about_ten_percent() {
        let t = &figure16(Fidelity::Quick).unwrap()[0];
        let big = "1048576";
        let bound = t.value(big, "2 procs, bound 0").unwrap();
        let unbound = t.value(big, "2 procs, unbound").unwrap();
        let gain = bound / unbound;
        assert!(gain > 1.05 && gain < 1.25, "paper: 10-13% intra-socket benefit, got {gain:.3}");
        // Parked processes cost a little extra.
        let parked = t.value(big, "2 procs, unbound, 2 parked").unwrap();
        assert!(parked <= unbound * 1.01);
    }

    #[test]
    fn figure17_four_procs_cost_more_than_two() {
        let t = &figure17(Fidelity::Quick).unwrap()[0];
        let big = "65536";
        let two = t.value(big, "2 procs, unbound").unwrap();
        let four = t.value(big, "4 procs").unwrap();
        assert!(four > two, "4-proc exchange {four} vs 2-proc {two}");
    }
}
