//! Extra X10: the NUMA crossover of the XSBench-style lookup family.
//!
//! The artifact sweeps the cross-section lookup proxy
//! ([`corescope_apps::xs`]) over per-rank table size × placement scheme
//! × active core count on DMZ and Longs, and *checks* the headline
//! claim rather than just printing it:
//!
//! - **first-touch wins small**: while every rank's table copy fits its
//!   local node's usable DIMM share, `localalloc` keeps every lookup
//!   local and strictly beats interleaving (which pays the machine-mean
//!   latency on every access);
//! - **interleave wins large**: once the per-rank table exceeds the
//!   node's share, first-touch's late ranks go mostly remote and the
//!   slowest rank falls behind interleave's uniform spread — the
//!   crossover XSBench-class codes show on real NUMA hardware. Above
//!   the boundary interleave must never trail first-touch and must
//!   strictly win at some swept size; it need not win at *every* large
//!   size, because far enough past the boundary the OS's uniform
//!   fallback hands first-touch's slowest (corner) rank the interleave
//!   layout verbatim and the two tie — visible in the Longs ×16 rows
//!   at 2× the boundary;
//! - **membind never beats first-touch on small tables**: forcing the
//!   table onto the centrality-ordered nodes makes distant ranks pay
//!   remote latency that first-touch would have avoided;
//! - **double-run determinism**: rendering the sweep twice through the
//!   scheduler must produce byte-identical CSV (the second pass is
//!   served from the result cache — zero extra engine runs — and CI
//!   additionally byte-diffs two separate `repro` processes).
//!
//! Table sizes are chosen relative to the machine's own first-touch
//! spill boundary ([`first_touch_crossover_bytes`]) so the sweep brackets
//! the crossover on every machine, deliberately avoiding the boundary
//! itself where the two placements tie.

use crate::aggregate::pivot_table;
use crate::fidelity::Fidelity;
use crate::report::{Cell, Table};
use corescope_affinity::Scheme;
use corescope_apps::xs::first_touch_crossover_bytes;
use corescope_machine::{CoreId, Error, Result};
use corescope_sched::{Placement, Scenario, Scheduler, System, Workload};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Nuclides in the unionized table (XSBench's "small" material set).
const NUCLIDES: u64 = 64;

/// Bytes per unionized grid point: one energy key plus five cross
/// sections per nuclide, all doubles (matches `XsParams::table_bytes`).
const BYTES_PER_POINT: f64 = 8.0 * (1.0 + 5.0 * NUCLIDES as f64);

/// Per-rank table sizes as fractions of the machine's first-touch spill
/// boundary. The boundary itself (ratio 1.0) is a modeled tie, so the
/// sweep brackets it from both sides instead of sitting on it.
const SIZE_RATIOS: [f64; 4] = [0.25, 0.5, 1.5, 2.0];

/// The placement schemes under test, in column order: first-touch
/// (packed localalloc), round-robin interleave, centrality-ordered
/// membind.
const SCHEMES: [Scheme; 3] = [Scheme::TwoMpiLocalAlloc, Scheme::Interleave, Scheme::TwoMpiMembind];

/// A winner must beat the loser's lookup rate by at least this factor;
/// anything closer is a tie and fails the check as inconclusive.
const WIN_MARGIN: f64 = 1.02;

/// Above the spill boundary interleave may tie first-touch (the uniform
/// OS fallback) but must never fall measurably behind it.
const TIE_FLOOR: f64 = 0.999;

/// The swept machines with their active-core counts; the last count is
/// full packing, where the crossover checks apply.
fn sweeps() -> [(System, [usize; 2]); 2] {
    [(System::Dmz, [2, 4]), (System::Longs, [8, 16])]
}

fn xs_err(context: &str, detail: impl std::fmt::Display) -> Error {
    Error::InvalidSpec(format!("X10 {context}: {detail}"))
}

/// The first-touch spill boundary for `nranks` packed ranks, in bytes
/// per rank.
fn boundary_bytes(system: System, nranks: usize) -> Result<f64> {
    let machine = system.machine();
    let cores: Vec<CoreId> =
        Scheme::TwoMpiLocalAlloc.resolve(&machine, nranks)?.into_iter().map(|p| p.core).collect();
    Ok(first_touch_crossover_bytes(&machine, &cores))
}

fn lookups_per_rank(fidelity: Fidelity) -> u64 {
    fidelity.steps(1 << 20) as u64
}

fn scenario(
    system: System,
    nranks: usize,
    scheme: Scheme,
    grid_points: u64,
    fidelity: Fidelity,
) -> Scenario {
    Scenario::new(
        system,
        nranks,
        Workload::XsLookupStar {
            grid_points,
            nuclides: NUCLIDES,
            lookups_per_rank: lookups_per_rank(fidelity),
        },
    )
    .with_fidelity(fidelity)
    .with_placement(Placement::Scheme(scheme))
    .with_mpi(corescope_smpi::MpiImpl::Lam)
}

/// One rendered sweep: per-machine pivot tables plus the full-packing
/// rate matrix `[machine][size ratio][scheme]` the checks reason about.
struct Sweep {
    tables: Vec<Table>,
    full_pack_rates: Vec<Vec<Vec<f64>>>,
    scenarios: usize,
}

/// Enumerates the whole grid, runs it as one batch through `sched`, and
/// renders one aggregate-lookup-rate table per machine.
fn run_sweep(fidelity: Fidelity, sched: &Scheduler) -> Result<Sweep> {
    // Per-machine grid sizes, derived from the full-packing boundary.
    let mut grids: Vec<Vec<u64>> = Vec::new();
    let mut batch = Vec::new();
    for (system, counts) in sweeps() {
        let boundary = boundary_bytes(system, counts[counts.len() - 1])?;
        let grid: Vec<u64> =
            SIZE_RATIOS.iter().map(|r| (r * boundary / BYTES_PER_POINT).round() as u64).collect();
        for &nranks in &counts {
            for &grid_points in &grid {
                for scheme in SCHEMES {
                    batch.push(scenario(system, nranks, scheme, grid_points, fidelity));
                }
            }
        }
        grids.push(grid);
    }
    let scenarios = batch.len();
    let mut outcomes = sched.run_batch(&batch).into_iter();

    let lookups = lookups_per_rank(fidelity) as f64;
    let mut tables = Vec::new();
    let mut full_pack_rates = Vec::new();
    for ((system, counts), grid) in sweeps().into_iter().zip(&grids) {
        let mut rows = Vec::new();
        let mut full_pack = vec![Vec::new(); SIZE_RATIOS.len()];
        for &nranks in &counts {
            for (size, &grid_points) in grid.iter().enumerate() {
                let mut values = Vec::new();
                for _ in SCHEMES {
                    let completed = outcomes.next().expect("one outcome per sweep cell")?;
                    // Aggregate lookup rate in Mlookups/s: higher is
                    // better, monotone against the slowest rank's
                    // placement-weighted latency.
                    let rate = nranks as f64 * lookups / completed.result.makespan / 1e6;
                    if nranks == counts[counts.len() - 1] {
                        full_pack[size].push(rate);
                    }
                    values.push(Some(rate));
                }
                let gib = grid_points as f64 * BYTES_PER_POINT / GIB;
                rows.push((format!("{gib:.2} GiB x{nranks}"), values));
            }
        }
        let title = format!(
            "Extra X10: cross-section lookup rate on {} (Mlookups/s aggregate)",
            system.key()
        );
        let columns: Vec<&str> =
            std::iter::once("Table per rank").chain(SCHEMES.iter().map(|s| s.key())).collect();
        tables.push(pivot_table(&title, &columns, &rows));
        full_pack_rates.push(full_pack);
    }
    Ok(Sweep { tables, full_pack_rates, scenarios })
}

/// Extra X10 entry point.
///
/// # Errors
///
/// Propagates engine errors, and fails with a typed
/// [`Error::InvalidSpec`] when a crossover or determinism check is
/// violated.
pub fn extra10(fidelity: Fidelity, sched: &Scheduler) -> Result<Vec<Table>> {
    let sweep = run_sweep(fidelity, sched)?;
    let csv = |tables: &[Table]| tables.iter().map(Table::to_csv).collect::<Vec<_>>().join("\n");
    let first_pass = csv(&sweep.tables);

    // Double-run determinism: re-enumerate and re-render. The scheduler
    // serves the second pass from its result cache, so the bytes must
    // come out identical (CI repeats this across two processes).
    let second = run_sweep(fidelity, sched)?;
    if csv(&second.tables) != first_pass {
        return Err(xs_err("determinism", "second sweep rendered different bytes"));
    }

    // The crossover checks, at full packing on every machine. Columns
    // follow SCHEMES order: first-touch, interleave, membind.
    let small = 0;
    let above: Vec<usize> = (0..SIZE_RATIOS.len()).filter(|&i| SIZE_RATIOS[i] > 1.0).collect();
    let mut margins = Vec::new();
    for ((system, _), rates) in sweeps().into_iter().zip(&sweep.full_pack_rates) {
        let (ft, il, mb) = (0, 1, 2);
        let il_above = |fold: fn(f64, f64) -> f64, seed: f64| {
            above.iter().map(|&i| rates[i][il] / rates[i][ft]).fold(seed, fold)
        };
        let checks = [
            ("first-touch beats interleave small", rates[small][ft] / rates[small][il], WIN_MARGIN),
            ("first-touch beats membind small", rates[small][ft] / rates[small][mb], WIN_MARGIN),
            (
                "interleave never trails above the boundary",
                il_above(f64::min, f64::INFINITY),
                TIE_FLOOR,
            ),
            ("interleave wins above the boundary", il_above(f64::max, 0.0), WIN_MARGIN),
        ];
        for (what, margin, need) in checks {
            if margin.is_nan() || margin < need {
                return Err(xs_err(
                    system.key(),
                    format!("{what} violated: rate ratio {margin:.4} < {need}"),
                ));
            }
            margins.push((format!("{}: {what}", system.key()), margin));
        }
    }

    let crc = corescope_store::frame::crc32(first_pass.as_bytes());
    let mut proof = Table::with_columns(
        "Extra X10: NUMA-crossover proof (rate ratios, winner:loser)",
        &["check", "value", "status"],
    );
    proof.push_row(
        "sweep scenarios",
        vec![Cell::num_with(sweep.scenarios as f64, 0), Cell::text("ok")],
    );
    for (label, margin) in margins {
        proof.push_row(label, vec![Cell::num_with(margin, 4), Cell::text("ok")]);
    }
    proof.push_row(
        "double run byte-identical (crc32)",
        vec![Cell::num_with(f64::from(crc), 0), Cell::text("ok")],
    );

    let mut tables = sweep.tables;
    tables.push(proof);
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extra10_passes_its_own_checks_quick() {
        let sched = Scheduler::new(2);
        let tables = extra10(Fidelity::Quick, &sched).unwrap();
        assert_eq!(tables.len(), 3, "dmz, longs, proof");

        // Every machine table carries its full-packing block, and the
        // proof table records only passing checks (the artifact errors
        // out on any violation before rendering it).
        for (t, nranks) in [(&tables[0], 4), (&tables[1], 16)] {
            let csvs = t.to_csv();
            assert!(csvs.contains(&format!("x{nranks}")), "{csvs}");
            assert!(csvs.contains("two_localalloc"), "{csvs}");
        }
        let proof = tables[2].to_csv();
        assert!(proof.contains("interleave wins above the boundary"), "{proof}");
        assert!(!proof.contains("FAIL"), "{proof}");
    }

    #[test]
    fn extra10_is_deterministic_across_job_counts() {
        let a = extra10(Fidelity::Quick, &Scheduler::new(1)).unwrap();
        let b = extra10(Fidelity::Quick, &Scheduler::new(4)).unwrap();
        let fmt =
            |tables: &[Table]| tables.iter().map(|t| t.to_csv()).collect::<Vec<_>>().join("\n");
        assert_eq!(fmt(&a), fmt(&b));
    }

    #[test]
    fn warm_cache_rerun_needs_no_engine_runs() {
        let sched = Scheduler::new(2);
        let _ = extra10(Fidelity::Quick, &sched).unwrap();
        let runs = sched.stats().engine_runs;
        let _ = extra10(Fidelity::Quick, &sched).unwrap();
        assert_eq!(sched.stats().engine_runs, runs, "second x10 pass must be pure cache hits");
    }

    #[test]
    fn the_sweep_brackets_the_boundary_on_both_machines() {
        for (system, counts) in sweeps() {
            let b = boundary_bytes(system, counts[1]).unwrap();
            assert!(b > 0.1 * GIB, "{}: boundary {b}", system.key());
            assert!(SIZE_RATIOS.first().unwrap() * b < b);
            assert!(SIZE_RATIOS.last().unwrap() * b > b);
        }
        // DMZ: 2 GiB/node x 0.75 usable / 2 packed ranks per node.
        let dmz = boundary_bytes(System::Dmz, 4).unwrap();
        assert!((dmz - 0.75 * GIB).abs() < 2.0 * BYTES_PER_POINT, "{dmz}");
    }
}
