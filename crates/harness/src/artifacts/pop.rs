//! POP artifacts: Tables 12 (phase speedups), 13 (baroclinic vs numactl
//! options) and 14 (barotropic vs numactl options).

use crate::aggregate::pivot_table;
use crate::context::{default_stack, scheme_sweep, Systems};
use crate::fidelity::Fidelity;
use crate::report::Table;
use corescope_affinity::Scheme;
use corescope_apps::ocean::PopModel;
use corescope_machine::{Error, Machine, Result};
use corescope_smpi::CommWorld;

fn model(fidelity: Fidelity) -> PopModel {
    let mut m = PopModel::x1();
    m.steps = fidelity.steps(m.steps).max(2);
    m
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    Baroclinic,
    Barotropic,
}

fn phase_time(
    machine: &Machine,
    scheme: Scheme,
    n: usize,
    pop: &PopModel,
    phase: Phase,
) -> Result<Option<f64>> {
    let (profile, lock) = default_stack();
    let Ok(placements) = scheme.resolve(machine, n) else {
        return Ok(None);
    };
    let mut w = CommWorld::new(machine, placements, profile, lock);
    match phase {
        Phase::Baroclinic => pop.append_baroclinic(&mut w, pop.steps),
        Phase::Barotropic => pop.append_barotropic(&mut w, pop.steps),
    }
    Ok(Some(w.run()?.makespan))
}

/// A rank count that does not fit the machine, as a typed error
/// carrying the system and count instead of a panic.
fn unplaceable(system: &str, nranks: usize) -> Error {
    Error::InvalidSpec(format!("{nranks} rank(s) cannot be placed on {system}"))
}

/// Table 12: baroclinic/barotropic speedups across systems.
pub fn table12(fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let pop = model(fidelity);
    let mut rows = Vec::new();
    for (sys_name, machine, counts) in [
        ("DMZ", &systems.dmz, vec![2usize, 4]),
        ("Tiger", &systems.tiger, vec![2]),
        ("Longs", &systems.longs, vec![2, 4, 8, 16]),
    ] {
        let base: Vec<f64> = [Phase::Baroclinic, Phase::Barotropic]
            .into_iter()
            .map(|ph| {
                phase_time(machine, Scheme::Default, 1, &pop, ph)?
                    .ok_or_else(|| unplaceable(sys_name, 1))
            })
            .collect::<Result<_>>()?;
        for &n in &counts {
            let mut values = Vec::new();
            for (i, ph) in [Phase::Baroclinic, Phase::Barotropic].into_iter().enumerate() {
                let tn = phase_time(machine, Scheme::Default, n, &pop, ph)?
                    .ok_or_else(|| unplaceable(sys_name, n))?;
                values.push(Some(base[i] / tn));
            }
            rows.push((format!("{n} {sys_name}"), values));
        }
    }
    Ok(vec![pivot_table(
        "Table 12: POP multi-core speedup",
        &["Cores/system", "Baroclinic", "Barotropic"],
        &rows,
    )])
}

fn scheme_phase_tables(
    fidelity: Fidelity,
    phase: Phase,
    titles: (&str, &str),
) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let (profile, lock) = default_stack();
    let pop = model(fidelity);
    let label = match phase {
        Phase::Baroclinic => "baroclinic",
        Phase::Barotropic => "barotropic",
    };
    let build = |w: &mut CommWorld<'_>, _n: usize| match phase {
        Phase::Baroclinic => pop.append_baroclinic(w, pop.steps),
        Phase::Barotropic => pop.append_barotropic(w, pop.steps),
    };
    let workloads: Vec<(&str, &crate::context::WorkloadFn<'_>)> = vec![(label, &build)];
    let longs = scheme_sweep(titles.0, &systems.longs, &[2, 4, 8, 16], &workloads, &profile, lock)?;
    let dmz = scheme_sweep(titles.1, &systems.dmz, &[2, 4], &workloads, &profile, lock)?;
    Ok(vec![longs, dmz])
}

/// Table 13: baroclinic execution time vs schemes.
pub fn table13(fidelity: Fidelity) -> Result<Vec<Table>> {
    scheme_phase_tables(
        fidelity,
        Phase::Baroclinic,
        (
            "Table 13: numactl options vs POP baroclinic time, Longs (seconds)",
            "Table 13 (cont.): numactl options vs POP baroclinic time, DMZ (seconds)",
        ),
    )
}

/// Table 14: barotropic execution time vs schemes.
pub fn table14(fidelity: Fidelity) -> Result<Vec<Table>> {
    scheme_phase_tables(
        fidelity,
        Phase::Barotropic,
        (
            "Table 14: numactl options vs POP barotropic time, Longs (seconds)",
            "Table 14 (cont.): numactl options vs POP barotropic time, DMZ (seconds)",
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table12_scales_nearly_linearly() {
        let t = &table12(Fidelity::Quick).unwrap()[0];
        let clinic16 = t.value("16 Longs", "Baroclinic").unwrap();
        assert!(clinic16 > 10.0, "baroclinic at 16 cores = {clinic16:.1} (paper 16.11)");
        let tropic4_dmz = t.value("4 DMZ", "Barotropic").unwrap();
        assert!(tropic4_dmz > 3.0, "barotropic at 4 DMZ cores = {tropic4_dmz:.1}");
    }

    #[test]
    fn table13_localalloc_beats_membind_at_8() {
        let t = &table13(Fidelity::Quick).unwrap()[0];
        let la = t.value("8 baroclinic", "One MPI + Local Alloc").unwrap();
        let mb = t.value("8 baroclinic", "One MPI + Membind").unwrap();
        assert!(mb > la, "membind {mb:.1} vs localalloc {la:.1}");
    }

    #[test]
    fn table14_has_dash_for_one_per_socket_at_16() {
        let t = &table14(Fidelity::Quick).unwrap()[0];
        assert_eq!(t.value("16 barotropic", "One MPI + Local Alloc"), None);
        assert!(t.value("16 barotropic", "Two MPI + Local Alloc").is_some());
    }
}
