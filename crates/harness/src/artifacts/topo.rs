//! Extra X11: the "then vs now" generation study.
//!
//! The artifact sweeps full-packing STREAM and the XSBench-style lookup
//! proxy across every [`corescope_topo::Generation`] — the 2006
//! Opterons plus the chiplet (EPYC-like) and HBM+DRAM tiered machines —
//! under the placement schemes the paper graded, and *checks which 2006
//! verdicts flip* rather than just printing the grid:
//!
//! - **membind penalty vanishes on-package**: on DMZ, forcing
//!   `membind` packs four ranks' pages onto one DDR controller and
//!   roughly halves STREAM; on the chiplet machine the same policy
//!   spreads over all eight chiplet controllers (32 ranks need every
//!   node) and costs nothing;
//! - **interleave flips from loser to winner**: on DMZ, `localalloc`
//!   beats interleaving (remote pages pay the HyperTransport cap); on
//!   the tiered node interleaving *wins*, because striping over DRAM +
//!   HBM buys the extra controller's bandwidth;
//! - **the first-touch crossover moves with node capacity**: at 2 GiB
//!   per rank, Longs' 1.5 GiB usable share spills first-touch remote
//!   (interleave ties or wins — the X10 crossover), while the chiplet
//!   machine's 3 GiB share keeps every table local and first-touch
//!   wins again;
//! - **double-run determinism**: re-rendering the sweep through the
//!   scheduler must be byte-identical (the second pass is served from
//!   the result cache; CI additionally byte-diffs two processes).
//!
//! At least [`REQUIRED_FLIPS`] verdicts must flip for the artifact to
//! pass — the quantified form of "the 2006 conclusions do not survive
//! the machine generations unchanged".

use crate::aggregate::pivot_table;
use crate::fidelity::Fidelity;
use crate::report::{Cell, Table};
use corescope_affinity::Scheme;
use corescope_machine::{Error, Result};
use corescope_sched::{Placement, Scenario, Scheduler, System, Workload};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Nuclides in the lookup proxy's unionized table (matches X10).
const NUCLIDES: u64 = 64;

/// Bytes per unionized grid point (one energy key plus five cross
/// sections per nuclide, all doubles — matches `XsParams::table_bytes`).
const BYTES_PER_POINT: f64 = 8.0 * (1.0 + 5.0 * NUCLIDES as f64);

/// Per-rank lookup-table size for the crossover verdict: between
/// Longs' 1.5 GiB usable node share (first-touch spills) and the
/// chiplet machine's 3 GiB share (first-touch stays local).
const XS_TABLE_GIB: f64 = 2.0;

/// STREAM placement schemes, in column order: first-touch local,
/// round-robin interleave, centrality-ordered membind.
const STREAM_SCHEMES: [Scheme; 3] =
    [Scheme::TwoMpiLocalAlloc, Scheme::Interleave, Scheme::TwoMpiMembind];

/// Lookup placement schemes, in column order.
const XS_SCHEMES: [Scheme; 2] = [Scheme::TwoMpiLocalAlloc, Scheme::Interleave];

/// A winner must beat the loser by at least this rate ratio.
const WIN_MARGIN: f64 = 1.02;

/// A "penalty vanished" verdict needs the modern ratio at or below this.
const FREE_CEILING: f64 = 1.1;

/// The 2006 membind penalty must be at least this to count as a verdict.
const PENALTY_FLOOR: f64 = 1.4;

/// Above its spill boundary first-touch may tie interleave (the uniform
/// OS fallback) but must not measurably beat it.
const TIE_FLOOR: f64 = 0.999;

/// How many then-vs-now verdicts must flip for the artifact to pass.
const REQUIRED_FLIPS: usize = 2;

fn topo_err(context: &str, detail: impl std::fmt::Display) -> Error {
    Error::InvalidSpec(format!("X11 {context}: {detail}"))
}

fn stream_params(fidelity: Fidelity) -> corescope_kernels::stream::StreamParams {
    corescope_kernels::stream::StreamParams {
        sweeps: fidelity.steps(10).max(2),
        ..corescope_kernels::stream::StreamParams::default()
    }
}

fn lookups_per_rank(fidelity: Fidelity) -> u64 {
    fidelity.steps(1 << 20) as u64
}

fn stream_scenario(system: System, nranks: usize, scheme: Scheme, fidelity: Fidelity) -> Scenario {
    let p = stream_params(fidelity);
    Scenario::new(
        system,
        nranks,
        Workload::StreamStar {
            kernel: p.kernel,
            elements_per_rank: p.elements_per_rank,
            sweeps: p.sweeps,
        },
    )
    .with_fidelity(fidelity)
    .with_placement(Placement::Scheme(scheme))
    .with_mpi(corescope_smpi::MpiImpl::Lam)
}

fn xs_scenario(system: System, nranks: usize, scheme: Scheme, fidelity: Fidelity) -> Scenario {
    let grid_points = (XS_TABLE_GIB * GIB / BYTES_PER_POINT).round() as u64;
    Scenario::new(
        system,
        nranks,
        Workload::XsLookupStar {
            grid_points,
            nuclides: NUCLIDES,
            lookups_per_rank: lookups_per_rank(fidelity),
        },
    )
    .with_fidelity(fidelity)
    .with_placement(Placement::Scheme(scheme))
    .with_mpi(corescope_smpi::MpiImpl::Lam)
}

/// One rendered sweep: the STREAM and lookup pivot tables plus the raw
/// per-generation rate matrices the verdicts reason about.
struct Sweep {
    tables: Vec<Table>,
    /// `[generation][scheme]` per-core STREAM GB/s, `STREAM_SCHEMES` order.
    stream: Vec<Vec<f64>>,
    /// `[generation][scheme]` aggregate Mlookups/s, `XS_SCHEMES` order.
    xs: Vec<Vec<f64>>,
    scenarios: usize,
}

/// Enumerates the full generations × schemes grid at full packing, runs
/// it as one scheduler batch, and renders the two pivot tables.
fn run_sweep(fidelity: Fidelity, sched: &Scheduler, systems: &[System]) -> Result<Sweep> {
    let packs: Vec<usize> = systems.iter().map(|s| s.machine().num_cores()).collect();
    let mut batch = Vec::new();
    for (&system, &nranks) in systems.iter().zip(&packs) {
        for scheme in STREAM_SCHEMES {
            batch.push(stream_scenario(system, nranks, scheme, fidelity));
        }
        for scheme in XS_SCHEMES {
            batch.push(xs_scenario(system, nranks, scheme, fidelity));
        }
    }
    let scenarios = batch.len();
    let mut outcomes = sched.run_batch(&batch).into_iter();

    let p = stream_params(fidelity);
    let lookups = lookups_per_rank(fidelity) as f64;
    let mut stream_rows = Vec::new();
    let mut xs_rows = Vec::new();
    let mut stream = Vec::new();
    let mut xs = Vec::new();
    for (&system, &nranks) in systems.iter().zip(&packs) {
        let mut rates = Vec::new();
        for _ in STREAM_SCHEMES {
            let completed = outcomes.next().expect("one outcome per STREAM cell")?;
            // Per-core triad bandwidth, paced by the slowest rank.
            rates.push(p.bytes_per_rank() / completed.result.makespan / 1e9);
        }
        stream_rows.push((format!("{} x{nranks}", system.key()), to_cells(&rates)));
        stream.push(rates);

        let mut rates = Vec::new();
        for _ in XS_SCHEMES {
            let completed = outcomes.next().expect("one outcome per lookup cell")?;
            rates.push(nranks as f64 * lookups / completed.result.makespan / 1e6);
        }
        xs_rows.push((format!("{} x{nranks}", system.key()), to_cells(&rates)));
        xs.push(rates);
    }

    let stream_columns: Vec<&str> =
        std::iter::once("Generation").chain(STREAM_SCHEMES.iter().map(|s| s.key())).collect();
    let xs_columns: Vec<&str> =
        std::iter::once("Generation").chain(XS_SCHEMES.iter().map(|s| s.key())).collect();
    let tables = vec![
        pivot_table(
            "Extra X11: STREAM triad at full packing (GB/s per core)",
            &stream_columns,
            &stream_rows,
        ),
        pivot_table(
            &format!("Extra X11: xs-lookup at {XS_TABLE_GIB:.2} GiB/rank (Mlookups/s aggregate)"),
            &xs_columns,
            &xs_rows,
        ),
    ];
    Ok(Sweep { tables, stream, xs, scenarios })
}

fn to_cells(rates: &[f64]) -> Vec<Option<f64>> {
    rates.iter().map(|&r| Some(r)).collect()
}

/// One then-vs-now verdict: the 2006 claim, the inequality that held
/// then, and the inequality that must hold now for the verdict to flip.
struct Verdict {
    label: &'static str,
    then_system: System,
    now_system: System,
    /// `(ratio, floor)`: the 2006-side margin and its required minimum.
    then_check: (f64, f64),
    /// `(ratio, bound, at_most)`: the modern-side margin; `at_most`
    /// flips the comparison (a penalty that must have *vanished*).
    now_check: (f64, f64, bool),
}

impl Verdict {
    fn check(&self) -> Result<()> {
        let (then, floor) = self.then_check;
        if then.is_nan() || then < floor {
            return Err(topo_err(
                self.then_system.key(),
                format!("2006 verdict '{}' not reproduced: ratio {then:.4} < {floor}", self.label),
            ));
        }
        let (now, bound, at_most) = self.now_check;
        let holds = !now.is_nan() && if at_most { now <= bound } else { now >= bound };
        if !holds {
            let op = if at_most { "<=" } else { ">=" };
            return Err(topo_err(
                self.now_system.key(),
                format!("verdict '{}' failed to flip: ratio {now:.4} not {op} {bound}", self.label),
            ));
        }
        Ok(())
    }
}

/// The three verdicts, for whichever of their systems are present.
fn verdicts(systems: &[System], sweep: &Sweep) -> Vec<Verdict> {
    let index = |s: System| systems.iter().position(|&x| x == s);
    let stream = |s: System, scheme: usize| index(s).map(|i| sweep.stream[i][scheme]);
    let xs = |s: System, scheme: usize| index(s).map(|i| sweep.xs[i][scheme]);
    let (ft, il, mb) = (0, 1, 2);
    let mut out = Vec::new();
    if let (Some(then_la), Some(then_mb), Some(now_la), Some(now_mb)) = (
        stream(System::Dmz, ft),
        stream(System::Dmz, mb),
        stream(System::Epyc, ft),
        stream(System::Epyc, mb),
    ) {
        out.push(Verdict {
            label: "membind penalty vanishes on-package (STREAM local:membind)",
            then_system: System::Dmz,
            now_system: System::Epyc,
            then_check: (then_la / then_mb, PENALTY_FLOOR),
            now_check: (now_la / now_mb, FREE_CEILING, true),
        });
    }
    if let (Some(then_la), Some(then_il), Some(now_la), Some(now_il)) = (
        stream(System::Dmz, ft),
        stream(System::Dmz, il),
        stream(System::Hbm, ft),
        stream(System::Hbm, il),
    ) {
        out.push(Verdict {
            label: "interleave flips winner on the memory tier (STREAM)",
            then_system: System::Dmz,
            now_system: System::Hbm,
            // Then: local beats interleave. Now: interleave must win.
            then_check: (then_la / then_il, WIN_MARGIN),
            now_check: (now_il / now_la, WIN_MARGIN, false),
        });
    }
    if let (Some(then_ft), Some(then_il), Some(now_ft), Some(now_il)) =
        (xs(System::Longs, ft), xs(System::Longs, il), xs(System::Epyc, ft), xs(System::Epyc, il))
    {
        out.push(Verdict {
            label: "first-touch crossover moves with node capacity (xs-lookup)",
            then_system: System::Longs,
            now_system: System::Epyc,
            // Then: at 2 GiB/rank first-touch has spilled — interleave
            // ties or wins. Now: the 3 GiB chiplet share keeps it local
            // and first-touch wins again.
            then_check: (then_il / then_ft, TIE_FLOOR),
            now_check: (now_ft / now_il, WIN_MARGIN, false),
        });
    }
    out
}

/// Extra X11 entry point over an explicit generation list (the `repro
/// --machine` axis). `None` sweeps every generation.
///
/// # Errors
///
/// Propagates engine errors; fails with a typed [`Error::InvalidSpec`]
/// when a verdict or determinism check is violated, or when fewer than
/// [`REQUIRED_FLIPS`] verdicts are computable from the requested
/// machine set.
pub fn extra11_on(
    fidelity: Fidelity,
    sched: &Scheduler,
    machines: Option<&[System]>,
) -> Result<Vec<Table>> {
    let systems: Vec<System> = match machines {
        Some(list) if !list.is_empty() => list.to_vec(),
        _ => System::all().to_vec(),
    };
    let sweep = run_sweep(fidelity, sched, &systems)?;
    let csv = |tables: &[Table]| tables.iter().map(Table::to_csv).collect::<Vec<_>>().join("\n");
    let first_pass = csv(&sweep.tables);

    // Double-run determinism: the second enumeration is served from the
    // scheduler's result cache and must render identical bytes.
    let second = run_sweep(fidelity, sched, &systems)?;
    if csv(&second.tables) != first_pass {
        return Err(topo_err("determinism", "second sweep rendered different bytes"));
    }

    let verdicts = verdicts(&systems, &sweep);
    if verdicts.len() < REQUIRED_FLIPS {
        return Err(topo_err(
            "machine set",
            format!(
                "only {} of {REQUIRED_FLIPS} required verdicts are computable over {:?}",
                verdicts.len(),
                systems.iter().map(|s| s.key()).collect::<Vec<_>>()
            ),
        ));
    }
    for v in &verdicts {
        v.check()?;
    }

    let crc = corescope_store::frame::crc32(first_pass.as_bytes());
    let mut proof = Table::with_columns(
        "Extra X11: then-vs-now verdict flips (rate ratios)",
        &["verdict", "then", "now", "status"],
    );
    proof.push_row(
        "sweep scenarios",
        vec![Cell::num_with(sweep.scenarios as f64, 0), Cell::Dash, Cell::text("ok")],
    );
    for v in &verdicts {
        proof.push_row(
            format!("{} ({} -> {})", v.label, v.then_system.key(), v.now_system.key()),
            vec![
                Cell::num_with(v.then_check.0, 4),
                Cell::num_with(v.now_check.0, 4),
                Cell::text("flipped"),
            ],
        );
    }
    proof.push_row(
        "double run byte-identical (crc32)",
        vec![Cell::num_with(f64::from(crc), 0), Cell::Dash, Cell::text("ok")],
    );

    let mut tables = sweep.tables;
    tables.push(proof);
    Ok(tables)
}

/// Extra X11 entry point: every generation.
///
/// # Errors
///
/// See [`extra11_on`].
pub fn extra11(fidelity: Fidelity, sched: &Scheduler) -> Result<Vec<Table>> {
    extra11_on(fidelity, sched, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extra11_passes_its_own_checks_quick() {
        let sched = Scheduler::new(2);
        let tables = extra11(Fidelity::Quick, &sched).unwrap();
        assert_eq!(tables.len(), 3, "stream, xs, verdicts");
        let stream = tables[0].to_csv();
        for key in ["tiger x2", "dmz x4", "longs x16", "epyc x32", "hbm x16"] {
            assert!(stream.contains(key), "{stream}");
        }
        let proof = tables[2].to_csv();
        assert_eq!(proof.matches("flipped").count(), 3, "{proof}");
        assert!(proof.contains("byte-identical"), "{proof}");
    }

    #[test]
    fn extra11_is_deterministic_across_job_counts() {
        let fmt =
            |tables: &[Table]| tables.iter().map(|t| t.to_csv()).collect::<Vec<_>>().join("\n");
        let a = extra11(Fidelity::Quick, &Scheduler::new(1)).unwrap();
        let b = extra11(Fidelity::Quick, &Scheduler::new(4)).unwrap();
        assert_eq!(fmt(&a), fmt(&b));
    }

    #[test]
    fn warm_cache_rerun_needs_no_engine_runs() {
        let sched = Scheduler::new(2);
        let _ = extra11(Fidelity::Quick, &sched).unwrap();
        let runs = sched.stats().engine_runs;
        let _ = extra11(Fidelity::Quick, &sched).unwrap();
        assert_eq!(sched.stats().engine_runs, runs, "second x11 pass must be pure cache hits");
    }

    #[test]
    fn machine_axis_filters_the_sweep() {
        let sched = Scheduler::new(2);
        let machines = [System::Dmz, System::Epyc, System::Hbm, System::Longs];
        let tables = extra11_on(Fidelity::Quick, &sched, Some(&machines)).unwrap();
        let stream = tables[0].to_csv();
        assert!(!stream.contains("tiger"), "{stream}");
        assert!(stream.contains("epyc x32"), "{stream}");

        // A set that can compute no verdict is a typed error, not a
        // silently empty proof table.
        let err = extra11_on(Fidelity::Quick, &sched, Some(&[System::Tiger])).unwrap_err();
        assert!(err.to_string().contains("verdicts"), "{err}");
    }

    #[test]
    fn the_swept_ratios_are_quantified_verdicts() {
        // The napkin arithmetic behind the three flips, checked against
        // the real engine: DMZ membind halves STREAM while the chiplet
        // machine shrugs it off, and the tiered node's interleave win
        // exceeds 20%.
        let sched = Scheduler::new(2);
        let systems: Vec<System> = System::all().to_vec();
        let sweep = run_sweep(Fidelity::Quick, &sched, &systems).unwrap();
        let i = |s: System| systems.iter().position(|&x| x == s).unwrap();
        let dmz = &sweep.stream[i(System::Dmz)];
        assert!(dmz[0] / dmz[2] > 1.9, "dmz membind penalty ~2x: {dmz:?}");
        let epyc = &sweep.stream[i(System::Epyc)];
        assert!(epyc[0] / epyc[2] < 1.05, "epyc membind is nearly free: {epyc:?}");
        let hbm = &sweep.stream[i(System::Hbm)];
        assert!(hbm[1] / hbm[0] > 1.2, "hbm interleave wins >20%: {hbm:?}");
    }
}
