//! Extra X4: time-resolved bottleneck attribution.
//!
//! The paper *argues* that Longs' STREAM stops scaling because the
//! coherence-probe fabric saturates, that DMZ's STREAM is bound by the
//! per-socket memory controller, and that 8 B PingPong cost is MPI
//! software overhead rather than any transfer resource. With the traced
//! engine those claims become measurements: this artifact runs each
//! workload with tracing on, ranks where the wall time went
//! ([`RunTrace::bottleneck_ranking`]), and *fails* if the top-ranked
//! cause does not match the paper's narrative.

use crate::context::{default_stack, lam_profile, Systems};
use crate::fidelity::Fidelity;
use crate::observe::scatter_local;
use crate::report::{Cell, Table};
use corescope_affinity::Scheme;
use corescope_kernels::cg::{CgClass, NasCg};
use corescope_kernels::stream::{append_star, StreamParams};
use corescope_machine::trace::AttributedTime;
use corescope_machine::{Error, FaultPlan, Machine, Result, RunTrace, TraceConfig};
use corescope_smpi::{CommWorld, LockLayer};

/// What the paper says should top the ranking for a workload.
#[derive(Debug, Clone, Copy)]
enum Expected {
    /// The named label exactly (e.g. `"coherence-probe"`).
    Exactly(&'static str),
    /// Any label with the prefix (e.g. `"mc:"` for either controller).
    Prefixed(&'static str),
    /// No assertion (report-only row).
    Any,
}

impl Expected {
    fn matches(self, label: &str) -> bool {
        match self {
            Expected::Exactly(want) => label == want,
            Expected::Prefixed(prefix) => label.starts_with(prefix),
            Expected::Any => true,
        }
    }

    fn describe(self) -> String {
        match self {
            Expected::Exactly(want) => want.to_string(),
            Expected::Prefixed(prefix) => format!("{prefix}*"),
            Expected::Any => "(report only)".to_string(),
        }
    }
}

/// Builds one traced workload on a borrowed machine.
type BuildWorld = Box<dyn Fn(&Machine) -> Result<CommWorld<'_>>>;

/// One traced workload row.
struct Row {
    name: &'static str,
    machine: fn(&Systems) -> &Machine,
    expected: Expected,
    build: BuildWorld,
}

fn stream_world(machine: &Machine, nranks: usize, fidelity: Fidelity) -> Result<CommWorld<'_>> {
    let params = StreamParams { sweeps: fidelity.steps(10).max(2), ..StreamParams::default() };
    let mut world =
        CommWorld::new(machine, scatter_local(machine, nranks)?, lam_profile(), LockLayer::USysV);
    append_star(&mut world, &params);
    Ok(world)
}

fn pingpong_world(machine: &Machine, fidelity: Fidelity) -> Result<CommWorld<'_>> {
    let reps = fidelity.steps(20).max(4);
    let placements = Scheme::OneMpiLocalAlloc.resolve(machine, 2)?;
    let (profile, lock) = default_stack();
    let mut world = CommWorld::new(machine, placements, profile, lock);
    for _ in 0..reps {
        world.p2p(0, 1, 8.0);
        world.p2p(1, 0, 8.0);
    }
    Ok(world)
}

fn cg_world(machine: &Machine, nranks: usize) -> Result<CommWorld<'_>> {
    // Class A at every fidelity: big enough to be memory-bound, small
    // enough that the traced run stays cheap.
    let placements = Scheme::TwoMpiLocalAlloc.resolve(machine, nranks)?;
    let (profile, lock) = default_stack();
    let mut world = CommWorld::new(machine, placements, profile, lock);
    NasCg { class: CgClass::A }.append_run(&mut world);
    Ok(world)
}

fn rows(fidelity: Fidelity) -> Vec<Row> {
    vec![
        // STREAM (F2/F3). Tiger: one core per socket, nothing shared
        // saturates — each stream rides its own Little's-law cap. DMZ:
        // two cores per socket want 7.3 GB/s of a 4.2 GB/s controller.
        // Longs at >=8 cores: per-socket controllers have headroom but
        // the machine-wide probe fabric is past its ladder capacity.
        Row {
            name: "STREAM triad x2, Tiger",
            machine: |s| &s.tiger,
            expected: Expected::Exactly("flow-cap"),
            build: Box::new(move |m| stream_world(m, 2, fidelity)),
        },
        Row {
            name: "STREAM triad x4, DMZ",
            machine: |s| &s.dmz,
            expected: Expected::Prefixed("mc:"),
            build: Box::new(move |m| stream_world(m, 4, fidelity)),
        },
        Row {
            name: "STREAM triad x8, Longs",
            machine: |s| &s.longs,
            expected: Expected::Exactly("coherence-probe"),
            build: Box::new(move |m| stream_world(m, 8, fidelity)),
        },
        Row {
            name: "STREAM triad x16, Longs",
            machine: |s| &s.longs,
            expected: Expected::Exactly("coherence-probe"),
            build: Box::new(move |m| stream_world(m, 16, fidelity)),
        },
        // IMB PingPong at 8 B (F14): the payload drains in nanoseconds;
        // setup gaps and lock delays — software overhead — dominate on
        // every system.
        Row {
            name: "PingPong 8 B, Tiger",
            machine: |s| &s.tiger,
            expected: Expected::Exactly("mpi-overhead"),
            build: Box::new(move |m| pingpong_world(m, fidelity)),
        },
        Row {
            name: "PingPong 8 B, DMZ",
            machine: |s| &s.dmz,
            expected: Expected::Exactly("mpi-overhead"),
            build: Box::new(move |m| pingpong_world(m, fidelity)),
        },
        Row {
            name: "PingPong 8 B, Longs",
            machine: |s| &s.longs,
            expected: Expected::Exactly("mpi-overhead"),
            build: Box::new(move |m| pingpong_world(m, fidelity)),
        },
        // NAS CG (T2/T3): report-only — the mix shifts with rank count
        // and machine, which is exactly what the ranking shows.
        Row {
            name: "NAS CG-A x2, Tiger",
            machine: |s| &s.tiger,
            expected: Expected::Any,
            build: Box::new(move |m| cg_world(m, 2)),
        },
        Row {
            name: "NAS CG-A x4, DMZ",
            machine: |s| &s.dmz,
            expected: Expected::Any,
            build: Box::new(move |m| cg_world(m, 4)),
        },
        Row {
            name: "NAS CG-A x8, Longs",
            machine: |s| &s.longs,
            expected: Expected::Any,
            build: Box::new(move |m| cg_world(m, 8)),
        },
    ]
}

fn attribution_violation(row: &str, what: impl std::fmt::Display) -> Error {
    Error::InvalidSpec(format!("bottleneck attribution mismatch for '{row}': {what}"))
}

/// Runs one row traced and returns its trace and ranking.
fn traced_ranking(systems: &Systems, row: &Row) -> Result<(RunTrace, Vec<AttributedTime>)> {
    let machine = (row.machine)(systems);
    let world = (row.build)(machine)?;
    let observed = world.observe(&FaultPlan::new(), TraceConfig::on());
    observed.result?;
    let trace = observed
        .trace
        .ok_or_else(|| Error::InvalidSpec("traced run produced no trace".to_string()))?;
    let ranking = trace.bottleneck_ranking();
    if ranking.is_empty() {
        return Err(attribution_violation(row.name, "empty bottleneck ranking"));
    }
    Ok((trace, ranking))
}

/// Extra X4: the bottleneck-attribution table.
///
/// # Errors
///
/// Propagates engine errors, and returns [`Error::InvalidSpec`] when a
/// workload's top-ranked bottleneck contradicts the paper's narrative
/// (that is the point: the artifact doubles as an attribution check).
pub fn extra4(fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let mut table = Table::with_columns(
        "Extra X4: time-resolved bottleneck attribution (share of attributed+overhead time)",
        &["Workload", "Top bottleneck", "Share", "Runner-up", "Saturated frac", "Makespan (s)"],
    );
    for row in rows(fidelity) {
        let (trace, ranking) = traced_ranking(&systems, &row)?;
        let top = &ranking[0];
        if !row.expected.matches(&top.label) {
            return Err(attribution_violation(
                row.name,
                format!(
                    "expected {} on top, measured '{}' ({:.1}% of attributed time)",
                    row.expected.describe(),
                    top.label,
                    100.0 * share(top, &ranking),
                ),
            ));
        }
        let runner_up = ranking.get(1).map_or_else(|| "—".to_string(), |a| a.label.clone());
        // Saturation fraction of the top bottleneck when it is a shared
        // resource; dashes for flow caps and software overhead.
        let saturated = trace
            .resource_timelines()
            .into_iter()
            .find(|tl| tl.name == top.label)
            .map(|tl| tl.saturation_fraction());
        table.push_row(
            row.name,
            vec![
                Cell::text(top.label.clone()),
                Cell::num_with(share(top, &ranking), 3),
                Cell::text(runner_up),
                saturated.map_or(Cell::Dash, |f| Cell::num_with(f, 3)),
                Cell::num_with(trace.end_time, 4),
            ],
        );
    }
    Ok(vec![table])
}

/// One bucket's share of all attributed + overhead seconds.
fn share(bucket: &AttributedTime, ranking: &[AttributedTime]) -> f64 {
    let total: f64 = ranking.iter().map(|a| a.seconds).sum();
    if total > 0.0 {
        bucket.seconds / total
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extra4_matches_the_papers_narrative() {
        // extra4 fails with InvalidSpec on any attribution mismatch, so
        // a clean return *is* the assertion; spot-check the table shape.
        let tables = extra4(Fidelity::Quick).unwrap();
        let t = &tables[0];
        assert_eq!(t.num_rows(), 10);
        let top = |row: &str| {
            t.rows()
                .find(|(label, _)| *label == row)
                .map(|(_, cells)| match &cells[0] {
                    Cell::Text(s) => s.clone(),
                    other => panic!("unexpected cell {other:?}"),
                })
                .unwrap()
        };
        assert_eq!(top("STREAM triad x8, Longs"), "coherence-probe");
        assert_eq!(top("STREAM triad x16, Longs"), "coherence-probe");
        assert!(top("STREAM triad x4, DMZ").starts_with("mc:"));
        assert_eq!(top("STREAM triad x2, Tiger"), "flow-cap");
        assert_eq!(top("PingPong 8 B, DMZ"), "mpi-overhead");
    }
}
