//! Extra artifact X1: the hybrid programming model the paper proposes.
//!
//! Section 3.4 concludes: "A programming model using OpenMP only within
//! each multi-core processor, and MPI for communication both between
//! processor sockets and between system nodes might be a high-performance
//! alternative". The paper never measures it — this artifact does, on the
//! simulated Longs system, for NAS CG and FT at 16 cores.

use crate::context::default_stack;
use crate::fidelity::Fidelity;
use crate::report::{Cell, Table};
use corescope_affinity::Scheme;
use corescope_kernels::cg::{CgClass, NasCg};
use corescope_kernels::nasft::{FtClass, NasFt};
use corescope_machine::{systems, Machine, Result};
use corescope_smpi::CommWorld;

/// Compares pure MPI (16 ranks) against hybrid (8 processes × 2 threads)
/// for NAS CG and FT on Longs.
///
/// # Errors
///
/// Propagates engine errors.
pub fn extra1(fidelity: Fidelity) -> Result<Vec<Table>> {
    let machine = Machine::new(systems::longs());
    let (profile, lock) = default_stack();
    let cg = match fidelity {
        Fidelity::Full => CgClass::B,
        Fidelity::Quick => CgClass::A,
    };
    let ft = match fidelity {
        Fidelity::Full => FtClass::B,
        Fidelity::Quick => FtClass::A,
    };

    let run = |hybrid: bool, kernel: &str| -> Result<f64> {
        let placements = Scheme::TwoMpiLocalAlloc.resolve(&machine, 16)?;
        let mut world = CommWorld::new(&machine, placements, profile.clone(), lock);
        match (kernel, hybrid) {
            ("CG", false) => NasCg { class: cg }.append_run(&mut world),
            ("CG", true) => NasCg { class: cg }.append_run_hybrid(&mut world, 2),
            ("FT", false) => NasFt { class: ft }.append_run(&mut world),
            ("FT", true) => NasFt { class: ft }.append_run_hybrid(&mut world, 2),
            _ => unreachable!("kernel is CG or FT"),
        }
        Ok(world.run()?.makespan)
    };

    let mut table = Table::with_columns(
        "Extra X1: hybrid (OpenMP-in-socket + MPI) vs pure MPI, Longs 16 cores (seconds)",
        &["Kernel", "Pure MPI", "Hybrid 8x2", "Hybrid speedup"],
    );
    for kernel in ["CG", "FT"] {
        let pure = run(false, kernel)?;
        let hybrid = run(true, kernel)?;
        table.push_row(kernel, vec![Cell::num(pure), Cell::num(hybrid), Cell::num(pure / hybrid)]);
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_helps_latency_bound_cg() {
        // Fewer, larger messages among half the endpoints: the paper's
        // hypothesis should hold for the reduction-heavy CG.
        let t = &extra1(Fidelity::Quick).unwrap()[0];
        let gain = t.value("CG", "Hybrid speedup").unwrap();
        assert!(gain > 0.97, "hybrid must at least break even for CG, got {gain:.3}");
        // And never catastrophically hurt FT (same total transpose bytes).
        let ft = t.value("FT", "Hybrid speedup").unwrap();
        assert!(ft > 0.8, "hybrid FT ratio {ft:.3}");
    }
}
