//! NAS Parallel Benchmark artifacts: Tables 2, 3 (CG/FT vs numactl
//! options) and 4 (multi-core speedup).

use crate::aggregate::pivot_table;
use crate::context::{default_stack, scheme_sweep, Systems};
use crate::fidelity::Fidelity;
use crate::report::Table;
use corescope_affinity::Scheme;
use corescope_kernels::cg::{CgClass, NasCg};
use corescope_kernels::nasft::{FtClass, NasFt};
use corescope_machine::{Machine, Result};
use corescope_smpi::CommWorld;

fn cg_class(fidelity: Fidelity) -> CgClass {
    match fidelity {
        Fidelity::Full => CgClass::B,
        Fidelity::Quick => CgClass::A,
    }
}

fn ft_class(fidelity: Fidelity) -> FtClass {
    match fidelity {
        Fidelity::Full => FtClass::B,
        Fidelity::Quick => FtClass::A,
    }
}

fn nas_workloads(
    fidelity: Fidelity,
) -> Vec<(&'static str, Box<crate::context::WorkloadFn<'static>>)> {
    let cg = cg_class(fidelity);
    let ft = ft_class(fidelity);
    vec![
        ("CG", Box::new(move |w: &mut CommWorld<'_>, _| NasCg { class: cg }.append_run(w))),
        ("FT", Box::new(move |w: &mut CommWorld<'_>, _| NasFt { class: ft }.append_run(w))),
    ]
}

fn scheme_table(
    title: &str,
    machine: &Machine,
    counts: &[usize],
    fidelity: Fidelity,
) -> Result<Table> {
    let (profile, lock) = default_stack();
    let workloads = nas_workloads(fidelity);
    let refs: Vec<(&str, &crate::context::WorkloadFn<'_>)> =
        workloads.iter().map(|(n, f)| (*n, f.as_ref() as _)).collect();
    scheme_sweep(title, machine, counts, &refs, &profile, lock)
}

/// Table 2: CG/FT class B vs the six schemes on Longs.
pub fn table2(fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    Ok(vec![scheme_table(
        "Table 2: numactl options vs NAS CG/FT, Longs (seconds)",
        &systems.longs,
        &[2, 4, 8, 16],
        fidelity,
    )?])
}

/// Table 3: CG/FT class B vs the six schemes on DMZ.
pub fn table3(fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    Ok(vec![scheme_table(
        "Table 3: numactl options vs NAS CG/FT, DMZ (seconds)",
        &systems.dmz,
        &[2, 4],
        fidelity,
    )?])
}

/// Table 4: NAS multi-core speedup per core (parallel efficiency relative
/// to a single-core run; the paper's metric definition is ambiguous — see
/// EXPERIMENTS.md).
pub fn table4(fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let (profile, lock) = default_stack();
    let workloads = nas_workloads(fidelity);
    let mut rows = Vec::new();
    for (name, build) in &workloads {
        for (sys_name, machine) in
            [("DMZ", &systems.dmz), ("Longs", &systems.longs), ("Tiger", &systems.tiger)]
        {
            let t1 = {
                let placements = Scheme::Default.resolve(machine, 1)?;
                let mut w = CommWorld::new(machine, placements, profile.clone(), lock);
                build(&mut w, 1);
                w.run()?.makespan
            };
            let mut values = Vec::new();
            for n in [2usize, 4, 8, 16] {
                if n > machine.num_cores() {
                    values.push(None);
                    continue;
                }
                let placements = Scheme::Default.resolve(machine, n)?;
                let mut w = CommWorld::new(machine, placements, profile.clone(), lock);
                build(&mut w, n);
                let tn = w.run()?.makespan;
                values.push(Some(t1 / tn / n as f64));
            }
            rows.push((format!("{name} {sys_name}"), values));
        }
    }
    Ok(vec![pivot_table(
        "Table 4: NAS multi-core speedup per core",
        &["Benchmark/system", "2 cores", "4 cores", "8 cores", "16 cores"],
        &rows,
    )])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_membind_is_worst_at_scale() {
        let t = &table2(Fidelity::Quick).unwrap()[0];
        // Paper: at 8 tasks, One MPI + Membind roughly doubles CG time.
        let la = t.value("8 CG", "One MPI + Local Alloc").unwrap();
        let mb = t.value("8 CG", "One MPI + Membind").unwrap();
        assert!(mb > 1.4 * la, "membind {mb:.2} vs localalloc {la:.2}");
        // One-per-socket schemes cannot host 16 ranks.
        assert_eq!(t.value("16 CG", "One MPI + Local Alloc"), None);
        assert!(t.value("16 CG", "Two MPI + Local Alloc").is_some());
    }

    #[test]
    fn table3_dmz_default_is_near_optimal() {
        // "the default option on the DMZ system is sufficient to obtain
        // near optimal runtimes".
        let t = &table3(Fidelity::Quick).unwrap()[0];
        let default = t.value("2 CG", "Default").unwrap();
        let best = Scheme::all()
            .iter()
            .filter_map(|s| t.value("2 CG", s.name()))
            .fold(f64::INFINITY, f64::min);
        assert!(default < 1.25 * best, "default {default:.2} vs best {best:.2}");
    }

    #[test]
    fn table4_efficiency_declines_with_cores_on_longs() {
        let t = &table4(Fidelity::Quick).unwrap()[0];
        let e2 = t.value("CG Longs", "2 cores").unwrap();
        let e16 = t.value("CG Longs", "16 cores").unwrap();
        assert!(e16 < e2, "efficiency must fall: {e2:.2} -> {e16:.2}");
        // Tiger only has two cores.
        assert_eq!(t.value("CG Tiger", "4 cores"), None);
    }
}
