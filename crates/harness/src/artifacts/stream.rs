//! STREAM artifacts: Figures 2, 3 (bandwidth scaling) and 10 (HPCC
//! STREAM vs runtime options).

use crate::context::{lam_profile, Systems};
use crate::fidelity::Fidelity;
use crate::report::{Cell, Table};
use crate::runtime::RuntimeOption;
use corescope_affinity::{os_scatter, policy};
use corescope_kernels::stream::{append_single, append_star, StreamParams};
use corescope_machine::engine::RankPlacement;
use corescope_machine::{Machine, Result};
use corescope_smpi::{CommWorld, LockLayer};

fn params(fidelity: Fidelity) -> StreamParams {
    StreamParams { sweeps: fidelity.steps(10).max(2), ..StreamParams::default() }
}

/// lmbench-style placements: spread over sockets first (the paper's
/// core-activation order), memory allocated locally.
fn scatter_local(machine: &Machine, nranks: usize) -> Result<Vec<RankPlacement>> {
    Ok(os_scatter(machine, nranks)?
        .into_iter()
        .map(|core| RankPlacement::new(core, policy::local(machine, core)))
        .collect())
}

/// Aggregate triad bandwidth (bytes/s) with `nranks` active cores.
fn triad_bandwidth(machine: &Machine, nranks: usize, fidelity: Fidelity) -> Result<f64> {
    let p = params(fidelity);
    let mut world =
        CommWorld::new(machine, scatter_local(machine, nranks)?, lam_profile(), LockLayer::USysV);
    append_star(&mut world, &p);
    let report = world.run()?;
    Ok(nranks as f64 * p.bytes_per_rank() / report.makespan)
}

fn bandwidth_scaling(fidelity: Fidelity, per_core: bool) -> Result<Table> {
    let systems = Systems::new();
    let title = if per_core {
        "Figure 3: Memory bandwidth per core (GB/s, STREAM triad)"
    } else {
        "Figure 2: Memory bandwidth (GB/s aggregate, STREAM triad)"
    };
    let mut table = Table::with_columns(title, &["Active cores", "tiger", "dmz", "longs"]);
    for n in [1usize, 2, 4, 8, 16] {
        let mut cells = Vec::new();
        for machine in [&systems.tiger, &systems.dmz, &systems.longs] {
            if n > machine.num_cores() {
                cells.push(Cell::Dash);
            } else {
                let bw = triad_bandwidth(machine, n, fidelity)?;
                let value = if per_core { bw / n as f64 } else { bw };
                cells.push(Cell::num(value / 1e9));
            }
        }
        table.push_row(n.to_string(), cells);
    }
    Ok(table)
}

/// Figure 2: aggregate triad bandwidth vs active cores.
pub fn figure2(fidelity: Fidelity) -> Result<Vec<Table>> {
    Ok(vec![bandwidth_scaling(fidelity, false)?])
}

/// Figure 3: per-core triad bandwidth vs active cores.
pub fn figure3(fidelity: Fidelity) -> Result<Vec<Table>> {
    Ok(vec![bandwidth_scaling(fidelity, true)?])
}

/// Figure 10: HPCC STREAM Single vs Star on Longs under the six runtime
/// options.
pub fn figure10(fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let machine = &systems.longs;
    let p = params(fidelity);
    let mut table = Table::with_columns(
        "Figure 10: STREAM triad on Longs, 16 ranks (GB/s)",
        &["Option", "Single", "Star per-core", "Single:Star"],
    );
    for option in RuntimeOption::all() {
        let Ok(placements) = option.scheme().resolve(machine, 16) else {
            table.push_row(option.name(), vec![Cell::Dash, Cell::Dash, Cell::Dash]);
            continue;
        };
        let single = {
            let mut w = CommWorld::new(machine, placements.clone(), lam_profile(), option.lock());
            append_single(&mut w, &p);
            p.bytes_per_rank() / w.run()?.makespan
        };
        let star = {
            let mut w = CommWorld::new(machine, placements, lam_profile(), option.lock());
            append_star(&mut w, &p);
            p.bytes_per_rank() / w.run()?.makespan
        };
        table.push_row(
            option.name(),
            vec![Cell::num(single / 1e9), Cell::num(star / 1e9), Cell::num(single / star)],
        );
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_socket_scaling_beats_core_packing() {
        let t = &figure2(Fidelity::Quick).unwrap()[0];
        // DMZ: 2 cores (one per socket) ~2x of 1; 4 cores (both per
        // socket) well under 4x.
        let b1 = t.value("1", "dmz").unwrap();
        let b2 = t.value("2", "dmz").unwrap();
        let b4 = t.value("4", "dmz").unwrap();
        assert!(b2 > 1.85 * b1);
        assert!(b4 < 3.0 * b1, "second cores must be flat/degraded: {b4} vs {b1}");
        // Tiger has no 4-core configuration.
        assert_eq!(t.value("4", "tiger"), None);
    }

    #[test]
    fn figure3_longs_per_core_is_lowest() {
        let t = &figure3(Fidelity::Quick).unwrap()[0];
        let longs = t.value("1", "longs").unwrap();
        let dmz = t.value("1", "dmz").unwrap();
        assert!(longs < 0.6 * dmz, "8-socket per-core bandwidth {longs} must trail dmz {dmz}");
    }

    #[test]
    fn figure10_star_ratio_exceeds_two_on_default() {
        let t = &figure10(Fidelity::Quick).unwrap()[0];
        let ratio = t.value("default", "Single:Star").unwrap();
        assert!(ratio > 2.0, "paper: 'Single to Star ratio of greater than 2:1', got {ratio:.2}");
        // The tuned option should not be worse than default's ratio by
        // much — localalloc star per-core should beat default star.
        let star_tuned = t.value("localalloc+usysv", "Star per-core").unwrap();
        let star_default = t.value("default", "Star per-core").unwrap();
        assert!(star_tuned >= star_default * 0.95);
    }
}
