//! STREAM artifacts: Figures 2, 3 (bandwidth scaling) and 10 (HPCC
//! STREAM vs runtime options).
//!
//! These sweeps *enumerate* [`Scenario`]s and hand the whole batch to
//! the [`Scheduler`], which fans out over workers, dedups and caches;
//! the functions here only do the post-processing arithmetic and render
//! through [`crate::aggregate::pivot_table`] (impossible cells are
//! `None`, which the view draws as the paper's dashes). Results are
//! byte-identical to the old hand-assembled tables at any job count.

use crate::aggregate::pivot_table;
use crate::fidelity::Fidelity;
use crate::report::Table;
use crate::runtime::RuntimeOption;
use corescope_kernels::stream::StreamParams;
use corescope_machine::Result;
use corescope_sched::{Placement, Scenario, Scheduler, System, Workload};

fn params(fidelity: Fidelity) -> StreamParams {
    StreamParams { sweeps: fidelity.steps(10).max(2), ..StreamParams::default() }
}

fn star_workload(fidelity: Fidelity) -> Workload {
    let p = params(fidelity);
    Workload::StreamStar {
        kernel: p.kernel,
        elements_per_rank: p.elements_per_rank,
        sweeps: p.sweeps,
    }
}

/// The scatter-local STREAM scenario behind Figures 2 and 3: lmbench
/// core-activation order, LAM profile, spin locks.
fn triad_scenario(system: System, nranks: usize, fidelity: Fidelity) -> Scenario {
    Scenario::new(system, nranks, star_workload(fidelity))
        .with_fidelity(fidelity)
        .with_placement(Placement::ScatterLocal)
        .with_mpi(corescope_smpi::MpiImpl::Lam)
}

fn bandwidth_scaling(fidelity: Fidelity, per_core: bool, sched: &Scheduler) -> Result<Table> {
    let title = if per_core {
        "Figure 3: Memory bandwidth per core (GB/s, STREAM triad)"
    } else {
        "Figure 2: Memory bandwidth (GB/s aggregate, STREAM triad)"
    };
    let systems = [System::Tiger, System::Dmz, System::Longs];
    let cores: Vec<usize> = systems.iter().map(|s| s.machine().num_cores()).collect();
    let counts = [1usize, 2, 4, 8, 16];

    // Enumerate the whole grid (skipping impossible cells), then run it
    // as one batch.
    let mut batch = Vec::new();
    for &n in &counts {
        for (system, &num_cores) in systems.iter().zip(&cores) {
            if n <= num_cores {
                batch.push(triad_scenario(*system, n, fidelity));
            }
        }
    }
    let mut outcomes = sched.run_batch(&batch).into_iter();

    let p = params(fidelity);
    let mut rows = Vec::new();
    for &n in &counts {
        let mut values = Vec::new();
        for &num_cores in &cores {
            if n > num_cores {
                values.push(None);
            } else {
                let completed = outcomes.next().expect("one outcome per enumerated cell")?;
                let bw = n as f64 * p.bytes_per_rank() / completed.result.makespan;
                let value = if per_core { bw / n as f64 } else { bw };
                values.push(Some(value / 1e9));
            }
        }
        rows.push((n.to_string(), values));
    }
    Ok(pivot_table(title, &["Active cores", "tiger", "dmz", "longs"], &rows))
}

/// Figure 2: aggregate triad bandwidth vs active cores.
pub fn figure2(fidelity: Fidelity, sched: &Scheduler) -> Result<Vec<Table>> {
    Ok(vec![bandwidth_scaling(fidelity, false, sched)?])
}

/// Figure 3: per-core triad bandwidth vs active cores.
pub fn figure3(fidelity: Fidelity, sched: &Scheduler) -> Result<Vec<Table>> {
    Ok(vec![bandwidth_scaling(fidelity, true, sched)?])
}

/// Figure 10: HPCC STREAM Single vs Star on Longs under the six runtime
/// options.
pub fn figure10(fidelity: Fidelity, sched: &Scheduler) -> Result<Vec<Table>> {
    let p = params(fidelity);
    let single_workload = Workload::StreamSingle {
        kernel: p.kernel,
        elements_per_rank: p.elements_per_rank,
        sweeps: p.sweeps,
    };
    let scenario = |option: RuntimeOption, workload: Workload| {
        Scenario::new(System::Longs, 16, workload)
            .with_fidelity(fidelity)
            .with_placement(Placement::Scheme(option.scheme()))
            .with_mpi(corescope_smpi::MpiImpl::Lam)
            .with_lock(option.lock())
    };

    // Unplaceable options become Dash rows, as in the paper; the rest
    // contribute a Single and a Star scenario each.
    let placeable: Vec<bool> = RuntimeOption::all()
        .iter()
        .map(|o| Placement::Scheme(o.scheme()).placeable(System::Longs, 16))
        .collect();
    let mut batch = Vec::new();
    for (option, ok) in RuntimeOption::all().into_iter().zip(&placeable) {
        if *ok {
            batch.push(scenario(option, single_workload.clone()));
            batch.push(scenario(option, star_workload(fidelity)));
        }
    }
    let mut outcomes = sched.run_batch(&batch).into_iter();

    let mut rows = Vec::new();
    for (option, ok) in RuntimeOption::all().into_iter().zip(&placeable) {
        if !*ok {
            rows.push((option.name().to_string(), vec![None, None, None]));
            continue;
        }
        let single = p.bytes_per_rank() / outcomes.next().expect("single outcome")?.result.makespan;
        let star = p.bytes_per_rank() / outcomes.next().expect("star outcome")?.result.makespan;
        rows.push((
            option.name().to_string(),
            vec![Some(single / 1e9), Some(star / 1e9), Some(single / star)],
        ));
    }
    Ok(vec![pivot_table(
        "Figure 10: STREAM triad on Longs, 16 ranks (GB/s)",
        &["Option", "Single", "Star per-core", "Single:Star"],
        &rows,
    )])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> Scheduler {
        Scheduler::new(2)
    }

    #[test]
    fn figure2_socket_scaling_beats_core_packing() {
        let t = &figure2(Fidelity::Quick, &sched()).unwrap()[0];
        // DMZ: 2 cores (one per socket) ~2x of 1; 4 cores (both per
        // socket) well under 4x.
        let b1 = t.value("1", "dmz").unwrap();
        let b2 = t.value("2", "dmz").unwrap();
        let b4 = t.value("4", "dmz").unwrap();
        assert!(b2 > 1.85 * b1);
        assert!(b4 < 3.0 * b1, "second cores must be flat/degraded: {b4} vs {b1}");
        // Tiger has no 4-core configuration.
        assert_eq!(t.value("4", "tiger"), None);
    }

    #[test]
    fn figure3_longs_per_core_is_lowest() {
        let t = &figure3(Fidelity::Quick, &sched()).unwrap()[0];
        let longs = t.value("1", "longs").unwrap();
        let dmz = t.value("1", "dmz").unwrap();
        assert!(longs < 0.6 * dmz, "8-socket per-core bandwidth {longs} must trail dmz {dmz}");
    }

    #[test]
    fn figure10_star_ratio_exceeds_two_on_default() {
        let t = &figure10(Fidelity::Quick, &sched()).unwrap()[0];
        let ratio = t.value("default", "Single:Star").unwrap();
        assert!(ratio > 2.0, "paper: 'Single to Star ratio of greater than 2:1', got {ratio:.2}");
        // The tuned option should not be worse than default's ratio by
        // much — localalloc star per-core should beat default star.
        let star_tuned = t.value("localalloc+usysv", "Star per-core").unwrap();
        let star_default = t.value("default", "Star per-core").unwrap();
        assert!(star_tuned >= star_default * 0.95);
    }

    #[test]
    fn figure2_jobs_and_cache_do_not_change_cells() {
        let serial = figure2(Fidelity::Quick, &Scheduler::new(1)).unwrap();
        let warm = sched();
        let parallel_cold = figure2(Fidelity::Quick, &warm).unwrap();
        let parallel_warm = figure2(Fidelity::Quick, &warm).unwrap();
        assert_eq!(serial[0].to_csv(), parallel_cold[0].to_csv());
        assert_eq!(serial[0].to_csv(), parallel_warm[0].to_csv());
        assert!(warm.stats().hits_memory > 0, "second pass must hit the cache");
    }
}
