//! Result tables: aligned text rendering and CSV export.

use std::fmt;

/// One table cell: a value, a dash (the paper's "—" for configurations
/// that cannot run), or free text.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A numeric value with a fixed number of decimals.
    Num {
        /// The value.
        value: f64,
        /// Decimals to print.
        decimals: usize,
    },
    /// A configuration that cannot run (the paper's "—").
    Dash,
    /// Free text (units, names).
    Text(String),
}

impl Cell {
    /// A number printed with two decimals.
    pub fn num(value: f64) -> Self {
        Cell::Num { value, decimals: 2 }
    }

    /// A number with explicit decimals.
    pub fn num_with(value: f64, decimals: usize) -> Self {
        Cell::Num { value, decimals }
    }

    /// Text cell.
    pub fn text(s: impl Into<String>) -> Self {
        Cell::Text(s.into())
    }

    /// The numeric value, if any.
    pub fn value(&self) -> Option<f64> {
        match self {
            Cell::Num { value, .. } => Some(*value),
            _ => None,
        }
    }

    fn render(&self) -> String {
        match self {
            Cell::Num { value, decimals } => format!("{value:.*}", decimals),
            Cell::Dash => "—".to_string(),
            Cell::Text(s) => s.clone(),
        }
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::num(v)
    }
}

impl From<Option<f64>> for Cell {
    fn from(v: Option<f64>) -> Self {
        v.map(Cell::num).unwrap_or(Cell::Dash)
    }
}

/// A row whose cell count does not match its table's columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowShapeError {
    /// The table's title.
    pub table: String,
    /// The offending row's label.
    pub label: String,
    /// Data columns the table has.
    pub expected: usize,
    /// Cells the row brought.
    pub got: usize,
}

impl fmt::Display for RowShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "row '{}' brings {} cells but table '{}' has {} data columns",
            self.label, self.got, self.table, self.expected
        )
    }
}

impl std::error::Error for RowShapeError {}

/// A labelled results table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Title, e.g. `"Table 2: NAS CG/FT on Longs (seconds)"`.
    pub title: String,
    /// Column headings; the first names the row-label column.
    pub columns: Vec<String>,
    rows: Vec<(String, Vec<Cell>)>,
}

impl Table {
    /// Creates an empty table with the given title and column headings.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Self { title: title.into(), columns, rows: Vec::new() }
    }

    /// Convenience: headings from string slices.
    pub fn with_columns(title: impl Into<String>, columns: &[&str]) -> Self {
        Self::new(title, columns.iter().map(|s| s.to_string()).collect())
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the data columns. Code
    /// assembling rows from external input should use
    /// [`Table::try_push_row`] instead.
    pub fn push_row(&mut self, label: impl Into<String>, cells: Vec<Cell>) {
        if let Err(e) = self.try_push_row(label, cells) {
            panic!("row width must match columns: {e}");
        }
    }

    /// Appends a row, reporting a shape mismatch as a typed error
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`RowShapeError`] when the cell count does not match the
    /// table's data-column count; the table is left unchanged.
    pub fn try_push_row(
        &mut self,
        label: impl Into<String>,
        cells: Vec<Cell>,
    ) -> Result<(), RowShapeError> {
        let expected = self.columns.len().saturating_sub(1);
        if cells.len() != expected {
            return Err(RowShapeError {
                table: self.title.clone(),
                label: label.into(),
                expected,
                got: cells.len(),
            });
        }
        self.rows.push((label.into(), cells));
        Ok(())
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Iterates `(label, cells)` rows.
    pub fn rows(&self) -> impl Iterator<Item = (&str, &[Cell])> {
        self.rows.iter().map(|(l, c)| (l.as_str(), c.as_slice()))
    }

    /// The cell at `(row, data-column)`.
    pub fn cell(&self, row: usize, col: usize) -> &Cell {
        &self.rows[row].1[col]
    }

    /// Looks up a value by row label and column heading.
    pub fn value(&self, row_label: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().skip(1).position(|c| c == column)?;
        let row = self.rows.iter().find(|(l, _)| l == row_label)?;
        row.1.get(col)?.value()
    }

    /// Renders as CSV (RFC-4180-ish; fields containing commas or quotes
    /// are quoted).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(&self.columns.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for (label, cells) in &self.rows {
            let mut line = vec![field(label)];
            line.extend(cells.iter().map(|c| field(&c.render())));
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths.
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.chars().count()).collect();
        for (label, cells) in &self.rows {
            widths[0] = widths[0].max(label.chars().count());
            for (i, c) in cells.iter().enumerate() {
                widths[i + 1] = widths[i + 1].max(c.render().chars().count());
            }
        }
        writeln!(f, "{}", self.title)?;
        let head: Vec<String> =
            self.columns.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
        writeln!(f, "  {}", head.join("  "))?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "  {}", "-".repeat(total))?;
        for (label, cells) in &self.rows {
            let mut line = vec![format!("{label:>w$}", w = widths[0])];
            for (i, c) in cells.iter().enumerate() {
                line.push(format!("{:>w$}", c.render(), w = widths[i + 1]));
            }
            writeln!(f, "  {}", line.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::with_columns("Test table", &["rows", "a", "b"]);
        t.push_row("x", vec![Cell::num(1.5), Cell::Dash]);
        t.push_row("y", vec![Cell::num_with(2.25, 3), Cell::text("hi")]);
        t
    }

    #[test]
    fn lookup_by_label_and_column() {
        let t = sample();
        assert_eq!(t.value("x", "a"), Some(1.5));
        assert_eq!(t.value("x", "b"), None); // dash
        assert_eq!(t.value("z", "a"), None); // no row
        assert_eq!(t.value("x", "c"), None); // no column
    }

    #[test]
    fn display_contains_all_cells() {
        let s = sample().to_string();
        assert!(s.contains("Test table"));
        assert!(s.contains("1.50"));
        assert!(s.contains("2.250"));
        assert!(s.contains("—"));
        assert!(s.contains("hi"));
    }

    #[test]
    fn csv_quotes_special_fields() {
        let mut t = Table::with_columns("t", &["r", "col,with,commas"]);
        t.push_row("a\"b", vec![Cell::num(1.0)]);
        let csv = t.to_csv();
        assert!(csv.contains("\"col,with,commas\""));
        assert!(csv.contains("\"a\"\"b\""));
        assert!(csv.lines().count() == 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::with_columns("t", &["r", "a"]);
        t.push_row("x", vec![Cell::num(1.0), Cell::num(2.0)]);
    }

    #[test]
    fn try_push_row_reports_the_shape_instead_of_panicking() {
        let mut t = Table::with_columns("t", &["r", "a"]);
        let err = t.try_push_row("x", vec![Cell::num(1.0), Cell::num(2.0)]).unwrap_err();
        assert_eq!((err.expected, err.got), (1, 2));
        assert!(err.to_string().contains("'x'"), "{err}");
        assert_eq!(t.num_rows(), 0, "a rejected row must not be half-applied");
        t.try_push_row("x", vec![Cell::num(1.0)]).unwrap();
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn cell_conversions() {
        assert_eq!(Cell::from(3.0).value(), Some(3.0));
        assert_eq!(Cell::from(None), Cell::Dash);
        assert_eq!(Cell::from(Some(2.0)).value(), Some(2.0));
    }
}
