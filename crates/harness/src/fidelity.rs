//! Fidelity levels, re-exported from `corescope-sched`.
//!
//! The type moved down the stack when the scenario IR arrived: fidelity
//! is part of a scenario's cache identity, so it must live where
//! scenarios do. Harness code keeps using `crate::fidelity::Fidelity`
//! unchanged.

pub use corescope_sched::Fidelity;
