//! Fidelity levels: full paper-scale runs vs. reduced sweeps for quick
//! checks and Criterion benches.

/// How much work an artifact run performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fidelity {
    /// Paper-scale problem sizes and step counts.
    #[default]
    Full,
    /// Reduced step/repetition counts (same problem shapes); ratios and
    /// orderings are preserved, absolute times are smaller.
    Quick,
}

impl Fidelity {
    /// Scales a step/repetition count: `Quick` divides by 10 (minimum 1).
    pub fn steps(self, full: usize) -> usize {
        match self {
            Fidelity::Full => full,
            Fidelity::Quick => (full / 10).max(1),
        }
    }

    /// Scales a sweep list: `Quick` keeps every other point.
    pub fn thin<T: Clone>(self, points: &[T]) -> Vec<T> {
        match self {
            Fidelity::Full => points.to_vec(),
            Fidelity::Quick => points.iter().step_by(2).cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_reduces_steps_but_never_to_zero() {
        assert_eq!(Fidelity::Full.steps(100), 100);
        assert_eq!(Fidelity::Quick.steps(100), 10);
        assert_eq!(Fidelity::Quick.steps(5), 1);
    }

    #[test]
    fn thin_halves_sweeps() {
        let pts = [1, 2, 3, 4, 5];
        assert_eq!(Fidelity::Quick.thin(&pts), vec![1, 3, 5]);
        assert_eq!(Fidelity::Full.thin(&pts), pts.to_vec());
    }
}
