//! Trace export: representative traced runs per artifact, Chrome-trace
//! JSON, and utilization CSV.
//!
//! `repro --trace <dir>` calls [`representative_trace`] for each
//! requested artifact, then writes [`chrome_trace_json`] (loadable in
//! `chrome://tracing` or Perfetto) and [`utilization_csv`] (one row per
//! solver interval, one column per shared resource). The JSON is
//! hand-rolled — the repo vendors no serde — and kept to the small
//! subset of the trace-event format the viewers need: `"X"` complete
//! events for op spans, `"C"` counters for per-resource utilization,
//! `"i"` instants for fault stamps, and `"M"` metadata for names.

use crate::artifacts::Artifact;
use crate::context::{default_stack, lam_profile, Systems};
use crate::fidelity::Fidelity;
use corescope_affinity::{os_scatter, policy, Scheme};
use corescope_kernels::cg::{CgClass, NasCg};
use corescope_kernels::stream::{append_star, StreamParams};
use corescope_machine::engine::{Observed, RankPlacement};
use corescope_machine::{
    CheckpointPolicy, Error, FaultPlan, Machine, RankId, Result, RunTrace, TraceConfig,
};
use corescope_smpi::{CommWorld, LockLayer};
use std::fmt::Write as _;

/// A labelled trace ready for export.
#[derive(Debug, Clone)]
pub struct TraceBundle {
    /// Human-readable description of the traced run.
    pub label: String,
    /// The run's time-resolved trace.
    pub trace: RunTrace,
}

/// lmbench-style placements: spread over sockets first (the paper's
/// core-activation order), memory allocated locally.
pub(crate) fn scatter_local(machine: &Machine, nranks: usize) -> Result<Vec<RankPlacement>> {
    Ok(os_scatter(machine, nranks)?
        .into_iter()
        .map(|core| RankPlacement::new(core, policy::local(machine, core)))
        .collect())
}

/// Produces the traced run that best represents `artifact`: the workload
/// and system whose bottleneck the artifact is about. Returns `Ok(None)`
/// for artifacts with no obvious single representative (static tables,
/// broad sweeps).
///
/// # Errors
///
/// Propagates engine errors from the traced run.
pub fn representative_trace(artifact: Artifact, fidelity: Fidelity) -> Result<Option<TraceBundle>> {
    use Artifact::*;
    let systems = Systems::new();
    let bundle = match artifact {
        // STREAM bandwidth artifacts: the probe-fabric-bound 16-core
        // Longs configuration is the paper's headline observation.
        F2 | F3 | F10 | X4 => Some(traced_stream(&systems.longs, "longs", 16, fidelity)?),
        // IMB artifacts: a small-message cross-socket PingPong on DMZ.
        F14 | F15 | F16 | F17 => Some(traced_pingpong(&systems.dmz, "dmz", fidelity)?),
        // NAS CG tables.
        T2 => Some(traced_cg(&systems.longs, "longs", 8)?),
        T3 => Some(traced_cg(&systems.dmz, "dmz", 4)?),
        // The resilience campaign: a brownout run whose fault stamps
        // land in the trace as instant events.
        X3 => Some(traced_faulted_stream(&systems.dmz, "dmz", fidelity)?),
        // The recovery campaign: a checkpointed run surviving a rank
        // kill, rollback and downtime stamped into the trace.
        X5 => Some(traced_recovered_stream(&systems.dmz, "dmz", fidelity)?),
        _ => None,
    };
    Ok(bundle)
}

/// Unwraps a traced observation, propagating run errors.
fn finish(label: String, observed: Observed) -> Result<TraceBundle> {
    observed.result?;
    let trace = observed
        .trace
        .ok_or_else(|| Error::InvalidSpec("traced run produced no trace".to_string()))?;
    Ok(TraceBundle { label, trace })
}

fn traced_stream(
    machine: &Machine,
    system: &str,
    nranks: usize,
    fidelity: Fidelity,
) -> Result<TraceBundle> {
    let params = StreamParams { sweeps: fidelity.steps(10).max(2), ..StreamParams::default() };
    let mut world =
        CommWorld::new(machine, scatter_local(machine, nranks)?, lam_profile(), LockLayer::USysV);
    append_star(&mut world, &params);
    let observed = world.observe(&FaultPlan::new(), TraceConfig::on());
    finish(format!("STREAM triad x{nranks}, {system}"), observed)
}

fn traced_pingpong(machine: &Machine, system: &str, fidelity: Fidelity) -> Result<TraceBundle> {
    let reps = fidelity.steps(20).max(4);
    let placements = Scheme::OneMpiLocalAlloc.resolve(machine, 2)?;
    let (profile, lock) = default_stack();
    let mut world = CommWorld::new(machine, placements, profile, lock);
    for _ in 0..reps {
        world.p2p(0, 1, 1024.0);
        world.p2p(1, 0, 1024.0);
    }
    let observed = world.observe(&FaultPlan::new(), TraceConfig::on());
    finish(format!("IMB PingPong 1 KiB x{reps}, {system} cross-socket"), observed)
}

fn traced_cg(machine: &Machine, system: &str, nranks: usize) -> Result<TraceBundle> {
    // Class A regardless of fidelity: class B's trace would be tens of
    // megabytes and adds nothing to the bottleneck picture.
    let placements = Scheme::TwoMpiLocalAlloc.resolve(machine, nranks)?;
    let (profile, lock) = default_stack();
    let mut world = CommWorld::new(machine, placements, profile, lock);
    NasCg { class: CgClass::A }.append_run(&mut world);
    let observed = world.observe(&FaultPlan::new(), TraceConfig::on());
    finish(format!("NAS CG class A x{nranks}, {system}"), observed)
}

fn traced_faulted_stream(
    machine: &Machine,
    system: &str,
    fidelity: Fidelity,
) -> Result<TraceBundle> {
    let params = StreamParams { sweeps: fidelity.steps(10).max(2), ..StreamParams::default() };
    let placements = Scheme::TwoMpiLocalAlloc.resolve(machine, 4)?;
    let (profile, lock) = default_stack();
    let mut world = CommWorld::new(machine, placements, profile, lock);
    append_star(&mut world, &params);
    let healthy = world.run()?.makespan;
    // Controllers at half capacity over the middle quarter, then
    // restored — the X3 brownout, stamped into the trace.
    let plan = machine
        .sockets()
        .fold(FaultPlan::new(), |p, s| p.controller_throttle(healthy * 0.25, s, 0.5));
    let plan = machine.sockets().fold(plan, |p, s| p.controller_restore(healthy * 0.5, s));
    let observed = world.observe(&plan, TraceConfig::on());
    finish(format!("STREAM triad x4 + controller brownout, {system}"), observed)
}

fn traced_recovered_stream(
    machine: &Machine,
    system: &str,
    fidelity: Fidelity,
) -> Result<TraceBundle> {
    let params = StreamParams { sweeps: fidelity.steps(10).max(2), ..StreamParams::default() };
    let placements = Scheme::TwoMpiLocalAlloc.resolve(machine, 4)?;
    let (profile, lock) = default_stack();
    let mut world = CommWorld::new(machine, placements, profile, lock);
    append_star(&mut world, &params);
    let healthy = world.run()?.makespan;
    // Checkpoint a few times over the run, kill rank 1 past the halfway
    // mark, and let the rollback (plus visible restart downtime) land in
    // the trace as a recovery stamp and a zero-utilization gap.
    let world = world.with_recovery(
        CheckpointPolicy::new(healthy / 4.0, 1e7).with_restart_delay(healthy / 50.0),
    );
    let plan = FaultPlan::new().rank_kill(healthy * 0.6, RankId::new(1));
    let observed = world.observe(&plan, TraceConfig::on());
    finish(format!("STREAM triad x4 + rank kill & rollback, {system}"), observed)
}

/// Escapes a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 as a JSON number (JSON has no NaN/inf: those become 0).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Seconds to the trace-event format's microsecond timestamps.
fn us(seconds: f64) -> String {
    num(seconds * 1e6)
}

/// Renders a trace as Chrome-trace/Perfetto JSON.
///
/// Ranks appear as threads of process 0 with one `"X"` event per op
/// span (the span's dominant bottleneck in `args`); per-resource
/// utilization appears as one `"C"` counter series per resource under
/// process 1; fault stamps are `"i"` instant events.
#[must_use]
pub fn chrome_trace_json(label: &str, trace: &RunTrace) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"ts\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"ranks\"}}"
            .to_string(),
    );
    events.push(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"resources\"}}"
            .to_string(),
    );
    for rank in 0..trace.num_ranks {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{rank},\"ts\":0,\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"rank {rank}\"}}}}"
        ));
    }
    for span in &trace.spans {
        let bottleneck = span
            .dominant_bottleneck()
            .map_or_else(|| "none".to_string(), |b| esc(trace.bottleneck_label(b)));
        events.push(format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"name\":\"{}\",\"cat\":\"{}\",\
             \"ts\":{},\"dur\":{},\"args\":{{\"bottleneck\":\"{}\"}}}}",
            span.rank,
            esc(span.label),
            span.kind.name(),
            us(span.t0),
            us(span.duration()),
            bottleneck,
        ));
    }
    for interval in &trace.intervals {
        let mut args = String::new();
        for (r, u) in interval.utilization.iter().enumerate() {
            if r > 0 {
                args.push(',');
            }
            let _ = write!(args, "\"{}\":{}", esc(&trace.resource_names[r]), num(*u));
        }
        events.push(format!(
            "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":\"utilization\",\"ts\":{},\
             \"args\":{{{args}}}}}",
            us(interval.t0),
        ));
    }
    for stamp in &trace.faults {
        events.push(format!(
            "{{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"s\":\"g\",\"name\":\"{}\",\"ts\":{}}}",
            esc(&format!("{:?}", stamp.kind)),
            us(stamp.fired),
        ));
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"label\":\"{}\",\"end_time_s\":{}}},\
         \"traceEvents\":[\n{}\n]}}\n",
        esc(label),
        num(trace.end_time),
        events.join(",\n"),
    )
}

/// Renders the solver-interval utilization table as CSV: `t0,t1` in
/// seconds, then one column per shared resource.
#[must_use]
pub fn utilization_csv(trace: &RunTrace) -> String {
    let mut out = String::from("t0,t1");
    for name in &trace.resource_names {
        let _ = write!(out, ",{name}");
    }
    out.push('\n');
    for interval in &trace.intervals {
        let _ = write!(out, "{},{}", interval.t0, interval.t1);
        for u in &interval.utilization {
            let _ = write!(out, ",{u}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_artifacts_have_a_representative_trace() {
        let bundle = representative_trace(Artifact::F2, Fidelity::Quick).unwrap().unwrap();
        assert!(bundle.label.contains("STREAM"));
        assert!(!bundle.trace.intervals.is_empty());
        assert!(!bundle.trace.spans.is_empty());
        // The 16-core Longs STREAM is probe-fabric-bound.
        let ranking = bundle.trace.bottleneck_ranking();
        assert_eq!(ranking[0].label, "coherence-probe", "{ranking:?}");
    }

    #[test]
    fn static_tables_have_no_representative_trace() {
        assert!(representative_trace(Artifact::T1, Fidelity::Quick).unwrap().is_none());
    }

    #[test]
    fn x3_trace_carries_fault_stamps() {
        let bundle = representative_trace(Artifact::X3, Fidelity::Quick).unwrap().unwrap();
        // 2 throttles + 2 restores on the two dmz sockets.
        assert_eq!(bundle.trace.faults.len(), 4);
        let json = chrome_trace_json(&bundle.label, &bundle.trace);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 4);
    }

    #[test]
    fn x5_trace_carries_a_recovery_stamp() {
        let bundle = representative_trace(Artifact::X5, Fidelity::Quick).unwrap().unwrap();
        assert_eq!(bundle.trace.faults.len(), 1, "one kill stamped");
        assert_eq!(bundle.trace.recoveries.len(), 1, "one rollback stamped");
        let stamp = &bundle.trace.recoveries[0];
        assert!(stamp.restored_to <= stamp.killed_at && stamp.killed_at < stamp.resumed_at);
        assert!(stamp.resumed_at <= bundle.trace.end_time);
    }

    #[test]
    fn chrome_trace_json_has_the_expected_shape() {
        let bundle = representative_trace(Artifact::F14, Fidelity::Quick).unwrap().unwrap();
        let json = chrome_trace_json(&bundle.label, &bundle.trace);
        assert!(json.starts_with('{'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"bottleneck\""));
        // Balanced braces (string-aware balance is checked by the bench
        // validator; the export contains no braces inside strings).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn utilization_csv_is_rectangular() {
        let bundle = representative_trace(Artifact::F14, Fidelity::Quick).unwrap().unwrap();
        let csv = utilization_csv(&bundle.trace);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let width = header.split(',').count();
        assert_eq!(width, 2 + bundle.trace.resource_names.len());
        let mut rows = 0;
        for line in lines {
            assert_eq!(line.split(',').count(), width, "ragged row: {line}");
            rows += 1;
        }
        assert_eq!(rows, bundle.trace.intervals.len());
    }

    #[test]
    fn json_escaping_handles_quotes_and_controls() {
        assert_eq!(esc("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
        assert_eq!(num(f64::NAN), "0");
    }
}
