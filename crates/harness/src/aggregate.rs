//! Group-by / percentile aggregation over campaign-store rows.
//!
//! The crash-safe store ([`corescope_store::Store`]) journals one
//! columnar [`Row`] per finished scenario; this module turns a pile of
//! those rows back into paper-style summary tables. Everything here is
//! deterministic: rows are canonically ordered (by digest) before any
//! statistic is computed and groups are emitted in sorted-key order, so
//! the same set of rows — regardless of the order crashes, resumes and
//! segment scans produced them in — renders byte-identical output.
//! That determinism is what the X9 artifact's kill-anywhere test
//! byte-diffs against.

use crate::report::{Cell, Table};
use corescope_store::Row;
use std::collections::BTreeMap;

/// The axes a campaign summary groups by: one summary row per distinct
/// (system, workload, nranks) combination, mirroring how the paper's
/// tables slice their sweeps.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupKey {
    /// System key (`"tiger"`, `"dmz"`, `"longs"`).
    pub system: String,
    /// Workload kind (`"bsp"`, `"stream"`, …).
    pub workload: String,
    /// World size.
    pub nranks: u32,
}

/// Summary statistics for one group of rows.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSummary {
    /// The group's axes.
    pub key: GroupKey,
    /// Rows aggregated into this group.
    pub count: usize,
    /// Smallest makespan.
    pub min: f64,
    /// Median makespan (nearest-rank).
    pub p50: f64,
    /// 95th-percentile makespan (nearest-rank).
    pub p95: f64,
    /// Largest makespan.
    pub max: f64,
    /// Simulation events across the group.
    pub events: u64,
}

/// Nearest-rank percentile (`p` in `[0, 100]`) over an **ascending**
/// slice. Nearest-rank picks an actual sample — no interpolation — so
/// the result is bit-exact reproducible, which aggregate byte-identity
/// depends on. Empty input returns NaN.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Groups rows by [`GroupKey`] and computes per-group percentile
/// statistics. Input order does not matter: rows are deduplicated by
/// digest (last wins, matching the store's own scan semantics) and
/// canonically ordered before aggregation, and groups come back sorted
/// by key.
pub fn group_rows(rows: &[Row]) -> Vec<GroupSummary> {
    // Last-wins dedup, then canonical digest order.
    let mut by_digest: BTreeMap<u128, &Row> = BTreeMap::new();
    for row in rows {
        by_digest.insert(row.digest, row);
    }
    let mut groups: BTreeMap<GroupKey, Vec<&Row>> = BTreeMap::new();
    for row in by_digest.values() {
        let key = GroupKey {
            system: row.system.clone(),
            workload: row.workload.clone(),
            nranks: row.nranks,
        };
        groups.entry(key).or_default().push(row);
    }
    groups
        .into_iter()
        .map(|(key, members)| {
            let mut makespans: Vec<f64> = members.iter().map(|r| r.makespan).collect();
            makespans.sort_by(f64::total_cmp);
            GroupSummary {
                key,
                count: members.len(),
                min: makespans[0],
                p50: percentile(&makespans, 50.0),
                p95: percentile(&makespans, 95.0),
                max: makespans[makespans.len() - 1],
                events: members.iter().map(|r| r.events).sum(),
            }
        })
        .collect()
}

/// Renders grouped summaries as a [`Table`]: one row per group, labelled
/// `"<system> <workload> x<nranks>"`, with count / min / p50 / p95 / max
/// makespan columns (milliseconds, 6 decimals — enough to make any
/// numeric drift visible) and the group's event total.
pub fn campaign_table(title: &str, rows: &[Row]) -> Table {
    let mut table = Table::with_columns(
        title,
        &["group", "runs", "min ms", "p50 ms", "p95 ms", "max ms", "events"],
    );
    for g in group_rows(rows) {
        table.push_row(
            format!("{} {} x{}", g.key.system, g.key.workload, g.key.nranks),
            vec![
                Cell::num_with(g.count as f64, 0),
                Cell::num_with(g.min * 1e3, 6),
                Cell::num_with(g.p50 * 1e3, 6),
                Cell::num_with(g.p95 * 1e3, 6),
                Cell::num_with(g.max * 1e3, 6),
                Cell::num_with(g.events as f64, 0),
            ],
        );
    }
    table
}

/// Renders a pivot-style sweep view: one labelled row per entry, one
/// value column per pivot-axis value, with `None` cells rendered as the
/// paper's em-dash (impossible or unplaceable configurations). Values
/// use [`Cell::num`]'s two-decimal formatting — exactly the cells the
/// figure artifacts used to assemble by hand, so tables migrated onto
/// this view stay byte-identical.
///
/// `columns` lists every column including the leading label column;
/// each row's value vector therefore has `columns.len() - 1` entries.
pub fn pivot_table(title: &str, columns: &[&str], rows: &[(String, Vec<Option<f64>>)]) -> Table {
    let mut table = Table::with_columns(title, columns);
    for (label, values) in rows {
        debug_assert_eq!(values.len() + 1, columns.len(), "one value per non-label column");
        table.push_row(
            label.clone(),
            values.iter().map(|v| v.map_or(Cell::Dash, Cell::num)).collect(),
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(digest: u128, system: &str, nranks: u32, makespan: f64) -> Row {
        Row {
            digest,
            system: system.to_string(),
            workload: "bsp".to_string(),
            nranks,
            makespan,
            events: 10,
            ..Row::default()
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 95.0), 4.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert!(percentile(&[], 50.0).is_nan());
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
    }

    #[test]
    fn grouping_is_order_independent_and_dedups_by_digest() {
        let rows = vec![
            row(3, "dmz", 2, 0.3),
            row(1, "dmz", 2, 0.1),
            row(2, "longs", 4, 0.2),
            row(1, "dmz", 2, 0.1), // duplicate digest: one sample
        ];
        let mut shuffled = rows.clone();
        shuffled.reverse();
        let a = group_rows(&rows);
        let b = group_rows(&shuffled);
        assert_eq!(a, b, "input order must not matter");
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].key.system, "dmz");
        assert_eq!(a[0].count, 2);
        assert_eq!((a[0].min, a[0].max), (0.1, 0.3));
        assert_eq!(a[1].key.system, "longs");
        assert_eq!(a[1].count, 1);
    }

    #[test]
    fn campaign_table_renders_identically_for_permuted_rows() {
        let rows = vec![row(5, "dmz", 2, 0.5), row(6, "dmz", 2, 0.25), row(7, "longs", 8, 0.125)];
        let mut reversed = rows.clone();
        reversed.reverse();
        let a = campaign_table("t", &rows).to_csv();
        let b = campaign_table("t", &reversed).to_csv();
        assert_eq!(a, b);
        assert!(a.contains("dmz bsp x2"), "{a}");
    }

    #[test]
    fn pivot_table_matches_the_hand_rolled_construction() {
        // The byte-identity contract the stream-figure migration leans
        // on: Some -> Cell::num, None -> Cell::Dash, nothing else.
        let rows = vec![
            ("1".to_string(), vec![Some(1.234), Some(5.678)]),
            ("16".to_string(), vec![None, Some(9.0)]),
        ];
        let view = pivot_table("t", &["Cores", "a", "b"], &rows);

        let mut hand = Table::with_columns("t", &["Cores", "a", "b"]);
        hand.push_row("1", vec![Cell::num(1.234), Cell::num(5.678)]);
        hand.push_row("16", vec![Cell::Dash, Cell::num(9.0)]);
        assert_eq!(view.to_csv(), hand.to_csv());
        assert_eq!(view.value("16", "a"), None, "dash cells read back as missing");
        assert_eq!(view.value("16", "b"), Some(9.0));
    }
}
