//! Shared helpers for artifact implementations.

use corescope_affinity::Scheme;
use corescope_machine::engine::RunReport;
use corescope_machine::{systems, Machine, Result};
use corescope_smpi::{CommWorld, LockLayer, MpiImpl, MpiProfile};

/// The three evaluation systems, built once per artifact run.
#[derive(Debug)]
pub struct Systems {
    /// Cray XD1 node, 2 x single-core Opteron 248.
    pub tiger: Machine,
    /// 2 x dual-core Opteron 275.
    pub dmz: Machine,
    /// Iwill H8501, 8 x dual-core Opteron 865.
    pub longs: Machine,
}

impl Systems {
    /// Builds all three.
    pub fn new() -> Self {
        Self {
            tiger: Machine::new(systems::tiger()),
            dmz: Machine::new(systems::dmz()),
            longs: Machine::new(systems::longs()),
        }
    }
}

impl Default for Systems {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs a workload builder under a placement scheme; returns `None` when
/// the scheme cannot host `nranks` on the machine (the paper's "—"
/// cells).
///
/// # Errors
///
/// Propagates engine errors (anything other than an unplaceable scheme).
pub fn run_scheme(
    machine: &Machine,
    scheme: Scheme,
    nranks: usize,
    profile: &MpiProfile,
    lock: LockLayer,
    build: impl FnOnce(&mut CommWorld<'_>),
) -> Result<Option<RunReport>> {
    let Ok(placements) = scheme.resolve(machine, nranks) else {
        return Ok(None);
    };
    let mut world = CommWorld::new(machine, placements, profile.clone(), lock);
    build(&mut world);
    world.run().map(Some)
}

/// Like [`run_scheme`] but returns just the makespan.
///
/// # Errors
///
/// Propagates engine errors.
pub fn time_scheme(
    machine: &Machine,
    scheme: Scheme,
    nranks: usize,
    profile: &MpiProfile,
    lock: LockLayer,
    build: impl FnOnce(&mut CommWorld<'_>),
) -> Result<Option<f64>> {
    Ok(run_scheme(machine, scheme, nranks, profile, lock, build)?.map(|r| r.makespan))
}

/// A named workload builder: appends one benchmark run for `nranks`
/// ranks to a world.
pub type WorkloadFn<'w> = dyn Fn(&mut CommWorld<'_>, usize) + 'w;

/// Builds a scheme-comparison table in the paper's layout: one row per
/// `(task count, workload)` pair, one column per Table 5 scheme, values
/// from `measure` (typically the makespan in seconds). Unplaceable
/// combinations render as the paper's "—".
///
/// # Errors
///
/// Propagates engine errors.
pub fn scheme_sweep(
    title: &str,
    machine: &Machine,
    task_counts: &[usize],
    workloads: &[(&str, &WorkloadFn<'_>)],
    profile: &MpiProfile,
    lock: LockLayer,
) -> Result<crate::report::Table> {
    let mut columns = vec!["Tasks / workload"];
    columns.extend(Scheme::all().iter().map(|s| s.name()));
    let mut rows = Vec::new();
    for &n in task_counts {
        if n > machine.num_cores() {
            continue;
        }
        for (name, build) in workloads {
            let mut values = Vec::new();
            for scheme in Scheme::all() {
                values.push(time_scheme(machine, scheme, n, profile, lock, |w| build(w, n))?);
            }
            rows.push((format!("{n} {name}"), values));
        }
    }
    Ok(crate::aggregate::pivot_table(title, &columns, &rows))
}

/// The MPI stack the paper uses for the NAS/application tables (MPICH2
/// with spin locks).
pub fn default_stack() -> (MpiProfile, LockLayer) {
    (MpiImpl::Mpich2.profile(), LockLayer::USysV)
}

/// The LAM stack used for the HPCC figures.
pub fn lam_profile() -> MpiProfile {
    MpiImpl::Lam.profile()
}

#[cfg(test)]
mod tests {
    use super::*;
    use corescope_machine::ComputePhase;
    use corescope_machine::TrafficProfile;

    #[test]
    fn unplaceable_scheme_yields_none() {
        let s = Systems::new();
        let (profile, lock) = default_stack();
        let out =
            time_scheme(&s.longs, Scheme::OneMpiLocalAlloc, 16, &profile, lock, |_| {}).unwrap();
        assert_eq!(out, None);
    }

    #[test]
    fn placeable_scheme_runs() {
        let s = Systems::new();
        let (profile, lock) = default_stack();
        let out = time_scheme(&s.dmz, Scheme::Default, 2, &profile, lock, |w| {
            let phase = ComputePhase::new("x", 1e9, TrafficProfile::none());
            w.compute_all(|_| Some(phase.clone()));
        })
        .unwrap();
        assert!(out.unwrap() > 0.0);
    }
}
