//! Ablation studies for the simulator's load-bearing modelling choices.
//!
//! DESIGN.md singles out four mechanisms as carrying the paper's
//! phenomenology; each function here sweeps one of them and shows what
//! the reproduction would get wrong without it:
//!
//! 1. the machine-wide coherence **probe-fabric capacity** (Longs' Star
//!    STREAM collapse),
//! 2. the default scheme's **page misplacement fraction** (the
//!    default-vs-localalloc gap),
//! 3. the per-message **lock sub-layer cost** (RandomAccess/latency
//!    sensitivity),
//! 4. the **intra-socket copy-bandwidth boost** (Figures 16/17).
//!
//! Since the calibration subsystem landed, every swept knob is a
//! [`CalibParams`] field and every measured quantity is a
//! [`corescope_calib::targets::Observable`], so each table is a thin
//! wrapper over [`corescope_calib::sensitivity::sweep_field`] /
//! [`observe`] — "sweep one knob, watch one observable" as a single
//! generic operation, with the scenarios flowing through a
//! [`Scheduler`] (and therefore the result cache) instead of bespoke
//! engine plumbing. The rendered tables are byte-identical to the
//! hand-rolled sweeps they replaced.

use crate::report::{Cell, Table};
use corescope_affinity::Scheme;
use corescope_calib::sensitivity::{observe, sweep_field};
use corescope_calib::targets::{Observable, Reduction};
use corescope_kernels::cg::CgClass;
use corescope_kernels::stream::StreamParams;
use corescope_machine::{CalibParams, Result};
use corescope_sched::{Placement, Scenario, Scheduler, System, Workload};
use corescope_smpi::{LockLayer, MpiImpl};

fn field(name: &str) -> &'static corescope_machine::ParamField {
    CalibParams::field(name).unwrap_or_else(|| panic!("unknown calibration field '{name}'"))
}

/// Sweeps the Longs probe-fabric capacity and reports 16-core Star STREAM
/// bandwidth. Without the cap (last row) the ladder would scale like
/// sixteen independent cores — the shape the paper refutes.
///
/// # Errors
///
/// Propagates engine errors.
pub fn probe_capacity() -> Result<Table> {
    let sched = Scheduler::new(1);
    let mut table = Table::with_columns(
        "Ablation: Longs probe-fabric capacity vs 16-core Star STREAM",
        &["Probe capacity (GB/s)", "Aggregate BW (GB/s)", "Per-core (GB/s)"],
    );
    let params = StreamParams { sweeps: 3, ..StreamParams::default() };
    let base = Observable {
        scenario: Scenario::new(
            System::Longs,
            16,
            Workload::StreamStar {
                kernel: params.kernel,
                elements_per_rank: params.elements_per_rank,
                sweeps: params.sweeps,
            },
        )
        .with_placement(Placement::Scheme(Scheme::TwoMpiLocalAlloc))
        .with_mpi(MpiImpl::Lam)
        .with_lock(LockLayer::USysV),
        reduce: Reduction::AggregateBandwidth { total_bytes: 16.0 * params.bytes_per_rank() },
    };
    let caps = [7e9, 14e9, 28e9, 1e12];
    let bws = sweep_field(&sched, &base, field("probe_capacity_ladder"), &caps)?;
    for (cap, bw) in caps.into_iter().zip(bws) {
        let label = if cap >= 1e11 { "unlimited".to_string() } else { format!("{}", cap / 1e9) };
        table.push_row(label, vec![Cell::num(bw / 1e9), Cell::num(bw / 16.0 / 1e9)]);
    }
    Ok(table)
}

/// Sweeps the default scheme's page-misplacement fraction and reports the
/// NAS CG class A runtime at 8 ranks on Longs. Zero misplacement makes
/// "Default" indistinguishable from localalloc; large fractions make it
/// look like interleave.
///
/// # Errors
///
/// Propagates engine errors.
pub fn misplacement_fraction() -> Result<Table> {
    let sched = Scheduler::new(1);
    let mut table = Table::with_columns(
        "Ablation: default-scheme page misplacement vs NAS CG-A (8 ranks, Longs)",
        &["Misplaced fraction", "CG time (s)"],
    );
    let base = Observable {
        scenario: Scenario::new(System::Longs, 8, Workload::NasCg { class: CgClass::A })
            .with_placement(Placement::Scheme(Scheme::Default))
            .with_mpi(MpiImpl::Mpich2)
            .with_lock(LockLayer::USysV),
        reduce: Reduction::Makespan,
    };
    let fractions = [0.0, 0.05, 0.10, 0.20, 0.40];
    let times = sweep_field(&sched, &base, field("misplacement"), &fractions)?;
    for (fraction, makespan) in fractions.into_iter().zip(times) {
        table.push_row(format!("{fraction:.2}"), vec![Cell::num(makespan)]);
    }
    Ok(table)
}

/// Sweeps the per-message lock cost and reports small-message PingPong
/// latency on Longs — the knob separating "sysv" from "usysv" everywhere
/// in Figures 8–13.
///
/// # Errors
///
/// Propagates engine errors.
pub fn lock_cost() -> Result<Table> {
    let sched = Scheduler::new(1);
    let mut table = Table::with_columns(
        "Ablation: lock sub-layer cost vs 8-byte PingPong latency (Longs)",
        &["Lock layer", "Latency (us)"],
    );
    let rows = [("usysv (spin)", LockLayer::USysV), ("sysv (semaphore)", LockLayer::SysV)];
    let observables: Vec<Observable> = rows
        .iter()
        .map(|&(_, lock)| Observable {
            scenario: Scenario::new(System::Longs, 16, Workload::PingPong { bytes: 8.0, reps: 50 })
                .with_placement(Placement::Scheme(Scheme::TwoMpiLocalAlloc))
                .with_mpi(MpiImpl::Lam)
                .with_lock(lock),
            reduce: Reduction::PingPongLatency { reps: 50 },
        })
        .collect();
    let times = observe(&sched, &observables)?;
    for ((label, _), t) in rows.into_iter().zip(times) {
        table.push_row(label, vec![Cell::num(t * 1e6)]);
    }
    Ok(table)
}

/// Sweeps the intra-socket copy-bandwidth boost and reports the bound vs
/// unbound PingPong bandwidth ratio on DMZ (the paper's measured 10–13%).
///
/// # Errors
///
/// Propagates engine errors.
pub fn same_socket_boost() -> Result<Table> {
    let sched = Scheduler::new(1);
    let mut table = Table::with_columns(
        "Ablation: intra-socket copy boost vs bound:unbound PingPong ratio (DMZ, 1 MB)",
        &["Boost", "Bound (MB/s)", "Unbound (MB/s)", "Ratio"],
    );
    let pingpong = |scheme| {
        Scenario::new(System::Dmz, 2, Workload::PingPong { bytes: 1e6, reps: 10 })
            .with_placement(Placement::Scheme(scheme))
            .with_mpi(MpiImpl::OpenMpi)
            .with_lock(LockLayer::USysV)
    };
    let reduce = Reduction::PingPongBandwidth { bytes: 1e6, reps: 10 };
    let near = Observable { scenario: pingpong(Scheme::TwoMpiLocalAlloc), reduce };
    // The cross-socket pair never sees the boost; one run at the shipped
    // point serves every row.
    let far = Observable { scenario: pingpong(Scheme::OneMpiLocalAlloc), reduce };
    let boosts = [1.0_f64, 1.12, 1.25];
    let bound = sweep_field(&sched, &near, field("same_socket_boost"), &boosts)?;
    let bw_far = observe(&sched, &[far])?[0];
    for (boost, bw_near) in boosts.into_iter().zip(bound) {
        table.push_row(
            format!("{boost:.2}"),
            vec![
                Cell::num(bw_near / 1e6),
                Cell::num(bw_far / 1e6),
                Cell::num_with(bw_near / bw_far, 3),
            ],
        );
    }
    Ok(table)
}

/// All four ablations.
///
/// # Errors
///
/// Propagates engine errors.
pub fn all() -> Result<Vec<Table>> {
    Ok(vec![probe_capacity()?, misplacement_fraction()?, lock_cost()?, same_socket_boost()?])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_capacity_is_the_binding_constraint() {
        let t = probe_capacity().unwrap();
        let capped = t.value("14", "Aggregate BW (GB/s)").unwrap();
        let uncapped = t.value("unlimited", "Aggregate BW (GB/s)").unwrap();
        assert!((capped - 14.0).abs() < 0.5, "14 GB/s fabric binds: {capped}");
        assert!(
            uncapped > 1.5 * capped,
            "without the fabric the ladder would scale: {uncapped} vs {capped}"
        );
    }

    #[test]
    fn misplacement_strictly_degrades_cg() {
        let t = misplacement_fraction().unwrap();
        let clean = t.value("0.00", "CG time (s)").unwrap();
        let dirty = t.value("0.40", "CG time (s)").unwrap();
        assert!(dirty > clean, "misplaced pages must cost time: {dirty} vs {clean}");
    }

    #[test]
    fn lock_cost_dominates_latency() {
        let t = lock_cost().unwrap();
        let spin = t.value("usysv (spin)", "Latency (us)").unwrap();
        let sem = t.value("sysv (semaphore)", "Latency (us)").unwrap();
        assert!(sem > 3.0 * spin, "{sem} vs {spin}");
    }

    #[test]
    fn boost_sweep_brackets_the_paper_value() {
        let t = same_socket_boost().unwrap();
        let none = t.value("1.00", "Ratio").unwrap();
        let paper = t.value("1.12", "Ratio").unwrap();
        assert!(none < 1.02, "without the boost there is no bound benefit: {none}");
        assert!(paper > 1.05 && paper < 1.20, "paper-calibrated ratio: {paper}");
    }
}
