//! Ablation studies for the simulator's load-bearing modelling choices.
//!
//! DESIGN.md singles out four mechanisms as carrying the paper's
//! phenomenology; each function here sweeps one of them and shows what
//! the reproduction would get wrong without it:
//!
//! 1. the machine-wide coherence **probe-fabric capacity** (Longs' Star
//!    STREAM collapse),
//! 2. the default scheme's **page misplacement fraction** (the
//!    default-vs-localalloc gap),
//! 3. the per-message **lock sub-layer cost** (RandomAccess/latency
//!    sensitivity),
//! 4. the **intra-socket copy-bandwidth boost** (Figures 16/17).

use crate::report::{Cell, Table};
use corescope_affinity::{os_scatter, policy, Scheme};
use corescope_kernels::cg::{CgClass, NasCg};
use corescope_kernels::stream::{append_star, StreamParams};
use corescope_machine::engine::RankPlacement;
use corescope_machine::{systems, Machine, Result};
use corescope_smpi::imb::pingpong_bandwidth;
use corescope_smpi::{CommWorld, LockLayer, MpiImpl, MpiProfile};

/// Sweeps the Longs probe-fabric capacity and reports 16-core Star STREAM
/// bandwidth. Without the cap (last row) the ladder would scale like
/// sixteen independent cores — the shape the paper refutes.
///
/// # Errors
///
/// Propagates engine errors.
pub fn probe_capacity() -> Result<Table> {
    let mut table = Table::with_columns(
        "Ablation: Longs probe-fabric capacity vs 16-core Star STREAM",
        &["Probe capacity (GB/s)", "Aggregate BW (GB/s)", "Per-core (GB/s)"],
    );
    let params = StreamParams { sweeps: 3, ..StreamParams::default() };
    for cap in [7e9, 14e9, 28e9, 1e12] {
        let mut spec = systems::longs();
        spec.coherence.probe_capacity = cap;
        let machine = Machine::new(spec);
        let placements = Scheme::TwoMpiLocalAlloc.resolve(&machine, 16)?;
        let mut world =
            CommWorld::new(&machine, placements, MpiImpl::Lam.profile(), LockLayer::USysV);
        append_star(&mut world, &params);
        let bw = 16.0 * params.bytes_per_rank() / world.run()?.makespan;
        let label = if cap >= 1e11 { "unlimited".to_string() } else { format!("{}", cap / 1e9) };
        table.push_row(label, vec![Cell::num(bw / 1e9), Cell::num(bw / 16.0 / 1e9)]);
    }
    Ok(table)
}

/// Sweeps the default scheme's page-misplacement fraction and reports the
/// NAS CG class A runtime at 8 ranks on Longs. Zero misplacement makes
/// "Default" indistinguishable from localalloc; large fractions make it
/// look like interleave.
///
/// # Errors
///
/// Propagates engine errors.
pub fn misplacement_fraction() -> Result<Table> {
    let machine = Machine::new(systems::longs());
    let mut table = Table::with_columns(
        "Ablation: default-scheme page misplacement vs NAS CG-A (8 ranks, Longs)",
        &["Misplaced fraction", "CG time (s)"],
    );
    for fraction in [0.0, 0.05, 0.10, 0.20, 0.40] {
        let placements: Vec<RankPlacement> = os_scatter(&machine, 8)?
            .into_iter()
            .map(|core| {
                Ok(RankPlacement::new(core, policy::default_first_touch(&machine, core, fraction)?))
            })
            .collect::<Result<_>>()?;
        let mut world =
            CommWorld::new(&machine, placements, MpiImpl::Mpich2.profile(), LockLayer::USysV);
        NasCg { class: CgClass::A }.append_run(&mut world);
        table.push_row(format!("{fraction:.2}"), vec![Cell::num(world.run()?.makespan)]);
    }
    Ok(table)
}

/// Sweeps the per-message lock cost and reports small-message PingPong
/// latency on Longs — the knob separating "sysv" from "usysv" everywhere
/// in Figures 8–13.
///
/// # Errors
///
/// Propagates engine errors.
pub fn lock_cost() -> Result<Table> {
    let machine = Machine::new(systems::longs());
    let placements = Scheme::TwoMpiLocalAlloc.resolve(&machine, 16)?;
    let mut table = Table::with_columns(
        "Ablation: lock sub-layer cost vs 8-byte PingPong latency (Longs)",
        &["Lock layer", "Latency (us)"],
    );
    let profile = MpiImpl::Lam.profile();
    for (label, lock) in [("usysv (spin)", LockLayer::USysV), ("sysv (semaphore)", LockLayer::SysV)]
    {
        let t = corescope_smpi::imb::pingpong_time(&machine, &placements, &profile, lock, 8.0, 50)?;
        table.push_row(label, vec![Cell::num(t * 1e6)]);
    }
    Ok(table)
}

/// Sweeps the intra-socket copy-bandwidth boost and reports the bound vs
/// unbound PingPong bandwidth ratio on DMZ (the paper's measured 10–13%).
///
/// # Errors
///
/// Propagates engine errors.
pub fn same_socket_boost() -> Result<Table> {
    let machine = Machine::new(systems::dmz());
    let near = Scheme::TwoMpiLocalAlloc.resolve(&machine, 2)?;
    let far = Scheme::OneMpiLocalAlloc.resolve(&machine, 2)?;
    let mut table = Table::with_columns(
        "Ablation: intra-socket copy boost vs bound:unbound PingPong ratio (DMZ, 1 MB)",
        &["Boost", "Bound (MB/s)", "Unbound (MB/s)", "Ratio"],
    );
    for boost in [1.0_f64, 1.12, 1.25] {
        // The boost constant lives in MpiProfile; emulate the sweep by
        // scaling the intra-socket run's copy bandwidth.
        let profile = MpiImpl::OpenMpi.profile();
        let mut boosted = profile.clone();
        boosted.copy_bw *= boost / MpiProfile::SAME_SOCKET_BW_BOOST;
        let bw_near = pingpong_bandwidth(&machine, &near, &boosted, LockLayer::USysV, 1e6, 10)?;
        let bw_far = pingpong_bandwidth(&machine, &far, &profile, LockLayer::USysV, 1e6, 10)?;
        table.push_row(
            format!("{boost:.2}"),
            vec![
                Cell::num(bw_near / 1e6),
                Cell::num(bw_far / 1e6),
                Cell::num_with(bw_near / bw_far, 3),
            ],
        );
    }
    Ok(table)
}

/// All four ablations.
///
/// # Errors
///
/// Propagates engine errors.
pub fn all() -> Result<Vec<Table>> {
    Ok(vec![probe_capacity()?, misplacement_fraction()?, lock_cost()?, same_socket_boost()?])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_capacity_is_the_binding_constraint() {
        let t = probe_capacity().unwrap();
        let capped = t.value("14", "Aggregate BW (GB/s)").unwrap();
        let uncapped = t.value("unlimited", "Aggregate BW (GB/s)").unwrap();
        assert!((capped - 14.0).abs() < 0.5, "14 GB/s fabric binds: {capped}");
        assert!(
            uncapped > 1.5 * capped,
            "without the fabric the ladder would scale: {uncapped} vs {capped}"
        );
    }

    #[test]
    fn misplacement_strictly_degrades_cg() {
        let t = misplacement_fraction().unwrap();
        let clean = t.value("0.00", "CG time (s)").unwrap();
        let dirty = t.value("0.40", "CG time (s)").unwrap();
        assert!(dirty > clean, "misplaced pages must cost time: {dirty} vs {clean}");
    }

    #[test]
    fn lock_cost_dominates_latency() {
        let t = lock_cost().unwrap();
        let spin = t.value("usysv (spin)", "Latency (us)").unwrap();
        let sem = t.value("sysv (semaphore)", "Latency (us)").unwrap();
        assert!(sem > 3.0 * spin, "{sem} vs {spin}");
    }

    #[test]
    fn boost_sweep_brackets_the_paper_value() {
        let t = same_socket_boost().unwrap();
        let none = t.value("1.00", "Ratio").unwrap();
        let paper = t.value("1.12", "Ratio").unwrap();
        assert!(none < 1.02, "without the boost there is no bound benefit: {none}");
        assert!(paper > 1.05 && paper < 1.20, "paper-calibrated ratio: {paper}");
    }
}
