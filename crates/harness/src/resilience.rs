//! Extra X3: fault-injection resilience campaigns.
//!
//! Each campaign takes a representative workload from the paper's
//! artifacts — STREAM (Figures 2/3), IMB PingPong (Figure 14), NAS CG
//! (Table 2) — and runs it five ways against the resource class it is
//! bound by:
//!
//! 1. **healthy** — no faults, the reference makespan;
//! 2. **brownout + restore** — the resources degrade to half capacity
//!    for the middle quarter of the healthy run, then recover;
//! 3. **permanent degrade** — half capacity from `t = 0`, never restored;
//! 4. **kill** — capacity drops to zero mid-run with no restore;
//! 5. **stall** — rank 0 freezes at `t = 0` with no resume.
//!
//! The campaign *checks* the bounded-degradation invariants, not just
//! reports them: the brownout run must land strictly between healthy and
//! permanently-degraded; halving the bounding resource class can at most
//! double the makespan; and the kill/stall runs must fail with typed
//! errors ([`Error::RankStalled`], [`Error::ZeroCapacityRoute`]) rather
//! than hang or complete. Any violation fails the artifact run.

use crate::context::{default_stack, Systems};
use crate::fidelity::Fidelity;
use crate::report::{Cell, Table};
use corescope_affinity::Scheme;
use corescope_kernels::cg::{CgClass, NasCg};
use corescope_kernels::stream::{append_star, StreamParams};
use corescope_machine::engine::RunReport;
use corescope_machine::{Error, FaultPlan, LinkId, Machine, RankId, Result, RunTrace, TraceConfig};
use corescope_smpi::CommWorld;

/// The resource class a campaign degrades — chosen per workload to match
/// what actually bounds it.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FaultTarget {
    /// Every socket's memory controller (for bandwidth-bound kernels).
    Controllers,
    /// Every directed HyperTransport link (for communication-bound runs).
    Links,
}

impl FaultTarget {
    fn degrade(self, machine: &Machine, plan: FaultPlan, at: f64, factor: f64) -> FaultPlan {
        match self {
            FaultTarget::Controllers => {
                machine.sockets().fold(plan, |p, s| p.controller_throttle(at, s, factor))
            }
            FaultTarget::Links => (0..machine.topology().num_links())
                .fold(plan, |p, l| p.link_degrade(at, LinkId::new(l), factor)),
        }
    }

    fn restore(self, machine: &Machine, plan: FaultPlan, at: f64) -> FaultPlan {
        match self {
            FaultTarget::Controllers => {
                machine.sockets().fold(plan, |p, s| p.controller_restore(at, s))
            }
            FaultTarget::Links => (0..machine.topology().num_links())
                .fold(plan, |p, l| p.link_restore(at, LinkId::new(l))),
        }
    }
}

/// One workload under test.
struct Scenario {
    name: &'static str,
    machine: fn(&Systems) -> &Machine,
    scheme: Scheme,
    nranks: usize,
    target: FaultTarget,
    build: Box<dyn Fn(&mut CommWorld<'_>)>,
}

fn scenarios(fidelity: Fidelity) -> Vec<Scenario> {
    let sweeps = fidelity.steps(10).max(2);
    let reps = fidelity.steps(20).max(4);
    // Class S transfers are setup-dominated and barely notice link
    // bandwidth; class A is the smallest class whose exchanges are
    // link-bound enough for the campaign to measure degradation.
    let cg_class = match fidelity {
        Fidelity::Full => CgClass::B,
        Fidelity::Quick => CgClass::A,
    };
    vec![
        Scenario {
            name: "STREAM triad x4 (F2/F3), DMZ",
            machine: |s| &s.dmz,
            scheme: Scheme::TwoMpiLocalAlloc,
            nranks: 4,
            target: FaultTarget::Controllers,
            build: Box::new(move |w| {
                let params = StreamParams { sweeps, ..StreamParams::default() };
                append_star(w, &params);
            }),
        },
        Scenario {
            name: "IMB PingPong 1 MiB (F14), DMZ cross-socket",
            machine: |s| &s.dmz,
            scheme: Scheme::OneMpiLocalAlloc,
            nranks: 2,
            target: FaultTarget::Links,
            build: Box::new(move |w| {
                for _ in 0..reps {
                    w.p2p(0, 1, 1048576.0);
                    w.p2p(1, 0, 1048576.0);
                }
            }),
        },
        Scenario {
            // CG is memory-bandwidth-bound (the paper's headline result),
            // so its campaign degrades the controllers, not the links.
            name: "NAS CG (T2), Longs x8",
            machine: |s| &s.longs,
            scheme: Scheme::TwoMpiLocalAlloc,
            nranks: 8,
            target: FaultTarget::Controllers,
            build: Box::new(move |w| NasCg { class: cg_class }.append_run(w)),
        },
    ]
}

/// Names the outcome of a faulted run for the campaign table; `Err(None)`
/// from the caller's perspective means "not a typed fault outcome".
fn fault_outcome(result: Result<RunReport>) -> (String, bool) {
    match result {
        Ok(_) => ("completed".to_string(), false),
        Err(Error::RankStalled { rank, resource: Some(_), .. }) => {
            (format!("RankStalled({rank}, starved)"), true)
        }
        Err(Error::RankStalled { rank, .. }) => (format!("RankStalled({rank})"), true),
        Err(Error::ZeroCapacityRoute { .. }) => ("ZeroCapacityRoute".to_string(), true),
        Err(Error::Deadlock { blocked, .. }) => {
            (format!("Deadlock({} ranks)", blocked.len()), true)
        }
        Err(e) => (e.to_string(), false),
    }
}

fn invariant_violation(scenario: &str, what: impl std::fmt::Display) -> Error {
    Error::InvalidSpec(format!("resilience invariant violated for '{scenario}': {what}"))
}

struct CampaignRow {
    healthy: f64,
    transient: f64,
    degraded: f64,
    kill: String,
    stall: String,
    /// Fault events stamped into traces vs. events scheduled, across the
    /// brownout, kill, and stall runs.
    stamped: usize,
    scheduled: usize,
}

/// Checks a traced run's fault stamps against the plan that drove it:
/// every scheduled event must appear, in order, with its scheduled time,
/// fired no earlier than scheduled. Returns the stamp count.
fn check_stamps(scenario: &str, plan: &FaultPlan, trace: Option<&RunTrace>) -> Result<usize> {
    let stamps = trace.map(|t| t.faults.as_slice()).unwrap_or(&[]);
    let events = plan.events();
    if stamps.len() != events.len() {
        return Err(invariant_violation(
            scenario,
            format!("{} fault events scheduled but {} stamped", events.len(), stamps.len()),
        ));
    }
    for (stamp, event) in stamps.iter().zip(events) {
        if stamp.kind != event.kind {
            return Err(invariant_violation(
                scenario,
                format!("stamped {:?} where {:?} was scheduled", stamp.kind, event.kind),
            ));
        }
        if stamp.scheduled != event.at || stamp.fired < stamp.scheduled - 1e-12 {
            return Err(invariant_violation(
                scenario,
                format!(
                    "fault {:?} scheduled at {} stamped (scheduled {}, fired {})",
                    event.kind, event.at, stamp.scheduled, stamp.fired
                ),
            ));
        }
    }
    Ok(stamps.len())
}

fn run_campaign(systems: &Systems, sc: &Scenario) -> Result<CampaignRow> {
    let machine = (sc.machine)(systems);
    let placements = sc.scheme.resolve(machine, sc.nranks)?;
    let (profile, lock) = default_stack();
    let mut world = CommWorld::new(machine, placements, profile, lock);
    (sc.build)(&mut world);

    let healthy = world.run()?.makespan;
    let mut stamped = 0;
    let mut scheduled = 0;

    // Half capacity during the middle quarter of the healthy run. Traced,
    // so the campaign can verify the *sequence* of faults that fired —
    // not just the bare `faults_applied` count.
    let brownout = sc.target.restore(
        machine,
        sc.target.degrade(machine, FaultPlan::new(), healthy * 0.25, 0.5),
        healthy * 0.5,
    );
    let transient_obs = world.observe(&brownout, TraceConfig::on());
    stamped += check_stamps(sc.name, &brownout, transient_obs.trace.as_ref())?;
    scheduled += brownout.events().len();
    let transient_report = transient_obs.result?;
    if transient_report.metrics.faults_applied != brownout.events().len() {
        return Err(invariant_violation(
            sc.name,
            format!(
                "faults_applied {} disagrees with the {} stamped events",
                transient_report.metrics.faults_applied,
                brownout.events().len()
            ),
        ));
    }
    let transient = transient_report.makespan;

    // Half capacity for the whole run.
    let permanent = sc.target.degrade(machine, FaultPlan::new(), 0.0, 0.5);
    let degraded = world.run_with_faults(&permanent)?.makespan;

    if !(healthy < transient && transient < degraded) {
        return Err(invariant_violation(
            sc.name,
            format!(
                "brownout makespan must sit strictly between healthy and degraded \
                 (healthy {healthy:.6}, transient {transient:.6}, degraded {degraded:.6})"
            ),
        ));
    }
    if degraded > 2.0 * healthy * 1.01 {
        return Err(invariant_violation(
            sc.name,
            format!(
                "halving the bounding resources more than doubled the makespan \
                 ({degraded:.6} vs healthy {healthy:.6})"
            ),
        ));
    }

    // Capacity hits zero mid-run, never restored: a typed error, not a
    // hang — and the interrupted run must still stamp its faults and
    // account the traffic it actually moved before dying.
    let kill_plan = sc.target.degrade(machine, FaultPlan::new(), healthy * 0.25, 0.0);
    let kill_obs = world.observe(&kill_plan, TraceConfig::on());
    stamped += check_stamps(sc.name, &kill_plan, kill_obs.trace.as_ref())?;
    scheduled += kill_plan.events().len();
    let partial: f64 = kill_obs.metrics.resource_bytes.iter().sum();
    if partial <= 0.0 {
        return Err(invariant_violation(
            sc.name,
            "a mid-run kill must report the partial resource traffic that moved",
        ));
    }
    let (kill, kill_typed) = fault_outcome(kill_obs.result);
    if !kill_typed {
        return Err(invariant_violation(sc.name, format!("kill outcome was '{kill}'")));
    }

    // Rank 0 freezes at t=0, never resumed: likewise a typed error.
    let stall_plan = FaultPlan::new().rank_stall(0.0, RankId::new(0));
    let stall_obs = world.observe(&stall_plan, TraceConfig::on());
    stamped += check_stamps(sc.name, &stall_plan, stall_obs.trace.as_ref())?;
    scheduled += stall_plan.events().len();
    let (stall, stall_typed) = fault_outcome(stall_obs.result);
    if !stall_typed {
        return Err(invariant_violation(sc.name, format!("stall outcome was '{stall}'")));
    }

    Ok(CampaignRow { healthy, transient, degraded, kill, stall, stamped, scheduled })
}

/// Extra X3: the fault-injection campaign table.
///
/// # Errors
///
/// Propagates engine errors, and returns [`Error::InvalidSpec`] when a
/// bounded-degradation invariant is violated (that is the point: the
/// artifact doubles as a resilience check).
pub fn extra3(fidelity: Fidelity) -> Result<Vec<Table>> {
    let systems = Systems::new();
    let mut table = Table::with_columns(
        "Extra X3: fault-injection resilience campaign (seconds; half-capacity faults)",
        &[
            "Workload",
            "Healthy",
            "Brownout+restore",
            "Degraded",
            "Slowdown",
            "Kill outcome",
            "Stall outcome",
            "Faults stamped",
        ],
    );
    for sc in scenarios(fidelity) {
        let row = run_campaign(&systems, &sc)?;
        table.push_row(
            sc.name,
            vec![
                Cell::num_with(row.healthy, 4),
                Cell::num_with(row.transient, 4),
                Cell::num_with(row.degraded, 4),
                Cell::num_with(row.degraded / row.healthy, 3),
                Cell::text(row.kill),
                Cell::text(row.stall),
                Cell::text(format!("{}/{}", row.stamped, row.scheduled)),
            ],
        );
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_runs_and_checks_its_invariants() {
        let tables = extra3(Fidelity::Quick).unwrap();
        let t = &tables[0];
        assert_eq!(t.num_rows(), 3);
        for sc in ["STREAM triad x4 (F2/F3), DMZ", "IMB PingPong 1 MiB (F14), DMZ cross-socket"] {
            let healthy = t.value(sc, "Healthy").unwrap();
            let transient = t.value(sc, "Brownout+restore").unwrap();
            let degraded = t.value(sc, "Degraded").unwrap();
            assert!(healthy < transient && transient < degraded, "{sc}");
            let slowdown = t.value(sc, "Slowdown").unwrap();
            assert!(slowdown > 1.0 && slowdown <= 2.02, "{sc}: slowdown {slowdown}");
        }
    }

    #[test]
    fn stream_campaign_kill_is_a_starvation_stall() {
        // The STREAM scenario kills the controllers with traffic in
        // flight: the typed outcome names the starved rank.
        let systems = Systems::new();
        let sc = &scenarios(Fidelity::Quick)[0];
        let row = run_campaign(&systems, sc).unwrap();
        assert!(row.kill.starts_with("RankStalled"), "kill outcome: {}", row.kill);
        assert!(row.stall.starts_with("RankStalled"), "stall outcome: {}", row.stall);
        // Brownout (degrade+restore), kill, and stall all stamped fully.
        assert_eq!(row.stamped, row.scheduled);
        assert!(row.scheduled > 0);
    }
}
