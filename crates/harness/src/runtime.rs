//! The six LAM/NUMA runtime-option combinations of the paper's HPCC
//! figures (Figures 8–13): page placement × MPI lock sub-layer.

use corescope_affinity::Scheme;
use corescope_smpi::LockLayer;
use std::fmt;

/// One HPCC runtime configuration (Figure 8's x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeOption {
    /// Stock LAM (SysV semaphores), default placement.
    Default,
    /// Explicit `sysv` sub-layer, default placement.
    SysV,
    /// Spin-lock (`usysv`) sub-layer, default placement.
    USysV,
    /// `--localalloc`, stock lock layer.
    LocalAlloc,
    /// `--localalloc` plus `usysv` — the tuned configuration.
    LocalAllocUSysV,
    /// `--interleave=all`, stock lock layer.
    Interleave,
}

impl RuntimeOption {
    /// All six options in the paper's figure order.
    pub fn all() -> [RuntimeOption; 6] {
        [
            RuntimeOption::Default,
            RuntimeOption::SysV,
            RuntimeOption::USysV,
            RuntimeOption::LocalAlloc,
            RuntimeOption::LocalAllocUSysV,
            RuntimeOption::Interleave,
        ]
    }

    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            RuntimeOption::Default => "default",
            RuntimeOption::SysV => "sysv",
            RuntimeOption::USysV => "usysv",
            RuntimeOption::LocalAlloc => "localalloc",
            RuntimeOption::LocalAllocUSysV => "localalloc+usysv",
            RuntimeOption::Interleave => "interleave",
        }
    }

    /// The task/memory placement scheme this option implies.
    pub fn scheme(self) -> Scheme {
        match self {
            RuntimeOption::Default | RuntimeOption::SysV | RuntimeOption::USysV => Scheme::Default,
            RuntimeOption::LocalAlloc | RuntimeOption::LocalAllocUSysV => Scheme::TwoMpiLocalAlloc,
            RuntimeOption::Interleave => Scheme::Interleave,
        }
    }

    /// The lock sub-layer this option selects (LAM's stock build used the
    /// SysV semaphores).
    pub fn lock(self) -> LockLayer {
        match self {
            RuntimeOption::USysV | RuntimeOption::LocalAllocUSysV => LockLayer::USysV,
            _ => LockLayer::SysV,
        }
    }
}

impl fmt::Display for RuntimeOption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_distinct_options() {
        let all = RuntimeOption::all();
        assert_eq!(all.len(), 6);
        let mut names: Vec<_> = all.iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn usysv_options_use_spinlocks() {
        assert_eq!(RuntimeOption::USysV.lock(), LockLayer::USysV);
        assert_eq!(RuntimeOption::LocalAllocUSysV.lock(), LockLayer::USysV);
        assert_eq!(RuntimeOption::Default.lock(), LockLayer::SysV);
    }

    #[test]
    fn placement_mapping() {
        assert_eq!(RuntimeOption::LocalAlloc.scheme(), Scheme::TwoMpiLocalAlloc);
        assert_eq!(RuntimeOption::Interleave.scheme(), Scheme::Interleave);
        assert_eq!(RuntimeOption::SysV.scheme(), Scheme::Default);
    }
}
