//! # corescope-harness
//!
//! The experiment harness: one entry point per table and figure of the
//! paper, producing [`report::Table`]s whose rows/series mirror what the
//! paper reports.
//!
//! ```
//! use corescope_harness::{Artifact, Fidelity};
//!
//! # fn main() -> Result<(), corescope_machine::Error> {
//! // Regenerate Table 4 (NAS multi-core speedup) at reduced fidelity.
//! let tables = Artifact::T4.run(Fidelity::Quick)?;
//! assert!(!tables.is_empty());
//! println!("{}", tables[0]);
//! # Ok(())
//! # }
//! ```

pub mod ablation;
pub mod artifacts;
pub mod context;
pub mod fidelity;
pub mod observe;
pub mod report;
pub mod resilience;
pub mod runtime;

pub use artifacts::{Artifact, UnknownArtifact};
pub use fidelity::Fidelity;
pub use observe::{chrome_trace_json, representative_trace, utilization_csv, TraceBundle};
pub use report::{Cell, RowShapeError, Table};
pub use runtime::RuntimeOption;
