//! # corescope-harness
//!
//! The experiment harness: one entry point per table and figure of the
//! paper, producing [`report::Table`]s whose rows/series mirror what the
//! paper reports.
//!
//! ```
//! use corescope_harness::{Artifact, Fidelity};
//!
//! # fn main() -> Result<(), corescope_machine::Error> {
//! // Regenerate Table 4 (NAS multi-core speedup) at reduced fidelity.
//! let tables = Artifact::T4.run(Fidelity::Quick)?;
//! assert!(!tables.is_empty());
//! println!("{}", tables[0]);
//! # Ok(())
//! # }
//! ```

pub mod ablation;
pub mod aggregate;
pub mod artifacts;
pub mod context;
pub mod fidelity;
pub mod observe;
pub mod report;
pub mod resilience;
pub mod runtime;

pub use artifacts::{Artifact, UnknownArtifact};
pub use fidelity::Fidelity;
pub use observe::{chrome_trace_json, representative_trace, utilization_csv, TraceBundle};
pub use report::{Cell, RowShapeError, Table};
pub use runtime::RuntimeOption;

use corescope_sched::serve::{error_line, ArtifactRunner};
use corescope_sched::{json, Scheduler};
use std::sync::Arc;

/// Builds the artifact handler for [`corescope_sched::serve::Server`]:
/// decodes `{"artifact":"t2","fidelity":"quick"}` requests, regenerates
/// the tables through `sched` (so artifact sweeps share the service's
/// cache and in-flight dedup), and renders the response line exactly as
/// the original single-client `corescope-serve` did.
///
/// Lives here rather than in `corescope-sched` because the serve layer
/// sits below the artifact catalogue and cannot name [`Artifact`].
pub fn serve_artifact_runner(sched: Arc<Scheduler>) -> ArtifactRunner {
    Box::new(move |value| {
        let id = match value.get("artifact").and_then(json::Value::as_str) {
            Some(id) => id,
            None => {
                return error_line("bad-request", "'artifact' must be a string id such as \"t2\"")
            }
        };
        let artifact = match Artifact::from_id(id) {
            Ok(artifact) => artifact,
            Err(e) => return error_line("bad-request", &e.to_string()),
        };
        let fidelity = match value.get("fidelity").and_then(json::Value::as_str) {
            None => Fidelity::Quick,
            Some(key) => match Fidelity::parse(key) {
                Some(fidelity) => fidelity,
                None => {
                    return error_line(
                        "bad-request",
                        &format!("unknown fidelity '{key}' (full or quick)"),
                    )
                }
            },
        };
        let started = std::time::Instant::now();
        match artifact.run_with(fidelity, &sched) {
            Err(e) => error_line("engine", &e.to_string()),
            Ok(tables) => {
                let csv: Vec<String> =
                    tables.iter().map(|t| format!("\"{}\"", json::escape(&t.to_csv()))).collect();
                format!(
                    "{{\"ok\":true,\"artifact\":\"{}\",\"latency_ms\":{},\"tables\":[{}]}}",
                    artifact.id(),
                    json::num(started.elapsed().as_secs_f64() * 1e3),
                    csv.join(",")
                )
            }
        }
    })
}
