//! # corescope-kernels
//!
//! Micro-benchmarks and scientific kernels: the workloads of the paper's
//! Section 3 (STREAM, BLAS level 1/3, the HPC Challenge suite, and the
//! NAS CG/FT kernels).
//!
//! Every kernel comes in two forms:
//!
//! 1. a **real implementation** — actual Rust numerics (triad loops,
//!    blocked DGEMM, radix-2 FFT, sparse conjugate gradient, GUPS table
//!    updates) used by the unit/property tests and available standalone;
//! 2. a **workload model** — a builder that appends the kernel's phase
//!    structure (flops, memory traffic, message schedule) to a
//!    [`CommWorld`](corescope_smpi::CommWorld), to be executed by the
//!    machine simulator at paper scale.
//!
//! The models derive their operation counts from the same complexity
//! formulas the real implementations execute, so the simulator sees the
//! flop/byte/message volumes the real codes would generate.

pub mod blas;
pub mod cg;
pub mod ep;
pub mod fft;
pub mod hpcc;
pub mod hpl;
pub mod is;
pub mod memlat;
pub mod mg;
pub mod nasft;
pub mod ptrans;
pub mod randomaccess;
pub mod stream;
pub mod xslookup;

/// Bytes per `f64`.
pub const F64: f64 = 8.0;
/// Bytes per complex `f64` pair.
pub const C64: f64 = 16.0;
