//! HPCC RandomAccess (GUPS): real table-update kernel plus the Single /
//! Star / MPI workload models of Figure 11.

use crate::F64;
use corescope_machine::{ComputePhase, TrafficProfile};
use corescope_smpi::CommWorld;

/// The HPCC RandomAccess polynomial.
const POLY: u64 = 0x0000_0000_0000_0007;

/// The HPCC random-stream generator: each call advances the LFSR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaStream(u64);

impl RaStream {
    /// Starts the stream from the canonical seed.
    pub fn new() -> Self {
        Self(1)
    }

    /// Advances and returns the next value.
    pub fn next_value(&mut self) -> u64 {
        let high = self.0 >> 63;
        self.0 = (self.0 << 1) ^ (if high != 0 { POLY } else { 0 });
        self.0
    }
}

impl Default for RaStream {
    fn default() -> Self {
        Self::new()
    }
}

/// Applies `updates` GUPS updates to `table` (length must be a power of
/// two), returning the stream state for verification runs.
///
/// # Panics
///
/// Panics if the table length is not a power of two.
pub fn run_updates(table: &mut [u64], updates: usize, mut stream: RaStream) -> RaStream {
    let n = table.len();
    assert!(n.is_power_of_two(), "table length must be a power of two");
    let mask = (n - 1) as u64;
    for _ in 0..updates {
        let r = stream.next_value();
        table[(r & mask) as usize] ^= r;
    }
    stream
}

/// RandomAccess workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RaParams {
    /// Table words per rank (HPCC sizes the global table to half of
    /// memory; 2²⁵ words = 256 MiB is representative for these nodes).
    pub table_words_per_rank: u64,
    /// Updates per rank (HPCC runs 4× the table size; models may shorten
    /// proportionally).
    pub updates_per_rank: u64,
}

impl Default for RaParams {
    fn default() -> Self {
        Self { table_words_per_rank: 1 << 25, updates_per_rank: 4 << 25 }
    }
}

impl RaParams {
    /// The local update phase for one rank: dependent random access over
    /// the table — read + xor + write per update.
    pub fn phase(&self) -> ComputePhase {
        let updates = self.updates_per_rank as f64;
        let ws = self.table_words_per_rank as f64 * F64;
        ComputePhase::new("randomaccess", 0.0, TrafficProfile::random(2.0 * updates * F64, ws))
    }

    /// GUP/s implied by a runtime for `ranks` ranks.
    pub fn gups(&self, ranks: usize, seconds: f64) -> f64 {
        ranks as f64 * self.updates_per_rank as f64 / seconds / 1e9
    }
}

/// Appends a star-mode run (independent local tables, no communication).
pub fn append_star(world: &mut CommWorld<'_>, params: &RaParams) {
    let phase = params.phase();
    world.compute_all(|_| Some(phase.clone()));
}

/// Appends a single-rank run.
pub fn append_single(world: &mut CommWorld<'_>, params: &RaParams) {
    world.compute(0, params.phase());
}

/// Appends the MPI run: updates to remote table shares travel as small
/// bucketed messages (256-update chunks, so a few hundred bytes per
/// peer), which is why the SysV lock layer murders this benchmark
/// (Figure 11).
pub fn append_mpi(world: &mut CommWorld<'_>, params: &RaParams) {
    let p = world.size();
    if p <= 1 {
        append_single(world, params);
        return;
    }
    let chunk: u64 = 256;
    let chunks = (params.updates_per_rank / chunk).max(1);
    // Per chunk: generate updates, bucket-exchange with all peers, apply
    // the received share.
    let local_fraction = 1.0 / p as f64;
    let apply_ws = params.table_words_per_rank as f64 * F64;
    for _ in 0..chunks {
        let gen = ComputePhase::new("ra-generate", 0.0, TrafficProfile::stream(chunk as f64 * F64));
        world.compute_all(|_| Some(gen.clone()));
        // Each peer receives its share of the chunk.
        let bytes = (chunk as f64 * F64 * (1.0 - local_fraction) / (p as f64 - 1.0)).max(F64);
        world.alltoall(bytes);
        let apply = ComputePhase::new(
            "ra-apply",
            0.0,
            TrafficProfile::random(2.0 * chunk as f64 * F64, apply_ws),
        );
        world.compute_all(|_| Some(apply.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_nontrivial() {
        let mut a = RaStream::new();
        let mut b = RaStream::new();
        let va: Vec<u64> = (0..64).map(|_| a.next_value()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_value()).collect();
        assert_eq!(va, vb);
        let mut sorted = va.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() > 60, "stream should rarely repeat early");
    }

    #[test]
    fn double_update_restores_table() {
        // XOR updates with the same stream are an involution — the HPCC
        // verification trick.
        let mut table: Vec<u64> = (0..256u64).collect();
        let original = table.clone();
        run_updates(&mut table, 4 * 256, RaStream::new());
        assert_ne!(table, original, "updates must change the table");
        run_updates(&mut table, 4 * 256, RaStream::new());
        assert_eq!(table, original, "re-applying the same updates must undo them");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_table() {
        let mut table = vec![0u64; 100];
        run_updates(&mut table, 10, RaStream::new());
    }

    mod sim {
        use super::super::*;
        use corescope_affinity::Scheme;
        use corescope_machine::{systems, Machine};
        use corescope_smpi::{LockLayer, MpiImpl};

        fn mpi_time(lock: LockLayer) -> f64 {
            let m = Machine::new(systems::longs());
            let placements = Scheme::TwoMpiLocalAlloc.resolve(&m, 8).unwrap();
            let mut w = CommWorld::new(&m, placements, MpiImpl::Lam.profile(), lock);
            let params = RaParams { table_words_per_rank: 1 << 20, updates_per_rank: 1 << 16 };
            append_mpi(&mut w, &params);
            w.run().unwrap().makespan
        }

        #[test]
        fn sysv_latency_dominates_mpi_randomaccess() {
            // "the high MPI latency, attributable to the high cost of the
            // Linux implementation of the SystemV semaphore, results in
            // poor performance of this benchmark".
            let sysv = mpi_time(LockLayer::SysV);
            let usysv = mpi_time(LockLayer::USysV);
            assert!(
                sysv > 1.15 * usysv,
                "sysv {sysv:.3e} should be clearly slower than usysv {usysv:.3e}"
            );
        }

        #[test]
        fn star_mode_is_latency_bound_not_bandwidth_bound() {
            let m = Machine::new(systems::dmz());
            let params = RaParams { table_words_per_rank: 1 << 22, updates_per_rank: 1 << 20 };
            // Single vs star on one socket: random access is latency
            // bound, so the second core brings a net gain per socket
            // (ratio < 2:1) — the paper's RA observation.
            let t_single = {
                let p = Scheme::TwoMpiLocalAlloc.resolve(&m, 1).unwrap();
                let mut w = CommWorld::new(&m, p, MpiImpl::Lam.profile(), LockLayer::USysV);
                append_single(&mut w, &params);
                w.run().unwrap().makespan
            };
            let t_star = {
                let p = Scheme::TwoMpiLocalAlloc.resolve(&m, 2).unwrap();
                let mut w = CommWorld::new(&m, p, MpiImpl::Lam.profile(), LockLayer::USysV);
                append_star(&mut w, &params);
                w.run().unwrap().makespan
            };
            let ratio = t_star / t_single;
            assert!(
                ratio < 1.5,
                "second core should be nearly free for latency-bound RA, ratio {ratio:.2}"
            );
        }
    }
}
