//! NAS IS (Integer Sort): a real bucketed counting sort plus the
//! workload model.
//!
//! IS is the most communication-bound NPB kernel: each iteration ranks
//! `N` small-range integer keys, which distributed implementations do
//! with a bucket histogram, an all-to-all key redistribution and a local
//! counting sort — all bandwidth, barely any flops.

use crate::F64;
use corescope_machine::{ComputePhase, TrafficProfile};
use corescope_smpi::CommWorld;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates the NPB-style key array: `n` keys in `[0, max_key)` with the
/// benchmark's sum-of-four-uniforms (approximately Gaussian) distribution.
pub fn generate_keys(n: usize, max_key: u32, seed: u64) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let s: f64 = (0..4).map(|_| rng.gen_range(0.0..1.0)).sum();
            ((s / 4.0) * max_key as f64) as u32 % max_key
        })
        .collect()
}

/// Ranks the keys with a counting sort; returns `(ranks, sorted_keys)`
/// where `ranks[i]` is the position key `i` would take in sorted order
/// (ties broken by input order, as NPB IS specifies).
///
/// # Panics
///
/// Panics if any key is ≥ `max_key`.
pub fn rank_keys(keys: &[u32], max_key: u32) -> (Vec<usize>, Vec<u32>) {
    let mut histogram = vec![0usize; max_key as usize];
    for &k in keys {
        assert!(k < max_key, "key {k} out of range");
        histogram[k as usize] += 1;
    }
    // Exclusive prefix sum: start position of each key value.
    let mut start = vec![0usize; max_key as usize];
    let mut acc = 0;
    for (s, &h) in start.iter_mut().zip(&histogram) {
        *s = acc;
        acc += h;
    }
    let mut ranks = vec![0usize; keys.len()];
    let mut cursor = start;
    for (i, &k) in keys.iter().enumerate() {
        ranks[i] = cursor[k as usize];
        cursor[k as usize] += 1;
    }
    let mut sorted = vec![0u32; keys.len()];
    for (i, &k) in keys.iter().enumerate() {
        sorted[ranks[i]] = k;
    }
    (ranks, sorted)
}

/// NAS IS classes: (log₂ keys, log₂ max key, iterations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsClass {
    /// Class S: 2¹⁶ keys.
    S,
    /// Class A: 2²³ keys.
    A,
    /// Class B: 2²⁵ keys.
    B,
}

impl IsClass {
    /// `(log2_keys, log2_max_key, iterations)` per the NPB spec.
    pub fn parameters(self) -> (u32, u32, usize) {
        match self {
            IsClass::S => (16, 11, 10),
            IsClass::A => (23, 19, 10),
            IsClass::B => (25, 21, 10),
        }
    }
}

/// NAS IS workload model.
#[derive(Debug, Clone, PartialEq)]
pub struct NasIs {
    /// Problem class.
    pub class: IsClass,
}

impl NasIs {
    /// Appends the benchmark: per iteration a local histogram (random
    /// stores over the bucket array), an all-to-all key redistribution
    /// (the dominant cost), and a local counting sort (streaming).
    pub fn append_run(&self, world: &mut CommWorld<'_>) {
        let (log_keys, log_max, iters) = self.class.parameters();
        let p = world.size() as f64;
        let keys_local = (1u64 << log_keys) as f64 / p;
        let buckets = (1u64 << log_max) as f64;
        for _ in 0..iters {
            let histogram = ComputePhase::new(
                "is-histogram",
                keys_local * 2.0,
                TrafficProfile::random(keys_local * 4.0, buckets * 4.0),
            );
            world.compute_all(|_| Some(histogram.clone()));
            if world.size() > 1 {
                // Bucket-boundary allreduce, then the key exchange: on
                // average (p-1)/p of the keys move (4-byte keys).
                world.allreduce(buckets / p * 4.0);
                world.alltoall(keys_local * 4.0 / p);
            }
            let sort = ComputePhase::new(
                "is-sort",
                keys_local * 3.0,
                TrafficProfile::stream(keys_local * 2.0 * 4.0 + keys_local * F64),
            );
            world.compute_all(|_| Some(sort.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_keys_sorts() {
        let keys = generate_keys(10_000, 1 << 11, 7);
        let (_, sorted) = rank_keys(&keys, 1 << 11);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "output must be sorted");
    }

    #[test]
    fn ranks_are_a_permutation() {
        let keys = generate_keys(5_000, 512, 3);
        let (ranks, _) = rank_keys(&keys, 512);
        let mut seen = vec![false; ranks.len()];
        for &r in &ranks {
            assert!(!seen[r], "rank {r} assigned twice");
            seen[r] = true;
        }
    }

    #[test]
    fn sorting_preserves_multiset() {
        let keys = generate_keys(3_000, 256, 11);
        let (_, sorted) = rank_keys(&keys, 256);
        let mut a = keys.clone();
        let mut b = sorted.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn ties_break_by_input_order() {
        let keys = vec![5, 3, 5, 3];
        let (ranks, _) = rank_keys(&keys, 8);
        assert_eq!(ranks, vec![2, 0, 3, 1]);
    }

    #[test]
    fn key_distribution_is_center_heavy() {
        // Sum of four uniforms peaks near max_key/2.
        let keys = generate_keys(100_000, 1024, 1);
        let center = keys.iter().filter(|&&k| (256..768).contains(&k)).count();
        assert!(center > 80_000, "Gaussian-ish keys should cluster centrally: {center}/100000");
    }

    mod sim {
        use super::super::*;
        use corescope_affinity::Scheme;
        use corescope_machine::{systems, Machine};
        use corescope_smpi::{LockLayer, MpiImpl};

        #[test]
        fn is_scaling_is_communication_limited() {
            let m = Machine::new(systems::longs());
            let time = |n: usize| {
                let placements = Scheme::TwoMpiLocalAlloc.resolve(&m, n).unwrap();
                let mut w =
                    CommWorld::new(&m, placements, MpiImpl::Mpich2.profile(), LockLayer::USysV);
                NasIs { class: IsClass::A }.append_run(&mut w);
                w.run().unwrap().makespan
            };
            let t2 = time(2);
            let t16 = time(16);
            let gain = t2 / t16;
            assert!(
                gain > 1.5 && gain < 7.0,
                "IS 2->16 gain {gain:.1} should be clearly communication-limited"
            );
        }
    }
}
