//! NAS EP (Embarrassingly Parallel): the real NPB random-number kernel
//! plus its (trivially scaling) workload model.
//!
//! The paper runs "a subset of the NAS Parallel Benchmarks"; EP is the
//! control case — no communication beyond a final reduction, so it scales
//! linearly on every system and isolates pure per-core compute from the
//! NUMA effects the other kernels expose.

use corescope_machine::{ComputePhase, TrafficProfile};
use corescope_smpi::CommWorld;

/// The NPB linear congruential generator: x' = a·x mod 2⁴⁶.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NpbRng {
    state: u64,
}

/// NPB multiplier a = 5¹³.
pub const NPB_A: u64 = 1_220_703_125;
/// NPB default seed.
pub const NPB_SEED: u64 = 271_828_183;
const MOD46: u64 = 1 << 46;

impl NpbRng {
    /// Starts from the canonical NPB seed.
    pub fn new() -> Self {
        Self { state: NPB_SEED }
    }

    /// Starts from an explicit seed (must be odd, below 2⁴⁶).
    pub fn with_seed(seed: u64) -> Self {
        Self { state: seed % MOD46 }
    }

    /// Advances and returns a uniform deviate in (0, 1).
    pub fn next_f64(&mut self) -> f64 {
        // 46-bit modular multiply fits in u128.
        self.state = ((self.state as u128 * NPB_A as u128) % MOD46 as u128) as u64;
        self.state as f64 / MOD46 as f64
    }
}

impl Default for NpbRng {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of an EP run: Gaussian-pair counts per annulus plus the sums
/// the benchmark verifies.
#[derive(Debug, Clone, PartialEq)]
pub struct EpResult {
    /// Accepted Gaussian pairs.
    pub pairs: u64,
    /// Counts per square annulus `l = max(|X|,|Y|)` in `[l, l+1)`.
    pub annuli: [u64; 10],
    /// Sum of X deviates.
    pub sx: f64,
    /// Sum of Y deviates.
    pub sy: f64,
}

/// Runs the real EP kernel: `n` candidate pairs through the Marsaglia
/// polar method, counting accepted Gaussian deviates per annulus.
pub fn run_ep(n: u64, mut rng: NpbRng) -> EpResult {
    let mut result = EpResult { pairs: 0, annuli: [0; 10], sx: 0.0, sy: 0.0 };
    for _ in 0..n {
        let x = 2.0 * rng.next_f64() - 1.0;
        let y = 2.0 * rng.next_f64() - 1.0;
        let t = x * x + y * y;
        if t <= 1.0 && t > 0.0 {
            let factor = (-2.0 * t.ln() / t).sqrt();
            let gx = x * factor;
            let gy = y * factor;
            result.pairs += 1;
            result.sx += gx;
            result.sy += gy;
            let l = gx.abs().max(gy.abs()) as usize;
            if l < 10 {
                result.annuli[l] += 1;
            }
        }
    }
    result
}

/// EP workload parameters (class B: 2³⁰ pairs).
#[derive(Debug, Clone, PartialEq)]
pub struct EpParams {
    /// log₂ of the number of candidate pairs.
    pub log2_pairs: u32,
}

impl Default for EpParams {
    fn default() -> Self {
        Self { log2_pairs: 30 }
    }
}

/// Appends an EP run: pure per-rank compute (≈60 flops per candidate
/// pair, cache-resident) plus one final 10-bin reduction.
pub fn append_run(world: &mut CommWorld<'_>, params: &EpParams) {
    let pairs = (1u64 << params.log2_pairs) as f64 / world.size() as f64;
    let phase = ComputePhase::new("ep", pairs * 60.0, TrafficProfile::none()).with_efficiency(0.25);
    world.compute_all(|_| Some(phase.clone()));
    if world.size() > 1 {
        world.allreduce(10.0 * 8.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_in_range() {
        let mut a = NpbRng::new();
        let mut b = NpbRng::new();
        for _ in 0..1000 {
            let va = a.next_f64();
            assert_eq!(va, b.next_f64());
            assert!(va > 0.0 && va < 1.0);
        }
    }

    #[test]
    fn acceptance_ratio_approaches_pi_over_four() {
        let result = run_ep(200_000, NpbRng::new());
        let ratio = result.pairs as f64 / 200_000.0;
        let expected = std::f64::consts::PI / 4.0;
        assert!((ratio - expected).abs() < 0.01, "acceptance {ratio:.4} vs pi/4 = {expected:.4}");
    }

    #[test]
    fn gaussian_deviates_have_near_zero_mean() {
        let result = run_ep(200_000, NpbRng::new());
        let mean_x = result.sx / result.pairs as f64;
        let mean_y = result.sy / result.pairs as f64;
        assert!(mean_x.abs() < 0.01 && mean_y.abs() < 0.01, "{mean_x} {mean_y}");
    }

    #[test]
    fn annuli_counts_decay_like_a_gaussian_tail() {
        let result = run_ep(100_000, NpbRng::new());
        assert!(result.annuli[0] > result.annuli[1]);
        assert!(result.annuli[1] > result.annuli[2]);
        assert_eq!(result.annuli.iter().sum::<u64>(), result.pairs);
    }

    #[test]
    fn disjoint_seeds_give_different_streams() {
        let a = run_ep(10_000, NpbRng::with_seed(271_828_183));
        let b = run_ep(10_000, NpbRng::with_seed(314_159_265));
        assert_ne!(a.sx, b.sx);
    }

    mod sim {
        use super::super::*;
        use corescope_affinity::Scheme;
        use corescope_machine::{systems, Machine};
        use corescope_smpi::{LockLayer, MpiImpl};

        #[test]
        fn ep_scales_linearly_everywhere() {
            // EP is the anti-STREAM: no memory traffic, no placement
            // sensitivity, near-perfect speedup even on the ladder.
            let m = Machine::new(systems::longs());
            let time = |n: usize, scheme: Scheme| {
                let placements = scheme.resolve(&m, n).unwrap();
                let mut w =
                    CommWorld::new(&m, placements, MpiImpl::Mpich2.profile(), LockLayer::USysV);
                append_run(&mut w, &EpParams { log2_pairs: 26 });
                w.run().unwrap().makespan
            };
            let t2 = time(2, Scheme::TwoMpiLocalAlloc);
            let t16 = time(16, Scheme::TwoMpiLocalAlloc);
            let gain = t2 / t16;
            assert!(gain > 7.5, "EP 2->16 gain {gain:.2} should be ~8");
            // Placement-insensitive.
            let membind = time(8, Scheme::OneMpiMembind);
            let local = time(8, Scheme::OneMpiLocalAlloc);
            assert!((membind - local).abs() / local < 0.02);
        }
    }
}
