//! lmbench-style memory latency: a real pointer-chase kernel plus the
//! local/remote latency table (Section 3.1 pairs STREAM with "Memory
//! Latency & Bandwidth"; the latency side is what the coherence-probe
//! model is calibrated against).

use corescope_machine::{ComputePhase, Machine, TrafficProfile};
use corescope_smpi::CommWorld;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a random single-cycle permutation of `n` slots — the classic
/// lmbench `lat_mem_rd` chain, where chasing `next[i]` defeats every
/// prefetcher because each load depends on the previous one.
pub fn build_chase_chain(n: usize, seed: u64) -> Vec<usize> {
    assert!(n >= 2, "a chain needs at least two slots");
    let mut rng = SmallRng::seed_from_u64(seed);
    // Sattolo's algorithm: uniform random cyclic permutation.
    let mut chain: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i);
        chain.swap(i, j);
    }
    chain
}

/// Walks the chain `steps` times from slot 0; returns the final slot
/// (forces the dependency chain to be computed).
pub fn chase(chain: &[usize], steps: usize) -> usize {
    let mut p = 0;
    for _ in 0..steps {
        p = chain[p];
    }
    p
}

/// Verifies a chain is one full cycle (every slot visited exactly once).
pub fn is_single_cycle(chain: &[usize]) -> bool {
    let n = chain.len();
    let mut visited = vec![false; n];
    let mut p = 0;
    for _ in 0..n {
        if visited[p] {
            return false;
        }
        visited[p] = true;
        p = chain[p];
    }
    p == 0 && visited.iter().all(|&v| v)
}

/// The *model* side: one rank chases `loads` dependent pointers over a
/// `working_set`-byte arena whose pages live per the rank's layout. The
/// measured makespan divided by `loads` is the simulated load-to-use
/// latency (idle latency + hops + coherence probe).
pub fn append_chase(world: &mut CommWorld<'_>, rank: usize, working_set: f64, loads: u64) {
    let phase = ComputePhase::new(
        "memlat-chase",
        0.0,
        TrafficProfile::random(loads as f64 * 8.0, working_set),
    );
    world.compute(rank, phase);
}

/// Uncontended load-to-use latency the machine model predicts for a core
/// accessing each NUMA node, in nanoseconds — the lmbench `lat_mem_rd`
/// main-memory plateau, per node distance.
pub fn latency_table(machine: &Machine) -> Vec<Vec<f64>> {
    machine
        .cores()
        .map(|core| machine.nodes().map(|node| machine.memory_latency(core, node) * 1e9).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use corescope_machine::{systems, CoreId, NumaNodeId};

    #[test]
    fn chain_is_a_single_cycle() {
        for n in [2, 7, 64, 1000] {
            let chain = build_chase_chain(n, 42);
            assert!(is_single_cycle(&chain), "n = {n}");
        }
    }

    #[test]
    fn chasing_n_steps_returns_to_start() {
        let chain = build_chase_chain(128, 7);
        assert_eq!(chase(&chain, 128), 0);
        assert_ne!(chase(&chain, 64), 0, "half way round should not be home");
    }

    #[test]
    fn chains_differ_by_seed() {
        assert_ne!(build_chase_chain(64, 1), build_chase_chain(64, 2));
    }

    #[test]
    fn latency_table_matches_calibration() {
        // DMZ local ~140 ns (70 DRAM + 70 probe), remote +55 ns/hop.
        let m = Machine::new(systems::dmz());
        let t = latency_table(&m);
        assert!((t[0][0] - 140.0).abs() < 1.0, "local = {}", t[0][0]);
        assert!((t[0][1] - 195.0).abs() < 1.0, "remote = {}", t[0][1]);
        // Longs pays the diameter-4 probe everywhere.
        let longs = Machine::new(systems::longs());
        let tl = latency_table(&longs);
        assert!(tl[0][0] > 270.0, "longs local = {}", tl[0][0]);
    }

    #[test]
    fn simulated_chase_reproduces_the_latency_plateau() {
        use corescope_affinity::Scheme;
        use corescope_smpi::{LockLayer, MpiImpl};
        let m = Machine::new(systems::dmz());
        let placements = Scheme::OneMpiLocalAlloc.resolve(&m, 1).unwrap();
        let mut w = CommWorld::new(&m, placements, MpiImpl::Lam.profile(), LockLayer::USysV);
        let loads = 1_000_000u64;
        append_chase(&mut w, 0, 64e6, loads);
        let t = w.run().unwrap().makespan;
        let per_load = t / loads as f64 * 1e9;
        // Little's law with random MLP 1.6: effective per-load time is
        // latency / mlp ~ 87 ns (the chase chain in the real kernel has
        // mlp 1; the model's Random profile assumes a little overlap).
        let predicted = m.memory_latency(CoreId::new(0), NumaNodeId::new(0)) * 1e9;
        assert!(
            per_load > 0.4 * predicted && per_load < 1.2 * predicted,
            "simulated {per_load:.0} ns/load vs predicted plateau {predicted:.0} ns"
        );
    }
}
