//! High-Performance Linpack: a real dense LU solver (partial pivoting,
//! verified against known systems) and the block-cyclic distributed HPL
//! model behind Figure 8.

use crate::F64;
use corescope_machine::{ComputePhase, TrafficProfile};
use corescope_smpi::CommWorld;

/// LU factorization with partial pivoting of a row-major `n × n` matrix,
/// in place. Returns the permutation (row `i` of the factors corresponds
/// to original row `perm[i]`).
///
/// # Errors
///
/// Returns `Err` if the matrix is numerically singular.
///
/// # Panics
///
/// Panics if `a.len() < n * n`.
pub fn lu_decompose(n: usize, a: &mut [f64]) -> Result<Vec<usize>, &'static str> {
    assert!(a.len() >= n * n);
    let mut perm: Vec<usize> = (0..n).collect();
    for k in 0..n {
        // Pivot search.
        let mut piv = k;
        let mut max = a[k * n + k].abs();
        for i in k + 1..n {
            let v = a[i * n + k].abs();
            if v > max {
                max = v;
                piv = i;
            }
        }
        if max < 1e-300 {
            return Err("singular matrix");
        }
        if piv != k {
            perm.swap(piv, k);
            for j in 0..n {
                a.swap(piv * n + j, k * n + j);
            }
        }
        let pivot = a[k * n + k];
        for i in k + 1..n {
            let l = a[i * n + k] / pivot;
            a[i * n + k] = l;
            for j in k + 1..n {
                a[i * n + j] -= l * a[k * n + j];
            }
        }
    }
    Ok(perm)
}

/// Solves `A x = b` given the in-place LU factors and permutation from
/// [`lu_decompose`].
///
/// # Panics
///
/// Panics on mismatched lengths.
pub fn lu_solve(n: usize, lu: &[f64], perm: &[usize], b: &[f64]) -> Vec<f64> {
    assert!(lu.len() >= n * n && perm.len() == n && b.len() == n);
    // Forward substitution on permuted b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut acc = b[perm[i]];
        for j in 0..i {
            acc -= lu[i * n + j] * y[j];
        }
        y[i] = acc;
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = y[i];
        for j in i + 1..n {
            acc -= lu[i * n + j] * x[j];
        }
        x[i] = acc / lu[i * n + i];
    }
    x
}

/// HPL workload parameters (1-D column-block-cyclic decomposition).
#[derive(Debug, Clone, PartialEq)]
pub struct HplParams {
    /// Global matrix order. The paper's 16-core Longs runs use problem
    /// sizes filling a large fraction of memory; 20 000 is representative.
    pub n: usize,
    /// Block size.
    pub nb: usize,
    /// Fraction of peak the vendor DGEMM update sustains.
    pub dgemm_efficiency: f64,
}

impl Default for HplParams {
    fn default() -> Self {
        Self { n: 20_000, nb: 256, dgemm_efficiency: 0.85 }
    }
}

impl HplParams {
    /// Total flops of the factorization (2N³/3 + lower-order).
    pub fn total_flops(&self) -> f64 {
        let n = self.n as f64;
        2.0 * n * n * n / 3.0
    }

    /// Gflop/s implied by a runtime.
    pub fn gflops(&self, seconds: f64) -> f64 {
        self.total_flops() / seconds / 1e9
    }
}

/// Appends one HPL factorization to the world: per block step, the panel
/// owner factors the panel, broadcasts it, and every rank applies the
/// trailing DGEMM update to its local columns.
pub fn append_run(world: &mut CommWorld<'_>, params: &HplParams) {
    let p = world.size();
    let steps = params.n / params.nb;
    let nb = params.nb as f64;
    for k in 0..steps {
        let width = (params.n - k * params.nb) as f64;
        let owner = k % p;
        // Panel factorization: rank `owner`, ~width*nb^2 flops, streaming
        // the panel.
        let panel_flops = width * nb * nb;
        let panel_bytes = width * nb * F64;
        world.compute(
            owner,
            ComputePhase::new(
                "hpl-panel",
                panel_flops,
                TrafficProfile::stream_over(2.0 * panel_bytes, panel_bytes),
            )
            .with_efficiency(0.4),
        );
        // Broadcast the panel to everyone.
        if p > 1 {
            world.bcast(owner, panel_bytes);
        }
        // Trailing update: each rank's share of the 2*width^2*nb DGEMM.
        let update_flops = 2.0 * width * width * nb / p as f64;
        // One operand load per flop pair, amortized over nb-wide blocks.
        let touched = update_flops * F64 / nb;
        let update = ComputePhase::new(
            "hpl-update",
            update_flops,
            TrafficProfile::blocked(
                touched.max(F64),
                (width * width / p as f64 * F64).max(F64),
                128.0,
            ),
        )
        .with_efficiency(params.dgemm_efficiency);
        world.compute_all(|_| Some(update.clone()));
        // Row swaps / pivoting exchange: small latency-bound messages.
        if p > 1 {
            world.allreduce(nb * F64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lu_solves_known_system() {
        // A = [[2,1],[1,3]], b = [5, 10] => x = [1, 3].
        let mut a = vec![2.0, 1.0, 1.0, 3.0];
        let perm = lu_decompose(2, &mut a).unwrap();
        let x = lu_solve(2, &a, &perm, &[5.0, 10.0]);
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12, "{x:?}");
    }

    #[test]
    fn lu_random_round_trip() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let n = 24;
        let mut rng = SmallRng::seed_from_u64(3);
        let a_orig: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        // b = A * x_true.
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a_orig[i * n + j] * x_true[j];
            }
        }
        let mut lu = a_orig.clone();
        let perm = lu_decompose(n, &mut lu).unwrap();
        let x = lu_solve(n, &lu, &perm, &b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8, "{xi} vs {ti}");
        }
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(lu_decompose(2, &mut a).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let perm = lu_decompose(2, &mut a).unwrap();
        let x = lu_solve(2, &a, &perm, &[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    mod sim {
        use super::super::*;
        use corescope_affinity::Scheme;
        use corescope_machine::{systems, Machine};
        use corescope_smpi::{LockLayer, MpiImpl};

        fn hpl_gflops(scheme: Scheme, lock: LockLayer) -> f64 {
            let m = Machine::new(systems::longs());
            let placements = scheme.resolve(&m, 16).unwrap();
            let mut w = CommWorld::new(&m, placements, MpiImpl::Lam.profile(), lock);
            let params = HplParams { n: 8192, nb: 256, dgemm_efficiency: 0.85 };
            append_run(&mut w, &params);
            params.gflops(w.run().unwrap().makespan)
        }

        #[test]
        fn hpl_reaches_a_sane_fraction_of_peak() {
            // 16 cores x 3.6 GF = 57.6 GF peak; the unoverlapped panel
            // costs real HPL hides with lookahead keep the model nearer
            // 50% at this modest N.
            let gf = hpl_gflops(Scheme::TwoMpiLocalAlloc, LockLayer::USysV);
            assert!(gf > 20.0 && gf < 57.0, "HPL = {gf:.1} GF/s");
        }

        #[test]
        fn figure8_usysv_and_localalloc_beat_default() {
            let tuned = hpl_gflops(Scheme::TwoMpiLocalAlloc, LockLayer::USysV);
            let default = hpl_gflops(Scheme::Default, LockLayer::SysV);
            assert!(tuned > default, "tuned {tuned:.1} should beat default {default:.1}");
        }
    }
}
