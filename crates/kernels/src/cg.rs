//! Conjugate gradient: a real CSR sparse CG solver (tested on random SPD
//! systems) and the NAS CG benchmark model (Tables 2–4).

use crate::F64;
use corescope_machine::{ComputePhase, TrafficProfile};
use corescope_smpi::CommWorld;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from per-row `(col, value)` lists.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of range.
    pub fn from_rows(n: usize, rows: Vec<Vec<(usize, f64)>>) -> Self {
        assert_eq!(rows.len(), n);
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for row in rows {
            for (c, v) in row {
                assert!(c < n, "column {c} out of range");
                cols.push(c);
                vals.push(v);
            }
            row_ptr.push(cols.len());
        }
        Self { n, row_ptr, cols, vals }
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Sparse matrix-vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` have the wrong length.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.vals[idx] * x[self.cols[idx]];
            }
            *yi = acc;
        }
    }

    /// A random symmetric diagonally-dominant (hence SPD) matrix with
    /// about `nnz_per_row` off-diagonal entries per row.
    pub fn random_spd(n: usize, nnz_per_row: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Collect symmetric off-diagonal entries.
        let mut entries: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for i in 0..n {
            for _ in 0..nnz_per_row / 2 {
                let j = rng.gen_range(0..n);
                if j == i {
                    continue;
                }
                let v = rng.gen_range(-1.0..1.0);
                entries[i].push((j, v));
                entries[j].push((i, v));
            }
        }
        // Diagonal dominance.
        let mut rows = Vec::with_capacity(n);
        for (i, mut row) in entries.into_iter().enumerate() {
            row.sort_by_key(|&(c, _)| c);
            // Merge duplicate columns.
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(row.len() + 1);
            for (c, v) in row {
                match merged.last_mut() {
                    Some((lc, lv)) if *lc == c => *lv += v,
                    _ => merged.push((c, v)),
                }
            }
            let dom: f64 = merged.iter().map(|&(_, v)| v.abs()).sum::<f64>() + 1.0;
            let pos = merged.partition_point(|&(c, _)| c < i);
            merged.insert(pos, (i, dom));
            rows.push(merged);
        }
        Self::from_rows(n, rows)
    }
}

/// Result of a CG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgSolution {
    /// The computed solution vector.
    pub x: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Solves `A x = b` for SPD `A` with unpreconditioned conjugate
/// gradients.
///
/// # Panics
///
/// Panics if `b.len()` does not match the matrix order.
pub fn cg_solve(a: &CsrMatrix, b: &[f64], tol: f64, max_iter: usize) -> CgSolution {
    let n = a.order();
    assert_eq!(b.len(), n);
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rs = dot(&r, &r);
    let mut iterations = 0;
    for _ in 0..max_iter {
        if rs.sqrt() <= tol {
            break;
        }
        a.spmv(&p, &mut ap);
        let alpha = rs / dot(&p, &ap);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new = dot(&r, &r);
        let beta = rs_new / rs;
        rs = rs_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        iterations += 1;
    }
    CgSolution { x, iterations, residual: rs.sqrt() }
}

/// NAS CG problem classes (na, nonzer, outer iterations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CgClass {
    /// Class S: 1 400 rows.
    S,
    /// Class A: 14 000 rows.
    A,
    /// Class B: 75 000 rows — the class the paper's tables use.
    B,
    /// Class C: 150 000 rows.
    C,
}

impl CgClass {
    /// `(na, nonzer, niter)` per the NPB 3.x specification.
    pub fn parameters(self) -> (usize, usize, usize) {
        match self {
            CgClass::S => (1_400, 7, 15),
            CgClass::A => (14_000, 11, 15),
            CgClass::B => (75_000, 13, 75),
            CgClass::C => (150_000, 15, 75),
        }
    }

    /// Approximate stored nonzeros (the NPB generator yields about
    /// `na * nonzer * (nonzer + 1)` after sparsification; the paper-era
    /// class B matrix has ~13 M entries).
    pub fn nnz(self) -> f64 {
        let (na, nonzer, _) = self.parameters();
        na as f64 * nonzer as f64 * (nonzer as f64 + 1.0) / 1.3
    }

    /// Total inner CG iterations (25 per outer step).
    pub fn inner_iterations(self) -> usize {
        let (_, _, niter) = self.parameters();
        niter * 25
    }
}

/// NAS CG workload model.
#[derive(Debug, Clone, PartialEq)]
pub struct NasCg {
    /// Problem class.
    pub class: CgClass,
}

impl NasCg {
    /// Class B, as used throughout the paper.
    pub fn class_b() -> Self {
        Self { class: CgClass::B }
    }

    /// Appends the full benchmark (all outer iterations) to a world.
    ///
    /// Per inner iteration each rank performs its share of the SpMV
    /// (streaming the matrix, gathering the vector), the vector updates,
    /// a row-group reduce-exchange of partial results, and two scalar
    /// allreduces — the NPB 2D decomposition reduced to its traffic
    /// pattern.
    pub fn append_run(&self, world: &mut CommWorld<'_>) {
        let p = world.size();
        let (na, _, _) = self.class.parameters();
        let nnz = self.class.nnz();
        let iters = self.class.inner_iterations();

        let rows_per_rank = na as f64 / (p as f64).sqrt();
        // Matrix stream: value + column index + row-pointer overhead.
        let matrix_bytes = nnz / p as f64 * (F64 + 4.0 + 2.0);
        // Vector gather: one 8-byte read per nonzero over the local
        // x segment.
        let gather_bytes = nnz / p as f64 * F64;
        let gather_ws = rows_per_rank * F64;
        // Vector updates: 3 AXPYs + 2 dots sweep ~5 vectors.
        let vector_bytes = 5.0 * na as f64 / p as f64 * F64;
        let flops = 2.0 * nnz / p as f64 + 10.0 * na as f64 / p as f64;

        let exchange_bytes = rows_per_rank * F64;
        let rounds = (p as f64).log2().ceil() as usize / 2;

        for _ in 0..iters {
            let spmv = ComputePhase::new(
                "cg-spmv",
                flops,
                TrafficProfile::stream_over(matrix_bytes + vector_bytes, matrix_bytes.max(1.0)),
            )
            .with_efficiency(0.2);
            let gather = ComputePhase::new(
                "cg-gather",
                0.0,
                TrafficProfile::random(gather_bytes, gather_ws.max(1.0)),
            );
            world.compute_all(|_| Some(spmv.clone()));
            world.compute_all(|_| Some(gather.clone()));

            if p > 1 {
                // Reduce-exchange of SpMV partials within the row group.
                for round in 0..rounds.max(1) {
                    let stride = 1usize << round;
                    for r in 0..p {
                        let partner = r ^ stride;
                        if partner < p && r < partner {
                            world.sendrecv(r, partner, exchange_bytes);
                        }
                    }
                }
                // Two dot-product allreduces per iteration.
                world.allreduce(F64);
                world.allreduce(F64);
            }
        }
    }

    /// Appends the benchmark under the **hybrid** programming model the
    /// paper's Section 3.4 proposes: OpenMP-style threads within each
    /// multi-core socket, MPI only between sockets. The world still has
    /// one rank per core (the threads), but only every
    /// `threads_per_process`-th rank communicates, with process-sized
    /// messages; thread groups fork/join around each communication phase
    /// (an OpenMP barrier costs ~2 µs).
    ///
    /// # Panics
    ///
    /// Panics if the world size is not a multiple of
    /// `threads_per_process`.
    pub fn append_run_hybrid(&self, world: &mut CommWorld<'_>, threads_per_process: usize) {
        let p = world.size();
        assert!(threads_per_process >= 1 && p.is_multiple_of(threads_per_process));
        let masters: Vec<usize> = (0..p).step_by(threads_per_process).collect();
        let pm = masters.len();

        let (na, _, _) = self.class.parameters();
        let nnz = self.class.nnz();
        let iters = self.class.inner_iterations();

        // Threads split each process's share, so per-core work matches
        // the pure-MPI run with p ranks.
        let rows_per_proc = na as f64 / (pm as f64).sqrt();
        let matrix_bytes = nnz / p as f64 * (F64 + 4.0 + 2.0);
        let gather_bytes = nnz / p as f64 * F64;
        let gather_ws = rows_per_proc * F64;
        let vector_bytes = 5.0 * na as f64 / p as f64 * F64;
        let flops = 2.0 * nnz / p as f64 + 10.0 * na as f64 / p as f64;
        let exchange_bytes = rows_per_proc * F64;
        let rounds = ((pm as f64).log2().ceil() as usize / 2).max(1);
        const OMP_BARRIER: f64 = 2e-6;

        for _ in 0..iters {
            let spmv = ComputePhase::new(
                "cg-spmv",
                flops,
                TrafficProfile::stream_over(matrix_bytes + vector_bytes, matrix_bytes.max(1.0)),
            )
            .with_efficiency(0.2);
            let gather = ComputePhase::new(
                "cg-gather",
                0.0,
                TrafficProfile::random(gather_bytes, gather_ws.max(1.0)),
            );
            world.compute_all(|_| Some(spmv.clone()));
            world.compute_all(|_| Some(gather.clone()));

            if pm > 1 {
                // Join: threads synchronize before the masters talk.
                world.barrier();
                for r in 0..p {
                    world.delay(r, OMP_BARRIER);
                }
                // Reduce-exchange among masters, process-sized messages.
                for round in 0..rounds {
                    let stride = 1usize << round;
                    for (idx, &r) in masters.iter().enumerate() {
                        let pidx = idx ^ stride;
                        if pidx < pm && idx < pidx {
                            world.sendrecv(r, masters[pidx], exchange_bytes);
                        }
                    }
                }
                // Two scalar allreduces via recursive doubling over the
                // masters only.
                world.sendrecv_among(&masters, F64);
                world.sendrecv_among(&masters, F64);
                // Fork: results broadcast to the threads through shared
                // memory (another barrier).
                world.barrier();
                for r in 0..p {
                    world.delay(r, OMP_BARRIER);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmv_identity() {
        let n = 5;
        let rows = (0..n).map(|i| vec![(i, 1.0)]).collect();
        let a = CsrMatrix::from_rows(n, rows);
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut y = vec![0.0; n];
        a.spmv(&x, &mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn cg_solves_small_spd_system() {
        let a = CsrMatrix::random_spd(200, 6, 42);
        let mut rng = SmallRng::seed_from_u64(7);
        let x_true: Vec<f64> = (0..200).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut b = vec![0.0; 200];
        a.spmv(&x_true, &mut b);
        let sol = cg_solve(&a, &b, 1e-10, 1000);
        assert!(sol.residual < 1e-9, "residual {}", sol.residual);
        for (xi, ti) in sol.x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-6, "{xi} vs {ti}");
        }
    }

    #[test]
    fn cg_converges_in_at_most_n_iterations_for_diag() {
        let n = 50;
        let rows = (0..n).map(|i| vec![(i, 2.0 + i as f64)]).collect();
        let a = CsrMatrix::from_rows(n, rows);
        let b = vec![1.0; n];
        let sol = cg_solve(&a, &b, 1e-12, n + 5);
        assert!(sol.residual < 1e-11);
        assert!(sol.iterations <= n);
    }

    #[test]
    fn random_spd_is_symmetric() {
        let a = CsrMatrix::random_spd(64, 4, 1);
        // Check A == A^T by comparing spmv against spmv with basis
        // vectors (dense reconstruction is fine at this size).
        let n = a.order();
        let mut dense = vec![0.0; n * n];
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let mut col = vec![0.0; n];
            a.spmv(&e, &mut col);
            for i in 0..n {
                dense[i * n + j] = col[i];
            }
        }
        for i in 0..n {
            for j in 0..n {
                assert!((dense[i * n + j] - dense[j * n + i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn class_b_parameters_match_npb() {
        assert_eq!(CgClass::B.parameters(), (75_000, 13, 75));
        assert_eq!(CgClass::B.inner_iterations(), 1875);
        assert!(CgClass::B.nnz() > 9e6 && CgClass::B.nnz() < 16e6);
    }

    mod sim {
        use super::super::*;
        use corescope_affinity::Scheme;
        use corescope_machine::{systems, Machine};
        use corescope_smpi::{LockLayer, MpiImpl};

        fn run_cg(machine: &Machine, nranks: usize, scheme: Scheme) -> f64 {
            // Class A for test speed; ratios carry over.
            let placements = scheme.resolve(machine, nranks).unwrap();
            let mut w =
                CommWorld::new(machine, placements, MpiImpl::Mpich2.profile(), LockLayer::USysV);
            NasCg { class: CgClass::A }.append_run(&mut w);
            w.run().unwrap().makespan
        }

        #[test]
        fn cg_scales_with_ranks_on_longs() {
            let m = Machine::new(systems::longs());
            let t2 = run_cg(&m, 2, Scheme::TwoMpiLocalAlloc);
            let t8 = run_cg(&m, 8, Scheme::TwoMpiLocalAlloc);
            assert!(t8 < t2, "more ranks must be faster: {t2:.2} vs {t8:.2}");
        }

        #[test]
        fn membind_is_worst_case_at_eight_ranks() {
            // Table 2's signature: One MPI + Membind ~2x Default at 8
            // tasks on Longs.
            let m = Machine::new(systems::longs());
            let best = run_cg(&m, 8, Scheme::OneMpiLocalAlloc);
            let membind = run_cg(&m, 8, Scheme::OneMpiMembind);
            let ratio = membind / best;
            assert!(ratio > 1.5, "membind must be much worse than localalloc: ratio {ratio:.2}");
        }
    }
}
