//! NAS MG (MultiGrid): a real 3-D V-cycle Poisson solver plus the
//! workload model.
//!
//! MG exercises a different point of the paper's design space than CG or
//! FT: streaming stencil sweeps over a hierarchy of grids whose coarse
//! levels turn latency-bound, with nearest-neighbour halo exchanges whose
//! message size shrinks with the level.

use crate::F64;
use corescope_machine::{ComputePhase, TrafficProfile};
use corescope_smpi::CommWorld;

/// A cubic periodic grid of edge `n` (power of two).
#[derive(Debug, Clone, PartialEq)]
pub struct Grid3 {
    n: usize,
    data: Vec<f64>,
}

impl Grid3 {
    /// A zero grid of edge `n`.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two ≥ 2.
    pub fn zeros(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 2, "grid edge must be a power of two");
        Self { n, data: vec![0.0; n * n * n] }
    }

    /// Grid edge length.
    pub fn edge(&self) -> usize {
        self.n
    }

    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.n + j) * self.n + k
    }

    /// Value at (i, j, k).
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    /// Sets the value at (i, j, k).
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f64) {
        let ix = self.idx(i, j, k);
        self.data[ix] = v;
    }

    fn wrap(&self, x: isize) -> usize {
        x.rem_euclid(self.n as isize) as usize
    }

    /// 7-point periodic Laplacian `(A u)(i,j,k) = 6u - Σ neighbours`.
    pub fn apply_laplacian(&self, out: &mut Grid3) {
        assert_eq!(self.n, out.n);
        for i in 0..self.n {
            for j in 0..self.n {
                for k in 0..self.n {
                    let (ii, jj, kk) = (i as isize, j as isize, k as isize);
                    let neighbours = self.get(self.wrap(ii - 1), j, k)
                        + self.get(self.wrap(ii + 1), j, k)
                        + self.get(i, self.wrap(jj - 1), k)
                        + self.get(i, self.wrap(jj + 1), k)
                        + self.get(i, j, self.wrap(kk - 1))
                        + self.get(i, j, self.wrap(kk + 1));
                    let ix = out.idx(i, j, k);
                    out.data[ix] = 6.0 * self.get(i, j, k) - neighbours;
                }
            }
        }
    }

    /// Residual 2-norm of `A u = f`.
    pub fn residual_norm(&self, f: &Grid3) -> f64 {
        let mut au = Grid3::zeros(self.n);
        self.apply_laplacian(&mut au);
        au.data.iter().zip(&f.data).map(|(a, b)| (b - a) * (b - a)).sum::<f64>().sqrt()
    }

    /// One weighted-Jacobi smoothing sweep for `A u = f`.
    pub fn smooth(&mut self, f: &Grid3, weight: f64) {
        let src = self.clone();
        for i in 0..self.n {
            for j in 0..self.n {
                for k in 0..self.n {
                    let (ii, jj, kk) = (i as isize, j as isize, k as isize);
                    let neighbours = src.get(src.wrap(ii - 1), j, k)
                        + src.get(src.wrap(ii + 1), j, k)
                        + src.get(i, src.wrap(jj - 1), k)
                        + src.get(i, src.wrap(jj + 1), k)
                        + src.get(i, j, src.wrap(kk - 1))
                        + src.get(i, j, src.wrap(kk + 1));
                    let jacobi = (f.get(i, j, k) + neighbours) / 6.0;
                    let ix = self.idx(i, j, k);
                    self.data[ix] = (1.0 - weight) * src.get(i, j, k) + weight * jacobi;
                }
            }
        }
    }

    /// Full-weighting restriction to the next coarser grid (edge n/2).
    ///
    /// # Panics
    ///
    /// Panics for grids smaller than 4³ — there is no meaningful coarser
    /// level (the V-cycle stops before reaching them).
    pub fn restrict(&self) -> Grid3 {
        assert!(self.n >= 4, "cannot restrict an edge-{} grid", self.n);
        let m = self.n / 2;
        let mut coarse = Grid3::zeros(m);
        for i in 0..m {
            for j in 0..m {
                for k in 0..m {
                    // Average the 2x2x2 fine cell.
                    let mut acc = 0.0;
                    for di in 0..2 {
                        for dj in 0..2 {
                            for dk in 0..2 {
                                acc += self.get(2 * i + di, 2 * j + dj, 2 * k + dk);
                            }
                        }
                    }
                    coarse.set(i, j, k, acc / 8.0);
                }
            }
        }
        coarse
    }

    /// Trilinear-ish prolongation (piecewise-constant injection) back to
    /// the fine grid, accumulated into `self`.
    pub fn prolong_add(&mut self, coarse: &Grid3) {
        let m = coarse.n;
        assert_eq!(self.n, 2 * m);
        for i in 0..self.n {
            for j in 0..self.n {
                for k in 0..self.n {
                    let c = coarse.get(i / 2, j / 2, k / 2);
                    let ix = self.idx(i, j, k);
                    self.data[ix] += c;
                }
            }
        }
    }
}

/// One V-cycle for `A u = f`: pre-smooth, restrict the residual, recurse,
/// prolong the correction, post-smooth.
pub fn v_cycle(u: &mut Grid3, f: &Grid3, pre: usize, post: usize) {
    for _ in 0..pre {
        u.smooth(f, 0.8);
    }
    if u.edge() > 4 {
        // Residual r = f - A u.
        let mut au = Grid3::zeros(u.edge());
        u.apply_laplacian(&mut au);
        let mut r = Grid3::zeros(u.edge());
        for ix in 0..r.data.len() {
            r.data[ix] = f.data[ix] - au.data[ix];
        }
        let r_coarse = r.restrict();
        let mut e_coarse = Grid3::zeros(r_coarse.edge());
        v_cycle(&mut e_coarse, &r_coarse, pre, post);
        u.prolong_add(&e_coarse);
    }
    for _ in 0..post {
        u.smooth(f, 0.8);
    }
}

/// NAS MG classes: (grid edge, V-cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MgClass {
    /// Class S: 32³, 4 iterations.
    S,
    /// Class A: 256³, 4 iterations.
    A,
    /// Class B: 256³, 20 iterations.
    B,
}

impl MgClass {
    /// `(edge, iterations)`.
    pub fn parameters(self) -> (usize, usize) {
        match self {
            MgClass::S => (32, 4),
            MgClass::A => (256, 4),
            MgClass::B => (256, 20),
        }
    }
}

/// NAS MG workload model.
#[derive(Debug, Clone, PartialEq)]
pub struct NasMg {
    /// Problem class.
    pub class: MgClass,
}

impl NasMg {
    /// Appends the benchmark: per V-cycle, stencil sweeps over each grid
    /// level (traffic shrinking 8× per level) with halo exchanges whose
    /// messages shrink 4× per level — coarse levels are pure latency.
    pub fn append_run(&self, world: &mut CommWorld<'_>) {
        let (edge, iters) = self.class.parameters();
        let p = world.size() as f64;
        for _ in 0..iters {
            let mut level_edge = edge;
            // Down-sweep and up-sweep visit each level ~3 times
            // (pre-smooth, residual, post-smooth).
            while level_edge >= 4 {
                let points = (level_edge * level_edge * level_edge) as f64 / p;
                let sweep = ComputePhase::new(
                    "mg-sweep",
                    points * 3.0 * 14.0,
                    TrafficProfile::stream_over(points * 3.0 * 2.0 * F64, points * F64),
                )
                .with_efficiency(0.2);
                world.compute_all(|_| Some(sweep.clone()));
                if world.size() > 1 {
                    let face = ((level_edge * level_edge) as f64 / p) * F64 * 2.0;
                    world.halo_1d(face.max(F64));
                }
                level_edge /= 2;
            }
            if world.size() > 1 {
                world.allreduce(F64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manufactured(n: usize) -> (Grid3, Grid3) {
        // u* with zero mean (the periodic Laplacian annihilates
        // constants), f = A u*.
        let mut u_true = Grid3::zeros(n);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let v =
                        ((i as f64 * 0.7).sin() + (j as f64 * 1.3).cos() + (k as f64 * 0.4).sin())
                            * 0.5;
                    u_true.set(i, j, k, v);
                }
            }
        }
        let mean: f64 = u_true.data.iter().sum::<f64>() / u_true.data.len() as f64;
        for v in &mut u_true.data {
            *v -= mean;
        }
        let mut f = Grid3::zeros(n);
        u_true.apply_laplacian(&mut f);
        (u_true, f)
    }

    #[test]
    fn laplacian_of_constant_is_zero() {
        let mut g = Grid3::zeros(8);
        for v in &mut g.data {
            *v = 3.5;
        }
        let mut out = Grid3::zeros(8);
        g.apply_laplacian(&mut out);
        assert!(out.data.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn smoothing_reduces_residual() {
        let (_, f) = manufactured(16);
        let mut u = Grid3::zeros(16);
        let r0 = u.residual_norm(&f);
        for _ in 0..10 {
            u.smooth(&f, 0.8);
        }
        let r1 = u.residual_norm(&f);
        assert!(r1 < r0 * 0.8, "{r0} -> {r1}");
    }

    #[test]
    fn v_cycle_beats_plain_smoothing() {
        let (_, f) = manufactured(32);
        let mut u_smooth = Grid3::zeros(32);
        for _ in 0..6 {
            u_smooth.smooth(&f, 0.8);
        }
        let mut u_mg = Grid3::zeros(32);
        v_cycle(&mut u_mg, &f, 3, 3); // same number of fine sweeps
        let r_smooth = u_smooth.residual_norm(&f);
        let r_mg = u_mg.residual_norm(&f);
        assert!(r_mg < r_smooth, "multigrid {r_mg:.3e} must beat smoothing {r_smooth:.3e}");
    }

    #[test]
    fn repeated_v_cycles_converge() {
        let (_, f) = manufactured(16);
        let mut u = Grid3::zeros(16);
        let mut last = u.residual_norm(&f);
        for _ in 0..5 {
            v_cycle(&mut u, &f, 2, 2);
            let r = u.residual_norm(&f);
            assert!(r < last, "residual must fall monotonically: {last} -> {r}");
            last = r;
        }
    }

    #[test]
    fn restriction_preserves_constants() {
        let mut g = Grid3::zeros(8);
        for v in &mut g.data {
            *v = 2.0;
        }
        let c = g.restrict();
        assert_eq!(c.edge(), 4);
        assert!(c.data.iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }

    mod sim {
        use super::super::*;
        use corescope_affinity::Scheme;
        use corescope_machine::{systems, Machine};
        use corescope_smpi::{LockLayer, MpiImpl};

        #[test]
        fn mg_scales_but_coarse_levels_limit_it() {
            let m = Machine::new(systems::longs());
            let time = |n: usize| {
                let placements = Scheme::TwoMpiLocalAlloc.resolve(&m, n).unwrap();
                let mut w =
                    CommWorld::new(&m, placements, MpiImpl::Mpich2.profile(), LockLayer::USysV);
                NasMg { class: MgClass::A }.append_run(&mut w);
                w.run().unwrap().makespan
            };
            let t2 = time(2);
            let t16 = time(16);
            let gain = t2 / t16;
            assert!(
                gain > 3.0 && gain < 8.0,
                "MG 2->16 gain {gain:.1}: good but below the core ratio"
            );
        }
    }
}
