//! BLAS level 1 and 3 kernels (Section 3.2): DAXPY and DGEMM, in vendor
//! ("ACML") and compiled-Fortran ("vanilla") variants.
//!
//! The real implementations are a plain daxpy loop, a naive triple-loop
//! dgemm and a cache-blocked dgemm (tested to agree). The workload models
//! carry the efficiency split the paper measures: the vendor library
//! sustains a large fraction of peak on cache-resident DGEMM, the
//! compiler-generated code much less.

use crate::F64;
use corescope_machine::{ComputePhase, TrafficProfile};
use corescope_smpi::CommWorld;

/// Which BLAS implementation a model run represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlasVariant {
    /// AMD Core Math Library: hand-tuned kernels.
    Acml,
    /// "Vanilla" compiled Fortran/C.
    Vanilla,
}

impl BlasVariant {
    /// Fraction of core peak flop/s sustained by DGEMM under this
    /// variant (cache-resident inner kernels).
    pub fn dgemm_efficiency(self) -> f64 {
        match self {
            BlasVariant::Acml => 0.88,
            BlasVariant::Vanilla => 0.13,
        }
    }

    /// DGEMM cache-blocking reuse factor: how many times each loaded
    /// element is used from cache. ACML blocks for L1+L2; the naive
    /// triple loop only reuses within a row/column walk.
    pub fn dgemm_reuse(self) -> f64 {
        match self {
            BlasVariant::Acml => 128.0,
            BlasVariant::Vanilla => 8.0,
        }
    }

    /// DAXPY is bandwidth-bound for out-of-cache vectors under either
    /// variant, but the scalar loop issues fewer concurrent streams.
    pub fn daxpy_efficiency(self) -> f64 {
        match self {
            BlasVariant::Acml => 0.5,
            BlasVariant::Vanilla => 0.25,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BlasVariant::Acml => "ACML",
            BlasVariant::Vanilla => "vanilla",
        }
    }
}

/// Real DAXPY: `y[i] += alpha * x[i]`.
pub fn daxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Real naive DGEMM: `c = alpha * a * b + beta * c` for row-major square
/// matrices of order `n`.
///
/// # Panics
///
/// Panics if any slice is shorter than `n * n`.
pub fn dgemm_naive(n: usize, alpha: f64, a: &[f64], b: &[f64], beta: f64, c: &mut [f64]) {
    assert!(a.len() >= n * n && b.len() >= n * n && c.len() >= n * n);
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = alpha * acc + beta * c[i * n + j];
        }
    }
}

/// Real cache-blocked DGEMM (block size `bs`), numerically identical to
/// [`dgemm_naive`] up to floating-point associativity.
///
/// # Panics
///
/// Panics if any slice is shorter than `n * n` or `bs == 0`.
pub fn dgemm_blocked(
    n: usize,
    bs: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
) {
    assert!(bs > 0);
    assert!(a.len() >= n * n && b.len() >= n * n && c.len() >= n * n);
    for v in c.iter_mut().take(n * n) {
        *v *= beta;
    }
    for ii in (0..n).step_by(bs) {
        for kk in (0..n).step_by(bs) {
            for jj in (0..n).step_by(bs) {
                for i in ii..(ii + bs).min(n) {
                    for k in kk..(kk + bs).min(n) {
                        let aik = alpha * a[i * n + k];
                        for j in jj..(jj + bs).min(n) {
                            c[i * n + j] += aik * b[k * n + j];
                        }
                    }
                }
            }
        }
    }
}

/// DAXPY model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DaxpyParams {
    /// Vector length per rank.
    pub n: usize,
    /// Repetitions (DAXPY is short; benchmarks loop it).
    pub reps: usize,
    /// Implementation variant.
    pub variant: BlasVariant,
}

impl Default for DaxpyParams {
    fn default() -> Self {
        Self { n: 1_000_000, reps: 50, variant: BlasVariant::Acml }
    }
}

impl DaxpyParams {
    /// One DAXPY sweep as a compute phase.
    pub fn phase(&self) -> ComputePhase {
        let n = self.n as f64;
        // Read x and y, write y: 24 B per element; 2 flops.
        ComputePhase::new(
            "daxpy",
            2.0 * n,
            TrafficProfile::stream_over(3.0 * n * F64, 2.0 * n * F64),
        )
        .with_efficiency(self.variant.daxpy_efficiency())
    }

    /// Total flops per rank over the run.
    pub fn flops_per_rank(&self) -> f64 {
        2.0 * self.n as f64 * self.reps as f64
    }
}

/// DGEMM model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DgemmParams {
    /// Matrix order per rank.
    pub n: usize,
    /// Repetitions.
    pub reps: usize,
    /// Implementation variant.
    pub variant: BlasVariant,
}

impl Default for DgemmParams {
    fn default() -> Self {
        Self { n: 1000, reps: 3, variant: BlasVariant::Acml }
    }
}

impl DgemmParams {
    /// One DGEMM as a compute phase.
    pub fn phase(&self) -> ComputePhase {
        let n = self.n as f64;
        // Inner loops touch 2n^3 elements of a/b plus n^2 of c.
        let touched = (2.0 * n * n * n + n * n) * F64;
        let working_set = 3.0 * n * n * F64;
        ComputePhase::new(
            "dgemm",
            2.0 * n * n * n,
            TrafficProfile::blocked(touched, working_set, self.variant.dgemm_reuse()),
        )
        .with_efficiency(self.variant.dgemm_efficiency())
    }

    /// Total flops per rank over the run.
    pub fn flops_per_rank(&self) -> f64 {
        2.0 * (self.n as f64).powi(3) * self.reps as f64
    }
}

/// Appends a star-mode DAXPY run (all ranks loop concurrently).
pub fn append_daxpy_star(world: &mut CommWorld<'_>, params: &DaxpyParams) {
    for _ in 0..params.reps {
        let phase = params.phase();
        world.compute_all(|_| Some(phase.clone()));
    }
}

/// Appends a star-mode DGEMM run.
pub fn append_dgemm_star(world: &mut CommWorld<'_>, params: &DgemmParams) {
    for _ in 0..params.reps {
        let phase = params.phase();
        world.compute_all(|_| Some(phase.clone()));
    }
}

/// Appends a single-rank DGEMM run (HPCC "Single" mode).
pub fn append_dgemm_single(world: &mut CommWorld<'_>, params: &DgemmParams) {
    for _ in 0..params.reps {
        world.compute(0, params.phase());
    }
}

/// Appends a single-rank DAXPY run.
pub fn append_daxpy_single(world: &mut CommWorld<'_>, params: &DaxpyParams) {
    for _ in 0..params.reps {
        world.compute(0, params.phase());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corescope_affinity::Scheme;
    use corescope_machine::{systems, Machine};
    use corescope_smpi::{LockLayer, MpiImpl};

    #[test]
    fn daxpy_updates_y() {
        let x = vec![2.0; 16];
        let mut y = vec![1.0; 16];
        daxpy(3.0, &x, &mut y);
        assert!(y.iter().all(|&v| (v - 7.0).abs() < 1e-15));
    }

    #[test]
    fn blocked_dgemm_matches_naive() {
        let n = 17; // deliberately not a multiple of the block size
        let a: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64 - 3.0).collect();
        let b: Vec<f64> = (0..n * n).map(|i| (i % 5) as f64 * 0.5).collect();
        let mut c1: Vec<f64> = (0..n * n).map(|i| i as f64 * 0.01).collect();
        let mut c2 = c1.clone();
        dgemm_naive(n, 1.5, &a, &b, 0.5, &mut c1);
        dgemm_blocked(n, 4, 1.5, &a, &b, 0.5, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn dgemm_identity_is_identity() {
        let n = 8;
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let a: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
        let mut c = vec![0.0; n * n];
        dgemm_naive(n, 1.0, &a, &eye, 0.0, &mut c);
        assert_eq!(a, c);
    }

    fn dgemm_gflops(machine: &Machine, nranks: usize, variant: BlasVariant) -> f64 {
        let placements = Scheme::TwoMpiLocalAlloc.resolve(machine, nranks).unwrap();
        let mut world =
            CommWorld::new(machine, placements, MpiImpl::Lam.profile(), LockLayer::USysV);
        let params = DgemmParams { n: 1000, reps: 1, variant };
        append_dgemm_star(&mut world, &params);
        let report = world.run().unwrap();
        nranks as f64 * params.flops_per_rank() / report.makespan / 1e9
    }

    #[test]
    fn figure6_acml_dgemm_scales_with_cores() {
        // "the Star DGEMM and Single DGEMM results are almost identical"
        // — the second core nearly doubles per-socket DGEMM throughput.
        let m = Machine::new(systems::dmz());
        let one = dgemm_gflops(&m, 1, BlasVariant::Acml);
        let four = dgemm_gflops(&m, 4, BlasVariant::Acml);
        assert!(one > 3.0 && one < 4.4, "ACML ~88% of 4.4 GF peak, got {one:.2}");
        assert!(four > 3.6 * one, "DGEMM is cache-friendly: {four:.2} vs {one:.2}");
    }

    #[test]
    fn figure7_vanilla_dgemm_is_far_slower() {
        let m = Machine::new(systems::dmz());
        let acml = dgemm_gflops(&m, 1, BlasVariant::Acml);
        let vanilla = dgemm_gflops(&m, 1, BlasVariant::Vanilla);
        assert!(
            vanilla < 0.25 * acml,
            "vanilla {vanilla:.2} GF/s should be a small fraction of ACML {acml:.2}"
        );
    }

    fn daxpy_time(machine: &Machine, nranks: usize, scheme: Scheme) -> f64 {
        let placements = scheme.resolve(machine, nranks).unwrap();
        let mut world =
            CommWorld::new(machine, placements, MpiImpl::Lam.profile(), LockLayer::USysV);
        let params = DaxpyParams { reps: 5, ..DaxpyParams::default() };
        append_daxpy_star(&mut world, &params);
        world.run().unwrap().makespan
    }

    #[test]
    fn figure4_daxpy_contends_on_the_socket() {
        // DAXPY is bandwidth-bound: two tasks on one socket run slower
        // per task than two tasks on two sockets.
        let m = Machine::new(systems::dmz());
        let packed = daxpy_time(&m, 2, Scheme::TwoMpiLocalAlloc);
        let spread = daxpy_time(&m, 2, Scheme::OneMpiLocalAlloc);
        assert!(packed > 1.1 * spread, "packed {packed:.3e} vs spread {spread:.3e}");
    }
}
