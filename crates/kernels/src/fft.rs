//! Fast Fourier transform: a real radix-2 implementation (verified
//! against a naive DFT) and the transpose-based parallel FFT model used
//! by HPCC FFT and the NAS FT benchmark.

use crate::C64;
use corescope_machine::{ComputePhase, TrafficProfile};
use corescope_smpi::CommWorld;
use std::ops::{Add, Mul, Sub};

/// A complex number (the crate avoids external numeric dependencies).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates `re + im·i`.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^(i·theta)`.
    pub fn cis(theta: f64) -> Self {
        Self { re: theta.cos(), im: theta.sin() }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Self { re: self.re * s, im: self.im * s }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

/// In-place iterative radix-2 FFT (decimation in time).
///
/// `inverse` computes the unscaled inverse transform; divide by `len` to
/// recover the input (see [`ifft_normalized`]).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft_inplace(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Inverse FFT with 1/n normalization (round-trips [`fft_inplace`]).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn ifft_normalized(data: &mut [Complex]) {
    let n = data.len() as f64;
    fft_inplace(data, true);
    for v in data.iter_mut() {
        *v = v.scale(1.0 / n);
    }
}

/// O(n²) reference DFT for property tests.
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::default();
            for (j, &x) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc = acc + x * Complex::cis(ang);
            }
            acc
        })
        .collect()
}

/// Flop count of an n-point complex FFT (the standard 5·n·log₂n).
pub fn fft_flops(n: f64) -> f64 {
    if n <= 1.0 {
        0.0
    } else {
        5.0 * n * n.log2()
    }
}

/// A local (per-core) FFT over `points` complex points as a compute
/// phase. FFT is "somewhat less cache-friendly" than DGEMM (Figure 9):
/// its butterfly strides defeat the prefetcher, so it is latency- (and
/// hence placement-) sensitive, and its scalar code sustains only ~12%
/// of peak — both properties of NAS FT on 2006 Opterons.
pub fn local_fft_phase(points: f64) -> ComputePhase {
    fft_pass_phase(points, points, 1.0)
}

/// A fraction of a distributed FFT's local work. `local_points` is this
/// rank's share of a `global_points` transform; the transpose algorithm
/// splits the butterflies into passes carrying `fraction` of the total.
pub fn fft_pass_phase(local_points: f64, global_points: f64, fraction: f64) -> ComputePhase {
    let ws = local_points * C64;
    // Partially-blocked butterfly passes re-sweep whatever does not fit
    // in L2: a grid twice the cache makes ~1 extra pass, a 256x grid ~8.
    // The pass count follows the *global* transform (pencil lengths do
    // not shrink with the rank count), so parallel FFTs do not gain
    // artificial cache superlinearity.
    let l2 = corescope_machine::systems::calib::L2_BYTES;
    let sweeps = (global_points * C64 / l2).max(2.0).log2().clamp(1.0, 8.0);
    let touched = fraction * local_points * C64 * sweeps;
    let flops = fraction * 5.0 * local_points * global_points.max(2.0).log2();
    ComputePhase::new("fft", flops, TrafficProfile::strided(touched.max(0.0), ws))
        .with_efficiency(0.2)
}

/// HPCC FFT single/star parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FftParams {
    /// Points per rank (HPCC sizes the vector to a fraction of memory;
    /// 2²² complex points = 64 MiB is representative).
    pub points_per_rank: usize,
    /// Repetitions.
    pub reps: usize,
}

impl Default for FftParams {
    fn default() -> Self {
        Self { points_per_rank: 1 << 22, reps: 3 }
    }
}

/// Appends a star-mode FFT run (all ranks transform concurrently, no
/// communication).
pub fn append_star(world: &mut CommWorld<'_>, params: &FftParams) {
    for _ in 0..params.reps {
        let phase = local_fft_phase(params.points_per_rank as f64);
        world.compute_all(|_| Some(phase.clone()));
    }
}

/// Appends a single-rank FFT run.
pub fn append_single(world: &mut CommWorld<'_>, params: &FftParams) {
    for _ in 0..params.reps {
        world.compute(0, local_fft_phase(params.points_per_rank as f64));
    }
}

/// Appends one distributed 1-D FFT of `total_points` complex points over
/// all ranks: local row FFTs, a full transpose (all-to-all), local column
/// FFTs — the MPI-FFT structure whose large messages make it insensitive
/// to lock-layer latency (Figure 13's key conclusion).
pub fn append_parallel_fft(world: &mut CommWorld<'_>, total_points: f64) {
    let p = world.size() as f64;
    let local = total_points / p;
    // Row FFTs: half the butterfly work happens before the transpose.
    let row_phase = fft_pass_phase(local, total_points, 0.5);
    world.compute_all(|_| Some(row_phase.clone()));
    // Transpose: every rank exchanges its share with every other rank.
    if world.size() > 1 {
        world.alltoall(local * C64 / p);
    }
    // Column FFTs + twiddle scaling: the other half.
    let col_phase = fft_pass_phase(local, total_points, 0.5);
    world.compute_all(|_| Some(col_phase.clone()));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        let input: Vec<Complex> =
            (0..32).map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos())).collect();
        let expected = dft_naive(&input);
        let mut data = input.clone();
        fft_inplace(&mut data, false);
        assert_close(&data, &expected, 1e-9);
    }

    #[test]
    fn fft_round_trip_recovers_input() {
        let input: Vec<Complex> =
            (0..256).map(|i| Complex::new(i as f64, -(i as f64) * 0.5)).collect();
        let mut data = input.clone();
        fft_inplace(&mut data, false);
        ifft_normalized(&mut data);
        assert_close(&data, &input, 1e-9);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::default(); 16];
        data[0] = Complex::new(1.0, 0.0);
        fft_inplace(&mut data, false);
        for v in &data {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_preserves_energy() {
        // Parseval: sum |x|^2 = (1/n) sum |X|^2.
        let input: Vec<Complex> =
            (0..64).map(|i| Complex::new((i as f64).sin(), (i as f64 * 2.0).cos())).collect();
        let e_time: f64 = input.iter().map(|v| v.abs().powi(2)).sum();
        let mut data = input;
        fft_inplace(&mut data, false);
        let e_freq: f64 = data.iter().map(|v| v.abs().powi(2)).sum::<f64>() / 64.0;
        assert!((e_time - e_freq).abs() < 1e-9 * e_time.max(1.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![Complex::default(); 12];
        fft_inplace(&mut data, false);
    }

    #[test]
    fn fft_flops_formula() {
        assert_eq!(fft_flops(1.0), 0.0);
        assert!((fft_flops(1024.0) - 5.0 * 1024.0 * 10.0).abs() < 1e-9);
    }

    mod sim {
        use super::super::*;
        use corescope_affinity::Scheme;
        use corescope_machine::{systems, Machine};
        use corescope_smpi::{LockLayer, MpiImpl};

        #[test]
        fn parallel_fft_completes_and_moves_data() {
            let m = Machine::new(systems::longs());
            let placements = Scheme::TwoMpiLocalAlloc.resolve(&m, 8).unwrap();
            let mut w = CommWorld::new(&m, placements, MpiImpl::Lam.profile(), LockLayer::USysV);
            append_parallel_fft(&mut w, (1u64 << 24) as f64);
            let report = w.run().unwrap();
            assert_eq!(report.metrics.total_messages(), 8 * 7);
            assert!(report.makespan > 0.0);
        }

        #[test]
        fn large_message_fft_is_insensitive_to_lock_layer() {
            // Figure 13: "with larger messages, the impact can be
            // essentially negligible as in MPI-FFT".
            let m = Machine::new(systems::longs());
            let placements = Scheme::TwoMpiLocalAlloc.resolve(&m, 8).unwrap();
            let run = |lock| {
                let mut w = CommWorld::new(&m, placements.clone(), MpiImpl::Lam.profile(), lock);
                append_parallel_fft(&mut w, (1u64 << 24) as f64);
                w.run().unwrap().makespan
            };
            let sysv = run(LockLayer::SysV);
            let usysv = run(LockLayer::USysV);
            assert!(
                (sysv - usysv) / usysv < 0.05,
                "lock layer should not matter for MB-sized messages: {sysv:.3e} vs {usysv:.3e}"
            );
        }
    }
}
