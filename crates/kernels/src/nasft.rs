//! The NAS FT benchmark model (Tables 2–4): a 3-D FFT-based spectral PDE
//! solver with a slab decomposition whose per-iteration transpose is a
//! full all-to-all.

use crate::fft::{fft_flops, fft_pass_phase};
use crate::C64;
use corescope_machine::{ComputePhase, TrafficProfile};
use corescope_smpi::CommWorld;

/// NAS FT problem classes (nx, ny, nz, iterations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FtClass {
    /// Class S: 64³, 6 iterations.
    S,
    /// Class A: 256×256×128, 6 iterations.
    A,
    /// Class B: 512×256×256, 20 iterations — the paper's class.
    B,
    /// Class C: 512³, 20 iterations.
    C,
}

impl FtClass {
    /// `(nx, ny, nz, niter)` per the NPB specification.
    pub fn parameters(self) -> (usize, usize, usize, usize) {
        match self {
            FtClass::S => (64, 64, 64, 6),
            FtClass::A => (256, 256, 128, 6),
            FtClass::B => (512, 256, 256, 20),
            FtClass::C => (512, 512, 512, 20),
        }
    }

    /// Total grid points.
    pub fn points(self) -> f64 {
        let (nx, ny, nz, _) = self.parameters();
        (nx * ny * nz) as f64
    }

    /// Iterations.
    pub fn iterations(self) -> usize {
        self.parameters().3
    }

    /// Approximate total flops: one forward plus `niter` inverse 3-D FFTs
    /// at 5·n·log₂n, plus the evolve multiplies.
    pub fn total_flops(self) -> f64 {
        let n = self.points();
        let ffts = (self.iterations() + 1) as f64;
        ffts * fft_flops(n) + self.iterations() as f64 * 6.0 * n
    }
}

/// NAS FT workload model.
#[derive(Debug, Clone, PartialEq)]
pub struct NasFt {
    /// Problem class.
    pub class: FtClass,
}

impl NasFt {
    /// Class B, as used throughout the paper.
    pub fn class_b() -> Self {
        Self { class: FtClass::B }
    }

    /// Appends one 3-D FFT over the slab decomposition: two local
    /// dimension passes, a global transpose (all-to-all), and the third
    /// pass.
    fn append_3d_fft(&self, world: &mut CommWorld<'_>) {
        let p = world.size() as f64;
        let total = self.class.points();
        let local = total / p;
        // Dimensions 1+2 are slab-local: two thirds of the butterflies.
        let pass12 = fft_pass_phase(local, total, 2.0 / 3.0);
        world.compute_all(|_| Some(pass12.clone()));
        if world.size() > 1 {
            world.alltoall(local * C64 / p);
        }
        let pass3 = fft_pass_phase(local, total, 1.0 / 3.0);
        world.compute_all(|_| Some(pass3.clone()));
    }

    /// Appends the full benchmark under the hybrid (OpenMP-within-socket)
    /// model of the paper's Section 3.4: all cores compute, but the
    /// transpose all-to-all runs among one master rank per socket with
    /// process-sized messages.
    ///
    /// # Panics
    ///
    /// Panics if the world size is not a multiple of
    /// `threads_per_process`.
    pub fn append_run_hybrid(&self, world: &mut CommWorld<'_>, threads_per_process: usize) {
        let p = world.size();
        assert!(threads_per_process >= 1 && p.is_multiple_of(threads_per_process));
        let masters: Vec<usize> = (0..p).step_by(threads_per_process).collect();
        let pm = masters.len() as f64;
        let total = self.class.points();
        let local_core = total / p as f64;
        const OMP_BARRIER: f64 = 2e-6;

        let fft3d = |world: &mut CommWorld<'_>| {
            let pass12 = fft_pass_phase(local_core, total, 2.0 / 3.0);
            world.compute_all(|_| Some(pass12.clone()));
            if masters.len() > 1 {
                world.barrier();
                for r in 0..p {
                    world.delay(r, OMP_BARRIER);
                }
                // Master-to-master transpose: each process moves its
                // whole share.
                let per_pair = total / pm * C64 / pm;
                for shift in 1..masters.len() {
                    for (idx, &r) in masters.iter().enumerate() {
                        let dst = masters[(idx + shift) % masters.len()];
                        world.p2p(r, dst, per_pair);
                    }
                }
                world.barrier();
                for r in 0..p {
                    world.delay(r, OMP_BARRIER);
                }
            }
            let pass3 = fft_pass_phase(local_core, total, 1.0 / 3.0);
            world.compute_all(|_| Some(pass3.clone()));
        };

        fft3d(world);
        for _ in 0..self.class.iterations() {
            let evolve = ComputePhase::new(
                "ft-evolve",
                6.0 * local_core,
                TrafficProfile::stream(2.0 * local_core * C64),
            )
            .with_efficiency(0.5);
            world.compute_all(|_| Some(evolve.clone()));
            fft3d(world);
            if masters.len() > 1 {
                world.sendrecv_among(&masters, C64);
            }
        }
    }

    /// Appends the full benchmark: initial forward transform, then per
    /// iteration an evolve (point-wise exponential multiply) and an
    /// inverse transform plus a checksum reduction.
    pub fn append_run(&self, world: &mut CommWorld<'_>) {
        let p = world.size() as f64;
        let local = self.class.points() / p;
        self.append_3d_fft(world);
        for _ in 0..self.class.iterations() {
            let evolve = ComputePhase::new(
                "ft-evolve",
                6.0 * local,
                TrafficProfile::stream(2.0 * local * C64),
            )
            .with_efficiency(0.5);
            world.compute_all(|_| Some(evolve.clone()));
            self.append_3d_fft(world);
            if world.size() > 1 {
                world.allreduce(C64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corescope_affinity::Scheme;
    use corescope_machine::{systems, Machine};
    use corescope_smpi::{CommWorld, LockLayer, MpiImpl};

    #[test]
    fn class_b_matches_npb_scale() {
        let (nx, ny, nz, niter) = FtClass::B.parameters();
        assert_eq!((nx, ny, nz, niter), (512, 256, 256, 20));
        // NPB reports ~92.3 Gflop for class B.
        let gf = FtClass::B.total_flops() / 1e9;
        assert!(gf > 70.0 && gf < 120.0, "class B ~92 Gflop, model says {gf:.1}");
    }

    fn run_ft(machine: &Machine, class: FtClass, nranks: usize, scheme: Scheme) -> f64 {
        let placements = scheme.resolve(machine, nranks).unwrap();
        let mut w =
            CommWorld::new(machine, placements, MpiImpl::Mpich2.profile(), LockLayer::USysV);
        NasFt { class }.append_run(&mut w);
        w.run().unwrap().makespan
    }

    #[test]
    fn ft_scales_then_saturates_on_the_ladder() {
        let m = Machine::new(systems::longs());
        let t2 = run_ft(&m, FtClass::A, 2, Scheme::TwoMpiLocalAlloc);
        let t16 = run_ft(&m, FtClass::A, 16, Scheme::TwoMpiLocalAlloc);
        assert!(t16 < t2, "t2={t2:.2} t16={t16:.2}");
        // Table 4: FT gains clearly less than the 8x core ratio going
        // from 2 to 16 cores (the paper measures ~3.9x; transpose traffic
        // over the ladder is the limiter).
        let gain = t2 / t16;
        assert!(gain > 2.0 && gain < 7.2, "2->16 core FT gain {gain:.1} must be clearly sublinear");
    }

    #[test]
    fn ft_membind_hurts_at_scale() {
        let m = Machine::new(systems::longs());
        let good = run_ft(&m, FtClass::B, 8, Scheme::OneMpiLocalAlloc);
        let bad = run_ft(&m, FtClass::B, 8, Scheme::OneMpiMembind);
        // Paper Table 2 shows ~1.75x for FT class B; the model reproduces
        // the direction with a smaller magnitude (see EXPERIMENTS.md).
        assert!(bad > 1.15 * good, "membind {bad:.2} vs localalloc {good:.2}");
    }

    #[test]
    fn ft_class_b_two_rank_longs_time_is_in_paper_ballpark() {
        // Table 2: FT class B, 2 tasks, Longs default = 118.97 s. The
        // simulator is a model, not the testbed: require the right order
        // of magnitude (within ~2x).
        let m = Machine::new(systems::longs());
        let t = run_ft(&m, FtClass::B, 2, Scheme::Default);
        assert!(t > 60.0 && t < 240.0, "FT-B 2 ranks = {t:.1} s, paper 118.97 s");
    }
}
