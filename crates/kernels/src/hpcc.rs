//! HPC Challenge glue: ring latency/bandwidth runners (Figures 12/13)
//! and the Single/Star mode conventions shared by the HPCC kernels.
//!
//! *Single* mode runs a kernel on exactly one rank while the others sit
//! idle; *Star* ("embarrassingly parallel") mode runs it on every rank
//! concurrently without communication. The per-kernel `append_single` /
//! `append_star` builders live in the kernel modules; this module adds
//! the communication micro-measurements HPCC reports alongside them.

use corescope_machine::engine::RankPlacement;
use corescope_machine::{Machine, Result};
use corescope_smpi::{CommWorld, LockLayer, MpiProfile};

/// Time per ring iteration with `bytes`-sized messages: every rank sends
/// to its right neighbour and receives from its left simultaneously.
///
/// # Errors
///
/// Propagates engine errors; needs at least two ranks.
pub fn ring_time(
    machine: &Machine,
    placements: &[RankPlacement],
    profile: &MpiProfile,
    lock: LockLayer,
    bytes: f64,
    reps: usize,
) -> Result<f64> {
    if placements.len() < 2 {
        return Err(corescope_machine::Error::InvalidSpec("ring needs at least two ranks".into()));
    }
    let mut world = CommWorld::new(machine, placements.to_vec(), profile.clone(), lock);
    for _ in 0..reps {
        world.ring_shift(bytes);
        // The ring is synchronous per iteration.
        world.barrier();
    }
    Ok(world.run()?.makespan / reps as f64)
}

/// HPCC ring latency in seconds (8-byte messages).
///
/// # Errors
///
/// Propagates [`ring_time`] errors.
pub fn ring_latency(
    machine: &Machine,
    placements: &[RankPlacement],
    profile: &MpiProfile,
    lock: LockLayer,
    reps: usize,
) -> Result<f64> {
    ring_time(machine, placements, profile, lock, 8.0, reps)
}

/// HPCC ring bandwidth in bytes/s per rank (2 MB messages).
///
/// # Errors
///
/// Propagates [`ring_time`] errors.
pub fn ring_bandwidth(
    machine: &Machine,
    placements: &[RankPlacement],
    profile: &MpiProfile,
    lock: LockLayer,
    reps: usize,
) -> Result<f64> {
    let bytes = 2e6;
    let t = ring_time(machine, placements, profile, lock, bytes, reps)?;
    Ok(bytes / t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corescope_affinity::Scheme;
    use corescope_machine::systems;
    use corescope_smpi::MpiImpl;

    #[test]
    fn ring_latency_exceeds_pingpong_latency() {
        // Figure 13: "As expected ring latencies are higher than PingPong
        // latencies".
        let m = Machine::new(systems::longs());
        let placements = Scheme::TwoMpiLocalAlloc.resolve(&m, 16).unwrap();
        let profile = MpiImpl::Lam.profile();
        let ring = ring_latency(&m, &placements, &profile, LockLayer::USysV, 10).unwrap();
        let pp = corescope_smpi::imb::pingpong_time(
            &m,
            &placements,
            &profile,
            LockLayer::USysV,
            8.0,
            10,
        )
        .unwrap();
        assert!(ring > pp, "ring {ring:.3e} vs pingpong {pp:.3e}");
    }

    #[test]
    fn sysv_dominates_ring_latency() {
        // Figure 13: differences between ring and pingpong "are
        // overwhelmed by the high latencies associated with the SysV MPI
        // sub-layer".
        let m = Machine::new(systems::longs());
        let placements = Scheme::TwoMpiLocalAlloc.resolve(&m, 16).unwrap();
        let profile = MpiImpl::Lam.profile();
        let sysv = ring_latency(&m, &placements, &profile, LockLayer::SysV, 5).unwrap();
        let usysv = ring_latency(&m, &placements, &profile, LockLayer::USysV, 5).unwrap();
        assert!(sysv > 1.5 * usysv, "sysv {sysv:.3e} vs usysv {usysv:.3e}");
    }

    #[test]
    fn ring_bandwidth_reflects_topology_congestion() {
        // The ladder congests ring traffic relative to a 2-socket node's
        // point-to-point links.
        let longs = Machine::new(systems::longs());
        let dmz = Machine::new(systems::dmz());
        let profile = MpiImpl::Lam.profile();
        let p_longs = Scheme::TwoMpiLocalAlloc.resolve(&longs, 16).unwrap();
        let p_dmz = Scheme::TwoMpiLocalAlloc.resolve(&dmz, 4).unwrap();
        let bw_longs = ring_bandwidth(&longs, &p_longs, &profile, LockLayer::USysV, 3).unwrap();
        let bw_dmz = ring_bandwidth(&dmz, &p_dmz, &profile, LockLayer::USysV, 3).unwrap();
        assert!(bw_longs < bw_dmz, "ladder ring bw {bw_longs:.3e} should trail dmz {bw_dmz:.3e}");
    }

    #[test]
    fn rejects_one_rank() {
        let m = Machine::new(systems::dmz());
        let placements = Scheme::Default.resolve(&m, 1).unwrap();
        let profile = MpiImpl::Lam.profile();
        assert!(ring_latency(&m, &placements, &profile, LockLayer::USysV, 1).is_err());
    }
}
