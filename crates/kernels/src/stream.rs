//! The STREAM memory-bandwidth benchmark (McCalpin): real kernels plus
//! the simulator workload used for Figures 2, 3 and 10.

use crate::F64;
use corescope_machine::{ComputePhase, TrafficProfile};
use corescope_smpi::CommWorld;

/// The four STREAM kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKernel {
    /// `c[i] = a[i]`
    Copy,
    /// `b[i] = q * c[i]`
    Scale,
    /// `c[i] = a[i] + b[i]`
    Add,
    /// `a[i] = b[i] + q * c[i]` — the kernel the paper's figures report.
    Triad,
}

impl StreamKernel {
    /// Bytes moved per loop iteration (reads + the write, excluding
    /// write-allocate traffic, per STREAM convention).
    pub fn bytes_per_element(self) -> f64 {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 2.0 * F64,
            StreamKernel::Add | StreamKernel::Triad => 3.0 * F64,
        }
    }

    /// Floating-point operations per element.
    pub fn flops_per_element(self) -> f64 {
        match self {
            StreamKernel::Copy => 0.0,
            StreamKernel::Scale | StreamKernel::Add => 1.0,
            StreamKernel::Triad => 2.0,
        }
    }
}

/// Real triad: `a[i] = b[i] + q * c[i]`.
pub fn triad(a: &mut [f64], b: &[f64], c: &[f64], q: f64) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    for ((ai, bi), ci) in a.iter_mut().zip(b).zip(c) {
        *ai = bi + q * ci;
    }
}

/// Real copy: `c[i] = a[i]`.
pub fn copy(c: &mut [f64], a: &[f64]) {
    c.copy_from_slice(a);
}

/// Real scale: `b[i] = q * c[i]`.
pub fn scale(b: &mut [f64], c: &[f64], q: f64) {
    assert_eq!(b.len(), c.len());
    for (bi, ci) in b.iter_mut().zip(c) {
        *bi = q * ci;
    }
}

/// Real add: `c[i] = a[i] + b[i]`.
pub fn add(c: &mut [f64], a: &[f64], b: &[f64]) {
    assert_eq!(c.len(), a.len());
    assert_eq!(c.len(), b.len());
    for ((ci, ai), bi) in c.iter_mut().zip(a).zip(b) {
        *ci = ai + bi;
    }
}

/// STREAM workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamParams {
    /// Which kernel to run.
    pub kernel: StreamKernel,
    /// Array length per rank (LMbench3/STREAM default scale: large enough
    /// to defeat the 1 MiB L2 by a wide margin).
    pub elements_per_rank: usize,
    /// Number of timed sweeps.
    pub sweeps: usize,
}

impl Default for StreamParams {
    fn default() -> Self {
        Self { kernel: StreamKernel::Triad, elements_per_rank: 4_000_000, sweeps: 10 }
    }
}

impl StreamParams {
    /// The compute phase one sweep generates on one rank.
    pub fn phase(&self) -> ComputePhase {
        let n = self.elements_per_rank as f64;
        let bytes = n * self.kernel.bytes_per_element();
        // Triad's working set is the three arrays.
        let working_set = 3.0 * n * F64;
        ComputePhase::new(
            "stream",
            n * self.kernel.flops_per_element(),
            TrafficProfile::stream_over(bytes, working_set),
        )
    }

    /// Bytes one rank moves over the whole run.
    pub fn bytes_per_rank(&self) -> f64 {
        self.sweeps as f64 * self.elements_per_rank as f64 * self.kernel.bytes_per_element()
    }
}

/// Appends a full STREAM run (every rank sweeps concurrently, "Star"
/// style) to a world.
pub fn append_star(world: &mut CommWorld<'_>, params: &StreamParams) {
    for _ in 0..params.sweeps {
        let phase = params.phase();
        world.compute_all(|_| Some(phase.clone()));
    }
}

/// Appends a single-rank STREAM run (rank 0 only, "Single" style).
pub fn append_single(world: &mut CommWorld<'_>, params: &StreamParams) {
    for _ in 0..params.sweeps {
        world.compute(0, params.phase());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corescope_affinity::Scheme;
    use corescope_machine::{systems, Machine};
    use corescope_smpi::{LockLayer, MpiImpl};

    #[test]
    fn real_triad_computes_expected_values() {
        let b = vec![1.0; 8];
        let c = vec![2.0; 8];
        let mut a = vec![0.0; 8];
        triad(&mut a, &b, &c, 3.0);
        assert!(a.iter().all(|&x| (x - 7.0).abs() < 1e-15));
    }

    #[test]
    fn real_kernels_compose() {
        let n = 64;
        let a = vec![1.5; n];
        let mut b = vec![0.0; n];
        let mut c = vec![0.0; n];
        copy(&mut c, &a); // c = 1.5
        scale(&mut b, &c, 2.0); // b = 3.0
        let mut sum = vec![0.0; n];
        add(&mut sum, &a, &b); // 4.5
        assert!(sum.iter().all(|&x| (x - 4.5).abs() < 1e-15));
    }

    #[test]
    fn triad_moves_24_bytes_per_element() {
        assert_eq!(StreamKernel::Triad.bytes_per_element(), 24.0);
        assert_eq!(StreamKernel::Copy.flops_per_element(), 0.0);
    }

    fn measured_bandwidth(machine: &Machine, nranks: usize, scheme: Scheme) -> f64 {
        let placements = scheme.resolve(machine, nranks).unwrap();
        let mut world =
            CommWorld::new(machine, placements, MpiImpl::Lam.profile(), LockLayer::USysV);
        let params = StreamParams { sweeps: 2, ..StreamParams::default() };
        append_star(&mut world, &params);
        let report = world.run().unwrap();
        nranks as f64 * params.bytes_per_rank() / report.makespan
    }

    #[test]
    fn figure2_shape_sockets_scale_cores_do_not() {
        let dmz = Machine::new(systems::dmz());
        // 1 core vs 2 sockets: near 2x. 2 cores on one socket: much less.
        let bw1 = measured_bandwidth(&dmz, 1, Scheme::OneMpiLocalAlloc);
        let bw2_sockets = measured_bandwidth(&dmz, 2, Scheme::OneMpiLocalAlloc);
        let bw2_packed = measured_bandwidth(&dmz, 2, Scheme::TwoMpiLocalAlloc);
        assert!(bw2_sockets > 1.9 * bw1, "socket scaling should be near-linear");
        assert!(
            bw2_packed < 1.35 * bw1,
            "second core per socket is flat/degraded: {:.2} vs {:.2} GB/s",
            bw2_packed / 1e9,
            bw1 / 1e9
        );
    }

    #[test]
    fn longs_single_core_bandwidth_below_half_expected() {
        // The paper: "the best achievable single core bandwidth on the
        // 8 socket system is less than half of the more than 4 GB/s one
        // would typically expect from an Opteron".
        let longs = Machine::new(systems::longs());
        let bw = measured_bandwidth(&longs, 1, Scheme::OneMpiLocalAlloc);
        assert!(bw < 2.1e9, "longs single-core bw = {:.2} GB/s", bw / 1e9);
        let dmz = Machine::new(systems::dmz());
        let bw_dmz = measured_bandwidth(&dmz, 1, Scheme::OneMpiLocalAlloc);
        assert!(bw_dmz > 3.4e9);
    }
}
