//! XSBench-style neutron cross-section lookup: real unionized-grid
//! kernel plus the Single / Star workload models.
//!
//! The real kernel reproduces the hot loop of a Monte Carlo transport
//! macroscopic-cross-section calculation (Tramm et al.'s XSBench): draw a
//! pseudo-random energy, binary-search the unionized energy grid for the
//! bracketing interval, then linearly interpolate five cross-section
//! channels for every nuclide and accumulate the macroscopic totals. Each
//! lookup is independent and seeded by its global index, so partitioning
//! the lookup stream across threads or ranks cannot change any result —
//! the property the correctness tests pin down and the reason the
//! workload scales as an embarrassingly parallel, latency-bound stream of
//! dependent random reads.

use crate::F64;
use corescope_machine::{ComputePhase, TrafficProfile};
use corescope_smpi::CommWorld;

/// Cross-section channels per (grid point, nuclide): total, elastic,
/// absorption, fission, nu-fission — XSBench's five.
pub const CHANNELS: usize = 5;

/// SplitMix64 finalizer: a stateless, high-quality 64-bit mix.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The energy drawn by lookup `index` under `seed`, in the open unit
/// interval. Stateless per index: lookup `i` samples the same energy no
/// matter which thread or rank executes it.
pub fn lookup_energy(seed: u64, index: u64) -> f64 {
    // 53 random bits → (0, 1); +1 keeps the value strictly positive.
    ((mix64(seed ^ index.wrapping_mul(0xA24B_AED4_963E_E407)) >> 11) + 1) as f64
        / (1u64 << 53) as f64
}

/// A unionized cross-section table: one sorted energy grid shared by all
/// nuclides, with [`CHANNELS`] values per (grid point, nuclide).
///
/// Data layout matches the traffic model in [`XsParams::phase`]: the
/// per-grid-point rows of all nuclides are contiguous
/// (`data[point * nuclides * CHANNELS + nuclide * CHANNELS + channel]`),
/// so one lookup touches two contiguous row blocks plus the binary-search
/// path through the grid.
#[derive(Debug, Clone)]
pub struct XsTable {
    /// Sorted unionized energy grid, strictly inside (0, 1).
    pub grid: Vec<f64>,
    /// Per-point, per-nuclide channel values.
    pub data: Vec<f64>,
    /// Nuclides in the material.
    pub nuclides: usize,
}

impl XsTable {
    /// Builds a deterministic table with `grid_points` energies and
    /// `nuclides` nuclides from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `grid_points < 2` or `nuclides == 0`.
    pub fn new(grid_points: usize, nuclides: usize, seed: u64) -> Self {
        assert!(grid_points >= 2, "need at least two grid points to interpolate");
        assert!(nuclides > 0, "need at least one nuclide");
        let mut grid: Vec<f64> =
            (0..grid_points as u64).map(|i| lookup_energy(seed ^ 0x6u64, i)).collect();
        grid.sort_by(f64::total_cmp);
        grid.dedup();
        // Duplicates are astronomically unlikely but dedup can shrink the
        // grid; top it back up deterministically.
        let mut bump = grid_points as u64;
        while grid.len() < grid_points {
            grid.push(lookup_energy(seed ^ 0x6u64, bump));
            bump += 1;
            grid.sort_by(f64::total_cmp);
            grid.dedup();
        }
        let data: Vec<f64> = (0..(grid_points * nuclides * CHANNELS) as u64)
            .map(|i| 1.0 + (mix64(seed ^ i) >> 40) as f64 / (1u64 << 24) as f64)
            .collect();
        Self { grid, data, nuclides }
    }

    /// Index of the grid interval bracketing `energy`: the largest `i`
    /// with `grid[i] <= energy`, clamped to `[0, len - 2]`.
    pub fn bracket(&self, energy: f64) -> usize {
        let i = self.grid.partition_point(|&g| g <= energy);
        i.saturating_sub(1).min(self.grid.len() - 2)
    }

    /// Macroscopic cross sections at `energy`: per-channel sums of the
    /// linear interpolation between the bracketing rows of every nuclide.
    pub fn macro_xs(&self, energy: f64) -> [f64; CHANNELS] {
        let lo = self.bracket(energy);
        let (e0, e1) = (self.grid[lo], self.grid[lo + 1]);
        let f = ((energy - e0) / (e1 - e0)).clamp(0.0, 1.0);
        let row = |point: usize, nuclide: usize| {
            let base = (point * self.nuclides + nuclide) * CHANNELS;
            &self.data[base..base + CHANNELS]
        };
        let mut out = [0.0; CHANNELS];
        for n in 0..self.nuclides {
            let (a, b) = (row(lo, n), row(lo + 1, n));
            for c in 0..CHANNELS {
                out[c] += a[c] + f * (b[c] - a[c]);
            }
        }
        out
    }
}

/// Runs lookups `start .. start + count` of the seeded stream and folds
/// each result into an XOR checksum. XOR commutes, and every lookup is a
/// pure function of `(table, seed, index)`, so any partition of the index
/// range — across threads, ranks, or chunk sizes, combined in any order —
/// yields the same checksum.
pub fn run_lookups(table: &XsTable, seed: u64, start: u64, count: u64) -> u64 {
    let span = table.grid[table.grid.len() - 1] - table.grid[0];
    let mut checksum = 0u64;
    for i in start..start + count {
        let energy = table.grid[0] + span * lookup_energy(seed, i);
        let xs = table.macro_xs(energy);
        let mut h = i;
        for v in xs {
            h = mix64(h ^ v.to_bits());
        }
        checksum ^= h;
    }
    checksum
}

/// Cross-section lookup workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct XsParams {
    /// Unionized energy grid points. XSBench's large problem unionizes to
    /// ~4.2M points; the grid is what makes the table big.
    pub grid_points: u64,
    /// Nuclides in the material (XSBench's large fuel material has 321;
    /// a small depleted-fuel material has 34).
    pub nuclides: u64,
    /// Lookups each rank performs.
    pub lookups_per_rank: u64,
}

impl Default for XsParams {
    fn default() -> Self {
        Self { grid_points: 1 << 22, nuclides: 64, lookups_per_rank: 1 << 22 }
    }
}

impl XsParams {
    /// Bytes of the unionized table: the grid plus [`CHANNELS`] values
    /// per (grid point, nuclide).
    pub fn table_bytes(&self) -> f64 {
        self.grid_points as f64 * F64 * (1.0 + CHANNELS as f64 * self.nuclides as f64)
    }

    /// Cache lines one lookup touches: the binary-search path through the
    /// grid (one line per probe) plus the two bracketing rows of
    /// contiguous per-nuclide channel values.
    pub fn lines_per_lookup(&self) -> f64 {
        let search = (self.grid_points as f64).log2().ceil();
        let row_bytes = self.nuclides as f64 * CHANNELS as f64 * F64;
        search + 2.0 * (row_bytes / 64.0).ceil()
    }

    /// Flops one lookup performs: per nuclide, [`CHANNELS`] interpolations
    /// of one multiply + one add (the accumulate rides along).
    pub fn flops_per_lookup(&self) -> f64 {
        self.nuclides as f64 * CHANNELS as f64 * 2.0
    }

    /// The lookup phase for one rank: latency-bound dependent reads of
    /// whole lines over the shared table.
    pub fn phase(&self) -> ComputePhase {
        let lookups = self.lookups_per_rank as f64;
        ComputePhase::new(
            "xslookup",
            lookups * self.flops_per_lookup(),
            TrafficProfile::lookup(lookups * self.lines_per_lookup() * 64.0, self.table_bytes()),
        )
    }

    /// Lookups per second implied by a runtime for `ranks` ranks.
    pub fn lookup_rate(&self, ranks: usize, seconds: f64) -> f64 {
        ranks as f64 * self.lookups_per_rank as f64 / seconds
    }
}

/// Appends a star-mode run: every rank performs its own lookup stream
/// over its own (replicated) table.
pub fn append_star(world: &mut CommWorld<'_>, params: &XsParams) {
    let phase = params.phase();
    world.compute_all(|_| Some(phase.clone()));
}

/// Appends a single-rank run.
pub fn append_single(world: &mut CommWorld<'_>, params: &XsParams) {
    world.compute(0, params.phase());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_table() -> XsTable {
        XsTable::new(4096, 16, 42)
    }

    #[test]
    fn checksum_is_deterministic_and_seed_sensitive() {
        let t = small_table();
        assert_eq!(run_lookups(&t, 7, 0, 1000), run_lookups(&t, 7, 0, 1000));
        assert_ne!(run_lookups(&t, 7, 0, 1000), run_lookups(&t, 8, 0, 1000));
    }

    #[test]
    fn checksum_is_independent_of_partitioning() {
        // The property that makes thread count / rank layout irrelevant:
        // any chunking of the index range, combined in any order, XORs to
        // the full-range checksum.
        let t = small_table();
        let full = run_lookups(&t, 7, 0, 1024);
        for chunk in [1u64, 3, 64, 333, 1024] {
            let mut acc = 0u64;
            let mut start = 0;
            let mut parts = Vec::new();
            while start < 1024 {
                let count = chunk.min(1024 - start);
                parts.push(run_lookups(&t, 7, start, count));
                start += count;
            }
            parts.reverse(); // combine in reverse "thread" order
            for p in parts {
                acc ^= p;
            }
            assert_eq!(acc, full, "chunk size {chunk} changed the checksum");
        }
    }

    #[test]
    fn grid_is_sorted_and_lookup_brackets_correctly() {
        let t = small_table();
        assert!(t.grid.windows(2).all(|w| w[0] < w[1]), "grid must be strictly sorted");
        // An energy exactly on a grid point interpolates to that row.
        for &point in &[0usize, 1, 100, 4094] {
            let lo = t.bracket(t.grid[point]);
            assert_eq!(lo, point.min(t.grid.len() - 2));
        }
        // Below/above the grid clamps to the first/last interval.
        assert_eq!(t.bracket(0.0), 0);
        assert_eq!(t.bracket(1.0), t.grid.len() - 2);
    }

    #[test]
    fn interpolation_is_exact_at_grid_points_and_bounded_between() {
        let t = small_table();
        let point = 17;
        let xs = t.macro_xs(t.grid[point]);
        for (c, &v) in xs.iter().enumerate() {
            let exact: f64 =
                (0..t.nuclides).map(|n| t.data[(point * t.nuclides + n) * CHANNELS + c]).sum();
            assert!((v - exact).abs() < 1e-9 * exact, "channel {c}: {v} vs {exact}");
        }
        // Between two grid points, every channel lies between the rows.
        let mid = 0.5 * (t.grid[17] + t.grid[18]);
        let xs_mid = t.macro_xs(mid);
        let row_sum = |point: usize, c: usize| -> f64 {
            (0..t.nuclides).map(|n| t.data[(point * t.nuclides + n) * CHANNELS + c]).sum()
        };
        for (c, &v) in xs_mid.iter().enumerate() {
            let (a, b) = (row_sum(17, c), row_sum(18, c));
            assert!(v >= a.min(b) - 1e-12 && v <= a.max(b) + 1e-12);
        }
    }

    #[test]
    fn table_bytes_and_lines_scale_with_the_grid() {
        let small = XsParams { grid_points: 1 << 20, nuclides: 64, lookups_per_rank: 1 };
        let large = XsParams { grid_points: 1 << 24, nuclides: 64, lookups_per_rank: 1 };
        assert!((large.table_bytes() / small.table_bytes() - 16.0).abs() < 1e-9);
        // The search path grows by log2 of the ratio; the row cost is flat.
        assert_eq!(large.lines_per_lookup() - small.lines_per_lookup(), 4.0);
    }

    mod sim {
        use super::super::*;
        use corescope_affinity::Scheme;
        use corescope_machine::{systems, Machine};
        use corescope_smpi::{LockLayer, MpiImpl};

        fn params() -> XsParams {
            XsParams { grid_points: 1 << 22, nuclides: 64, lookups_per_rank: 1 << 18 }
        }

        #[test]
        fn star_mode_is_latency_bound_not_bandwidth_bound() {
            let m = Machine::new(systems::dmz());
            let t_single = {
                let p = Scheme::TwoMpiLocalAlloc.resolve(&m, 1).unwrap();
                let mut w = CommWorld::new(&m, p, MpiImpl::Lam.profile(), LockLayer::USysV);
                append_single(&mut w, &params());
                w.run().unwrap().makespan
            };
            let t_star = {
                let p = Scheme::TwoMpiLocalAlloc.resolve(&m, 2).unwrap();
                let mut w = CommWorld::new(&m, p, MpiImpl::Lam.profile(), LockLayer::USysV);
                append_star(&mut w, &params());
                w.run().unwrap().makespan
            };
            let ratio = t_star / t_single;
            assert!(
                ratio < 1.5,
                "second core should be nearly free for latency-bound lookups, ratio {ratio:.2}"
            );
        }

        #[test]
        fn longs_probe_latency_slows_single_core_lookups() {
            // Same mechanism as the paper's Longs STREAM observation:
            // every access pays the ladder's probe diameter, so a single
            // Longs core looks up markedly slower than a DMZ core.
            let time_on = |spec: corescope_machine::MachineSpec| {
                let m = Machine::new(spec);
                let p = Scheme::TwoMpiLocalAlloc.resolve(&m, 1).unwrap();
                let mut w = CommWorld::new(&m, p, MpiImpl::Lam.profile(), LockLayer::USysV);
                append_single(&mut w, &params());
                w.run().unwrap().makespan
            };
            let dmz = time_on(systems::dmz());
            let longs = time_on(systems::longs());
            assert!(longs > 1.5 * dmz, "longs {longs:.3e} vs dmz {dmz:.3e}");
        }
    }
}
