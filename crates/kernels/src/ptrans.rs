//! HPCC PTRANS (parallel matrix transpose): real blocked transpose plus
//! the distributed workload model of Figure 12.
//!
//! PTRANS computes `A = A^T + B` over a block-distributed matrix. Its
//! communication is a full pairwise block exchange — the most bandwidth-
//! hungry pattern in the HPCC suite, which is why the paper uses it to
//! expose the SysV/USysV and localalloc interactions on the ladder.

use crate::F64;
use corescope_machine::{ComputePhase, TrafficProfile};
use corescope_smpi::CommWorld;

/// Real out-of-place transpose-and-add: `a = a^T + b` for a row-major
/// square matrix of order `n`, using cache blocking.
///
/// # Panics
///
/// Panics if the slices are shorter than `n * n`.
pub fn transpose_add(n: usize, bs: usize, a: &mut [f64], b: &[f64]) {
    assert!(a.len() >= n * n && b.len() >= n * n);
    assert!(bs > 0);
    // Transpose in place by swapping block pairs, then add b.
    for ii in (0..n).step_by(bs) {
        for jj in (ii..n).step_by(bs) {
            for i in ii..(ii + bs).min(n) {
                let j0 = if ii == jj { i + 1 } else { jj };
                for j in j0..(jj + bs).min(n) {
                    a.swap(i * n + j, j * n + i);
                }
            }
        }
    }
    for (ai, bi) in a.iter_mut().zip(b).take(n * n) {
        *ai += bi;
    }
}

/// PTRANS workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PtransParams {
    /// Global matrix order (HPCC sizes it to a fraction of memory;
    /// 8192² doubles = 512 MiB is representative for these nodes).
    pub n: usize,
    /// Repetitions.
    pub reps: usize,
    /// Bytes per message: PTRANS sends block-cyclic `nb x nb` tiles, not
    /// monolithic buffers, so a transpose is *many medium messages* —
    /// which is why its per-message lock costs matter (Figure 12) while
    /// the few-huge-message MPI-FFT's do not (Figure 13).
    pub block_bytes: f64,
}

impl Default for PtransParams {
    fn default() -> Self {
        Self { n: 8192, reps: 2, block_bytes: 8.0 * 1024.0 }
    }
}

/// Appends a distributed PTRANS run: each rank streams its block locally
/// and exchanges off-diagonal tiles with every peer, one block-sized
/// message at a time.
pub fn append_run(world: &mut CommWorld<'_>, params: &PtransParams) {
    let p = world.size() as f64;
    let total_bytes = (params.n * params.n) as f64 * F64;
    let local_bytes = total_bytes / p;
    for _ in 0..params.reps {
        // Local transpose + add: read A and B, write A.
        let phase = ComputePhase::new(
            "ptrans-local",
            local_bytes / F64, // one add per element
            TrafficProfile::stream(3.0 * local_bytes),
        );
        world.compute_all(|_| Some(phase.clone()));
        if world.size() > 1 {
            // Every off-diagonal tile crosses ranks: repeated all-to-alls
            // of block-sized messages carrying the local share.
            let per_pair = local_bytes / p;
            let chunks = (per_pair / params.block_bytes).ceil().max(1.0) as usize;
            for _ in 0..chunks {
                world.alltoall(per_pair / chunks as f64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_add_is_correct() {
        let n = 9;
        let orig: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..n * n).map(|i| (i % 3) as f64).collect();
        let mut a = orig.clone();
        transpose_add(n, 4, &mut a, &b);
        for i in 0..n {
            for j in 0..n {
                let expected = orig[j * n + i] + b[i * n + j];
                assert_eq!(a[i * n + j], expected, "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn double_transpose_without_add_is_identity() {
        let n = 16;
        let orig: Vec<f64> = (0..n * n).map(|i| (i * 7 % 13) as f64).collect();
        let zero = vec![0.0; n * n];
        let mut a = orig.clone();
        transpose_add(n, 5, &mut a, &zero);
        transpose_add(n, 3, &mut a, &zero);
        assert_eq!(a, orig);
    }

    mod sim {
        use super::super::*;
        use corescope_affinity::Scheme;
        use corescope_machine::{systems, Machine};
        use corescope_smpi::{LockLayer, MpiImpl};

        fn ptrans_time(lock: LockLayer, scheme: Scheme) -> f64 {
            let m = Machine::new(systems::longs());
            let placements = scheme.resolve(&m, 16).unwrap();
            let mut w = CommWorld::new(&m, placements, MpiImpl::Lam.profile(), lock);
            append_run(&mut w, &PtransParams { n: 4096, reps: 1, ..PtransParams::default() });
            w.run().unwrap().makespan
        }

        #[test]
        fn usysv_beats_sysv_on_ptrans() {
            // Figure 12: "USysV's spinlocks providing a clear performance
            // advantage".
            let sysv = ptrans_time(LockLayer::SysV, Scheme::TwoMpiLocalAlloc);
            let usysv = ptrans_time(LockLayer::USysV, Scheme::TwoMpiLocalAlloc);
            assert!(usysv < sysv, "usysv {usysv:.3e} vs sysv {sysv:.3e}");
        }

        #[test]
        fn ptrans_moves_the_whole_matrix() {
            let m = Machine::new(systems::longs());
            let placements = Scheme::TwoMpiLocalAlloc.resolve(&m, 8).unwrap();
            let mut w = CommWorld::new(&m, placements, MpiImpl::Lam.profile(), LockLayer::USysV);
            append_run(&mut w, &PtransParams { n: 2048, reps: 1, ..PtransParams::default() });
            let report = w.run().unwrap();
            let sent = report.metrics.total_bytes_sent();
            let expected = (2048.0 * 2048.0 * F64) * (8.0 - 1.0) / 8.0;
            assert!(
                (sent - expected).abs() / expected < 0.05,
                "sent {sent:.3e}, expected ~{expected:.3e}"
            );
        }
    }
}
