//! Criterion bench: STREAM triad simulations (the Figure 2/3/10 engine
//! paths) — measures how fast the simulator resolves contended
//! memory-flow networks.

use corescope_affinity::Scheme;
use corescope_kernels::stream::{append_star, StreamParams};
use corescope_machine::{systems, Machine};
use corescope_smpi::{CommWorld, LockLayer, MpiImpl};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream");
    group.sample_size(20);
    for (label, nranks) in [("longs-1", 1usize), ("longs-8", 8), ("longs-16", 16)] {
        let machine = Machine::new(systems::longs());
        group.bench_function(label, |b| {
            b.iter(|| {
                let placements = Scheme::TwoMpiLocalAlloc.resolve(&machine, nranks).unwrap();
                let mut w =
                    CommWorld::new(&machine, placements, MpiImpl::Lam.profile(), LockLayer::USysV);
                append_star(&mut w, &StreamParams { sweeps: 3, ..StreamParams::default() });
                w.run().unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
