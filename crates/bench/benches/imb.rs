//! Criterion bench: IMB PingPong/Exchange simulations (Figures 14-17).

use corescope_affinity::Scheme;
use corescope_machine::{systems, Machine};
use corescope_smpi::imb::{exchange_time, pingpong_time};
use corescope_smpi::{LockLayer, MpiImpl};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let machine = Machine::new(systems::dmz());
    let placements = Scheme::Default.resolve(&machine, 2).unwrap();
    let profile = MpiImpl::OpenMpi.profile();
    let mut group = c.benchmark_group("imb");
    group.sample_size(30);
    group.bench_function("pingpong-1k-x100", |b| {
        b.iter(|| {
            pingpong_time(&machine, &placements, &profile, LockLayer::USysV, 1024.0, 100).unwrap()
        });
    });
    group.bench_function("exchange-64k-x50", |b| {
        b.iter(|| {
            exchange_time(&machine, &placements, &profile, LockLayer::USysV, 2, 65536.0, 50)
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
