//! Criterion bench: AMBER simulations (Tables 7-9) — a short JAC (PME)
//! trajectory and a gb_mb (GB) trajectory.

use corescope_affinity::Scheme;
use corescope_apps::md::AmberBenchmark;
use corescope_machine::{systems, Machine};
use corescope_smpi::{CommWorld, LockLayer, MpiImpl};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let machine = Machine::new(systems::longs());
    let run = |mut bench: AmberBenchmark, steps: usize| {
        bench.steps = steps;
        let placements = Scheme::TwoMpiLocalAlloc.resolve(&machine, 8).unwrap();
        let mut w =
            CommWorld::new(&machine, placements, MpiImpl::Mpich2.profile(), LockLayer::USysV);
        bench.append_run(&mut w);
        w.run().unwrap()
    };
    let mut group = c.benchmark_group("amber");
    group.sample_size(10);
    group.bench_function("jac-pme-10steps", |b| {
        b.iter(|| run(AmberBenchmark::jac(), 10));
    });
    group.bench_function("gbmb-gb-50steps", |b| {
        b.iter(|| run(AmberBenchmark::gb_mb(), 50));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
