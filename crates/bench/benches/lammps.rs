//! Criterion bench: LAMMPS simulations (Tables 10-11) plus the real
//! cell-list Lennard-Jones force kernel.

use corescope_affinity::Scheme;
use corescope_apps::md::lammps::LammpsBenchmark;
use corescope_apps::md::lj::{compute_forces, run_nve, LjParams};
use corescope_apps::md::ParticleSystem;
use corescope_machine::{systems, Machine};
use corescope_smpi::{CommWorld, LockLayer, MpiImpl};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let machine = Machine::new(systems::longs());
    let mut group = c.benchmark_group("lammps");
    group.sample_size(10);
    for benchmark in LammpsBenchmark::all() {
        group.bench_function(format!("sim-{}-8", benchmark.name()), |b| {
            b.iter(|| {
                let placements = Scheme::TwoMpiLocalAlloc.resolve(&machine, 8).unwrap();
                let mut w = CommWorld::new(
                    &machine,
                    placements,
                    MpiImpl::Mpich2.profile(),
                    LockLayer::USysV,
                );
                benchmark.append_run(&mut w);
                w.run().unwrap()
            });
        });
    }
    group.bench_function("real-lj-forces-512", |b| {
        let params = LjParams::default();
        let mut system = ParticleSystem::lattice(512, 0.6, 42);
        b.iter(|| {
            system.clear_forces();
            black_box(compute_forces(&mut system, &params))
        });
    });
    group.bench_function("real-lj-nve-216x10", |b| {
        let params = LjParams::default();
        b.iter(|| {
            let mut system = ParticleSystem::lattice(216, 0.6, 7);
            black_box(run_nve(&mut system, &params, 0.002, 10))
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
