//! Criterion bench: HPCC simulations (Figures 8-13) — HPL, PTRANS and
//! RandomAccess engine paths at reduced problem sizes.

use corescope_affinity::Scheme;
use corescope_kernels::hpl::{append_run as hpl_run, HplParams};
use corescope_kernels::ptrans::{append_run as ptrans_run, PtransParams};
use corescope_kernels::randomaccess::{append_mpi, RaParams};
use corescope_machine::{systems, Machine};
use corescope_smpi::{CommWorld, LockLayer, MpiImpl};
use criterion::{criterion_group, criterion_main, Criterion};

fn world(machine: &Machine) -> CommWorld<'_> {
    let placements = Scheme::TwoMpiLocalAlloc.resolve(machine, 16).unwrap();
    CommWorld::new(machine, placements, MpiImpl::Lam.profile(), LockLayer::USysV)
}

fn bench(c: &mut Criterion) {
    let machine = Machine::new(systems::longs());
    let mut group = c.benchmark_group("hpcc");
    group.sample_size(10);
    group.bench_function("hpl-2048", |b| {
        b.iter(|| {
            let mut w = world(&machine);
            hpl_run(&mut w, &HplParams { n: 2048, nb: 256, dgemm_efficiency: 0.85 });
            w.run().unwrap()
        });
    });
    group.bench_function("ptrans-2048", |b| {
        b.iter(|| {
            let mut w = world(&machine);
            ptrans_run(&mut w, &PtransParams { n: 2048, reps: 1, ..PtransParams::default() });
            w.run().unwrap()
        });
    });
    group.bench_function("randomaccess-mpi", |b| {
        b.iter(|| {
            let mut w = world(&machine);
            append_mpi(
                &mut w,
                &RaParams { table_words_per_rank: 1 << 20, updates_per_rank: 1 << 14 },
            );
            w.run().unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
