//! Criterion bench: NAS kernel simulations (Tables 2-4) — CG, FT, plus
//! the EP/MG/IS extensions.

use corescope_affinity::Scheme;
use corescope_kernels::cg::{CgClass, NasCg};
use corescope_kernels::ep::{append_run as ep_run, EpParams};
use corescope_kernels::is::{IsClass, NasIs};
use corescope_kernels::mg::{MgClass, NasMg};
use corescope_kernels::nasft::{FtClass, NasFt};
use corescope_machine::{systems, Machine};
use corescope_smpi::{CommWorld, LockLayer, MpiImpl};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let machine = Machine::new(systems::longs());
    let run = |build: &dyn Fn(&mut CommWorld<'_>)| {
        let placements = Scheme::TwoMpiLocalAlloc.resolve(&machine, 8).unwrap();
        let mut w =
            CommWorld::new(&machine, placements, MpiImpl::Mpich2.profile(), LockLayer::USysV);
        build(&mut w);
        w.run().unwrap()
    };
    let mut group = c.benchmark_group("nas");
    group.sample_size(10);
    group.bench_function("cg-a-8", |b| {
        b.iter(|| run(&|w| NasCg { class: CgClass::A }.append_run(w)));
    });
    group.bench_function("ft-a-8", |b| {
        b.iter(|| run(&|w| NasFt { class: FtClass::A }.append_run(w)));
    });
    group.bench_function("ep-26-8", |b| {
        b.iter(|| run(&|w| ep_run(w, &EpParams { log2_pairs: 26 })));
    });
    group.bench_function("mg-a-8", |b| {
        b.iter(|| run(&|w| NasMg { class: MgClass::A }.append_run(w)));
    });
    group.bench_function("is-a-8", |b| {
        b.iter(|| run(&|w| NasIs { class: IsClass::A }.append_run(w)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
