//! Criterion bench: POP simulations (Tables 12-14) plus the real
//! barotropic CG solver substrate.

use corescope_affinity::Scheme;
use corescope_apps::ocean::{grid, PopModel};
use corescope_machine::{systems, Machine};
use corescope_smpi::{CommWorld, LockLayer, MpiImpl};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let machine = Machine::new(systems::longs());
    let mut group = c.benchmark_group("pop");
    group.sample_size(10);
    for (label, barotropic) in [("baroclinic-5steps-8", false), ("barotropic-5steps-8", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let model = PopModel { steps: 5, ..PopModel::x1() };
                let placements = Scheme::TwoMpiLocalAlloc.resolve(&machine, 8).unwrap();
                let mut w = CommWorld::new(
                    &machine,
                    placements,
                    MpiImpl::Mpich2.profile(),
                    LockLayer::USysV,
                );
                if barotropic {
                    model.append_barotropic(&mut w, model.steps);
                } else {
                    model.append_baroclinic(&mut w, model.steps);
                }
                w.run().unwrap()
            });
        });
    }
    group.bench_function("real-barotropic-solve-24x20", |b| {
        let (nx, ny) = (24, 20);
        let rhs: Vec<f64> = (0..nx * ny).map(|k| ((k % 5) as f64 - 2.0) * 0.2).collect();
        b.iter(|| black_box(grid::barotropic_solve(nx, ny, &rhs, 1e-8)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
