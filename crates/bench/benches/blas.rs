//! Criterion bench: BLAS star simulations (Figures 4-7) plus the real
//! blocked DGEMM kernel itself.

use corescope_affinity::Scheme;
use corescope_kernels::blas::{append_dgemm_star, dgemm_blocked, BlasVariant, DgemmParams};
use corescope_machine::{systems, Machine};
use corescope_smpi::{CommWorld, LockLayer, MpiImpl};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("blas");
    group.sample_size(20);
    group.bench_function("sim-dgemm-star-4", |b| {
        let machine = Machine::new(systems::dmz());
        b.iter(|| {
            let placements = Scheme::TwoMpiLocalAlloc.resolve(&machine, 4).unwrap();
            let mut w =
                CommWorld::new(&machine, placements, MpiImpl::Lam.profile(), LockLayer::USysV);
            append_dgemm_star(
                &mut w,
                &DgemmParams { n: 1000, reps: 1, variant: BlasVariant::Acml },
            );
            w.run().unwrap()
        });
    });
    group.bench_function("real-dgemm-blocked-96", |b| {
        let n = 96;
        let a: Vec<f64> = (0..n * n).map(|i| (i % 13) as f64).collect();
        let bm: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64).collect();
        b.iter(|| {
            let mut cm = vec![0.0; n * n];
            dgemm_blocked(n, 32, 1.0, &a, &bm, 0.0, &mut cm);
            black_box(cm)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
