//! End-to-end tests for the `corescope-serve` and `repro` binaries:
//! NDJSON protocol, cache warm-up across processes, concurrent TCP
//! clients, SIGTERM drain, cross-process cache single-flight, and the
//! determinism guarantee that `--jobs N` never changes a byte of output.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, ChildStderr, Command, Output, Stdio};

fn serve(args: &[&str], input: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_corescope-serve"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn corescope-serve");
    child.stdin.take().expect("piped stdin").write_all(input.as_bytes()).expect("write requests");
    child.wait_with_output().expect("collect corescope-serve output")
}

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("run repro")
}

/// Spawns `corescope-serve --listen 127.0.0.1:0`, parses the bound port
/// from the first stderr line, and hands back the child plus the stderr
/// reader (for the post-drain summaries) and the address to dial.
fn spawn_listener(extra: &[&str]) -> (Child, BufReader<ChildStderr>, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_corescope-serve"))
        .args(["--listen", "127.0.0.1:0"])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn corescope-serve --listen");
    let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let mut banner = String::new();
    stderr.read_line(&mut banner).expect("read listen banner");
    let addr = banner
        .trim()
        .rsplit("listening on ")
        .next()
        .unwrap_or_else(|| panic!("no address in banner: {banner:?}"))
        .to_string();
    (child, stderr, addr)
}

fn sigterm(child: &Child) {
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill -TERM");
    assert!(status.success(), "kill -TERM failed");
}

/// Pulls the `engine runs N` counter out of a `sched:` summary.
fn engine_runs(stderr: &str) -> usize {
    stderr
        .split("engine runs ")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.trim().parse().ok())
        .unwrap_or_else(|| panic!("no 'engine runs' in stderr: {stderr}"))
}

const BSP: &str = r#"{"system":"dmz","nranks":2,"workload":{"kind":"bsp","steps":4,"flops_per_step":1e6,"bytes_per_step":1e6,"sync_bytes":8}}"#;

#[test]
fn serve_answers_scenarios_artifacts_and_errors_in_order() {
    let input = format!("{BSP}\n{BSP}\n{{\"artifact\":\"t1\"}}\n{{\"what\":1}}\n");
    let out = serve(&["--jobs", "2"], &input);
    assert!(out.status.success());
    let lines: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(lines.len(), 4, "one response per request: {lines:?}");

    assert!(lines[0].starts_with("{\"ok\":true,\"digest\":\""));
    assert!(lines[0].contains("\"cache\":\"miss\""));
    assert!(lines[0].contains("\"makespan\":"));
    // The identical second request is deduplicated against the first,
    // not recomputed — and carries the same result bytes.
    assert!(lines[1].contains("\"cache\":\"in-flight\""));
    let result = |l: &str| l.split("\"result\":").nth(1).map(String::from);
    assert_eq!(result(lines[0]), result(lines[1]));

    assert!(lines[2].contains("\"artifact\":\"t1\""));
    assert!(lines[2].contains("Total cores"), "tables travel as CSV: {}", lines[2]);
    assert!(lines[3].starts_with("{\"ok\":false,\"error\":"));

    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("engine runs 1"), "summary must land on stderr: {stderr}");
}

#[test]
fn serve_and_repro_share_the_disk_cache() {
    let dir = std::env::temp_dir().join("corescope-serve-cache-test");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = dir.to_str().unwrap();

    // A serve process computes the scenario once, cold...
    let first = serve(&["--cache", cache], &format!("{BSP}\n"));
    let first_line = String::from_utf8(first.stdout).unwrap();
    assert!(first_line.contains("\"cache\":\"miss\""));

    // ...and a *fresh process* replays it from disk, bit-identical.
    let second = serve(&["--cache", cache], &format!("{BSP}\n"));
    let second_line = String::from_utf8(second.stdout).unwrap();
    assert!(second_line.contains("\"cache\":\"disk\""), "expected a disk hit: {second_line}");
    let result = |l: &str| l.split("\"result\":").nth(1).map(String::from);
    assert_eq!(result(&first_line), result(&second_line));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn listen_mode_serves_concurrent_tcp_clients() {
    let (child, mut stderr, addr) = spawn_listener(&["--jobs", "2"]);
    let workers: Vec<_> = (0..3)
        .map(|client| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(&addr).expect("connect");
                let mut writer = stream.try_clone().expect("clone stream");
                // Distinct steps per client so every request is a genuine
                // engine run, not a dedup of a sibling's.
                for i in 0..2 {
                    let line =
                        BSP.replace("\"steps\":4", &format!("\"steps\":{}", 5 + client * 2 + i));
                    writeln!(writer, "{line}").expect("send request");
                }
                writer.flush().expect("flush requests");
                stream.shutdown(std::net::Shutdown::Write).expect("half-close");
                let lines: Vec<String> =
                    BufReader::new(stream).lines().map(|l| l.expect("read response")).collect();
                assert_eq!(lines.len(), 2, "one response per request: {lines:?}");
                for line in &lines {
                    assert!(line.starts_with("{\"ok\":true,\"digest\":\""), "bad response: {line}");
                    assert!(line.ends_with('}'), "torn response line: {line}");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }
    sigterm(&child);
    let status = child.wait_with_output().expect("wait for drain").status;
    assert!(status.success(), "SIGTERM drain must exit cleanly: {status:?}");
    let mut tail = String::new();
    std::io::Read::read_to_string(&mut stderr, &mut tail).expect("read summaries");
    assert!(tail.contains("serve: connections 3"), "serve summary: {tail}");
    assert!(tail.contains("responses 6"), "all six responses counted: {tail}");
    assert_eq!(engine_runs(&tail), 6, "six distinct scenarios, six runs: {tail}");
}

#[test]
fn sigterm_drains_an_inflight_request_before_exiting() {
    let (child, mut stderr, addr) = spawn_listener(&[]);
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    writeln!(writer, "{BSP}").expect("send request");
    writer.flush().expect("flush request");
    // Give the server time to *accept* the request (reads are immediate;
    // the connection stays open so only admitted work is outstanding),
    // then ask for the drain while it is still in flight.
    std::thread::sleep(std::time::Duration::from_millis(60));
    sigterm(&child);
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("read drained response");
    assert!(response.starts_with("{\"ok\":true,\"digest\":\""), "drained response: {response}");
    assert!(response.trim_end().ends_with('}'), "torn line during drain: {response}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut reader, &mut rest).expect("read to close");
    assert_eq!(rest, "", "no stray bytes after the drained response");
    let status = child.wait_with_output().expect("wait for drain").status;
    assert!(status.success(), "drain must exit cleanly: {status:?}");
    let mut tail = String::new();
    std::io::Read::read_to_string(&mut stderr, &mut tail).expect("read summaries");
    assert!(tail.contains("serve:"), "serve summary printed: {tail}");
    assert!(tail.contains("sched:"), "sched summary printed: {tail}");
}

#[test]
fn two_serve_processes_share_cache_without_double_compute() {
    let dir = std::env::temp_dir().join("corescope-serve-two-process-cache");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = dir.to_str().unwrap();
    // Slow enough (~1.5 s debug) that the two processes genuinely race
    // for the cache entry; the lock protocol must arbitrate so exactly
    // one computes and the other replays the published bytes.
    let slow = BSP.replace("\"steps\":4", "\"steps\":60000");
    let spawn = || {
        let mut child = Command::new(env!("CARGO_BIN_EXE_corescope-serve"))
            .args(["--cache", cache])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn corescope-serve");
        child
            .stdin
            .take()
            .expect("piped stdin")
            .write_all(format!("{slow}\n").as_bytes())
            .expect("write request");
        child
    };
    let first = spawn();
    let second = spawn();
    let first = first.wait_with_output().expect("collect first");
    let second = second.wait_with_output().expect("collect second");
    assert!(first.status.success() && second.status.success());

    let result = |out: &[u8]| {
        let line = String::from_utf8_lossy(out).to_string();
        assert!(line.starts_with("{\"ok\":true"), "both must succeed: {line}");
        line.split("\"result\":").nth(1).map(String::from).expect("result payload")
    };
    assert_eq!(result(&first.stdout), result(&second.stdout), "shared entries must be identical");

    let runs = engine_runs(&String::from_utf8_lossy(&first.stderr))
        + engine_runs(&String::from_utf8_lossy(&second.stderr));
    assert_eq!(runs, 1, "cross-process single-flight: exactly one compute between the two");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_jobs_and_cache_keep_every_output_byte() {
    let dir = std::env::temp_dir().join("corescope-repro-cache-test");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = dir.to_str().unwrap();

    let serial = repro(&["--artifact", "x5", "--artifact", "f2", "--quick", "--jobs", "1"]);
    assert!(serial.status.success());
    let cold = repro(&[
        "--artifact",
        "x5",
        "--artifact",
        "f2",
        "--quick",
        "--jobs",
        "8",
        "--cache",
        cache,
    ]);
    let warm = repro(&[
        "--artifact",
        "x5",
        "--artifact",
        "f2",
        "--quick",
        "--jobs",
        "8",
        "--cache",
        cache,
    ]);
    assert_eq!(serial.stdout, cold.stdout, "--jobs 8 changed table bytes");
    assert_eq!(serial.stdout, warm.stdout, "cache replay changed table bytes");
    let warm_err = String::from_utf8_lossy(&warm.stderr);
    assert!(
        warm_err.contains("engine runs 0"),
        "warm pass must be cache-hit-dominated: {warm_err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_rejects_unknown_artifacts_with_a_catalogue_hint() {
    let out = repro(&["--artifact", "zz9"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown artifact 'zz9'"));
    assert!(stderr.contains("--list"), "error should point at the catalogue: {stderr}");
}

#[test]
fn repro_list_prints_the_catalogue() {
    let out = repro(&["--list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in ["t1", "f10", "x5"] {
        assert!(stdout.lines().any(|l| l.trim().starts_with(id)), "missing {id}:\n{stdout}");
    }
}
