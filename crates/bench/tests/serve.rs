//! End-to-end tests for the `corescope-serve` and `repro` binaries:
//! NDJSON protocol, cache warm-up across processes, and the determinism
//! guarantee that `--jobs N` never changes a byte of output.

use std::io::Write;
use std::process::{Command, Output, Stdio};

fn serve(args: &[&str], input: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_corescope-serve"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn corescope-serve");
    child.stdin.take().expect("piped stdin").write_all(input.as_bytes()).expect("write requests");
    child.wait_with_output().expect("collect corescope-serve output")
}

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("run repro")
}

const BSP: &str = r#"{"system":"dmz","nranks":2,"workload":{"kind":"bsp","steps":4,"flops_per_step":1e6,"bytes_per_step":1e6,"sync_bytes":8}}"#;

#[test]
fn serve_answers_scenarios_artifacts_and_errors_in_order() {
    let input = format!("{BSP}\n{BSP}\n{{\"artifact\":\"t1\"}}\n{{\"what\":1}}\n");
    let out = serve(&["--jobs", "2"], &input);
    assert!(out.status.success());
    let lines: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(lines.len(), 4, "one response per request: {lines:?}");

    assert!(lines[0].starts_with("{\"ok\":true,\"digest\":\""));
    assert!(lines[0].contains("\"cache\":\"miss\""));
    assert!(lines[0].contains("\"makespan\":"));
    // The identical second request is deduplicated against the first,
    // not recomputed — and carries the same result bytes.
    assert!(lines[1].contains("\"cache\":\"in-flight\""));
    let result = |l: &str| l.split("\"result\":").nth(1).map(String::from);
    assert_eq!(result(lines[0]), result(lines[1]));

    assert!(lines[2].contains("\"artifact\":\"t1\""));
    assert!(lines[2].contains("Total cores"), "tables travel as CSV: {}", lines[2]);
    assert!(lines[3].starts_with("{\"ok\":false,\"error\":"));

    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("engine runs 1"), "summary must land on stderr: {stderr}");
}

#[test]
fn serve_and_repro_share_the_disk_cache() {
    let dir = std::env::temp_dir().join("corescope-serve-cache-test");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = dir.to_str().unwrap();

    // A serve process computes the scenario once, cold...
    let first = serve(&["--cache", cache], &format!("{BSP}\n"));
    let first_line = String::from_utf8(first.stdout).unwrap();
    assert!(first_line.contains("\"cache\":\"miss\""));

    // ...and a *fresh process* replays it from disk, bit-identical.
    let second = serve(&["--cache", cache], &format!("{BSP}\n"));
    let second_line = String::from_utf8(second.stdout).unwrap();
    assert!(second_line.contains("\"cache\":\"disk\""), "expected a disk hit: {second_line}");
    let result = |l: &str| l.split("\"result\":").nth(1).map(String::from);
    assert_eq!(result(&first_line), result(&second_line));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_jobs_and_cache_keep_every_output_byte() {
    let dir = std::env::temp_dir().join("corescope-repro-cache-test");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = dir.to_str().unwrap();

    let serial = repro(&["--artifact", "x5", "--artifact", "f2", "--quick", "--jobs", "1"]);
    assert!(serial.status.success());
    let cold = repro(&[
        "--artifact",
        "x5",
        "--artifact",
        "f2",
        "--quick",
        "--jobs",
        "8",
        "--cache",
        cache,
    ]);
    let warm = repro(&[
        "--artifact",
        "x5",
        "--artifact",
        "f2",
        "--quick",
        "--jobs",
        "8",
        "--cache",
        cache,
    ]);
    assert_eq!(serial.stdout, cold.stdout, "--jobs 8 changed table bytes");
    assert_eq!(serial.stdout, warm.stdout, "cache replay changed table bytes");
    let warm_err = String::from_utf8_lossy(&warm.stderr);
    assert!(
        warm_err.contains("engine runs 0"),
        "warm pass must be cache-hit-dominated: {warm_err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_rejects_unknown_artifacts_with_a_catalogue_hint() {
    let out = repro(&["--artifact", "zz9"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown artifact 'zz9'"));
    assert!(stderr.contains("--list"), "error should point at the catalogue: {stderr}");
}

#[test]
fn repro_list_prints_the_catalogue() {
    let out = repro(&["--list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in ["t1", "f10", "x5"] {
        assert!(stdout.lines().any(|l| l.trim().starts_with(id)), "missing {id}:\n{stdout}");
    }
}
