//! # corescope-bench
//!
//! Criterion benches (one group per artifact family) and the `repro`
//! binary that regenerates every table and figure of the paper. See
//! `benches/` and `src/bin/repro.rs`.

pub use corescope_harness::{Artifact, Fidelity};
